//! `fftx-serve` — the multi-tenant FFT job-serving demo driver.
//!
//! Generates a deterministic synthetic request trace (Poisson arrivals
//! under a steady / burst / diurnal profile), serves it through the
//! `fftx-serve` subsystem (admission control → batch coalescing →
//! auto-tuned placement → stage-graph execution), and prints the
//! per-tenant / per-deadline outcome plus, on request, the tuner's
//! explainable placement dump.

use fftxlib_repro::core::{load_env, valid_decomps, DecompChoice};
use fftxlib_repro::serve::{
    resume_fleet, run_fleet, run_serve, FleetConfig, FleetFaults, FleetReport, Journal,
    LoadProfile, PlacementMode, ServeChaos, ServeConfig, ServeReport, TrafficConfig,
};
use std::process::ExitCode;

struct Args {
    traffic: TrafficConfig,
    serve: ServeConfig,
    fleet: Option<usize>,
    faults: FleetFaults,
    replay_check: bool,
    why: bool,
}

const USAGE: &str = "usage: fftx-serve [options]
  --rate HZ        mean arrival rate (requests per virtual second, default 30)
  --duration S     trace duration in virtual seconds        (default 2.0)
  --tenants N      number of tenants                        (default 4)
  --profile P      steady | burst | diurnal                 (default steady)
  --mode M         auto | serial | step | fft | async | hybrid (default auto)
  --decomp D       slab | pencil | auto             (default auto, or the
                   FFTX_DECOMP env choice; auto lets the tuner pick per batch)
  --seed S         trace + workload seed                    (default 20170814)
  --queue-cap N    admission queue capacity                 (default 64)
  --real           execute batches for real (hashes + stage profile)
  --chaos SEED     inject chaos on the serving path (implies --real)
  --evict N        with --chaos: force batch N onto the 7x1 layout and
                   kill rank 1 mid-run (eviction demo)
  --corrupt N      with --chaos: inject N-per-mille seeded bit flips per
                   batch; results are ABFT-verified, never delivered corrupt
  --fleet N        serve through N supervised shard nodes: durable job
                   journal, heartbeat circuit breakers, node-death failover,
                   and the graceful-degradation ladder
  --fault-seed S   with --fleet: fault-injection seed        (default 7)
  --p-death P      with --fleet: per-shard death probability (default 0)
  --p-slow P       with --fleet: per-shard slow-node probability (default 0)
  --slow-max F     with --fleet: worst-case slow-node factor (default 1.0)
  --p-partition P  with --fleet: per-shard partition probability (default 0)
  --replay-check   with --fleet: crash the journal at its midpoint, resume,
                   and verify the replayed run is byte-identical
  --why            print the tuner's placement explanations
  --help           this text";

fn parse_args() -> Result<Args, String> {
    let mut traffic = TrafficConfig {
        seed: 20170814,
        rate_hz: 30.0,
        duration_s: 2.0,
        tenants: 4,
        profile: LoadProfile::Steady,
    };
    let mut serve = ServeConfig::default();
    // FFTX_DECOMP seeds the default; the --decomp flag still wins.
    if let Some(d) = load_env().map_err(|e| e.to_string())?.decomp {
        serve.decomp = d;
    }
    let mut evict: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut corrupt: u32 = 0;
    let mut fleet: Option<usize> = None;
    let mut faults = FleetFaults { seed: 7, ..FleetFaults::default() };
    let mut faults_given = false;
    let mut replay_check = false;
    let mut why = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--rate" => traffic.rate_hz = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                traffic.duration_s = val("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenants" => traffic.tenants = val("--tenants")?.parse().map_err(|e| format!("{e}"))?,
            "--profile" => {
                let p = val("--profile")?;
                traffic.profile = LoadProfile::parse(&p)
                    .ok_or_else(|| format!("unknown profile '{p}' (valid: steady, burst, diurnal)"))?;
            }
            "--mode" => {
                let m = val("--mode")?;
                serve.mode = PlacementMode::parse(&m).ok_or_else(|| {
                    format!("unknown mode '{m}' (valid: auto, serial, step, fft, async, hybrid)")
                })?;
            }
            "--decomp" => {
                let d = val("--decomp")?;
                serve.decomp = DecompChoice::parse(&d).ok_or_else(|| {
                    format!("unknown decomposition '{d}' (valid: {})", valid_decomps())
                })?;
            }
            "--seed" => {
                let s: u64 = val("--seed")?.parse().map_err(|e| format!("{e}"))?;
                traffic.seed = s;
                serve.seed = s;
            }
            "--queue-cap" => {
                serve.admission.queue_cap =
                    val("--queue-cap")?.parse().map_err(|e| format!("{e}"))?
            }
            "--fleet" => fleet = Some(val("--fleet")?.parse().map_err(|e| format!("{e}"))?),
            "--fault-seed" => {
                faults.seed = val("--fault-seed")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-death" => {
                faults.p_death = val("--p-death")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-slow" => {
                faults.p_slow = val("--p-slow")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--slow-max" => {
                faults.slow_max = val("--slow-max")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-partition" => {
                faults.p_partition = val("--p-partition")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--replay-check" => replay_check = true,
            "--real" => serve.execute_real = true,
            "--chaos" => chaos_seed = Some(val("--chaos")?.parse().map_err(|e| format!("{e}"))?),
            "--evict" => evict = Some(val("--evict")?.parse().map_err(|e| format!("{e}"))?),
            "--corrupt" => corrupt = val("--corrupt")?.parse().map_err(|e| format!("{e}"))?,
            "--why" => why = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if let Some(seed) = chaos_seed {
        serve.chaos = Some(ServeChaos {
            seed,
            evict_batch: evict,
            corrupt_per_mille: corrupt,
        });
    } else if evict.is_some() || corrupt > 0 {
        return Err("--evict/--corrupt require --chaos".into());
    }
    if fleet.is_none() && (faults_given || replay_check) {
        return Err("--fault-seed/--p-death/--p-slow/--slow-max/--p-partition/--replay-check require --fleet".into());
    }
    Ok(Args {
        traffic,
        serve,
        fleet,
        faults,
        replay_check,
        why,
    })
}

fn print_report(report: &ServeReport, traffic: &TrafficConfig) {
    println!("fftx-serve — multi-tenant FFT job serving");
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants, seed {}",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants, traffic.seed
    );
    println!("  mode    : {}", report.mode.name());
    println!("  decomp  : {}", report.decomp.name());
    println!(
        "  offered {} | served {} | shed {} ({:.1} %)",
        report.offered(),
        report.jobs.len(),
        report.shed.len(),
        report.shed_rate() * 100.0
    );
    let mut lat = report.latency();
    if !lat.is_empty() {
        println!(
            "  latency : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s",
            lat.p50(),
            lat.p99(),
            lat.mean(),
            lat.max()
        );
    }
    println!(
        "  goodput : {:.2} deadline-met jobs/s over a {:.3}s makespan",
        report.goodput_hz(),
        report.makespan_s
    );
    println!(
        "  queue   : max depth {}, time-weighted mean {:.2}",
        report.depth.max(),
        report.depth.time_weighted_mean()
    );
    println!(
        "  batches : {} dispatched, {:.2} requests coalesced per batch",
        report.batches.len(),
        report.jobs.len() as f64 / report.batches.len().max(1) as f64
    );
    let (r, b, e) = report.batches.iter().fold((0, 0, 0), |acc, x| {
        (acc.0 + x.recovery.0, acc.1 + x.recovery.1, acc.2 + x.recovery.2)
    });
    if r + b + e > 0 || report.counters.get("escalations") > 0 {
        println!(
            "  recovery: {r} task retries, {b} rollbacks, {e} evictions, {} escalations — zero lost jobs",
            report.counters.get("escalations")
        );
    }
    println!("\ncounters:");
    for (key, n) in report.counters.iter() {
        println!("  {key:<24} {n}");
    }
    if !report.stage_seconds.is_empty() {
        println!("\nper-stage busy seconds (real executions):");
        for (stage, seconds) in &report.stage_seconds {
            println!("  stage {stage:<3} {seconds:.6}s");
        }
    }
}

fn print_fleet_report(report: &FleetReport, traffic: &TrafficConfig, faults: &FleetFaults) {
    println!("fftx-serve — durable fleet serving ({} shards)", report.shards);
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants, seed {}",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants, traffic.seed
    );
    println!(
        "  faults  : seed {} | p_death {} | p_slow {} (max {}x) | p_partition {}",
        faults.seed, faults.p_death, faults.p_slow, faults.slow_max, faults.p_partition
    );
    let c = &report.conservation;
    println!(
        "  offered {} | served {} | shed {} ({:.1} %)",
        report.offered(),
        report.jobs.len(),
        report.shed.len(),
        report.shed_rate() * 100.0
    );
    println!(
        "  journal : {} records — {} accepted = {} completed + {} open, {} duplicates suppressed",
        report.journal.len(),
        c.accepted,
        c.completed,
        c.open.len(),
        c.suppressed
    );
    let mut lat = report.latency();
    if !lat.is_empty() {
        println!(
            "  latency : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s",
            lat.p50(),
            lat.p99(),
            lat.mean(),
            lat.max()
        );
    }
    println!(
        "  goodput : {:.2} deadline-met jobs/s over a {:.3}s makespan",
        report.goodput_hz(),
        report.makespan_s
    );
    let deaths = report.counters.get("fleet.shard_down");
    let moved = report.counters.get("fleet.failover.jobs");
    if deaths > 0 {
        let mut fl = report.failover_latencies();
        print!("  failover: {deaths} shards declared dead, {moved} jobs re-routed");
        if fl.is_empty() {
            println!();
        } else {
            println!(" — recovery p50 {:.4}s  p99 {:.4}s", fl.p50(), fl.p99());
        }
    }
    println!("\ncounters:");
    for (key, n) in report.counters.iter() {
        println!("  {key:<24} {n}");
    }
}

/// The `--replay-check` demo: cut the finished run's journal at its
/// midpoint (a crash), resume from the prefix, and require the recovered
/// run's journal to be byte-identical to the uninterrupted one's.
fn replay_check(
    report: &FleetReport,
    requests: &[fftxlib_repro::serve::Request],
    cfg: &FleetConfig,
) -> Result<(), String> {
    let cut = report.journal.len() / 2;
    let mut prefix = Journal::new();
    for rec in &report.journal.records()[..cut] {
        prefix.append(rec.clone());
    }
    let resumed = resume_fleet(&prefix, requests, cfg).map_err(|e| format!("{e}"))?;
    if resumed.journal.encode() == report.journal.encode() {
        println!(
            "\nreplay-check: crash at record {cut}/{} → resumed journal byte-identical",
            report.journal.len()
        );
        Ok(())
    } else {
        Err(format!(
            "resumed journal diverged from the uninterrupted run (cut at record {cut}/{})",
            report.journal.len()
        ))
    }
}

fn run_fleet_mode(args: &Args, shards: usize) -> ExitCode {
    let cfg = FleetConfig {
        shards,
        serve: args.serve,
        horizon_s: args.traffic.duration_s,
        faults: args.faults,
        ..FleetConfig::default()
    };
    let requests = fftxlib_repro::serve::generate(&args.traffic);
    let report = match run_fleet(&requests, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print_fleet_report(&report, &args.traffic, &args.faults);
    if args.replay_check {
        if let Err(e) = replay_check(&report, &requests, &cfg) {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    if let Some(shards) = args.fleet {
        return run_fleet_mode(&args, shards);
    }
    let requests = fftxlib_repro::serve::generate(&args.traffic);
    let report = match run_serve(&requests, &args.serve) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print_report(&report, &args.traffic);
    if args.why {
        println!("\n{}", report.why);
    }
    ExitCode::SUCCESS
}
