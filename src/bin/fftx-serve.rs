//! `fftx-serve` — the multi-tenant FFT job-serving demo driver.
//!
//! Generates a deterministic synthetic request trace (Poisson arrivals
//! under a steady / burst / diurnal profile), serves it through the
//! `fftx-serve` subsystem (admission control → batch coalescing →
//! auto-tuned placement → stage-graph execution), and prints the
//! per-tenant / per-deadline outcome plus, on request, the tuner's
//! explainable placement dump.

use fftxlib_repro::serve::{
    run_serve, LoadProfile, PlacementMode, ServeChaos, ServeConfig, ServeReport, TrafficConfig,
};
use std::process::ExitCode;

struct Args {
    traffic: TrafficConfig,
    serve: ServeConfig,
    why: bool,
}

const USAGE: &str = "usage: fftx-serve [options]
  --rate HZ        mean arrival rate (requests per virtual second, default 30)
  --duration S     trace duration in virtual seconds        (default 2.0)
  --tenants N      number of tenants                        (default 4)
  --profile P      steady | burst | diurnal                 (default steady)
  --mode M         auto | serial | step | fft | async | hybrid (default auto)
  --seed S         trace + workload seed                    (default 20170814)
  --queue-cap N    admission queue capacity                 (default 64)
  --real           execute batches for real (hashes + stage profile)
  --chaos SEED     inject chaos on the serving path (implies --real)
  --evict N        with --chaos: force batch N onto the 7x1 layout and
                   kill rank 1 mid-run (eviction demo)
  --why            print the tuner's placement explanations
  --help           this text";

fn parse_args() -> Result<Args, String> {
    let mut traffic = TrafficConfig {
        seed: 20170814,
        rate_hz: 30.0,
        duration_s: 2.0,
        tenants: 4,
        profile: LoadProfile::Steady,
    };
    let mut serve = ServeConfig::default();
    let mut evict: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut why = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--rate" => traffic.rate_hz = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                traffic.duration_s = val("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenants" => traffic.tenants = val("--tenants")?.parse().map_err(|e| format!("{e}"))?,
            "--profile" => {
                let p = val("--profile")?;
                traffic.profile = LoadProfile::parse(&p)
                    .ok_or_else(|| format!("unknown profile '{p}' (valid: steady, burst, diurnal)"))?;
            }
            "--mode" => {
                let m = val("--mode")?;
                serve.mode = PlacementMode::parse(&m).ok_or_else(|| {
                    format!("unknown mode '{m}' (valid: auto, serial, step, fft, async, hybrid)")
                })?;
            }
            "--seed" => {
                let s: u64 = val("--seed")?.parse().map_err(|e| format!("{e}"))?;
                traffic.seed = s;
                serve.seed = s;
            }
            "--queue-cap" => {
                serve.admission.queue_cap =
                    val("--queue-cap")?.parse().map_err(|e| format!("{e}"))?
            }
            "--real" => serve.execute_real = true,
            "--chaos" => chaos_seed = Some(val("--chaos")?.parse().map_err(|e| format!("{e}"))?),
            "--evict" => evict = Some(val("--evict")?.parse().map_err(|e| format!("{e}"))?),
            "--why" => why = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if let Some(seed) = chaos_seed {
        serve.chaos = Some(ServeChaos {
            seed,
            evict_batch: evict,
        });
    } else if evict.is_some() {
        return Err("--evict requires --chaos".into());
    }
    Ok(Args {
        traffic,
        serve,
        why,
    })
}

fn print_report(report: &ServeReport, traffic: &TrafficConfig) {
    println!("fftx-serve — multi-tenant FFT job serving");
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants, seed {}",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants, traffic.seed
    );
    println!("  mode    : {}", report.mode.name());
    println!(
        "  offered {} | served {} | shed {} ({:.1} %)",
        report.offered(),
        report.jobs.len(),
        report.shed.len(),
        report.shed_rate() * 100.0
    );
    let mut lat = report.latency();
    if !lat.is_empty() {
        println!(
            "  latency : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s",
            lat.p50(),
            lat.p99(),
            lat.mean(),
            lat.max()
        );
    }
    println!(
        "  goodput : {:.2} deadline-met jobs/s over a {:.3}s makespan",
        report.goodput_hz(),
        report.makespan_s
    );
    println!(
        "  queue   : max depth {}, time-weighted mean {:.2}",
        report.depth.max(),
        report.depth.time_weighted_mean()
    );
    println!(
        "  batches : {} dispatched, {:.2} requests coalesced per batch",
        report.batches.len(),
        report.jobs.len() as f64 / report.batches.len().max(1) as f64
    );
    let (r, b, e) = report.batches.iter().fold((0, 0, 0), |acc, x| {
        (acc.0 + x.recovery.0, acc.1 + x.recovery.1, acc.2 + x.recovery.2)
    });
    if r + b + e > 0 || report.counters.get("escalations") > 0 {
        println!(
            "  recovery: {r} task retries, {b} rollbacks, {e} evictions, {} escalations — zero lost jobs",
            report.counters.get("escalations")
        );
    }
    println!("\ncounters:");
    for (key, n) in report.counters.iter() {
        println!("  {key:<24} {n}");
    }
    if !report.stage_seconds.is_empty() {
        println!("\nper-stage busy seconds (real executions):");
        for (stage, seconds) in &report.stage_seconds {
            println!("  stage {stage:<3} {seconds:.6}s");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    let requests = fftxlib_repro::serve::generate(&args.traffic);
    let report = run_serve(&requests, &args.serve);
    print_report(&report, &args.traffic);
    if args.why {
        println!("\n{}", report.why);
    }
    ExitCode::SUCCESS
}
