//! `fftx-serve` — the multi-tenant FFT job-serving demo driver.
//!
//! Generates a deterministic synthetic request trace (Poisson arrivals
//! under a steady / burst / diurnal profile), serves it through the
//! `fftx-serve` subsystem (admission control → batch coalescing →
//! auto-tuned placement → stage-graph execution), and prints the
//! per-tenant / per-deadline outcome plus, on request, the tuner's
//! explainable placement dump.

use fftxlib_repro::core::{load_env, valid_decomps, DecompChoice};
use fftxlib_repro::serve::{
    plan_capacity, resume_fleet, run_fleet, run_serve, AutoscaleConfig, FleetConfig, FleetFaults,
    FleetReport, Journal, LoadProfile, PlacementMode, PlanConfig, PlanReport, ServeChaos,
    ServeConfig, ServeReport, TrafficConfig,
};
use std::process::ExitCode;

struct Args {
    traffic: TrafficConfig,
    serve: ServeConfig,
    fleet: Option<usize>,
    faults: FleetFaults,
    autoscale: Option<AutoscaleConfig>,
    steal: bool,
    plan: Option<usize>,
    plan_iters: usize,
    plan_seed: u64,
    replay_check: bool,
    why: bool,
}

const USAGE: &str = "usage: fftx-serve [options]
  --rate HZ        mean arrival rate (requests per virtual second, default 30)
  --duration S     trace duration in virtual seconds        (default 2.0)
  --tenants N      number of tenants                        (default 4)
  --profile P      steady | burst | diurnal                 (default steady)
  --mode M         auto | serial | step | fft | async | hybrid (default auto)
  --decomp D       slab | pencil | auto             (default auto, or the
                   FFTX_DECOMP env choice; auto lets the tuner pick per batch)
  --seed S         trace + workload seed                    (default 20170814)
  --queue-cap N    admission queue capacity                 (default 64)
  --real           execute batches for real (hashes + stage profile)
  --chaos SEED     inject chaos on the serving path (implies --real)
  --evict N        with --chaos: force batch N onto the 7x1 layout and
                   kill rank 1 mid-run (eviction demo)
  --corrupt N      with --chaos: inject N-per-mille seeded bit flips per
                   batch; results are ABFT-verified, never delivered corrupt
  --fleet N        serve through N supervised shard nodes: durable job
                   journal, heartbeat circuit breakers, node-death failover,
                   and the graceful-degradation ladder
  --fault-seed S   with --fleet: fault-injection seed        (default 7)
  --p-death P      with --fleet: per-shard death probability (default 0)
  --p-slow P       with --fleet: per-shard slow-node probability (default 0)
  --slow-max F     with --fleet: worst-case slow-node factor (default 1.0)
  --p-partition P  with --fleet: per-shard partition probability (default 0)
  --replay-check   with --fleet: crash the journal at its midpoint, resume,
                   and verify the replayed run is byte-identical
  --autoscale M:N  with --fleet: run the reactive autoscaler between M and N
                   active shards (N <= the provisioned --fleet pool);
                   thresholds from FFTX_SCALE_UP_AT / FFTX_SCALE_DOWN_AT
  --steal V        with --fleet: cross-shard work stealing, on | off
                   (default off, or the FFTX_STEAL env choice)
  --plan N         run the offline Monte-Carlo capacity planner over
                   candidate fleet sizes 1..=N instead of serving
                   (iterations / seed from FFTX_PLAN_ITERS / FFTX_PLAN_SEED)
  --why            print the tuner's placement explanations
  --help           this text";

/// Parses the `--autoscale` bound pair `MIN:MAX`.
fn parse_autoscale(v: &str) -> Result<(usize, usize), String> {
    let bad = || format!("bad autoscale bounds '{v}' (expected MIN:MAX with 1 <= MIN <= MAX, e.g. 1:4)");
    let (lo, hi) = v.split_once(':').ok_or_else(bad)?;
    let min: usize = lo.trim().parse().map_err(|_| bad())?;
    let max: usize = hi.trim().parse().map_err(|_| bad())?;
    if min == 0 || min > max {
        return Err(bad());
    }
    Ok((min, max))
}

fn parse_args() -> Result<Args, String> {
    let mut traffic = TrafficConfig {
        seed: 20170814,
        rate_hz: 30.0,
        duration_s: 2.0,
        tenants: 4,
        profile: LoadProfile::Steady,
    };
    let mut serve = ServeConfig::default();
    // The FFTX_* knobs seed the defaults; explicit flags still win.
    let knobs = load_env().map_err(|e| e.to_string())?;
    if let Some(d) = knobs.decomp {
        serve.decomp = d;
    }
    let mut evict: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut corrupt: u32 = 0;
    let mut fleet: Option<usize> = None;
    let mut faults = FleetFaults { seed: 7, ..FleetFaults::default() };
    let mut faults_given = false;
    // FFTX_FLEET_MIN + FFTX_FLEET_MAX together enable the autoscaler from
    // the environment; --autoscale MIN:MAX overrides the bounds.
    let mut bounds = match (knobs.fleet.min, knobs.fleet.max) {
        (Some(min), Some(max)) => Some((min, max)),
        _ => None,
    };
    let mut steal = knobs.fleet.steal.unwrap_or(false);
    // Explicit flags in non-fleet mode are an error; env-only settings are
    // silently inert there (the environment is shared across run modes).
    let mut fleet_flags_given = false;
    let mut plan: Option<usize> = None;
    let mut replay_check = false;
    let mut why = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--rate" => traffic.rate_hz = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                traffic.duration_s = val("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--tenants" => traffic.tenants = val("--tenants")?.parse().map_err(|e| format!("{e}"))?,
            "--profile" => {
                let p = val("--profile")?;
                traffic.profile = LoadProfile::parse(&p)
                    .ok_or_else(|| format!("unknown profile '{p}' (valid: steady, burst, diurnal)"))?;
            }
            "--mode" => {
                let m = val("--mode")?;
                serve.mode = PlacementMode::parse(&m).ok_or_else(|| {
                    format!("unknown mode '{m}' (valid: auto, serial, step, fft, async, hybrid)")
                })?;
            }
            "--decomp" => {
                let d = val("--decomp")?;
                serve.decomp = DecompChoice::parse(&d).ok_or_else(|| {
                    format!("unknown decomposition '{d}' (valid: {})", valid_decomps())
                })?;
            }
            "--seed" => {
                let s: u64 = val("--seed")?.parse().map_err(|e| format!("{e}"))?;
                traffic.seed = s;
                serve.seed = s;
            }
            "--queue-cap" => {
                serve.admission.queue_cap =
                    val("--queue-cap")?.parse().map_err(|e| format!("{e}"))?
            }
            "--fleet" => fleet = Some(val("--fleet")?.parse().map_err(|e| format!("{e}"))?),
            "--fault-seed" => {
                faults.seed = val("--fault-seed")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-death" => {
                faults.p_death = val("--p-death")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-slow" => {
                faults.p_slow = val("--p-slow")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--slow-max" => {
                faults.slow_max = val("--slow-max")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--p-partition" => {
                faults.p_partition = val("--p-partition")?.parse().map_err(|e| format!("{e}"))?;
                faults_given = true;
            }
            "--autoscale" => {
                bounds = Some(parse_autoscale(&val("--autoscale")?)?);
                fleet_flags_given = true;
            }
            "--steal" => {
                let v = val("--steal")?;
                steal = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!("unknown steal setting '{other}' (valid: on, off)"))
                    }
                };
                fleet_flags_given = true;
            }
            "--plan" => {
                let n: usize = val("--plan")?
                    .parse()
                    .map_err(|_| "bad --plan value (expected a candidate fleet size >= 1)".to_string())?;
                if n == 0 {
                    return Err("bad --plan value (expected a candidate fleet size >= 1)".into());
                }
                plan = Some(n);
            }
            "--replay-check" => replay_check = true,
            "--real" => serve.execute_real = true,
            "--chaos" => chaos_seed = Some(val("--chaos")?.parse().map_err(|e| format!("{e}"))?),
            "--evict" => evict = Some(val("--evict")?.parse().map_err(|e| format!("{e}"))?),
            "--corrupt" => corrupt = val("--corrupt")?.parse().map_err(|e| format!("{e}"))?,
            "--why" => why = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if let Some(seed) = chaos_seed {
        serve.chaos = Some(ServeChaos {
            seed,
            evict_batch: evict,
            corrupt_per_mille: corrupt,
        });
    } else if evict.is_some() || corrupt > 0 {
        return Err("--evict/--corrupt require --chaos".into());
    }
    if plan.is_none() && fleet.is_none() && (faults_given || replay_check) {
        return Err("--fault-seed/--p-death/--p-slow/--slow-max/--p-partition/--replay-check require --fleet".into());
    }
    if fleet.is_none() && fleet_flags_given {
        return Err("--autoscale/--steal require --fleet".into());
    }
    let autoscale = bounds.map(|(min, max)| {
        let d = AutoscaleConfig::default();
        AutoscaleConfig {
            min,
            max,
            up_at: knobs.fleet.up_at.unwrap_or(d.up_at),
            down_at: knobs.fleet.down_at.unwrap_or(d.down_at),
            ..d
        }
    });
    Ok(Args {
        traffic,
        serve,
        fleet,
        faults,
        autoscale,
        steal,
        plan,
        plan_iters: knobs.fleet.plan_iters.unwrap_or(4),
        plan_seed: knobs.fleet.plan_seed.unwrap_or(traffic.seed),
        replay_check,
        why,
    })
}

fn print_report(report: &ServeReport, traffic: &TrafficConfig) {
    println!("fftx-serve — multi-tenant FFT job serving");
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants, seed {}",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants, traffic.seed
    );
    println!("  mode    : {}", report.mode.name());
    println!("  decomp  : {}", report.decomp.name());
    println!(
        "  offered {} | served {} | shed {} ({:.1} %)",
        report.offered(),
        report.jobs.len(),
        report.shed.len(),
        report.shed_rate() * 100.0
    );
    let mut lat = report.latency();
    if !lat.is_empty() {
        println!(
            "  latency : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s",
            lat.p50(),
            lat.p99(),
            lat.mean(),
            lat.max()
        );
    }
    println!(
        "  goodput : {:.2} deadline-met jobs/s over a {:.3}s makespan",
        report.goodput_hz(),
        report.makespan_s
    );
    println!(
        "  queue   : max depth {}, time-weighted mean {:.2}",
        report.depth.max(),
        report.depth.time_weighted_mean()
    );
    println!(
        "  batches : {} dispatched, {:.2} requests coalesced per batch",
        report.batches.len(),
        report.jobs.len() as f64 / report.batches.len().max(1) as f64
    );
    let (r, b, e) = report.batches.iter().fold((0, 0, 0), |acc, x| {
        (acc.0 + x.recovery.0, acc.1 + x.recovery.1, acc.2 + x.recovery.2)
    });
    if r + b + e > 0 || report.counters.get("escalations") > 0 {
        println!(
            "  recovery: {r} task retries, {b} rollbacks, {e} evictions, {} escalations — zero lost jobs",
            report.counters.get("escalations")
        );
    }
    println!("\ncounters:");
    for (key, n) in report.counters.iter() {
        println!("  {key:<24} {n}");
    }
    if !report.stage_seconds.is_empty() {
        println!("\nper-stage busy seconds (real executions):");
        for (stage, seconds) in &report.stage_seconds {
            println!("  stage {stage:<3} {seconds:.6}s");
        }
    }
}

fn print_fleet_report(report: &FleetReport, traffic: &TrafficConfig, faults: &FleetFaults) {
    println!("fftx-serve — durable fleet serving ({} shards)", report.shards);
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants, seed {}",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants, traffic.seed
    );
    println!(
        "  faults  : seed {} | p_death {} | p_slow {} (max {}x) | p_partition {}",
        faults.seed, faults.p_death, faults.p_slow, faults.slow_max, faults.p_partition
    );
    let c = &report.conservation;
    println!(
        "  offered {} | served {} | shed {} ({:.1} %)",
        report.offered(),
        report.jobs.len(),
        report.shed.len(),
        report.shed_rate() * 100.0
    );
    println!(
        "  journal : {} records — {} accepted = {} completed + {} open, {} duplicates suppressed",
        report.journal.len(),
        c.accepted,
        c.completed,
        c.open.len(),
        c.suppressed
    );
    let mut lat = report.latency();
    if !lat.is_empty() {
        println!(
            "  latency : p50 {:.4}s  p99 {:.4}s  mean {:.4}s  max {:.4}s",
            lat.p50(),
            lat.p99(),
            lat.mean(),
            lat.max()
        );
    }
    println!(
        "  goodput : {:.2} deadline-met jobs/s over a {:.3}s makespan",
        report.goodput_hz(),
        report.makespan_s
    );
    let deaths = report.counters.get("fleet.shard_down");
    let moved = report.counters.get("fleet.failover.jobs");
    if deaths > 0 {
        let mut fl = report.failover_latencies();
        print!("  failover: {deaths} shards declared dead, {moved} jobs re-routed");
        if fl.is_empty() {
            println!();
        } else {
            println!(" — recovery p50 {:.4}s  p99 {:.4}s", fl.p50(), fl.p99());
        }
    }
    println!("\ncounters:");
    for (key, n) in report.counters.iter() {
        println!("  {key:<24} {n}");
    }
}

/// The `--replay-check` demo: cut the finished run's journal at its
/// midpoint (a crash), resume from the prefix, and require the recovered
/// run's journal to be byte-identical to the uninterrupted one's.
fn replay_check(
    report: &FleetReport,
    requests: &[fftxlib_repro::serve::Request],
    cfg: &FleetConfig,
) -> Result<(), String> {
    let cut = report.journal.len() / 2;
    let mut prefix = Journal::new();
    for rec in &report.journal.records()[..cut] {
        prefix.append(rec.clone());
    }
    let resumed = resume_fleet(&prefix, requests, cfg).map_err(|e| format!("{e}"))?;
    if resumed.journal.encode() == report.journal.encode() {
        println!(
            "\nreplay-check: crash at record {cut}/{} → resumed journal byte-identical",
            report.journal.len()
        );
        Ok(())
    } else {
        Err(format!(
            "resumed journal diverged from the uninterrupted run (cut at record {cut}/{})",
            report.journal.len()
        ))
    }
}

fn print_plan_report(plan: &PlanReport, traffic: &TrafficConfig, k_max: usize) {
    println!(
        "fftx-serve — offline capacity plan (k = 1..={k_max}, {} iterations)",
        plan.iterations
    );
    println!(
        "  traffic : {} req/s x {:.1}s ({}), {} tenants",
        traffic.rate_hz, traffic.duration_s, traffic.profile.name(), traffic.tenants
    );
    println!(
        "  demand  : required {:.1} bands/s | peak {:.1} bands/s | {:.1} bands/s per shard",
        plan.required_rate, plan.peak_rate, plan.shard_rate
    );
    println!("  floor   : analytic fleet floor {}", plan.analytic_floor);
    println!("  candidates:");
    for p in &plan.profiles {
        println!(
            "    k={}  goodput {:>7.2}/s  shed {:>5.1} % ({} total)  p99 {:.4}s",
            p.k,
            p.goodput_hz,
            p.shed_rate * 100.0,
            p.shed_total,
            p.p99_latency_s
        );
    }
    println!("  recommend: {} shards", plan.recommended);
    let e = &plan.envelope;
    println!(
        "  envelope : autoscale {}..{} shards | scale up at {:.2}, down at {:.2}",
        e.min, e.max, e.up_at, e.down_at
    );
}

/// The `--plan N` mode: the offline Monte-Carlo capacity planner over
/// candidate static fleets 1..=N, instead of serving live traffic.
fn run_plan_mode(args: &Args, k_max: usize) -> ExitCode {
    let cfg = PlanConfig {
        iterations: args.plan_iters,
        seed: args.plan_seed,
        k_min: 1,
        k_max,
        fleet: FleetConfig {
            shards: k_max,
            serve: args.serve,
            horizon_s: args.traffic.duration_s,
            faults: args.faults,
            ..FleetConfig::default()
        },
        traffic: args.traffic,
        ..PlanConfig::default()
    };
    match plan_capacity(&cfg) {
        Ok(plan) => {
            print_plan_report(&plan, &args.traffic, k_max);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_fleet_mode(args: &Args, shards: usize) -> ExitCode {
    let cfg = FleetConfig {
        shards,
        serve: args.serve,
        horizon_s: args.traffic.duration_s,
        faults: args.faults,
        autoscale: args.autoscale,
        steal: args.steal,
        ..FleetConfig::default()
    };
    let requests = fftxlib_repro::serve::generate(&args.traffic);
    let report = match run_fleet(&requests, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print_fleet_report(&report, &args.traffic, &args.faults);
    if args.replay_check {
        if let Err(e) = replay_check(&report, &requests, &cfg) {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    if let Some(k_max) = args.plan {
        return run_plan_mode(&args, k_max);
    }
    if let Some(shards) = args.fleet {
        return run_fleet_mode(&args, shards);
    }
    let requests = fftxlib_repro::serve::generate(&args.traffic);
    let report = match run_serve(&requests, &args.serve) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    print_report(&report, &args.traffic);
    if args.why {
        println!("\n{}", report.why);
    }
    ExitCode::SUCCESS
}
