//! `fftx` — the miniapp driver, mirroring FFTXlib's own benchmark CLI.
//!
//! ```text
//! fftx [--ecutwfc RY] [--alat BOHR] [--nbnd N] [--nr R] [--ntg T]
//!      [--mode original|steps|ffts|async|hybrid] [--engine real|model]
//!      [--seed S] [--verify] [--timeline] [--metrics]
//! ```
//!
//! `--engine real` executes the kernel on virtual MPI ranks with actual FFT
//! math (laptop-scale; use small cutoffs). `--engine model` runs the same
//! kernel on the calibrated KNL-node simulator (any of the paper's
//! configurations in milliseconds). The default scheduler policy can also
//! be selected with the `FFTX_SCHEDULER` environment variable
//! (`serial|step|fft|async|hybrid`); an explicit `--mode` wins.

use fftxlib_repro::core::{
    load_env, resolve_decomp, run, run_modeled, valid_decomps, valid_policies, DecompChoice,
    FftxConfig, Mode, Problem, SchedulerPolicy,
};
use fftxlib_repro::fft::max_dist;
use fftxlib_repro::pw::apply_vloc;
use fftxlib_repro::trace::{
    export_paraver, intra_factors, phase_profile, render_timeline, EventLog, StateClass,
    TimelineOptions, Trace,
};
use std::process::ExitCode;

struct Args {
    config: FftxConfig,
    engine: Engine,
    verify: bool,
    timeline: bool,
    metrics: bool,
    paraver: Option<String>,
    trace_out: Option<String>,
    trace_dump: Option<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum Engine {
    Real,
    Model,
}

const USAGE: &str = "usage: fftx [options]
  --ecutwfc RY     plane-wave cutoff in Ry        (default 6.0 real / 80.0 model)
  --alat BOHR      cubic lattice parameter        (default 8.0 real / 20.0 model)
  --nbnd N         number of bands                (default 2*ntg real / 128 model)
  --nr R           first parallel dimension       (default 2)
  --ntg T          task groups / worker threads   (default 2 real / 8 model)
  --mode M         original | steps | ffts | async | hybrid
                   (default original, or the FFTX_SCHEDULER env policy)
  --decomp D       slab | pencil | auto           (default slab, or the
                   FFTX_DECOMP env choice; auto asks the network model)
  --engine E       real | model                   (default real)
  --seed S         workload seed                  (default 42)
  --verify         check against the serial reference (real engine only)
  --timeline       print an ASCII timeline of the run
  --metrics        print the POP efficiency factors
  --paraver PREFIX write PREFIX.prv/.pcf/.row (opens in BSC Paraver)
  --trace-out FILE write the run's event log as a binary columnar trace
  --trace-dump FILE decode a binary trace and print its summary CSV (no run)
  --help           this text";

fn parse_args() -> Result<Args, String> {
    let mut ecutwfc: Option<f64> = None;
    let mut alat: Option<f64> = None;
    let mut nbnd: Option<usize> = None;
    let mut nr = 2usize;
    let mut ntg: Option<usize> = None;
    // FFTX_SCHEDULER picks the default policy; an explicit --mode wins.
    // The typed loader rejects malformed knobs instead of ignoring them.
    let knobs = load_env().map_err(|e| e.to_string())?;
    let mut mode = knobs
        .scheduler
        .map(SchedulerPolicy::mode)
        .unwrap_or(Mode::Original);
    // FFTX_DECOMP picks the default decomposition; an explicit --decomp wins.
    let mut decomp = knobs.decomp.unwrap_or(DecompChoice::Slab);
    let mut engine = Engine::Real;
    let mut seed = 42u64;
    let mut verify = false;
    let mut timeline = false;
    let mut metrics = false;
    let mut paraver = None;
    let mut trace_out = None;
    let mut trace_dump = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--ecutwfc" => ecutwfc = Some(val("--ecutwfc")?.parse().map_err(|e| format!("{e}"))?),
            "--alat" => alat = Some(val("--alat")?.parse().map_err(|e| format!("{e}"))?),
            "--nbnd" => nbnd = Some(val("--nbnd")?.parse().map_err(|e| format!("{e}"))?),
            "--nr" => nr = val("--nr")?.parse().map_err(|e| format!("{e}"))?,
            "--ntg" => ntg = Some(val("--ntg")?.parse().map_err(|e| format!("{e}"))?),
            "--seed" => seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => {
                let m = val("--mode")?;
                mode = SchedulerPolicy::parse(&m)
                    .map(SchedulerPolicy::mode)
                    .ok_or_else(|| {
                        format!("unknown mode '{m}' (valid policies: {})", valid_policies())
                    })?;
            }
            "--decomp" => {
                let d = val("--decomp")?;
                decomp = DecompChoice::parse(&d).ok_or_else(|| {
                    format!("unknown decomposition '{d}' (valid: {})", valid_decomps())
                })?;
            }
            "--engine" => {
                engine = match val("--engine")?.as_str() {
                    "real" => Engine::Real,
                    "model" => Engine::Model,
                    e => return Err(format!("unknown engine '{e}'")),
                }
            }
            "--paraver" => paraver = Some(val("--paraver")?),
            "--trace-out" => trace_out = Some(val("--trace-out")?),
            "--trace-dump" => trace_dump = Some(val("--trace-dump")?),
            "--verify" => verify = true,
            "--timeline" => timeline = true,
            "--metrics" => metrics = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let model = engine == Engine::Model;
    let ntg = ntg.unwrap_or(if model { 8 } else { 2 });
    let mut config = FftxConfig {
        ecutwfc: ecutwfc.unwrap_or(if model { 80.0 } else { 6.0 }),
        alat: alat.unwrap_or(if model { 20.0 } else { 8.0 }),
        nbnd: nbnd.unwrap_or(if model { 128 } else { 2 * ntg }),
        nr,
        ntg,
        mode,
        decomp: fftxlib_repro::core::Decomposition::Slab,
        seed,
    };
    // `auto` compares the two decompositions on the calibrated network
    // model for this exact geometry; fixed choices pass through.
    config.decomp = resolve_decomp(decomp, &config);
    Ok(Args {
        config,
        engine,
        verify,
        timeline,
        metrics,
        paraver,
        trace_out,
        trace_dump,
    })
}

fn print_header(config: &FftxConfig, problem: &Problem, engine: Engine) {
    let grid = problem.grid();
    println!("fftx — FFTXlib reproduction miniapp");
    println!("  engine : {}", if engine == Engine::Real { "real (virtual MPI + actual FFTs)" } else { "modeled KNL node (68 cores @ 1.4 GHz)" });
    println!("  mode   : {}", config.mode.name());
    println!("  decomp : {}", config.decomp.name());
    println!("  cell   : cubic, alat {} bohr; ecutwfc {} Ry", config.alat, config.ecutwfc);
    println!("  grid   : {} x {} x {} ({} points)", grid.nr1, grid.nr2, grid.nr3, grid.volume());
    println!(
        "  sphere : {} plane waves on {} sticks",
        problem.layout.set.ngw,
        problem.layout.set.nst()
    );
    println!(
        "  layout : {} = {} x {} (R x T), {} bands, {} iterations",
        config.label(),
        config.nr,
        config.ntg,
        config.nbnd,
        config.iterations()
    );
}

fn print_trace_extras(trace: &Trace, runtime: f64, ideal: Option<f64>, args: &Args) {
    if let Some(path) = &args.trace_out {
        let bytes = EventLog::from_trace(trace).encode();
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("error writing {path}: {e}");
        } else {
            println!("[written] {path} ({} bytes, columnar event log)", bytes.len());
        }
    }
    if let Some(prefix) = &args.paraver {
        let bundle = export_paraver(trace);
        for (ext, content) in [("prv", &bundle.prv), ("pcf", &bundle.pcf), ("row", &bundle.row)] {
            let path = format!("{prefix}.{ext}");
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("error writing {path}: {e}");
            } else {
                println!("[written] {path}");
            }
        }
    }
    if args.metrics {
        println!("
Per-phase profile:");
        for (class, total, count, ipc) in phase_profile(trace) {
            println!(
                "  {:<9} {:>9.4}s over {:>5} bursts, IPC {:.2}",
                class.name(),
                total,
                count,
                ipc
            );
        }
        let f = intra_factors(trace, Some(runtime), ideal);
        println!("\nPOP efficiency factors:");
        println!("  parallel efficiency      {:6.2} %", f.parallel_efficiency * 100.0);
        println!("  -> load balance          {:6.2} %", f.load_balance * 100.0);
        println!("  -> communication eff.    {:6.2} %", f.comm_efficiency * 100.0);
        if let (Some(s), Some(t)) = (f.sync, f.transfer) {
            println!("     -> synchronization    {:6.2} %", s * 100.0);
            println!("     -> transfer           {:6.2} %", t * 100.0);
        }
        println!("  main-phase IPC           {:6.3}", trace.mean_ipc(StateClass::FftXy));
    }
    if args.timeline {
        println!("\nTimeline:");
        let tl = render_timeline(trace, &TimelineOptions { width: 100, ..Default::default() });
        for (i, line) in tl.lines().enumerate() {
            if i <= 18 || line.starts_with("legend") {
                println!("{line}");
            } else if i == 19 {
                println!("  ... (more lanes)");
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{USAGE}");
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    // --trace-dump is a standalone decoder: read, validate, summarize, exit.
    if let Some(path) = &args.trace_dump {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match EventLog::decode(&bytes)
            .and_then(|log| fftxlib_repro::trace::query::summary_csv(&log))
        {
            Ok(summary) => {
                print!("{summary}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error decoding {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    args.config.validate();
    let problem = Problem::new(args.config);
    print_header(&args.config, &problem, args.engine);

    match args.engine {
        Engine::Real => {
            let out = run(&problem);
            println!("\nFFT phase wall time: {:.4} s", out.fft_phase_s);
            if args.verify {
                let bands: Vec<Vec<_>> =
                    (0..args.config.nbnd).map(|b| problem.band(b)).collect();
                let expect = apply_vloc(&problem.layout.set, &problem.grid(), &problem.v, &bands);
                let worst = out
                    .bands
                    .iter()
                    .zip(&expect)
                    .map(|(a, b)| max_dist(a, b))
                    .fold(0.0_f64, f64::max);
                println!("verification vs serial reference: max deviation {worst:.3e}");
                if worst > 1e-9 {
                    eprintln!("VERIFICATION FAILED");
                    return ExitCode::FAILURE;
                }
                println!("verification OK");
            }
            print_trace_extras(&out.trace, out.fft_phase_s, None, &args);
        }
        Engine::Model => {
            if args.verify {
                eprintln!("note: --verify applies to the real engine only; ignoring");
            }
            let run = run_modeled(args.config);
            println!("\nsimulated FFT phase: {:.4} s (ideal network: {:.4} s)", run.runtime, run.ideal_runtime);
            print_trace_extras(&run.trace, run.runtime, Some(run.ideal_runtime), &args);
        }
    }
    ExitCode::SUCCESS
}
