//! Umbrella crate for the FFTXlib-on-KNL reproduction. Re-exports the public
//! surface of every workspace crate so examples and downstream users need a
//! single dependency.

pub use fftx_core as core;
pub use fftx_fault as fault;
pub use fftx_fft as fft;
pub use fftx_knlsim as knlsim;
pub use fftx_pw as pw;
pub use fftx_serve as serve;
pub use fftx_taskrt as taskrt;
pub use fftx_trace as trace;
pub use fftx_vmpi as vmpi;
