//! Whole-stack integration tests through the umbrella crate: real
//! distributed executions against the serial reference, trace recording,
//! and the analysis pipeline (POP metrics, timelines, histograms).

use fftxlib_repro::core::{run, FftxConfig, Mode, Problem};
use fftxlib_repro::fft::max_dist;
use fftxlib_repro::pw::apply_vloc;
use fftxlib_repro::trace::{
    intra_factors, render_timeline, timeline_csv, IpcHistogram, StateClass, TimelineOptions,
};

fn reference(problem: &Problem) -> Vec<Vec<fftxlib_repro::fft::Complex64>> {
    let bands: Vec<Vec<_>> = (0..problem.config.nbnd).map(|b| problem.band(b)).collect();
    apply_vloc(&problem.layout.set, &problem.grid(), &problem.v, &bands)
}

#[test]
fn all_modes_match_reference_through_public_api() {
    for mode in [Mode::Original, Mode::TaskPerStep, Mode::TaskPerFft] {
        let cfg = FftxConfig::small(2, 2, mode);
        let problem = Problem::new(cfg);
        let out = run(&problem);
        let expect = reference(&problem);
        for (b, (got, want)) in out.bands.iter().zip(&expect).enumerate() {
            assert!(
                max_dist(got, want) < 1e-9,
                "{mode:?} band {b}: {}",
                max_dist(got, want)
            );
        }
    }
}

#[test]
fn trace_feeds_the_analysis_pipeline() {
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let out = run(&problem);

    // POP metrics compute without NaNs and within sane ranges.
    let f = intra_factors(&out.trace, None, None);
    assert!(f.load_balance > 0.0 && f.load_balance <= 1.0 + 1e-9);
    assert!(f.comm_efficiency > 0.0 && f.comm_efficiency <= 1.0 + 1e-9);
    assert!(f.parallel_efficiency > 0.0);

    // Timeline renders one row per lane plus header/legend.
    let tl = render_timeline(&out.trace, &TimelineOptions::default());
    let rows = tl.lines().filter(|l| l.starts_with('r')).count();
    assert_eq!(rows, 4, "one row per rank lane:\n{tl}");

    // CSV export contains every record.
    let csv = timeline_csv(&out.trace);
    assert_eq!(
        csv.lines().count(),
        1 + out.trace.compute.len() + out.trace.comm.len() + out.trace.tasks.len()
    );

    // Histogram over the main phase is populated.
    let h = IpcHistogram::from_trace(&out.trace, Some(StateClass::FftXy), 20, 0.0, 2.0);
    let total: f64 = h.cells.iter().flatten().sum();
    assert!(total > 0.0);
}

#[test]
fn task_mode_records_task_lifecycles() {
    let cfg = FftxConfig::small(2, 2, Mode::TaskPerFft);
    let problem = Problem::new(cfg);
    let out = run(&problem);
    assert_eq!(out.trace.tasks.len(), cfg.nbnd * cfg.nr);
    for t in &out.trace.tasks {
        assert!(t.label.starts_with("fft-band-"));
        assert!(t.t_end >= t.t_start);
    }
}

#[test]
fn step_mode_chains_are_ordered_per_band() {
    let cfg = FftxConfig::small(1, 2, Mode::TaskPerStep);
    let problem = Problem::new(cfg);
    let out = run(&problem);
    // For each band, the 9 step tasks must execute in pipeline order.
    let order = [
        "pack", "fftz-inv", "scatter-fw", "fftxy-inv", "vofr", "fftxy-fw", "scatter-bw",
        "fftz-fw", "unpack",
    ];
    for b in 0..cfg.nbnd {
        let mut times = Vec::new();
        for step in order {
            let rec = out
                .trace
                .tasks
                .iter()
                .find(|t| t.label == format!("{step}[{b}]"))
                .unwrap_or_else(|| panic!("missing {step}[{b}]"));
            times.push((rec.t_start, rec.t_end));
        }
        for w in times.windows(2) {
            assert!(
                w[0].1 <= w[1].0 + 1e-9,
                "band {b}: step finished after successor started"
            );
        }
    }
}

#[test]
fn different_seeds_give_different_problems_same_layout() {
    let mut a = FftxConfig::small(2, 1, Mode::Original);
    let mut b = a;
    a.seed = 1;
    b.seed = 2;
    let pa = Problem::new(a);
    let pb = Problem::new(b);
    assert_ne!(pa.band(0), pb.band(0));
    assert_ne!(pa.v, pb.v);
    assert_eq!(pa.layout.set.ngw, pb.layout.set.ngw);
    assert_eq!(pa.layout.group_sticks, pb.layout.group_sticks);
}

#[test]
fn energy_is_bounded_by_potential_extrema() {
    // ||A psi|| <= max|V| * ||psi|| for the real-space-diagonal operator
    // restricted to the sphere (projection only removes energy).
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let out = run(&problem);
    let vmax = problem.v.iter().cloned().fold(0.0_f64, f64::max);
    for b in 0..cfg.nbnd {
        let before = fftxlib_repro::pw::band_norm2(&problem.band(b)).sqrt();
        let after = fftxlib_repro::pw::band_norm2(&out.bands[b]).sqrt();
        assert!(
            after <= vmax * before * (1.0 + 1e-9),
            "band {b}: ||out|| {after} > max|V| {vmax} * ||in|| {before}"
        );
    }
}
