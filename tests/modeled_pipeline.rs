//! Integration tests of the modeled (KNL-simulator) pipeline at small
//! scale: determinism, conservation, ideal-network ordering, and the
//! consistency of the three mode lowerings.

use fftxlib_repro::core::{build_programs, run_modeled, run_modeled_with, FftxConfig, Mode, Problem};
use fftxlib_repro::knlsim::{CommModel, ContentionModel, KnlConfig};
use fftxlib_repro::trace::{efficiency_factors, CommOp};

fn small(mode: Mode) -> FftxConfig {
    FftxConfig::small(2, 2, mode)
}

#[test]
fn modeled_runs_are_deterministic() {
    for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
        let a = run_modeled(small(mode));
        let b = run_modeled(small(mode));
        assert_eq!(a.runtime, b.runtime, "{mode:?}");
        assert_eq!(a.trace.compute.len(), b.trace.compute.len());
        for (x, y) in a.trace.compute.iter().zip(&b.trace.compute) {
            assert_eq!(x.t_start, y.t_start);
            assert_eq!(x.instructions, y.instructions);
        }
    }
}

#[test]
fn ideal_network_never_slower() {
    for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
        let run = run_modeled(small(mode));
        assert!(
            run.ideal_runtime <= run.runtime * (1.0 + 1e-12),
            "{mode:?}: ideal {} > real {}",
            run.ideal_runtime,
            run.runtime
        );
    }
}

#[test]
fn every_collective_in_the_plan_executes() {
    for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
        let cfg = small(mode);
        let problem = Problem::new(cfg);
        let programs = build_programs(&problem);
        let planned: usize = programs.iter().map(|p| p.collective_count()).sum();
        let run = run_modeled(cfg);
        assert_eq!(
            run.trace.comm.len(),
            planned,
            "{mode:?}: planned {planned} collective participations"
        );
    }
}

#[test]
fn original_plan_uses_both_comm_families() {
    let run = run_modeled(small(Mode::Original));
    let has_pack = run.trace.comm.iter().any(|r| r.op == CommOp::Alltoallv);
    let has_scatter = run.trace.comm.iter().any(|r| r.op == CommOp::Alltoall);
    assert!(has_pack && has_scatter);
}

#[test]
fn task_plans_use_band_tags() {
    let cfg = small(Mode::TaskPerFft);
    let problem = Problem::new(cfg);
    let programs = build_programs(&problem);
    // Every band appears as a task with its own priority.
    for p in &programs {
        let prios: Vec<u64> = p.tasks.iter().map(|t| t.priority).collect();
        assert_eq!(prios, (0..cfg.nbnd as u64).collect::<Vec<_>>());
    }
}

#[test]
fn uncontended_node_is_a_lower_bound() {
    let knl = KnlConfig::paper();
    let comm = CommModel::paper();
    let cfg = small(Mode::Original);
    let contended = run_modeled_with(cfg, &knl, &ContentionModel::paper(), &comm);
    let free = run_modeled_with(cfg, &knl, &ContentionModel::uncontended(), &comm);
    assert!(free.runtime <= contended.runtime * (1.0 + 1e-12));
}

#[test]
fn efficiency_factors_of_modeled_runs_are_sane() {
    let a = run_modeled(small(Mode::Original));
    let f = efficiency_factors(&a.trace, &a.trace, Some(a.runtime), Some(a.ideal_runtime));
    // Self-comparison: scalabilities are exactly 1.
    assert!((f.scal.computation - 1.0).abs() < 1e-12);
    assert!((f.scal.ipc - 1.0).abs() < 1e-12);
    assert!((f.scal.instructions - 1.0).abs() < 1e-12);
    assert!(f.intra.load_balance > 0.5 && f.intra.load_balance <= 1.0 + 1e-9);
    let transfer = f.intra.transfer.expect("ideal runtime given");
    assert!(transfer > 0.0 && transfer <= 1.0 + 1e-9);
}

#[test]
fn more_lanes_do_not_increase_total_flops() {
    // Work conservation across configurations: total planned flops is the
    // same no matter how many ranks split it.
    let mut c2 = FftxConfig::small(2, 2, Mode::Original);
    c2.nbnd = 4;
    let mut c4 = FftxConfig::small(4, 1, Mode::Original);
    c4.nbnd = 4;
    let f2 = {
        let p = Problem::new(c2);
        build_programs(&p).iter().map(|r| r.total_flops()).sum::<f64>()
    };
    let f4 = {
        let p = Problem::new(c4);
        build_programs(&p).iter().map(|r| r.total_flops()).sum::<f64>()
    };
    // Identical FFT work; bookkeeping (prep/copy) differs slightly with the
    // layout, so allow a modest band.
    assert!(
        (f2 / f4 - 1.0).abs() < 0.30,
        "total flops diverge: {f2} vs {f4}"
    );
}
