//! The shared bench harness: one seed, one `--check` semantics, one
//! `BENCH_<name>.json` schema.
//!
//! Every bench bin builds a [`Harness`], records its headline numbers as
//! named metrics, declares pass/fail **gates** whose thresholds are stored
//! in the emitted artifact itself, declares its CSV artifacts with an
//! explicit per-artifact [`CheckKind`], and exits through [`Harness::finish`].
//! `finish` emits `results/BENCH_<bench>.json` (schema version
//! [`SCHEMA_VERSION`]) and returns the process exit code.
//!
//! The JSON artifact is deliberately line-oriented and fully deterministic
//! for non-volatile benches, so `--check` byte-diffs it like any CSV. For
//! wall-clock benches (`volatile: true`) the values change run to run and
//! `--check` verifies the *schema* instead: same metric keys, same gates,
//! and every committed gate still passing.

use crate::{report_checks, write_artifact, write_artifact_volatile, ShapeCheck};
use std::fmt::Write as _;

/// The pinned experiment seed every bench runs at (the paper's date).
pub const SEED: u64 = 20170814;

/// Version tag of the `BENCH_*.json` schema; the `trajectory` bin refuses
/// artifacts from a different schema generation.
pub const SCHEMA_VERSION: u64 = 1;

/// How `--check` compares a regenerated artifact against the committed one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// Fully deterministic: byte-for-byte identity.
    Byte,
    /// Wall-clock-dependent values: structure only (header columns and row
    /// count for CSVs; metric/gate schema for BENCH JSONs).
    Structure,
}

/// One artifact declaration: name under `results/`, rendered content, and
/// how `--check` treats it.
pub struct Artifact<'a> {
    /// File name under the results directory.
    pub name: &'a str,
    /// Rendered content.
    pub content: &'a str,
    /// Byte-exact or structure-only freshness.
    pub kind: CheckKind,
}

/// Writes (or, under `--check`, verifies) a batch of declared artifacts.
/// This is the one place the byte-vs-structure decision is dispatched, so
/// bins state the intent per artifact instead of hand-rolling diffs.
pub fn check_artifacts(artifacts: &[Artifact]) {
    for a in artifacts {
        match a.kind {
            CheckKind::Byte => write_artifact(a.name, a.content),
            CheckKind::Structure => write_artifact_volatile(a.name, a.content),
        }
    }
}

/// A typed metric value with explicit rendering, so the JSON artifact is
/// byte-stable across runs and platforms.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Unsigned counter.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Float rendered with a fixed number of decimals.
    Float {
        /// The value.
        v: f64,
        /// Decimal places in the artifact.
        prec: usize,
    },
    /// Boolean.
    Bool(bool),
    /// String (labels, mode names).
    Str(String),
    /// Array of floats, fixed decimals.
    Floats {
        /// The values.
        v: Vec<f64>,
        /// Decimal places in the artifact.
        prec: usize,
    },
    /// Array of unsigned integers.
    UInts(Vec<u64>),
}

impl MetricValue {
    fn render(&self) -> String {
        fn f(v: f64, prec: usize) -> String {
            if v.is_finite() {
                format!("{v:.prec$}")
            } else {
                // JSON has no NaN/inf; encode as null.
                String::from("null")
            }
        }
        match self {
            MetricValue::UInt(v) => format!("{v}"),
            MetricValue::Int(v) => format!("{v}"),
            MetricValue::Float { v, prec } => f(*v, *prec),
            MetricValue::Bool(v) => format!("{v}"),
            MetricValue::Str(v) => format!("\"{}\"", escape_json(v)),
            MetricValue::Floats { v, prec } => {
                let items: Vec<String> = v.iter().map(|x| f(*x, *prec)).collect();
                format!("[{}]", items.join(", "))
            }
            MetricValue::UInts(v) => {
                let items: Vec<String> = v.iter().map(|x| format!("{x}")).collect();
                format!("[{}]", items.join(", "))
            }
        }
    }

    /// The value as a float for gate evaluation (booleans are 0/1); `None`
    /// for strings and arrays, which cannot gate.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::UInt(v) => Some(*v as f64),
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::Float { v, .. } => Some(*v),
            MetricValue::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
            MetricValue::Str(_) | MetricValue::Floats { .. } | MetricValue::UInts { .. } => None,
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Comparison operator of a gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateOp {
    /// value ≥ threshold.
    Ge,
    /// value ≤ threshold.
    Le,
    /// value == threshold (exact; used for booleans and counts).
    Eq,
}

impl GateOp {
    /// The artifact's operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            GateOp::Ge => ">=",
            GateOp::Le => "<=",
            GateOp::Eq => "==",
        }
    }

    /// Evaluates `value op threshold`; NaN fails every gate.
    pub fn eval(self, value: f64, threshold: f64) -> bool {
        match self {
            GateOp::Ge => value >= threshold,
            GateOp::Le => value <= threshold,
            GateOp::Eq => value == threshold,
        }
    }
}

/// One regression gate: the threshold travels with the artifact, so the
/// `trajectory` aggregator re-evaluates it without knowing the bin.
pub struct Gate {
    /// Human-readable claim under test.
    pub name: String,
    /// Metric key the gate reads.
    pub metric: String,
    /// Comparison.
    pub op: GateOp,
    /// Pass threshold.
    pub threshold: f64,
    /// The metric's value at emit time.
    pub value: f64,
    /// Did it pass?
    pub pass: bool,
}

/// Builder for one bench run's artifact set and exit status.
pub struct Harness {
    bench: String,
    volatile: bool,
    metrics: Vec<(String, MetricValue)>,
    gates: Vec<Gate>,
    checks: Vec<ShapeCheck>,
}

impl Harness {
    /// A deterministic bench: its `BENCH_<name>.json` byte-diffs under
    /// `--check`.
    pub fn new(bench: &str) -> Self {
        Harness {
            bench: bench.to_string(),
            volatile: false,
            metrics: Vec::new(),
            gates: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// A wall-clock bench: values vary run to run, so `--check` verifies
    /// the JSON's schema (keys, gates, committed gates passing) instead of
    /// bytes.
    pub fn new_volatile(bench: &str) -> Self {
        let mut h = Harness::new(bench);
        h.volatile = true;
        h
    }

    /// Records a metric; insertion order is emission order.
    pub fn metric(&mut self, key: &str, value: MetricValue) -> &mut Self {
        self.metrics.push((key.to_string(), value));
        self
    }

    /// Unsigned counter metric.
    pub fn metric_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.metric(key, MetricValue::UInt(v))
    }

    /// Float metric with `prec` decimals in the artifact.
    pub fn metric_f64(&mut self, key: &str, v: f64, prec: usize) -> &mut Self {
        self.metric(key, MetricValue::Float { v, prec })
    }

    /// Boolean metric.
    pub fn metric_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.metric(key, MetricValue::Bool(v))
    }

    /// String metric.
    pub fn metric_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.metric(key, MetricValue::Str(v.to_string()))
    }

    /// The recorded value of `key`, if any.
    pub fn metric_value(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Declares a gate on a previously recorded metric and mirrors it into
    /// the printed PASS/FAIL checks. A missing or non-numeric metric fails
    /// the gate (value NaN) rather than panicking.
    pub fn gate(&mut self, name: &str, metric: &str, op: GateOp, threshold: f64) -> &mut Self {
        let value = self
            .metric_value(metric)
            .and_then(MetricValue::as_f64)
            .unwrap_or(f64::NAN);
        let pass = op.eval(value, threshold);
        self.checks.push(ShapeCheck::new(
            name,
            pass,
            format!("{metric} = {value} (gate: {} {threshold})", op.symbol()),
        ));
        self.gates.push(Gate {
            name: name.to_string(),
            metric: metric.to_string(),
            op,
            threshold,
            value,
            pass,
        });
        self
    }

    /// Adds a plain shape check (printed, affects exit code, not exported
    /// as a gate) — for claims whose evidence isn't a single metric.
    pub fn check(&mut self, name: impl Into<String>, ok: bool, detail: impl Into<String>) -> &mut Self {
        self.checks.push(ShapeCheck::new(name, ok, detail));
        self
    }

    /// Declares one artifact (see [`check_artifacts`]).
    pub fn artifact(&self, name: &str, content: &str, kind: CheckKind) {
        check_artifacts(&[Artifact {
            name,
            content,
            kind,
        }]);
    }

    /// Renders the `BENCH_<name>.json` content.
    pub fn render_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(json, "  \"bench\": \"{}\",", escape_json(&self.bench));
        let _ = writeln!(json, "  \"seed\": {SEED},");
        let _ = writeln!(json, "  \"volatile\": {},", self.volatile);
        json.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            let _ = writeln!(json, "    \"{}\": {}{comma}", escape_json(k), v.render());
        }
        json.push_str("  },\n");
        json.push_str("  \"gates\": [\n");
        for (i, g) in self.gates.iter().enumerate() {
            let comma = if i + 1 == self.gates.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"metric\": \"{}\", \"op\": \"{}\", \
                 \"threshold\": {}, \"value\": {}, \"pass\": {}}}{comma}",
                escape_json(&g.name),
                escape_json(&g.metric),
                g.op.symbol(),
                render_gate_num(g.threshold),
                render_gate_num(g.value),
                g.pass,
            );
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Emits `BENCH_<name>.json`, prints all checks, and returns the
    /// process exit code (0 iff every check passed and, under `--check`,
    /// no artifact was stale).
    pub fn finish(self) -> i32 {
        let name = format!("BENCH_{}.json", self.bench);
        let kind = if self.volatile {
            CheckKind::Structure
        } else {
            CheckKind::Byte
        };
        self.artifact(&name, &self.render_json(), kind);
        report_checks(&self.checks)
    }
}

/// Gate thresholds/values use the shortest round-trip float repr (Rust's
/// `{}`), which is deterministic; non-finite values encode as null.
fn render_gate_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_deterministically() {
        let mut h = Harness::new("demo");
        h.metric_u64("count", 42)
            .metric_f64("ratio", 0.123456789, 4)
            .metric_bool("ok", true)
            .metric_str("mode", "a\"b")
            .metric("arr", MetricValue::Floats { v: vec![1.0, 2.5], prec: 1 })
            .metric("nan", MetricValue::Float { v: f64::NAN, prec: 3 });
        let json = h.render_json();
        assert!(json.contains("\"count\": 42,"));
        assert!(json.contains("\"ratio\": 0.1235,"));
        assert!(json.contains("\"ok\": true,"));
        assert!(json.contains("\"mode\": \"a\\\"b\","));
        assert!(json.contains("\"arr\": [1.0, 2.5],"));
        assert!(json.contains("\"nan\": null\n"));
        // Two renders are byte-identical.
        assert_eq!(json, h.render_json());
    }

    #[test]
    fn gates_read_metrics_and_set_exit_status() {
        let mut h = Harness::new("demo");
        h.metric_f64("eff", 0.93, 4);
        h.gate("efficiency holds", "eff", GateOp::Ge, 0.9);
        h.gate("missing metric fails", "nope", GateOp::Ge, 0.0);
        assert!(h.gates[0].pass);
        assert!(!h.gates[1].pass);
        let json = h.render_json();
        assert!(json.contains("\"op\": \">=\", \"threshold\": 0.9, \"value\": 0.93, \"pass\": true"));
        assert!(json.contains("\"value\": null, \"pass\": false"));
    }

    #[test]
    fn gate_ops() {
        assert!(GateOp::Ge.eval(1.0, 1.0));
        assert!(GateOp::Le.eval(0.5, 1.0));
        assert!(GateOp::Eq.eval(1.0, 1.0));
        assert!(!GateOp::Eq.eval(1.0, 0.0));
        assert!(!GateOp::Ge.eval(f64::NAN, 0.0));
    }

    #[test]
    fn bool_metrics_gate_as_zero_one() {
        let mut h = Harness::new("demo");
        h.metric_bool("conserved", true);
        h.gate("conservation", "conserved", GateOp::Eq, 1.0);
        assert!(h.gates[0].pass);
    }
}
