//! Shared helpers for the benchmark harness: output locations, CSV writing,
//! the paper's reference numbers, and the standard sweep runner used by the
//! figure/table binaries.

use fftx_core::{run_modeled, FftxConfig, Mode, ModeledRun};
use fftx_trace::{efficiency_factors, EfficiencyFactors};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

pub mod harness;
pub mod json;

pub use harness::{check_artifacts, Artifact, CheckKind, Gate, GateOp, Harness, MetricValue};

/// Directory the harness writes CSV artefacts into (`./results`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("FFTX_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// True when the bin was invoked with `--check`: artifacts are diffed
/// against the committed files instead of overwritten, so CI can detect
/// stale committed CSVs (code changed, artifacts didn't get regenerated).
pub fn check_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--check"))
}

fn stale_log() -> &'static Mutex<Vec<String>> {
    static STALE: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    STALE.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_stale(msg: String) {
    println!("[STALE] {msg}");
    stale_log().lock().expect("stale log").push(msg);
}

/// Writes `content` to `results/<name>` and reports the path on stdout.
/// Under `--check`, compares byte-for-byte against the committed file
/// instead; a mismatch is reported through [`report_checks`].
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    if check_mode() {
        match std::fs::read_to_string(&path) {
            Ok(existing) if existing == content => {
                println!("[check-ok] {}", path.display());
            }
            Ok(_) => record_stale(format!(
                "{}: committed artifact differs from regenerated content",
                path.display()
            )),
            Err(e) => record_stale(format!("{}: unreadable ({e})", path.display())),
        }
        return;
    }
    std::fs::write(&path, content).expect("write artifact");
    println!("[written] {}", path.display());
}

/// [`write_artifact`] for wall-clock-dependent artifacts (measured
/// speedups, recovery timings, histogram bin edges): the values change run
/// to run, so `--check` verifies the *structure* only — same number of
/// header columns and same row count as the committed file.
pub fn write_artifact_volatile(name: &str, content: &str) {
    let path = results_dir().join(name);
    if check_mode() {
        match std::fs::read_to_string(&path) {
            Ok(existing) => {
                let cols = |s: &str| s.lines().next().map(|h| h.split(',').count());
                let same_header = cols(&existing) == cols(content);
                let same_rows = existing.lines().count() == content.lines().count();
                if same_header && same_rows {
                    println!("[check-ok] {} (structure)", path.display());
                } else {
                    record_stale(format!(
                        "{}: committed artifact structure differs (columns match: \
                         {same_header}, rows {} vs {})",
                        path.display(),
                        existing.lines().count(),
                        content.lines().count()
                    ));
                }
            }
            Err(e) => record_stale(format!("{}: unreadable ({e})", path.display())),
        }
        return;
    }
    std::fs::write(&path, content).expect("write artifact");
    println!("[written] {}", path.display());
}

/// One sweep point: the modeled run and its efficiency factors relative to
/// the sweep's 1×8 reference.
pub struct SweepPoint {
    /// R of the R×8 configuration.
    pub nr: usize,
    /// Paper-style label ("8 x 8").
    pub label: String,
    /// The modeled run (runtime, ideal runtime, trace).
    pub run: ModeledRun,
    /// POP factors vs the sweep reference.
    pub factors: EfficiencyFactors,
}

/// Runs the standard R×8 sweep of the paper for one mode on the calibrated
/// KNL model. The first entry (smallest R) is the scalability reference.
pub fn sweep(mode: Mode, nrs: &[usize]) -> Vec<SweepPoint> {
    assert!(!nrs.is_empty());
    let mut reference = None;
    let mut out = Vec::with_capacity(nrs.len());
    for &nr in nrs {
        let cfg = FftxConfig::paper(nr, mode);
        let run = run_modeled(cfg);
        if reference.is_none() {
            reference = Some(run.trace.clone());
        }
        let factors = efficiency_factors(
            reference.as_ref().expect("reference set"),
            &run.trace,
            Some(run.runtime),
            Some(run.ideal_runtime),
        );
        out.push(SweepPoint {
            nr,
            label: cfg.label(),
            run,
            factors,
        });
    }
    out
}

/// One column of the paper's Tables I/II for side-by-side comparison.
pub struct PaperColumn {
    /// Configuration label.
    pub label: &'static str,
    /// Parallel efficiency.
    pub parallel: f64,
    /// Load balance.
    pub load_balance: f64,
    /// Communication efficiency.
    pub comm: f64,
    /// Synchronisation efficiency.
    pub sync: f64,
    /// Transfer efficiency.
    pub transfer: f64,
    /// Computation scalability.
    pub comp: f64,
    /// IPC scalability.
    pub ipc: f64,
    /// Instruction scalability.
    pub ins: f64,
    /// Global efficiency.
    pub global: f64,
}

/// Table I of the paper (original version).
pub const PAPER_TABLE1: [PaperColumn; 5] = [
    PaperColumn { label: "1 x 8", parallel: 0.9575, load_balance: 0.9731, comm: 0.9840, sync: 0.9956, transfer: 0.9883, comp: 1.0000, ipc: 1.0000, ins: 1.0000, global: 0.9575 },
    PaperColumn { label: "2 x 8", parallel: 0.9121, load_balance: 0.9504, comm: 0.9597, sync: 0.9888, transfer: 0.9706, comp: 0.9187, ipc: 0.9278, ins: 0.9978, global: 0.8380 },
    PaperColumn { label: "4 x 8", parallel: 0.9270, load_balance: 0.9831, comm: 0.9429, sync: 0.9809, transfer: 0.9613, comp: 0.7809, ipc: 0.7868, ins: 0.9962, global: 0.7239 },
    PaperColumn { label: "8 x 8", parallel: 0.9097, load_balance: 0.9818, comm: 0.9266, sync: 0.9776, transfer: 0.9478, comp: 0.5474, ipc: 0.5628, ins: 0.9942, global: 0.4979 },
    PaperColumn { label: "16 x 8", parallel: 0.8615, load_balance: 0.9691, comm: 0.8890, sync: 0.9581, transfer: 0.9278, comp: 0.2732, ipc: 0.2826, ins: 0.9888, global: 0.2354 },
];

/// Table II of the paper (OmpSs version).
pub const PAPER_TABLE2: [PaperColumn; 5] = [
    PaperColumn { label: "1 x 8", parallel: 0.9913, load_balance: 0.9986, comm: 0.9926, sync: 1.0000, transfer: 0.9926, comp: 1.0000, ipc: 1.0000, ins: 1.0000, global: 0.9913 },
    PaperColumn { label: "2 x 8", parallel: 0.9553, load_balance: 0.9825, comm: 0.9723, sync: 0.9984, transfer: 0.9739, comp: 0.9256, ipc: 0.9404, ins: 0.9946, global: 0.8842 },
    PaperColumn { label: "4 x 8", parallel: 0.9167, load_balance: 0.9552, comm: 0.9597, sync: 0.9985, transfer: 0.9611, comp: 0.8116, ipc: 0.8405, ins: 0.9855, global: 0.7440 },
    PaperColumn { label: "8 x 8", parallel: 0.8333, load_balance: 0.9181, comm: 0.9077, sync: 0.9752, transfer: 0.9307, comp: 0.6136, ipc: 0.6614, ins: 0.9719, global: 0.5113 },
    PaperColumn { label: "16 x 8", parallel: 0.7047, load_balance: 0.9032, comm: 0.7803, sync: 0.9217, transfer: 0.8466, comp: 0.3729, ipc: 0.4257, ins: 0.9118, global: 0.2628 },
];

/// Renders a side-by-side (model vs paper) comparison for the headline
/// factor columns.
pub fn render_comparison(title: &str, points: &[SweepPoint], paper: &[PaperColumn]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<8} {:>19} {:>19} {:>19} {:>19}",
        "config", "ParEff model/paper", "CommEff model/paper", "IPCscal model/paper", "Global model/paper"
    );
    for p in points {
        let ref_col = paper.iter().find(|c| c.label == p.label);
        let fmt = |model: f64, paper: Option<f64>| match paper {
            Some(v) => format!("{:>5.1}% / {:>5.1}%", model * 100.0, v * 100.0),
            None => format!("{:>5.1}% /     -", model * 100.0),
        };
        let _ = writeln!(
            out,
            "{:<8} {:>19} {:>19} {:>19} {:>19}",
            p.label,
            fmt(p.factors.intra.parallel_efficiency, ref_col.map(|c| c.parallel)),
            fmt(p.factors.intra.comm_efficiency, ref_col.map(|c| c.comm)),
            fmt(p.factors.scal.ipc, ref_col.map(|c| c.ipc)),
            fmt(p.factors.global, ref_col.map(|c| c.global)),
        );
    }
    out
}

/// CSV of a sweep's factor set.
pub fn sweep_csv(points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "config,runtime_s,ideal_runtime_s,parallel_eff,load_balance,comm_eff,sync_eff,transfer_eff,comp_scal,ipc_scal,ins_scal,global_eff,main_ipc\n",
    );
    for p in points {
        let f = &p.factors;
        let _ = writeln!(
            out,
            "{},{:.6},{:.6},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.label,
            p.run.runtime,
            p.run.ideal_runtime,
            f.intra.parallel_efficiency,
            f.intra.load_balance,
            f.intra.comm_efficiency,
            f.intra.sync.unwrap_or(f64::NAN),
            f.intra.transfer.unwrap_or(f64::NAN),
            f.scal.computation,
            f.scal.ipc,
            f.scal.instructions,
            f.global,
            p.run.trace.mean_ipc(fftx_trace::StateClass::FftXy),
        );
    }
    out
}

/// A shape criterion: a named boolean check (a claim of the paper) printed
/// as PASS/FAIL. Bins exit non-zero when a check fails, so calibration
/// regressions are caught mechanically.
pub struct ShapeCheck {
    /// The paper claim under test.
    pub name: String,
    /// Did the model reproduce it?
    pub ok: bool,
    /// Supporting numbers.
    pub detail: String,
}

impl ShapeCheck {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ok: bool, detail: impl Into<String>) -> Self {
        ShapeCheck {
            name: name.into(),
            ok,
            detail: detail.into(),
        }
    }
}

/// Prints the checks and returns the process exit code (0 iff all passed).
/// Stale artifacts detected by a `--check` run fail the bin here too.
pub fn report_checks(checks: &[ShapeCheck]) -> i32 {
    let mut code = 0;
    for c in checks {
        println!(
            "[{}] {} — {}",
            if c.ok { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        );
        if !c.ok {
            code = 1;
        }
    }
    for msg in stale_log().lock().expect("stale log").drain(..) {
        println!("[FAIL] committed artifact up to date — {msg}");
        code = 1;
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_consistent() {
        for t in [&PAPER_TABLE1[..], &PAPER_TABLE2[..]] {
            for c in t {
                // ParEff = LB x Comm (paper rounds to 4 digits).
                assert!((c.parallel - c.load_balance * c.comm).abs() < 0.01, "{}", c.label);
                // Global = ParEff x CompScal.
                assert!((c.global - c.parallel * c.comp).abs() < 0.01, "{}", c.label);
                // CompScal ~ IPC x Ins (the paper's own columns carry a
                // frequency/measurement residual of up to ~3 points, e.g.
                // Table II 8x8: 0.6614 x 0.9719 = 0.643 vs 0.614).
                assert!((c.comp - c.ipc * c.ins).abs() < 0.035, "{}", c.label);
            }
        }
    }

    #[test]
    fn shape_check_exit_codes() {
        let ok = ShapeCheck::new("a", true, "d");
        let bad = ShapeCheck::new("b", false, "d");
        assert_eq!(report_checks(&[ok]), 0);
        assert_eq!(report_checks(&[ShapeCheck::new("a", true, ""), bad]), 1);
    }
}
