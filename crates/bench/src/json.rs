//! A minimal JSON reader for the `trajectory` aggregator — just enough to
//! load the `BENCH_*.json` artifacts the harness itself emits (objects,
//! arrays, strings, numbers, booleans, null). No external dependencies.

/// A parsed JSON value. Object keys keep file order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (the harness encodes non-finite floats this way).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the harness only emits values f64 round-trips.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in file order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in file order.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {}",
            c as char,
            *pos
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {s:?} at offset {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_output() {
        let mut h = crate::harness::Harness::new("demo");
        h.metric_u64("n", 3)
            .metric_f64("eff", 0.25, 4)
            .metric_bool("ok", true)
            .metric_str("label", "8 x 8");
        h.gate("eff high enough", "eff", crate::harness::GateOp::Ge, 0.2);
        let v = parse(&h.render_json()).expect("parse");
        assert_eq!(v.get("schema_version").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("demo"));
        assert_eq!(v.get("seed").and_then(Value::as_f64), Some(20170814.0));
        let metrics = v.get("metrics").expect("metrics");
        assert_eq!(metrics.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(metrics.get("eff").and_then(Value::as_f64), Some(0.25));
        assert_eq!(metrics.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(metrics.get("label").and_then(Value::as_str), Some("8 x 8"));
        let gates = v.get("gates").and_then(Value::as_arr).expect("gates");
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].get("pass").and_then(Value::as_bool), Some(true));
        assert_eq!(gates[0].get("threshold").and_then(Value::as_f64), Some(0.2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escapes_and_nesting() {
        let v = parse(r#"{"a": [null, {"b\"c": -1.5e2}], "d": "x\ny"}"#).expect("parse");
        let arr = v.get("a").and_then(Value::as_arr).expect("arr");
        assert_eq!(arr[0], Value::Null);
        assert_eq!(arr[1].get("b\"c").and_then(Value::as_f64), Some(-150.0));
        assert_eq!(v.get("d").and_then(Value::as_str), Some("x\ny"));
    }
}
