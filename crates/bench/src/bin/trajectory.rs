//! Trajectory gate: loads every committed `results/BENCH_*.json`, validates
//! the shared schema (schema_version, pinned seed, well-formed gates whose
//! recorded `pass` matches their own op/threshold/value), and fails if any
//! bench's gates regressed. This is what the CI `trajectory` job runs after
//! the per-bench `--check` passes; it is the single place that knows what
//! "the whole benchmark suite is healthy" means.

use fftx_bench::harness::{SCHEMA_VERSION, SEED};
use fftx_bench::{json, results_dir, CheckKind, GateOp, Harness};

/// Every bench that must have a BENCH_*.json on disk. A missing file is a
/// freshness failure — it means a bin was added or renamed without
/// regenerating artifacts.
const EXPECTED: &[&str] = &[
    "ablation_contention",
    "ablation_grain",
    "ablation_ntg",
    "capacity",
    "decomp",
    "fft",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "future_overlap",
    "integrity",
    "recovery",
    "recovery_overhead",
    "refactor",
    "resilience",
    "serve",
    "stages",
    "table1",
    "table2",
];

struct Report {
    bench: String,
    volatile: bool,
    metrics: usize,
    gates: usize,
    gates_passed: usize,
    schema_ok: bool,
    problems: Vec<String>,
}

fn eval_gate(op: &str, value: f64, threshold: f64) -> Option<bool> {
    let ok = match op {
        ">=" => value >= threshold,
        "<=" => value <= threshold,
        "==" => value == threshold,
        _ => return None,
    };
    Some(ok && value.is_finite())
}

fn validate(name: &str, text: &str) -> Report {
    let mut r = Report {
        bench: name.to_string(),
        volatile: false,
        metrics: 0,
        gates: 0,
        gates_passed: 0,
        schema_ok: true,
        problems: Vec::new(),
    };
    let fail = |r: &mut Report, msg: String| {
        r.schema_ok = false;
        r.problems.push(msg);
    };
    let v = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            fail(&mut r, format!("unparseable JSON: {e}"));
            return r;
        }
    };
    match v.get("schema_version").and_then(|x| x.as_f64()) {
        Some(s) if s == SCHEMA_VERSION as f64 => {}
        other => fail(&mut r, format!("schema_version {other:?} != {SCHEMA_VERSION}")),
    }
    match v.get("bench").and_then(|x| x.as_str()) {
        Some(b) if b == name => {}
        other => fail(&mut r, format!("bench field {other:?} != file name {name}")),
    }
    match v.get("seed").and_then(|x| x.as_f64()) {
        Some(s) if s == SEED as f64 => {}
        other => fail(&mut r, format!("seed {other:?} != pinned {SEED}")),
    }
    match v.get("volatile").and_then(|x| x.as_bool()) {
        Some(b) => r.volatile = b,
        None => fail(&mut r, "missing boolean `volatile`".into()),
    }
    match v.get("metrics").and_then(|x| x.as_obj()) {
        Some(m) => r.metrics = m.len(),
        None => fail(&mut r, "missing object `metrics`".into()),
    }
    let gates = match v.get("gates").and_then(|x| x.as_arr()) {
        Some(g) => g,
        None => {
            fail(&mut r, "missing array `gates`".into());
            return r;
        }
    };
    r.gates = gates.len();
    if gates.is_empty() {
        fail(&mut r, "bench declares no gates".into());
    }
    for (i, g) in gates.iter().enumerate() {
        let gname = g
            .get("name")
            .and_then(|x| x.as_str())
            .unwrap_or("<unnamed>")
            .to_string();
        let pass = g.get("pass").and_then(|x| x.as_bool());
        let op = g.get("op").and_then(|x| x.as_str());
        let threshold = g.get("threshold").and_then(|x| x.as_f64());
        // `value` is null when the metric was missing/non-numeric.
        let value = g.get("value").and_then(|x| x.as_f64());
        let (Some(pass), Some(op), Some(threshold)) = (pass, op, threshold) else {
            fail(&mut r, format!("gate {i} ({gname}) missing pass/op/threshold"));
            continue;
        };
        let recomputed = value.and_then(|v| eval_gate(op, v, threshold));
        match recomputed {
            Some(want) if want != pass => fail(
                &mut r,
                format!("gate {i} ({gname}) pass={pass} inconsistent with {value:?} {op} {threshold}"),
            ),
            None if pass => fail(
                &mut r,
                format!("gate {i} ({gname}) claims pass with null value or bad op {op:?}"),
            ),
            _ => {}
        }
        if pass {
            r.gates_passed += 1;
        } else {
            r.problems.push(format!("gate {i} ({gname}) FAILED"));
        }
    }
    r
}

fn main() {
    println!("=== Trajectory: validating every BENCH_*.json ===\n");
    let dir = results_dir();
    let mut reports: Vec<Report> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(|e| e.ok()).collect::<Vec<_>>())
        .unwrap_or_default();
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let fname = e.file_name().to_string_lossy().into_owned();
        let Some(bench) = fname
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        if bench == "trajectory" {
            continue; // this bin's own output is not its own input
        }
        let text = std::fs::read_to_string(e.path()).unwrap_or_default();
        seen.push(bench.to_string());
        reports.push(validate(bench, &text));
    }

    let missing: Vec<&str> = EXPECTED
        .iter()
        .copied()
        .filter(|b| !seen.iter().any(|s| s == b))
        .collect();
    let unexpected: Vec<&String> = seen.iter().filter(|s| !EXPECTED.contains(&s.as_str())).collect();

    let mut csv = String::from("bench,volatile,schema_ok,metrics,gates,gates_passed\n");
    for r in &reports {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.bench, r.volatile as u8, r.schema_ok as u8, r.metrics, r.gates, r.gates_passed
        ));
        let status = if r.schema_ok && r.gates_passed == r.gates {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{:<22} {status:<4} {} metrics, {}/{} gates{}",
            r.bench,
            r.metrics,
            r.gates_passed,
            r.gates,
            if r.volatile { "  (volatile)" } else { "" }
        );
        for p in &r.problems {
            println!("    !! {p}");
        }
    }
    if !missing.is_empty() {
        println!("\nmissing BENCH files for: {missing:?}");
    }
    if !unexpected.is_empty() {
        println!("unexpected BENCH files: {unexpected:?} (add to trajectory's EXPECTED list)");
    }
    println!();

    let total_gates: usize = reports.iter().map(|r| r.gates).sum();
    let total_passed: usize = reports.iter().map(|r| r.gates_passed).sum();
    let all_schema = reports.iter().all(|r| r.schema_ok);
    // Volatile: ablation_grain adds speedup gates only on multi-core
    // hosts, so per-bench counts are host-dependent — structure-check.
    let mut h = Harness::new_volatile("trajectory");
    h.artifact("trajectory.csv", &csv, CheckKind::Structure);
    h.metric_u64("benches", reports.len() as u64)
        .metric_u64("total_gates", total_gates as u64)
        .metric_u64("total_gates_passed", total_passed as u64)
        .metric_u64("missing_benches", missing.len() as u64)
        .metric_u64("unexpected_benches", unexpected.len() as u64)
        .metric_bool("all_schemas_valid", all_schema && !reports.is_empty())
        .metric_bool("all_gates_pass", total_gates > 0 && total_passed == total_gates);
    h.gate(
        "every expected bench has a BENCH json on disk",
        "missing_benches",
        GateOp::Eq,
        0.0,
    )
    .gate(
        "no stray BENCH json outside the expected set",
        "unexpected_benches",
        GateOp::Eq,
        0.0,
    )
    .gate(
        "every BENCH json is schema-valid at the pinned seed",
        "all_schemas_valid",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "every recorded gate passes",
        "all_gates_pass",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
