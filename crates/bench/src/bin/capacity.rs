//! `capacity` — the fleet-capacity experiment: elastic vs static fleets
//! under a rate sweep, the offline Monte-Carlo planner's accuracy against
//! live runs, and the planner's parallel-sweep speedup.
//!
//! The serving runs are virtual-time and seeded, so the sweep side is
//! deterministic; the planner-speedup side is wall-clock and therefore the
//! whole bench is volatile (regenerated, not replayed, by CI):
//!
//! * **elasticity dominates static allocation** — at every offered rate,
//!   the autoscaled + stealing fleet (running the *planner's* recommended
//!   policy envelope, with the rest of the pool as spares) has goodput at
//!   least the best static fleet's: dead static shards are gone for good,
//!   while the elastic fleet backfills deaths from its inactive pool;
//! * **zero loss under chaos + node death** — every run in the sweep
//!   passes the journal conservation audit;
//! * **planner accuracy** — the planner's predicted goodput for its
//!   recommended fleet is within 10% of a live run at that size;
//! * **parallel sweep speedup** — the k × N Monte-Carlo sweep at 8
//!   workers beats 1 worker by ≥ 2× (multi-core hosts only).

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_serve::{
    generate, plan_capacity, run_fleet, AutoscaleConfig, FleetConfig, FleetFaults, FleetReport,
    LoadProfile, PlanConfig, ServeConfig, TrafficConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = fftx_bench::harness::SEED;
/// Fault seed for the sweep: node death + slowdown inside the horizon.
const FAULT_SEED: u64 = 3;
const POOL: usize = 4;

fn traffic(rate_hz: f64) -> TrafficConfig {
    TrafficConfig {
        seed: SEED,
        rate_hz,
        duration_s: 2.0,
        tenants: 4,
        profile: LoadProfile::Burst,
    }
}

fn faults() -> FleetFaults {
    FleetFaults {
        seed: FAULT_SEED,
        p_death: 0.6,
        p_slow: 0.4,
        slow_max: 8.0,
        ..Default::default()
    }
}

fn base_cfg(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        serve: ServeConfig {
            seed: SEED,
            ..Default::default()
        },
        horizon_s: 2.0,
        faults: faults(),
        ..Default::default()
    }
}

fn conserved(r: &FleetReport, offered: usize) -> bool {
    r.conservation.open.is_empty()
        && r.conservation.accepted == r.conservation.completed
        && r.offered() == offered
}

fn main() {
    println!("=== fftx-serve fleet capacity: elastic vs static, planner accuracy ===\n");
    let mut h = Harness::new_volatile("capacity");

    // --- Phase 1: the rate sweep — static fleets k = 1..=POOL against an
    // autoscaled + stealing fleet on the same pool, same faults. ---
    let mut csv = String::from("rate_hz,fleet,shards,goodput_hz,shed_rate,conserved,scale_up,scale_down,steals\n");
    let mut min_ratio = f64::INFINITY;
    let mut all_conserved = true;
    for rate in [60.0, 120.0, 200.0] {
        let requests = generate(&traffic(rate));
        let mut best_static: f64 = 0.0;
        for k in 1..=POOL {
            let cfg = base_cfg(k);
            let r = run_fleet(&requests, &cfg).expect("static fleet");
            let ok = conserved(&r, requests.len());
            all_conserved &= ok;
            best_static = best_static.max(r.goodput_hz());
            writeln!(
                csv,
                "{rate},static,{k},{:.4},{:.4},{ok},0,0,0",
                r.goodput_hz(),
                r.shed_rate()
            )
            .unwrap();
        }
        // The closed loop: plan the rate offline, then run the elastic
        // fleet at the planner's recommendation with its policy envelope.
        // The elastic fleet serves through at most POOL shards (the same
        // concurrency the best static fleet gets) but carries two standby
        // spares: a dead static shard is capacity lost for good, a dead
        // elastic shard is backfilled by an emergency scale-up.
        let rate_plan = plan_capacity(&PlanConfig {
            iterations: 2,
            seed: SEED,
            workers: 4,
            k_min: 1,
            k_max: POOL,
            fleet: base_cfg(POOL),
            traffic: traffic(rate),
            ..PlanConfig::default()
        })
        .expect("rate plan");
        let envelope = rate_plan.envelope;
        // The shed-free recommendation is the cost-minimal floor; this
        // sweep's objective is deadline goodput, so size the elastic floor
        // at the candidate whose *simulated* goodput is best instead —
        // the profiles exist exactly so operators can re-rank by their
        // own objective.
        let floor = rate_plan
            .profiles
            .iter()
            .max_by(|a, b| a.goodput_hz.total_cmp(&b.goodput_hz))
            .map(|p| p.k)
            .unwrap_or(rate_plan.recommended);
        let auto_cfg = FleetConfig {
            autoscale: Some(AutoscaleConfig {
                min: floor,
                max: envelope.max.max(floor),
                up_at: envelope.up_at,
                down_at: envelope.down_at,
                warmup_ticks: 1,
                cooldown_ticks: 2,
            }),
            steal: true,
            ..base_cfg(POOL + 2)
        };
        let auto = run_fleet(&requests, &auto_cfg).expect("elastic fleet");
        let ok = conserved(&auto, requests.len());
        all_conserved &= ok;
        writeln!(
            csv,
            "{rate},auto,1..{POOL},{:.4},{:.4},{ok},{},{},{}",
            auto.goodput_hz(),
            auto.shed_rate(),
            auto.counters.get("fleet.scale.up"),
            auto.counters.get("fleet.scale.down"),
            auto.counters.get("fleet.steal"),
        )
        .unwrap();
        let ratio = auto.goodput_hz() / best_static.max(1e-12);
        min_ratio = min_ratio.min(ratio);
        println!(
            "rate {rate:>5.0} req/s: best static {best_static:>7.2}/s | auto {:>7.2}/s (x{ratio:.3}) | plan {}..{} floor {} | scale +{} -{} | deaths {} | steals {}",
            auto.goodput_hz(),
            envelope.min,
            envelope.max,
            floor,
            auto.counters.get("fleet.scale.up"),
            auto.counters.get("fleet.scale.down"),
            auto.counters.get("fleet.shard_down"),
            auto.counters.get("fleet.steal"),
        );
    }
    h.artifact("capacity_sweep.csv", &csv, CheckKind::Structure);

    // --- Phase 2: planner accuracy — predicted goodput of the recommended
    // fleet vs a live run at that size on the base-seed trace. ---
    let plan_cfg = PlanConfig {
        iterations: 4,
        seed: SEED,
        workers: 4,
        k_min: 1,
        k_max: POOL,
        fleet: base_cfg(POOL),
        traffic: traffic(120.0),
        ..PlanConfig::default()
    };
    let plan = plan_capacity(&plan_cfg).expect("plan");
    let mut pcsv = String::from("k,goodput_hz,shed_rate,shed_total,p99_latency_s\n");
    for p in &plan.profiles {
        writeln!(pcsv, "{},{:.4},{:.4},{},{:.4}", p.k, p.goodput_hz, p.shed_rate, p.shed_total, p.p99_latency_s).unwrap();
    }
    writeln!(
        pcsv,
        "# required {:.2} bands/s, peak {:.2}, per-shard {:.2}, floor {}, recommended {}, envelope {}..{} up {:.2} down {:.2}",
        plan.required_rate, plan.peak_rate, plan.shard_rate, plan.analytic_floor,
        plan.recommended, plan.envelope.min, plan.envelope.max, plan.envelope.up_at, plan.envelope.down_at
    )
    .unwrap();
    h.artifact("capacity_plan.csv", &pcsv, CheckKind::Structure);

    let predicted = plan
        .profiles
        .iter()
        .find(|p| p.k == plan.recommended)
        .expect("recommended profile")
        .goodput_hz;
    let live = run_fleet(&generate(&traffic(120.0)), &base_cfg(plan.recommended))
        .expect("live fleet")
        .goodput_hz();
    let err = (predicted - live).abs() / live.max(1e-12);
    println!(
        "\nplanner: recommended {} shards (floor {}), predicted {predicted:.2}/s vs live {live:.2}/s — error {:.1} %",
        plan.recommended,
        plan.analytic_floor,
        err * 100.0
    );

    // --- Phase 3: the parallel sweep — 1 worker vs 8 over k × N runs. ---
    let speed_cfg = PlanConfig {
        iterations: 8,
        workers: 1,
        traffic: traffic(200.0),
        ..plan_cfg
    };
    let t0 = Instant::now();
    let serial_plan = plan_capacity(&speed_cfg).expect("serial sweep");
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel_plan = plan_capacity(&PlanConfig { workers: 8, ..speed_cfg }).expect("parallel sweep");
    let parallel_s = t0.elapsed().as_secs_f64();
    let speedup = serial_s / parallel_s.max(1e-12);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "sweep ({POOL} sizes x 8 iterations): 1 worker {serial_s:.3}s, 8 workers {parallel_s:.3}s — {speedup:.2}x (host has {cores} core(s))"
    );
    assert_eq!(serial_plan, parallel_plan, "worker count leaked into the plan");

    h.metric_f64("min_auto_vs_best_static_ratio", min_ratio, 4)
        .metric_bool("all_runs_conserved", all_conserved)
        .metric_u64("plan_recommended", plan.recommended as u64)
        .metric_u64("plan_analytic_floor", plan.analytic_floor as u64)
        .metric_f64("plan_predicted_goodput_hz", predicted, 4)
        .metric_f64("plan_live_goodput_hz", live, 4)
        .metric_f64("plan_vs_live_rel_err", err, 4)
        .metric_f64("sweep_serial_s", serial_s, 4)
        .metric_f64("sweep_parallel_s", parallel_s, 4)
        .metric_f64("sweep_speedup_8w", speedup, 3)
        .metric_u64("host_cores", cores as u64);
    h.gate(
        "the autoscaled fleet matches or beats the best static fleet at every rate",
        "min_auto_vs_best_static_ratio",
        GateOp::Ge,
        1.0,
    )
    .gate(
        "every sweep run conserves accepted jobs under chaos + node death",
        "all_runs_conserved",
        GateOp::Ge,
        1.0,
    )
    .gate(
        "the planner's prediction lands within 10% of the live run",
        "plan_vs_live_rel_err",
        GateOp::Le,
        0.10,
    );
    if cores >= 4 {
        h.gate(
            "the Monte-Carlo sweep parallelizes (>= 2x at 8 workers)",
            "sweep_speedup_8w",
            GateOp::Ge,
            2.0,
        );
    }
    std::process::exit(h.finish());
}
