//! `failover` — the durable-fleet experiment: node-death failover latency,
//! journal-replay overhead, and graceful degradation under overload.
//!
//! Everything runs in virtual time at a pinned seed, so the artifacts are
//! deterministic and the CI gates are exact:
//!
//! * **zero-loss conservation** — every run's journal audit accounts every
//!   accepted job exactly once (completed or still open == none), under
//!   node death, slow nodes, and partitions alike;
//! * **replay bit-identity** — resuming from a journal prefix cut at any
//!   of the probed crash points reproduces the uninterrupted run's journal
//!   byte for byte;
//! * **replay overhead ≤ 5%** — crash recovery re-executes at most 5% of
//!   the run's real batch executions beyond what the live tail needs
//!   anyway (the journal's completion hashes make replay execution-free).

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_serve::{
    generate, resume_fleet, run_fleet, AdmissionConfig, FleetConfig, FleetFaults, FleetReport,
    Journal, LoadProfile, Record, ServeConfig, TrafficConfig,
};
use std::fmt::Write as _;

const SEED: u64 = fftx_bench::harness::SEED;
/// Fault-injection seed for the death sweep (chosen so each fleet size
/// loses at least one shard inside the horizon).
const FAULT_SEED: u64 = 3;

fn traffic(rate_hz: f64, duration_s: f64) -> TrafficConfig {
    TrafficConfig {
        seed: SEED,
        rate_hz,
        duration_s,
        tenants: 4,
        profile: LoadProfile::Burst,
    }
}

/// The number of distinct batches whose *first* completion record sits at
/// or past `cut` — the batches a resume from that cut must execute anyway.
fn batches_first_completed_after(journal: &Journal, cut: usize) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    let mut tail = std::collections::BTreeSet::new();
    for (i, rec) in journal.records().iter().enumerate() {
        if let Record::Completed { batch, .. } = rec {
            if seen.insert(*batch) && i >= cut {
                tail.insert(*batch);
            }
        }
    }
    tail.len()
}

fn conserved(r: &FleetReport, offered: usize) -> bool {
    r.conservation.open.is_empty()
        && r.conservation.accepted == r.conservation.completed
        && r.offered() == offered
}

fn main() {
    println!("=== fftx-serve fleet: node-death failover, journal replay, degradation ===\n");

    // --- Phase 1: failover sweep — fleet sizes under a lethal death
    // profile, modeled service, virtual-time failover latency. ---
    let mut csv = String::from(
        "shards,p_death,deaths,jobs_rerouted,failover_p50_s,failover_p99_s,goodput_hz,shed_rate,suppressed\n",
    );
    let mut sweep = Vec::new();
    for shards in [3usize, 5] {
        let requests = generate(&traffic(80.0, 2.0));
        let cfg = FleetConfig {
            shards,
            serve: ServeConfig {
                seed: SEED,
                ..Default::default()
            },
            faults: FleetFaults {
                seed: FAULT_SEED,
                p_death: 0.6,
                ..Default::default()
            },
            ..Default::default()
        };
        let r = run_fleet(&requests, &cfg).expect("failover sweep");
        let mut fl = r.failover_latencies();
        let (p50, p99) = if fl.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (fl.p50(), fl.p99())
        };
        let _ = writeln!(
            csv,
            "{},{},{},{},{:.6},{:.6},{:.4},{:.4},{}",
            shards,
            0.6,
            r.counters.get("fleet.shard_down"),
            r.counters.get("fleet.failover.jobs"),
            p50,
            p99,
            r.goodput_hz(),
            r.shed_rate(),
            r.counters.get("fleet.suppressed"),
        );
        println!(
            "  {} shards: {} dead, {} jobs re-routed, failover p50 {:.4}s p99 {:.4}s, conserved {}",
            shards,
            r.counters.get("fleet.shard_down"),
            r.counters.get("fleet.failover.jobs"),
            p50,
            p99,
            conserved(&r, requests.len()),
        );
        sweep.push((shards, requests.len(), r));
    }
    let mut h = Harness::new("recovery");
    h.artifact("failover.csv", &csv, CheckKind::Byte);
    let sweep_conserved = sweep.iter().all(|(_, n, r)| conserved(r, *n));
    let sweep_deaths = sweep.iter().all(|(_, _, r)| r.counters.get("fleet.shard_down") >= 1);
    let sweep_rerouted = sweep.iter().all(|(_, _, r)| r.counters.get("fleet.failover.jobs") >= 1);
    println!();

    // --- Phase 2: crash-point replay with real execution — resume from
    // journal prefixes and compare byte-for-byte; count the real batch
    // executions a resume performs beyond the live tail's own needs. ---
    let replay_requests = generate(&traffic(40.0, 1.0));
    let replay_cfg = FleetConfig {
        shards: 3,
        serve: ServeConfig {
            execute_real: true,
            seed: SEED,
            ..Default::default()
        },
        horizon_s: 1.0,
        faults: FleetFaults {
            seed: FAULT_SEED,
            p_death: 0.6,
            ..Default::default()
        },
        ..Default::default()
    };
    let full = run_fleet(&replay_requests, &replay_cfg).expect("replay baseline");
    let full_bytes = full.journal.encode();
    let exec_full = full.counters.get("fleet.exec.batch");
    let n = full.journal.len();
    let cuts = [0, n / 4, n / 2, 3 * n / 4, n.saturating_sub(1)];
    let mut bit_identical = true;
    let mut max_overhead_pct = 0.0f64;
    println!("replay: {n} journal records, {exec_full} real batch executions uninterrupted");
    for &cut in &cuts {
        let mut prefix = Journal::new();
        for rec in &full.journal.records()[..cut] {
            prefix.append(rec.clone());
        }
        let resumed = resume_fleet(&prefix, &replay_requests, &replay_cfg).expect("resume");
        let identical = resumed.journal.encode() == full_bytes;
        bit_identical &= identical;
        let needed = batches_first_completed_after(&full.journal, cut) as u64;
        let re_executed = resumed.counters.get("fleet.exec.batch").saturating_sub(needed);
        let overhead_pct = 100.0 * re_executed as f64 / exec_full.max(1) as f64;
        max_overhead_pct = max_overhead_pct.max(overhead_pct);
        println!(
            "  cut {cut:>4}/{n}: journal {}, {} executions ({} tail-needed, overhead {:.2}%)",
            if identical { "bit-identical" } else { "DIVERGED" },
            resumed.counters.get("fleet.exec.batch"),
            needed,
            overhead_pct,
        );
    }
    let replay_conserved = conserved(&full, replay_requests.len());
    println!();

    // --- Phase 3: graceful degradation — a saturating burst against one
    // small shard must walk the ladder, shed typed, and recover. ---
    let overload_requests = generate(&TrafficConfig {
        seed: SEED,
        rate_hz: 400.0,
        duration_s: 1.0,
        tenants: 2,
        profile: LoadProfile::Burst,
    });
    let overload_cfg = FleetConfig {
        shards: 1,
        serve: ServeConfig {
            admission: AdmissionConfig {
                queue_cap: 8,
                tenant_share: 1.0,
                shed_late: false,
            },
            seed: SEED,
            ..Default::default()
        },
        horizon_s: 1.0,
        ..Default::default()
    };
    let overload = run_fleet(&overload_requests, &overload_cfg).expect("overload fleet");
    let degrade_moves = overload.counters.sum_prefix("fleet.degrade.");
    let degrade_shed = overload.counters.get("shed.degraded");
    let degrade_recovered =
        overload.timeline.last_state(overload_cfg.shards as u32) == Some("normal");
    println!(
        "degradation: {} ladder transitions, {} jobs shed by class, recovered to normal: {}",
        degrade_moves, degrade_shed, degrade_recovered
    );
    println!();

    // --- BENCH_recovery.json through the shared harness: headline numbers
    // plus the gates (thresholds travel with the artifact). ---
    let (_, _, r3) = &sweep[0];
    let mut fl3 = r3.failover_latencies();
    h.metric_u64("fault_seed", FAULT_SEED)
        .metric_f64("p_death", 0.6, 1)
        .metric_u64("shard_deaths_3", r3.counters.get("fleet.shard_down"))
        .metric_u64("jobs_rerouted_3", r3.counters.get("fleet.failover.jobs"))
        .metric_f64("failover_p50_s", fl3.p50(), 6)
        .metric_f64("failover_p99_s", fl3.p99(), 6)
        .metric(
            "replay_cuts",
            fftx_bench::MetricValue::UInts(cuts.iter().map(|&c| c as u64).collect()),
        )
        .metric_bool("replay_bit_identical", bit_identical)
        .metric_f64("replay_overhead_pct", max_overhead_pct, 4)
        .metric_u64("replay_real_executions", exec_full)
        .metric_u64("degrade_transitions", degrade_moves)
        .metric_u64("degrade_shed", degrade_shed)
        .metric_bool("degrade_recovered", degrade_recovered)
        .metric_bool("zero_loss", sweep_conserved && replay_conserved)
        .metric_bool(
            "failover_engaged",
            sweep_deaths && sweep_rerouted,
        )
        .metric_bool(
            "degrade_ladder_walked",
            degrade_moves > 0 && degrade_shed > 0 && degrade_recovered,
        );
    println!(
        "gates: 3-shard {} dead / {} re-routed; replay cuts {cuts:?} of {n} records",
        r3.counters.get("fleet.shard_down"),
        r3.counters.get("fleet.failover.jobs"),
    );
    h.gate(
        "node death loses no accepted job (conservation audit)",
        "zero_loss",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "death profile kills shards and failover re-routes their jobs",
        "failover_engaged",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "resume from every probed crash point is journal bit-identical",
        "replay_bit_identical",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "journal replay re-executes at most 5% beyond the live tail",
        "replay_overhead_pct",
        GateOp::Le,
        5.0,
    )
    .gate(
        "overload walks the degradation ladder and recovers",
        "degrade_ladder_walked",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
