//! Scheduler-policy shoot-out over the unified stage graph.
//!
//! Every execution engine is now a scheduling policy over the one typed
//! stage graph (`fftx-core::stages`): serial, task-per-step, task-per-FFT,
//! async split-phase, and the hybrid overlap+desync policy the paper's
//! future-work section sketches (per-band coarse tasks *and* split-phase
//! collectives). This binary checks the two claims that justify the
//! refactor:
//!
//! 1. **Policies are schedules, not algorithms** — on the real engine all
//!    five produce bit-identical bands, and every stage-graph node shows up
//!    in the per-stage span stream.
//! 2. **Hybrid is competitive** — on the modeled KNL node (paper 8×8) the
//!    hybrid policy must be no more than 2% slower than task-per-FFT, the
//!    paper's best measured strategy (the CI gate), and at least as fast as
//!    the blocking step policy.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{
    run_modeled, run_policy, FftxConfig, Problem, SchedulerPolicy, StageKind,
};
use fftx_fft::Complex64;
use fftx_trace::{StageHistogram, StateClass};
use std::sync::Arc;

fn stage_name(id: u32) -> String {
    StageKind::from_id(id).map_or_else(|| format!("stage-{id}"), |k| k.name().to_string())
}

fn main() {
    println!("=== Scheduler policies over the unified stage graph ===\n");
    // BENCH_stages.json — this bin gates the stage-graph refactor.
    let mut h = Harness::new("stages");

    // --- Real engine: bitwise equivalence + stage-span coverage. ---
    println!("--- real engine (2x2 small): bitwise cross-check ---");
    let mut reference: Option<Vec<Vec<Complex64>>> = None;
    let mut bitwise_ok = true;
    let mut stage_cover_ok = true;
    for policy in SchedulerPolicy::ALL {
        let cfg = FftxConfig::small(2, 2, policy.mode());
        let problem = Arc::new(Problem::new(cfg));
        let out = run_policy(&problem, policy);
        let same = match &reference {
            None => {
                reference = Some(out.bands.clone());
                true
            }
            Some(r) => *r == out.bands,
        };
        bitwise_ok &= same;

        // Per-stage duration histogram, keyed by stage-graph node id.
        let hist = StageHistogram::from_trace(&out.trace, 12);
        let spans: usize = hist.count.iter().sum();
        // Every policy executes the full band pipeline; the serial engine
        // additionally runs the Prep stage.
        let expect: Vec<u32> = StageKind::ALL
            .iter()
            .filter(|k| **k != StageKind::Prep || policy == SchedulerPolicy::Serial)
            .map(|k| k.id())
            .collect();
        let covered = expect.iter().all(|id| hist.stages.contains(id));
        stage_cover_ok &= covered;
        println!(
            "  {:<8} bands {}  stage spans {:>4} over {} node ids{}",
            policy.name(),
            if same { "match" } else { "DIVERGE" },
            spans,
            hist.stages.len(),
            if covered { "" } else { "  (MISSING STAGES)" },
        );
        h.artifact(
            &format!("schedulers_stages_{}.csv", policy.name()),
            &hist.csv(stage_name),
            CheckKind::Structure,
        );
    }
    println!();

    // --- Modeled KNL node: paper 8×8 timings per policy. ---
    println!("--- modeled KNL node (8x8 paper config) ---");
    let mut rows = String::from("config,policy,runtime_s,ideal_runtime_s,main_ipc\n");
    let mut runtime = std::collections::HashMap::new();
    for policy in SchedulerPolicy::ALL {
        let run = run_modeled(FftxConfig::paper(8, policy.mode()));
        println!(
            "  8 x 8  {:<8} runtime {:.4}s (ideal {:.4}s)  main IPC {:.3}",
            policy.name(),
            run.runtime,
            run.ideal_runtime,
            run.trace.mean_ipc(StateClass::FftXy)
        );
        rows.push_str(&format!(
            "8 x 8,{},{:.6},{:.6},{:.4}\n",
            policy.name(),
            run.runtime,
            run.ideal_runtime,
            run.trace.mean_ipc(StateClass::FftXy)
        ));
        runtime.insert(policy.name(), run.runtime);
    }
    h.artifact("schedulers.csv", &rows, CheckKind::Byte);

    let serial = runtime["serial"];
    let step = runtime["step"];
    let fft = runtime["fft"];
    let hybrid = runtime["hybrid"];

    h.metric_bool("bitwise_identical_bands", bitwise_ok)
        .metric_bool("stage_graph_fully_covered", stage_cover_ok)
        .metric_f64("serial_s", serial, 6)
        .metric_f64("step_s", step, 6)
        .metric_f64("fft_s", fft, 6)
        .metric_f64("hybrid_s", hybrid, 6)
        .metric_f64("hybrid_vs_fft_ratio", hybrid / fft, 4)
        .metric_f64("hybrid_vs_step_ratio", hybrid / step, 4)
        .metric_bool(
            "task_policies_beat_serial",
            [step, fft, hybrid].iter().all(|&t| t < serial),
        );
    h.gate(
        "all scheduler policies produce bit-identical bands (real engine)",
        "bitwise_identical_bands",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "every stage-graph node id appears in every policy's span stream",
        "stage_graph_fully_covered",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "hybrid within 2% of task-per-FFT, the paper's best strategy (CI gate)",
        "hybrid_vs_fft_ratio",
        GateOp::Le,
        1.02,
    )
    .gate(
        "hybrid at least matches the blocking step policy",
        "hybrid_vs_step_ratio",
        GateOp::Le,
        1.005,
    )
    .gate(
        "every task policy beats the original static schedule",
        "task_policies_beat_serial",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
