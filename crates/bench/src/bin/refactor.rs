//! Refactor guard: the planned execution engine (`ExecPlan` +
//! `BufferArena`, table-driven copies, reused staging) microbenchmarked
//! against a frozen copy of the pre-refactor per-iteration data movement
//! on the paper's 8×8 workload.
//!
//! Both paths run the complete engine-side pipeline of every task group
//! in-process — deposit, z-FFT, padded scatter (loopback-routed), xy-FFTs,
//! VOFR and the way back — over identical data. The harness
//! machine-checks that the two paths produce bitwise-identical band
//! shares, prices the per-iteration collective volumes on the calibrated
//! KNL communication model (identical for both paths: the refactor removes
//! engine-side copies, not wire bytes), writes `results/refactor.csv`, and
//! **exits non-zero when the planned path is more than 2% slower** than
//! the frozen legacy path.
//!
//! The legacy helpers below are verbatim copies of the seed's
//! `core::steps` functions that the refactor deleted (allocating
//! per-iteration send lists); the surviving `steps::*` reference
//! implementations cover the rest. Both paths share today's FFT kernels —
//! the guard isolates the engine-layer data movement, which is what the
//! refactor changed.

use fftx_core::steps;
use fftx_core::{BufferArena, FftxConfig, Mode, Problem};
use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_fft::{cft_1z, cft_2xy, Complex64, Direction};
use fftx_knlsim::CommModel;
use fftx_pw::{apply_potential_slab, TaskGroupLayout};
use fftx_trace::CommOp;
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------------
// Frozen legacy helpers (deleted from core::steps by the refactor)
// ---------------------------------------------------------------------

/// Seed `steps::pack_sends`: the pack send list as a per-member deep copy.
fn legacy_pack_sends(shares_of_iter_bands: &[&[Complex64]]) -> Vec<Vec<Complex64>> {
    shares_of_iter_bands.iter().map(|s| s.to_vec()).collect()
}

/// Seed `steps::extract_member_share`: one member's share, freshly
/// allocated from the z-stick buffer.
fn legacy_extract_member_share(
    layout: &TaskGroupLayout,
    g: usize,
    j: usize,
    zbuf: &[Complex64],
) -> Vec<Complex64> {
    let nr3 = layout.grid.nr3;
    let rank = g * layout.t + j;
    let stick_base = layout.group_stick_offset(g, j);
    let mut share = Vec::with_capacity(layout.ngw_rank(rank));
    for (si, &s) in layout.dist.per_rank[rank].iter().enumerate() {
        let col = (stick_base + si) * nr3;
        for &iz in &layout.set.sticks[s].iz {
            share.push(zbuf[col + iz]);
        }
    }
    share
}

/// Seed `steps::extract_unpack_sends`: the unpack send list, one fresh
/// allocation per member.
fn legacy_extract_unpack_sends(
    layout: &TaskGroupLayout,
    g: usize,
    zbuf: &[Complex64],
) -> Vec<Vec<Complex64>> {
    (0..layout.t)
        .map(|j| legacy_extract_member_share(layout, g, j, zbuf))
        .collect()
}

// ---------------------------------------------------------------------
// The two per-iteration paths (all groups, loopback-routed)
// ---------------------------------------------------------------------

/// Pre-refactor per-group state (the seed's `BandPipeline`).
struct LegacyPipe {
    zbuf: Vec<Complex64>,
    planes: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

fn legacy_iteration(
    problem: &Problem,
    shares: &[Vec<Vec<Complex64>>],
    pipes: &mut [LegacyPipe],
) -> Vec<Vec<Vec<Complex64>>> {
    let l = &problem.layout;
    let r = l.r;
    let chunk = steps::scatter_chunk_len(l);
    // Deposit + inverse z-FFT + forward-scatter pack (allocating sends).
    let mut scat_sends: Vec<Vec<Complex64>> = Vec::with_capacity(r);
    for g in 0..r {
        let p = &mut pipes[g];
        p.zbuf.fill(Complex64::ZERO);
        p.planes.fill(Complex64::ZERO);
        let refs: Vec<&[Complex64]> = shares[g].iter().map(|s| s.as_slice()).collect();
        let sends = legacy_pack_sends(&refs);
        steps::deposit_pack_recv(l, g, &sends, &mut p.zbuf);
        let plan = problem.exec_plan(g);
        cft_1z(
            &plan.z,
            &mut p.zbuf,
            l.nst_group(g),
            l.grid.nr3,
            Direction::Inverse,
            &mut p.scratch,
        );
        scat_sends.push(steps::scatter_pack(l, g, &p.zbuf));
    }
    // Route (fresh receive assembly, like the owning alltoall API),
    // then unpack + xy-FFTs + VOFR + backward-scatter pack.
    let mut back_sends: Vec<Vec<Complex64>> = Vec::with_capacity(r);
    for g in 0..r {
        let mut recv = Vec::with_capacity(r * chunk);
        for s in scat_sends.iter() {
            recv.extend_from_slice(&s[g * chunk..(g + 1) * chunk]);
        }
        let p = &mut pipes[g];
        steps::scatter_unpack_to_planes(l, g, &recv, &mut p.planes);
        let plan = problem.exec_plan(g);
        cft_2xy(
            &plan.x,
            &plan.y,
            &mut p.planes,
            l.npp(g),
            l.grid.nr1,
            l.grid.nr2,
            Direction::Inverse,
            &mut p.scratch,
        );
        apply_potential_slab(&mut p.planes, &problem.v, &l.grid, l.plane_range[g].0, l.npp(g));
        cft_2xy(
            &plan.x,
            &plan.y,
            &mut p.planes,
            l.npp(g),
            l.grid.nr1,
            l.grid.nr2,
            Direction::Forward,
            &mut p.scratch,
        );
        back_sends.push(steps::planes_to_scatter_sends(l, g, &p.planes));
    }
    // Route back + forward z-FFT + unpack (allocating send lists).
    let mut outs = Vec::with_capacity(r);
    for g in 0..r {
        let mut recv = Vec::with_capacity(r * chunk);
        for s in back_sends.iter() {
            recv.extend_from_slice(&s[g * chunk..(g + 1) * chunk]);
        }
        let p = &mut pipes[g];
        steps::zbuf_from_scatter_recv(l, g, &recv, &mut p.zbuf);
        let plan = problem.exec_plan(g);
        cft_1z(
            &plan.z,
            &mut p.zbuf,
            l.nst_group(g),
            l.grid.nr3,
            Direction::Forward,
            &mut p.scratch,
        );
        outs.push(legacy_extract_unpack_sends(l, g, &p.zbuf));
    }
    outs
}

fn planned_iteration(
    problem: &Problem,
    shares: &[Vec<Vec<Complex64>>],
    arenas: &mut [BufferArena],
    recvs: &mut [Vec<Complex64>],
    outs: &mut [Vec<Vec<Complex64>>],
) {
    let r = problem.layout.r;
    let t = problem.layout.t;
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.prep(&mut a.zbuf, &mut a.planes);
        for (j, share) in shares[g].iter().enumerate().take(t) {
            plan.deposit_member(j, share, &mut a.zbuf);
        }
        cft_1z(
            &plan.z,
            &mut a.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Inverse,
            &mut a.scratch,
        );
        plan.scatter_pack(&a.zbuf, &mut a.scatter_send);
    }
    route(arenas, recvs);
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.scatter_unpack_to_planes(&recvs[g], &mut a.planes);
        fftx_fft::cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut a.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Inverse,
            &mut a.scratch,
            &mut a.col,
        );
        apply_potential_slab(&mut a.planes, &problem.v, &plan.grid, plan.z0, plan.npp);
        fftx_fft::cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut a.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Forward,
            &mut a.scratch,
            &mut a.col,
        );
        plan.planes_to_scatter(&a.planes, &mut a.scatter_send);
    }
    route(arenas, recvs);
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.zbuf_from_scatter(&recvs[g], &mut a.zbuf);
        cft_1z(
            &plan.z,
            &mut a.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Forward,
            &mut a.scratch,
        );
        for (j, out) in outs[g].iter_mut().enumerate().take(t) {
            plan.extract_member(j, &a.zbuf, out);
        }
    }
}

/// Loopback alltoall over the padded chunks into preallocated receives.
fn route(arenas: &[BufferArena], recvs: &mut [Vec<Complex64>]) {
    let r = arenas.len();
    let chunk = arenas[0].scatter_send.len() / r;
    for (g, recv) in recvs.iter_mut().enumerate() {
        for (gp, src) in arenas.iter().enumerate() {
            recv[gp * chunk..(gp + 1) * chunk]
                .copy_from_slice(&src.scatter_send[g * chunk..(g + 1) * chunk]);
        }
    }
}

fn main() {
    // The paper's 8×8 workload; the preset pins the data seed (2017).
    let cfg = FftxConfig::paper(8, Mode::Original);
    println!("=== Refactor guard: planned engine vs frozen legacy path ({}) ===", cfg.label());
    let problem = Problem::new(cfg);
    let l = &problem.layout;
    let (r, t) = (l.r, l.t);
    println!(
        "grid {}x{}x{}, {} sticks, {} groups x {} members",
        l.grid.nr1,
        l.grid.nr2,
        l.grid.nr3,
        l.set.nst(),
        r,
        t
    );
    // One batch's input: the band-j share of every member rank, per group.
    let shares: Vec<Vec<Vec<Complex64>>> = (0..r)
        .map(|g| (0..t).map(|j| problem.initial_shares(g * t + j).remove(0)).collect())
        .collect();

    // Legacy state (the seed's per-group pipelines).
    let mut pipes: Vec<LegacyPipe> = (0..r)
        .map(|g| LegacyPipe {
            zbuf: vec![Complex64::ZERO; l.nst_group(g) * l.grid.nr3],
            planes: vec![Complex64::ZERO; l.npp(g) * l.grid.nr1 * l.grid.nr2],
            scratch: Vec::new(),
        })
        .collect();
    // Planned state (arenas + preallocated loopback receives).
    let mut arenas: Vec<BufferArena> = (0..r).map(|_| BufferArena::new()).collect();
    let mut recvs: Vec<Vec<Complex64>> = (0..r)
        .map(|g| vec![Complex64::ZERO; problem.exec_plan(g).scatter_len()])
        .collect();
    let mut outs: Vec<Vec<Vec<Complex64>>> = (0..r).map(|_| vec![Vec::new(); t]).collect();

    // Warmup both paths and machine-check bitwise equality of the shares.
    let legacy_out = legacy_iteration(&problem, &shares, &mut pipes);
    planned_iteration(&problem, &shares, &mut arenas, &mut recvs, &mut outs);
    let mut identical = true;
    for g in 0..r {
        for j in 0..t {
            if legacy_out[g][j] != outs[g][j] {
                identical = false;
            }
        }
    }
    println!("bitwise identical shares: {identical}");
    if !identical {
        eprintln!("FAIL: planned engine diverged from the legacy path");
        std::process::exit(1);
    }

    // Timed reps, gated on the per-iteration minimum (noise-robust).
    const REPS: usize = 5;
    let mut legacy_min = f64::INFINITY;
    let mut planned_min = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = legacy_iteration(&problem, &shares, &mut pipes);
        legacy_min = legacy_min.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
        let t0 = Instant::now();
        planned_iteration(&problem, &shares, &mut arenas, &mut recvs, &mut outs);
        planned_min = planned_min.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&outs);
    }

    // Price the per-iteration collectives on the calibrated KNL model —
    // identical wire volumes for both paths (the refactor removes copies,
    // not bytes): one pack + one unpack alltoallv per group family and the
    // two padded scatter alltoalls.
    let comm = CommModel::paper();
    let bytes_of = |n: usize| n * std::mem::size_of::<Complex64>();
    let max_ngw = (0..r).map(|g| l.ngw_group(g)).max().unwrap_or(0);
    let chunk = steps::scatter_chunk_len(l);
    let priced_comm = 2.0 * comm.duration(CommOp::Alltoallv, t, bytes_of(max_ngw))
        + 2.0 * comm.duration(CommOp::Alltoall, r, bytes_of(r * chunk));

    let regression_pct = (planned_min / legacy_min - 1.0) * 100.0;
    println!("legacy  : {legacy_min:.4} s/iter (engine) + {priced_comm:.4} s priced comm");
    println!("planned : {planned_min:.4} s/iter (engine) + {priced_comm:.4} s priced comm");
    println!("planned vs legacy: {regression_pct:+.2}% (gate: +2%)");

    let mut csv = String::from(
        "path,wall_s_per_iter_min,priced_comm_s_per_iter,priced_cost_s_per_iter,bitwise_identical\n",
    );
    let _ = writeln!(
        csv,
        "legacy,{legacy_min:.6},{priced_comm:.6},{:.6},{identical}",
        legacy_min + priced_comm
    );
    let _ = writeln!(
        csv,
        "planned,{planned_min:.6},{priced_comm:.6},{:.6},{identical}",
        planned_min + priced_comm
    );
    let mut h = Harness::new_volatile("refactor");
    h.artifact("refactor.csv", &csv, CheckKind::Structure);

    h.metric_bool("bitwise_identical", identical)
        .metric_f64("legacy_wall_s_per_iter", legacy_min, 6)
        .metric_f64("planned_wall_s_per_iter", planned_min, 6)
        .metric_f64("priced_comm_s_per_iter", priced_comm, 6)
        .metric_f64("regression_pct", regression_pct, 2);
    h.gate(
        "planned engine produces bitwise-identical band shares",
        "bitwise_identical",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "planned engine within 2% of the frozen legacy path",
        "regression_pct",
        GateOp::Le,
        2.0,
    );
    std::process::exit(h.finish());
}
