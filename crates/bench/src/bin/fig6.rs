//! Figure 6: runtime of the FFT phase, original vs OmpSs version, with
//! increasing rank count. Paper claims: the OmpSs version is ~7-10 % faster
//! (not counting hyper-threading), the fastest OmpSs configuration beats
//! the fastest original by about 10 %, and the OmpSs version additionally
//! tolerates 2× hyper-threading far better.

use fftx_bench::{sweep, CheckKind, GateOp, Harness, MetricValue};
use fftx_core::Mode;
use fftx_trace::render_bar_chart;

fn main() {
    println!("=== Figure 6: runtime, original (N x 8 ranks) vs OmpSs (N ranks x 8 threads) ===\n");
    let nrs = [1usize, 2, 4, 8, 16, 32];
    let orig = sweep(Mode::Original, &nrs);
    let ompss = sweep(Mode::TaskPerFft, &nrs);

    let configs: Vec<String> = orig.iter().map(|p| p.label.clone()).collect();
    let orig_rt: Vec<f64> = orig.iter().map(|p| p.run.runtime).collect();
    let ompss_rt: Vec<f64> = ompss.iter().map(|p| p.run.runtime).collect();
    print!(
        "{}",
        render_bar_chart(
            "FFT phase runtime (simulated KNL node, seconds)",
            &configs,
            &[
                ("original".to_string(), orig_rt.clone()),
                ("ompss".to_string(), ompss_rt.clone()),
            ],
            50,
        )
    );

    let mut csv = String::from("config,lanes,original_s,ompss_s,gain_pct\n");
    for (i, cfg) in configs.iter().enumerate() {
        csv.push_str(&format!(
            "{},{},{:.6},{:.6},{:.2}\n",
            cfg,
            nrs[i] * 8,
            orig_rt[i],
            ompss_rt[i],
            (1.0 - ompss_rt[i] / orig_rt[i]) * 100.0
        ));
    }
    let mut h = Harness::new("fig6");
    h.artifact("fig6_runtime.csv", &csv, CheckKind::Byte);

    println!();
    for (i, cfg) in configs.iter().enumerate() {
        println!(
            "{cfg:>8}: original {:.4}s  ompss {:.4}s  gain {:+.1}%",
            orig_rt[i],
            ompss_rt[i],
            (1.0 - ompss_rt[i] / orig_rt[i]) * 100.0
        );
    }
    println!();

    let best_orig = orig_rt.iter().cloned().fold(f64::INFINITY, f64::min);
    let best_ompss = ompss_rt.iter().cloned().fold(f64::INFINITY, f64::min);
    let headline = (1.0 - best_ompss / best_orig) * 100.0;
    // "about 7-10 % faster (not counting hyper-threading)": 2x8..8x8.
    let no_ht_gains: Vec<f64> = (1..4)
        .map(|i| (1.0 - ompss_rt[i] / orig_rt[i]) * 100.0)
        .collect();
    println!(
        "best ompss {best_ompss:.4}s vs best original {best_orig:.4}s: {headline:.1}%; \
         2x8..8x8 gains {no_ht_gains:?} %"
    );
    h.metric("original_s", MetricValue::Floats { v: orig_rt.clone(), prec: 6 })
        .metric("ompss_s", MetricValue::Floats { v: ompss_rt.clone(), prec: 6 })
        .metric_f64("best_original_s", best_orig, 6)
        .metric_f64("best_ompss_s", best_ompss, 6)
        .metric_f64("headline_gain_pct", headline, 2)
        .metric_bool(
            "ompss_faster_full_core",
            (0..4).all(|i| ompss_rt[i] < orig_rt[i]),
        )
        .metric_bool(
            "gain_in_band",
            no_ht_gains.iter().all(|&g| (3.0..15.0).contains(&g)),
        )
        .metric_bool(
            "ompss_faster_under_ht",
            ompss_rt[4] < orig_rt[4] && ompss_rt[5] < orig_rt[5],
        );
    h.gate(
        "OmpSs version is faster at every full-core configuration",
        "ompss_faster_full_core",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "OmpSs gain is in the several-percent band (paper: 7-10%)",
        "gain_in_band",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "fastest OmpSs beats fastest original by ~10% (paper) / >5% (model)",
        "headline_gain_pct",
        GateOp::Ge,
        5.0,
    )
    // Note: the paper's extra +3% OmpSs gain *from* HT shows up in our
    // model as IPC tolerance, not net runtime — see EXPERIMENTS.md.
    .gate(
        "OmpSs keeps its advantage under 2x and 4x hyper-threading",
        "ompss_faster_under_ht",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
