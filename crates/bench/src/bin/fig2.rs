//! Figure 2: runtime of the FFT phase with increasing number of MPI ranks,
//! original version, 1×8 .. 32×8 (the last two entries use 2× and 4×
//! hyper-threading). Paper claims: poor scaling with rank count, and no
//! benefit — in fact a slowdown — from hyper-threading.

use fftx_bench::{sweep, CheckKind, GateOp, Harness, MetricValue};
use fftx_core::Mode;
use fftx_trace::render_bar_chart;

fn main() {
    println!("=== Figure 2: FFT phase runtime vs MPI ranks (original) ===");
    println!("parameters: ecutwfc 80 Ry, alat 20 bohr, 128 bands, ntg 8\n");

    let points = sweep(Mode::Original, &[1, 2, 4, 8, 16, 32]);
    let configs: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    let runtimes: Vec<f64> = points.iter().map(|p| p.run.runtime).collect();

    print!(
        "{}",
        render_bar_chart(
            "FFT phase runtime (simulated KNL node, seconds)",
            &configs,
            &[("original".to_string(), runtimes.clone())],
            50,
        )
    );

    let mut csv = String::from("config,lanes,runtime_s,speedup_vs_1x8\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{:.6},{:.3}\n",
            p.label,
            p.nr * 8,
            p.run.runtime,
            points[0].run.runtime / p.run.runtime
        ));
    }

    let mut h = Harness::new("fig2");
    h.artifact("fig2_runtime.csv", &csv, CheckKind::Byte);

    // Shape criteria from the paper's discussion of Fig. 2, exported as
    // gates whose thresholds live in BENCH_fig2.json.
    let r = |i: usize| points[i].run.runtime;
    let speedup_8x8 = r(0) / r(3);
    h.metric("runtimes_s", MetricValue::Floats { v: runtimes.clone(), prec: 6 })
        .metric_f64("speedup_8x8", speedup_8x8, 3)
        .metric_bool(
            "monotone_to_8x8",
            r(0) > r(1) && r(1) > r(2) && r(2) > r(3),
        )
        .metric_bool("ht2_no_benefit", r(4) >= r(3) * 0.995)
        .metric_bool("ht4_worse_again", r(5) >= r(4) * 0.995);
    h.gate(
        "runtime decreases up to 8 x 8",
        "monotone_to_8x8",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "FFT phase does not scale well (speedup at 64 lanes << 8x)",
        "speedup_8x8",
        GateOp::Le,
        6.0,
    )
    .gate(
        "2x hyper-threading brings no benefit (16 x 8 >= 8 x 8)",
        "ht2_no_benefit",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "4x hyper-threading is worse again (32 x 8 >= 16 x 8)",
        "ht4_worse_again",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
