//! Figure 2: runtime of the FFT phase with increasing number of MPI ranks,
//! original version, 1×8 .. 32×8 (the last two entries use 2× and 4×
//! hyper-threading). Paper claims: poor scaling with rank count, and no
//! benefit — in fact a slowdown — from hyper-threading.

use fftx_bench::{report_checks, sweep, write_artifact, ShapeCheck};
use fftx_core::Mode;
use fftx_trace::render_bar_chart;

fn main() {
    println!("=== Figure 2: FFT phase runtime vs MPI ranks (original) ===");
    println!("parameters: ecutwfc 80 Ry, alat 20 bohr, 128 bands, ntg 8\n");

    let points = sweep(Mode::Original, &[1, 2, 4, 8, 16, 32]);
    let configs: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    let runtimes: Vec<f64> = points.iter().map(|p| p.run.runtime).collect();

    print!(
        "{}",
        render_bar_chart(
            "FFT phase runtime (simulated KNL node, seconds)",
            &configs,
            &[("original".to_string(), runtimes.clone())],
            50,
        )
    );

    let mut csv = String::from("config,lanes,runtime_s,speedup_vs_1x8\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{:.6},{:.3}\n",
            p.label,
            p.nr * 8,
            p.run.runtime,
            points[0].run.runtime / p.run.runtime
        ));
    }
    write_artifact("fig2_runtime.csv", &csv);

    // Shape criteria from the paper's discussion of Fig. 2.
    let r = |i: usize| points[i].run.runtime;
    let speedup_8x8 = r(0) / r(3);
    let checks = vec![
        ShapeCheck::new(
            "runtime decreases up to 8 x 8",
            r(0) > r(1) && r(1) > r(2) && r(2) > r(3),
            format!("{:.3} > {:.3} > {:.3} > {:.3}", r(0), r(1), r(2), r(3)),
        ),
        ShapeCheck::new(
            "FFT phase does not scale well (speedup at 64 lanes << 8x)",
            speedup_8x8 < 6.0,
            format!("speedup 1x8 -> 8x8 = {speedup_8x8:.2} (ideal 8.0)"),
        ),
        ShapeCheck::new(
            "2x hyper-threading brings no benefit (16 x 8 >= 8 x 8)",
            r(4) >= r(3) * 0.995,
            format!("16x8 {:.3}s vs 8x8 {:.3}s", r(4), r(3)),
        ),
        ShapeCheck::new(
            "4x hyper-threading is worse again (32 x 8 >= 16 x 8)",
            r(5) >= r(4) * 0.995,
            format!("32x8 {:.3}s vs 16x8 {:.3}s", r(5), r(4)),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
