//! Recovery experiment: the self-healing runtime's three mechanisms, each
//! demonstrated against its fault-free baseline.
//!
//! For every mechanism the harness machine-checks the central claim —
//! **recovery costs time, never answers**: the recovered run's bands are
//! bitwise identical to the fault-free run's, while the recovery layer
//! reports the work it absorbed (re-executions, rollbacks, an eviction
//! with a re-planned R×T layout).
//!
//! Measured wall times of the small in-process runs are reported for
//! orientation; the *deterministic* overhead numbers come from the KNL
//! cost model at the paper's 8×8 scale — steady-state buddy-checkpoint
//! traffic, one mid-run batch replay, and the per-band redistribution of
//! an eviction — all as fractions of the fault-free Fig. 3 runtime.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::taskmodes::run_task_per_fft;
use fftx_core::{
    run_eviction, run_original, run_retry, run_rollback, FftxConfig, Mode, Problem,
    simulate_config,
};
use fftx_fault::{BatchAborts, RankDeath, RecoveryConfig, TaskCrashes};
use fftx_knlsim::{CommModel, ContentionModel, KnlConfig};
use fftx_trace::CommOp;
use std::time::Instant;

/// Pinned fault seed (the paper's publication date) so CI commits a
/// reproducible artifact.
const SEED: u64 = fftx_bench::harness::SEED;

fn wall<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn pct(recovered: f64, clean: f64) -> f64 {
    (recovered / clean - 1.0) * 100.0
}

fn main() {
    println!("=== Recovery: self-healing mechanisms vs fault-free baselines ===\n");
    // The injected task crashes are expected panics (caught and retried by
    // the runtime); keep their backtraces out of the experiment log while
    // letting any real panic report normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected transient task fault"));
        if !injected {
            default_hook(info);
        }
    }));
    // Budgets come from the environment (FFTX_RECOVERY_*, defaults
    // otherwise) so the knobs documented in the README drive this harness.
    let rc = RecoveryConfig::from_env();
    let mut csv = String::from(
        "mechanism,clean_s,recovered_s,overhead_pct,events,checkpoint_bytes,bitwise_identical\n",
    );

    // --- Mechanism 1: task re-execution (task-per-FFT engine). Every band
    // task crashes once or twice; the retry budget absorbs all of it.
    let cfg = FftxConfig::small(2, 2, Mode::TaskPerFft);
    // Every rank runs one task per band and each crashes at least once.
    let expected_retries = (cfg.nbnd * cfg.vmpi_ranks()) as u64;
    let problem = Problem::new(cfg);
    let (baseline, clean_s) = wall(|| run_task_per_fft(&problem));
    let ((retry_out, retry_stats), retry_s) = wall(|| {
        run_retry(&problem, Some(TaskCrashes::new(SEED, 1.0, 2)), &rc)
            .expect("retry budget must absorb the injected crashes")
    });
    let retry_identical = retry_out.bands == baseline.bands;
    println!(
        "task re-execution : clean {clean_s:.4}s  recovered {retry_s:.4}s ({:+.1}%)  \
         {} retries  identical: {retry_identical}",
        pct(retry_s, clean_s),
        retry_stats.task_retries
    );
    csv.push_str(&format!(
        "task_reexecution,{clean_s:.6},{retry_s:.6},{:.2},{},0,{retry_identical}\n",
        pct(retry_s, clean_s),
        retry_stats.task_retries
    ));

    // --- Mechanism 2: band-batch checkpoint/rollback (original engine).
    // Every batch's collective times out once or twice mid-flight.
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let (orig_baseline, orig_clean_s) = wall(|| run_original(&problem));
    let ((rb_out, rb_stats), rb_s) = wall(|| {
        run_rollback(&problem, Some(BatchAborts::new(SEED, 1.0, 2)), &rc)
            .expect("rollback budget must absorb the injected aborts")
    });
    let rb_identical = rb_out.bands == orig_baseline.bands;
    println!(
        "batch rollback    : clean {orig_clean_s:.4}s  recovered {rb_s:.4}s ({:+.1}%)  \
         {} rollbacks, {} ckpt bytes  identical: {rb_identical}",
        pct(rb_s, orig_clean_s),
        rb_stats.batch_rollbacks,
        rb_stats.checkpoint_bytes
    );
    csv.push_str(&format!(
        "batch_rollback,{orig_clean_s:.6},{rb_s:.6},{:.2},{},{},{rb_identical}\n",
        pct(rb_s, orig_clean_s),
        rb_stats.batch_rollbacks,
        rb_stats.checkpoint_bytes
    ));

    // --- Mechanism 3: rank eviction + layout re-planning. 7 ranks as 7×1
    // over 6 bands; rank 3 dies at the batch-2 boundary, the 6 survivors
    // re-plan to 3×2 and finish.
    let mut cfg = FftxConfig::small(7, 1, Mode::Original);
    cfg.nbnd = 6;
    let problem = Problem::new(cfg);
    let (ev_baseline, ev_clean_s) = wall(|| run_original(&problem));
    let ((ev_out, ev_stats), ev_s) = wall(|| {
        run_eviction(&problem, RankDeath::at(3, 2), &rc)
            .expect("survivors must finish the run")
    });
    let ev_identical = ev_out.bands == ev_baseline.bands;
    println!(
        "rank eviction     : clean {ev_clean_s:.4}s  recovered {ev_s:.4}s ({:+.1}%)  \
         layout {:?} -> {:?}, {} ckpt bytes  identical: {ev_identical}",
        pct(ev_s, ev_clean_s),
        ev_stats.layout_before,
        ev_stats.layout_after,
        ev_stats.checkpoint_bytes
    );
    csv.push_str(&format!(
        "rank_eviction,{ev_clean_s:.6},{ev_s:.6},{:.2},{},{},{ev_identical}\n",
        pct(ev_s, ev_clean_s),
        ev_stats.evictions,
        ev_stats.checkpoint_bytes
    ));

    // --- Modeled overhead at paper scale: the KNL cost model prices the
    // recovery layer's traffic against the fault-free 8×8 runtime.
    let paper_cfg = FftxConfig::paper(8, Mode::Original);
    let baseline_s = simulate_config(
        paper_cfg,
        &KnlConfig::paper(),
        &ContentionModel::paper(),
        &CommModel::paper(),
    )
    .runtime;
    let paper_problem = Problem::new(paper_cfg);
    let l = &paper_problem.layout;
    let comm = CommModel::paper();
    let iterations = paper_cfg.iterations();
    let batch_s = baseline_s / iterations as f64;
    // Buddy checkpoint: one p2p message of the rank's batch shares
    // (t bands × ngw coefficients × 16 bytes) after every batch.
    let ckpt_bytes = l.t * l.ngw_rank(0) * std::mem::size_of::<fftx_fft::Complex64>();
    let ckpt_overhead_s = iterations as f64 * comm.checkpoint_seconds(ckpt_bytes);
    // One mid-run fault: restore the checkpoint and replay the batch.
    let replay_overhead_s = comm.replay_seconds(ckpt_bytes, batch_s, 1);
    // One eviction: every band's sticks reshuffled with one alltoallv over
    // the survivors (victim state replayed from the buddy's checkpoints).
    let redist_bytes = l.ngw_rank(0) * std::mem::size_of::<fftx_fft::Complex64>();
    let evict_overhead_s = paper_cfg.nbnd as f64
        * comm.duration(CommOp::Alltoallv, paper_cfg.vmpi_ranks() - 1, redist_bytes);
    let (ckpt_pct, replay_pct, evict_pct) = (
        ckpt_overhead_s / baseline_s * 100.0,
        replay_overhead_s / baseline_s * 100.0,
        evict_overhead_s / baseline_s * 100.0,
    );
    println!(
        "\nmodeled 8x8 scale : baseline {baseline_s:.4}s  \
         checkpointing {ckpt_pct:+.2}%  one replay {replay_pct:+.2}%  one eviction {evict_pct:+.2}%"
    );
    csv.push_str("\nmodel,baseline_s,checkpoint_overhead_pct,replay_overhead_pct,eviction_overhead_pct\n");
    csv.push_str(&format!(
        "paper_8x8,{baseline_s:.6},{ckpt_pct:.3},{replay_pct:.3},{evict_pct:.3}\n"
    ));
    // BENCH_recovery_overhead.json — wall times vary run to run, so the
    // artifact is volatile; the gates sit only on deterministic values
    // (modeled overheads, recovery stats, bitwise identity).
    let mut h = Harness::new_volatile("recovery_overhead");
    h.artifact("recovery.csv", &csv, CheckKind::Structure);
    println!();

    println!(
        "gates: {} retries (>= {expected_retries}); {} rollbacks, {} ckpt bytes; layout \
         {:?} -> {:?}, evicted {:?}; replay {replay_overhead_s:.5}s vs batch {batch_s:.5}s",
        retry_stats.task_retries,
        rb_stats.batch_rollbacks,
        rb_stats.checkpoint_bytes,
        ev_stats.layout_before,
        ev_stats.layout_after,
        ev_stats.evicted_ranks,
    );
    h.metric_f64("retry_wall_overhead_pct", pct(retry_s, clean_s), 2)
        .metric_u64("retry_count", retry_stats.task_retries)
        .metric_bool(
            "retry_absorbs_all_crashes",
            retry_identical && retry_stats.task_retries >= expected_retries,
        )
        .metric_f64("rollback_wall_overhead_pct", pct(rb_s, orig_clean_s), 2)
        .metric_u64("rollback_count", rb_stats.batch_rollbacks)
        .metric_u64("rollback_checkpoint_bytes", rb_stats.checkpoint_bytes)
        .metric_bool(
            "rollback_replays_all_aborts",
            rb_identical && rb_stats.batch_rollbacks >= 2 && rb_stats.checkpoint_bytes > 0,
        )
        .metric_f64("eviction_wall_overhead_pct", pct(ev_s, ev_clean_s), 2)
        .metric_bool(
            "eviction_replans_and_matches",
            ev_identical
                && ev_stats.layout_before == (7, 1)
                && ev_stats.layout_after == (3, 2)
                && ev_stats.evicted_ranks == vec![3],
        )
        .metric_f64("modeled_baseline_8x8_s", baseline_s, 6)
        .metric_f64("modeled_checkpoint_overhead_pct", ckpt_pct, 4)
        .metric_f64("modeled_replay_overhead_pct", replay_pct, 4)
        .metric_f64("modeled_eviction_overhead_pct", evict_pct, 4)
        .metric_f64("modeled_replay_vs_batch_ratio", replay_overhead_s / batch_s, 4);
    h.gate(
        "task re-execution absorbs every injected crash and is bitwise identical",
        "retry_absorbs_all_crashes",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "batch rollback replays every aborted batch and is bitwise identical",
        "rollback_replays_all_aborts",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "eviction re-plans 7x1 -> 3x2 over the survivors and is bitwise identical",
        "eviction_replans_and_matches",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "modeled steady-state checkpointing costs under 5% of the 8x8 runtime",
        "modeled_checkpoint_overhead_pct",
        GateOp::Le,
        5.0,
    )
    .gate(
        "modeled checkpointing cost is nonzero (the model is priced in)",
        "modeled_checkpoint_overhead_pct",
        GateOp::Ge,
        1e-4,
    )
    .gate(
        "modeled single-fault replay costs at least one batch",
        "modeled_replay_vs_batch_ratio",
        GateOp::Ge,
        1.0,
    )
    .gate(
        "modeled single-fault replay stays under 2 batch times",
        "modeled_replay_vs_batch_ratio",
        GateOp::Le,
        2.0,
    );
    std::process::exit(h.finish());
}
