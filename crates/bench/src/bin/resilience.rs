//! Resilience experiment (extends Fig. 6): calibrated stragglers injected
//! into the paper's 8×8 configuration, original vs task-per-FFT.
//!
//! Two fault shapes, both applied identically to the two modes (the spikes
//! key on the band/step noise keys shared by every lowering, so severity is
//! matched by construction):
//!
//! * **Band spikes** — step 13 (the inverse xy-FFT) of every 16th band
//!   takes an extra `s` virtual seconds. The static code executes bands in
//!   lockstep: every spike lands on the critical path of its iteration (the
//!   whole pack group waits at the next collective) and the damage
//!   accumulates almost linearly. The task-based version's dynamic schedule
//!   lets other bands' tasks fill the stall, so the same injection costs a
//!   fraction of that. The spikes must be sparse relative to the parallel
//!   slack (here 8 of 128 bands): saturate every lane with stalls and no
//!   schedule has anything left to fill with.
//! * **Chronic slow rank** — every compute segment of rank 0 stretched by a
//!   constant factor; no schedule can hide a slow *rank* in a
//!   bulk-synchronous kernel, so both modes degrade and this column is the
//!   control showing the spikes' gracefulness is scheduling, not slack.

use fftx_bench::{CheckKind, GateOp, Harness, MetricValue};
use fftx_core::{simulate_config_faulty, FftxConfig, Mode};
use fftx_knlsim::{CommModel, ContentionModel, FaultPlan, KnlConfig};

const NR: usize = 8;

fn runtime(mode: Mode, plan: &FaultPlan) -> f64 {
    let cfg = FftxConfig::paper(NR, mode);
    simulate_config_faulty(
        cfg,
        &KnlConfig::paper(),
        &ContentionModel::paper(),
        &CommModel::paper(),
        plan,
    )
    .runtime
}

fn main() {
    println!("=== Resilience: stragglers injected into the 8 x 8 configuration ===\n");

    // --- Band spikes: extra seconds on the inverse xy-FFT of every 16th
    // band (8 of the 128 bands — sparse, so slack exists to reclaim).
    let severities = [0.0, 0.01_f64, 0.02, 0.05];
    let plan_for = |s: f64| {
        if s == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::spikes(16, 13, s)
        }
    };
    let orig: Vec<f64> = severities.iter().map(|&s| runtime(Mode::Original, &plan_for(s))).collect();
    let ompss: Vec<f64> = severities.iter().map(|&s| runtime(Mode::TaskPerFft, &plan_for(s))).collect();
    let degr = |rt: &[f64], i: usize| rt[i] / rt[0] - 1.0;

    let mut csv = String::from(
        "spike_s,original_s,original_degradation_pct,ompss_s,ompss_degradation_pct,degradation_ratio\n",
    );
    println!("band spikes (step 13, every 16th band):");
    for (i, &s) in severities.iter().enumerate() {
        let (d_o, d_t) = (degr(&orig, i), degr(&ompss, i));
        let ratio = if d_o > 0.0 { d_t / d_o } else { 0.0 };
        csv.push_str(&format!(
            "{:.4},{:.6},{:.2},{:.6},{:.2},{:.3}\n",
            s,
            orig[i],
            d_o * 100.0,
            ompss[i],
            d_t * 100.0,
            ratio
        ));
        println!(
            "  spike {:>6.3}s: original {:.4}s ({:+.1}%)  ompss {:.4}s ({:+.1}%)  ratio {:.2}",
            s,
            orig[i],
            d_o * 100.0,
            ompss[i],
            d_t * 100.0,
            ratio
        );
    }

    // --- Chronic slow rank (control): rank 0 stretched by a factor.
    let factors = [1.0_f64, 1.25, 1.5, 2.0];
    let slow_orig: Vec<f64> = factors
        .iter()
        .map(|&f| runtime(Mode::Original, &FaultPlan::slow_rank(0, f)))
        .collect();
    let slow_ompss: Vec<f64> = factors
        .iter()
        .map(|&f| runtime(Mode::TaskPerFft, &FaultPlan::slow_rank(0, f)))
        .collect();
    csv.push_str("\nslow_factor,original_s,original_degradation_pct,ompss_s,ompss_degradation_pct\n");
    println!("\nchronic slow rank 0:");
    for (i, &f) in factors.iter().enumerate() {
        let (d_o, d_t) = (degr(&slow_orig, i), degr(&slow_ompss, i));
        csv.push_str(&format!(
            "{:.2},{:.6},{:.2},{:.6},{:.2}\n",
            f,
            slow_orig[i],
            d_o * 100.0,
            slow_ompss[i],
            d_t * 100.0
        ));
        println!(
            "  factor {f:.2}: original {:.4}s ({:+.1}%)  ompss {:.4}s ({:+.1}%)",
            slow_orig[i],
            d_o * 100.0,
            slow_ompss[i],
            d_t * 100.0
        );
    }
    let mut h = Harness::new("resilience");
    h.artifact("resilience.csv", &csv, CheckKind::Byte);
    println!();

    let ratios: Vec<f64> = (1..severities.len())
        .map(|i| degr(&ompss, i) / degr(&orig, i))
        .collect();
    let orig_degs: Vec<f64> = (1..severities.len()).map(|i| degr(&orig, i)).collect();
    let max_ratio = ratios.iter().copied().fold(0.0f64, f64::max);
    println!("original degradations {orig_degs:?}; degradation ratios (ompss/original) {ratios:?}");
    h.metric("original_degradations", MetricValue::Floats { v: orig_degs.clone(), prec: 4 })
        .metric("degradation_ratios", MetricValue::Floats { v: ratios.clone(), prec: 4 })
        .metric_f64("max_degradation_ratio", max_ratio, 4)
        .metric_bool(
            "original_monotone",
            orig_degs.windows(2).all(|w| w[1] > w[0]) && orig_degs[0] > 0.0,
        )
        .metric_f64("slow_rank_orig_degradation", degr(&slow_orig, factors.len() - 1), 4)
        .metric_f64("slow_rank_ompss_degradation", degr(&slow_ompss, factors.len() - 1), 4);
    h.gate(
        "spikes degrade the original monotonically with severity",
        "original_monotone",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "task-per-FFT degradation is at most half the original's at matched severity",
        "max_degradation_ratio",
        GateOp::Le,
        0.5,
    )
    .gate(
        "control: a chronically slow rank hurts the original too (no free lunch)",
        "slow_rank_orig_degradation",
        GateOp::Ge,
        0.10,
    )
    .gate(
        "control: a chronically slow rank hurts task-per-FFT too",
        "slow_rank_ompss_degradation",
        GateOp::Ge,
        0.10,
    );
    std::process::exit(h.finish());
}
