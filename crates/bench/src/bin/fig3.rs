//! Figure 3: timeline of the FFT phase (8×8 original) with a zoom into one
//! repeating sub-phase, showing the phase structure (psi prep → pack →
//! z FFT → scatter → xy FFT/VOFR → and back), the per-phase IPC levels, the
//! MPI calls, and the two sub-communicator families.

use fftx_bench::{report_checks, write_artifact, ShapeCheck};
use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::{
    communicator_summary, render_timeline, timeline_csv, CommOp, StateClass, TimelineOptions,
};

fn main() {
    println!("=== Figure 3: FFT-phase timeline, 8 x 8 original ===\n");
    let run = run_modeled(FftxConfig::paper(8, Mode::Original));
    let trace = &run.trace;

    // Full phase (top of Fig. 3): 16 repeating iterations are visible as
    // repeating compute blocks.
    let full = render_timeline(
        trace,
        &TimelineOptions {
            width: 110,
            window: None,
            show_comm: true,
        },
    );
    println!("Full FFT phase (all 64 ranks, 16 iterations):");
    // Print only a subset of rows to keep the console readable.
    for (i, line) in full.lines().enumerate() {
        if i < 18 || line.starts_with("legend") {
            println!("{line}");
        }
    }
    println!("  ... ({} more rank rows)\n", 64usize.saturating_sub(16));

    // Zoom into the third repeating sub-phase (like the paper).
    let iter_len = run.runtime / 16.0;
    let zoom = (2.0 * iter_len, 3.2 * iter_len);
    let zoomed = render_timeline(
        trace,
        &TimelineOptions {
            width: 110,
            window: Some(zoom),
            show_comm: true,
        },
    );
    println!("Zoom into the third sub-phase:");
    for (i, line) in zoomed.lines().enumerate() {
        if i < 18 || line.starts_with("legend") {
            println!("{line}");
        }
    }
    println!();

    // Phase IPC table (the zoomed IPC timeline of the paper).
    println!("Per-phase IPC (duration-weighted means, model):");
    let mut ipc_rows = String::from("phase,mean_ipc,total_seconds\n");
    for class in StateClass::ALL {
        let t: f64 = trace
            .compute
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.duration())
            .sum();
        if t > 0.0 {
            println!("  {:<9} IPC {:.2}  ({:.3}s total)", class.name(), trace.mean_ipc(class), t);
            ipc_rows.push_str(&format!("{},{:.4},{:.6}\n", class.name(), trace.mean_ipc(class), t));
        }
    }
    println!();

    // Communicator structure (bottom-right of Fig. 3).
    let comms = communicator_summary(trace);
    println!("Communicator usage (first ranks):");
    for line in comms.lines().take(10) {
        println!("{line}");
    }
    println!("  ...\n");

    write_artifact("fig3_timeline.csv", &timeline_csv(trace));
    write_artifact("fig3_phase_ipc.csv", &ipc_rows);

    // Shape checks: phase IPC ordering and communicator families.
    let prep = trace.mean_ipc(StateClass::PsiPrep);
    let z = trace.mean_ipc(StateClass::FftZ);
    let xy = trace.mean_ipc(StateClass::FftXy);
    use std::collections::BTreeSet;
    let pack_comms: BTreeSet<u64> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoallv)
        .map(|r| r.comm_id)
        .collect();
    let scatter_comms: BTreeSet<u64> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall)
        .map(|r| r.comm_id)
        .collect();
    let pack_sizes: BTreeSet<usize> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoallv)
        .map(|r| r.comm_size)
        .collect();
    let scatter_sizes: BTreeSet<usize> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall)
        .map(|r| r.comm_size)
        .collect();

    let checks = vec![
        ShapeCheck::new(
            "psi preparation has very low IPC (paper: ~0.06)",
            prep < 0.15,
            format!("model {prep:.3}"),
        ),
        ShapeCheck::new(
            "z-FFT IPC sits between prep and the main phase (paper: ~0.52)",
            prep < z && z < xy,
            format!("prep {prep:.2} < z {z:.2} < xy {xy:.2}"),
        ),
        ShapeCheck::new(
            "main xy/VOFR phase is the high-IPC phase (paper: ~0.77)",
            (0.6..1.0).contains(&xy),
            format!("model {xy:.3}"),
        ),
        ShapeCheck::new(
            "pack/unpack runs on 8 sub-communicators of 8 neighbouring ranks",
            pack_comms.len() == 8 && pack_sizes == BTreeSet::from([8usize]),
            format!("{} communicators, sizes {pack_sizes:?}", pack_comms.len()),
        ),
        ShapeCheck::new(
            "scatter runs on 8 sub-communicators of 8 strided ranks",
            scatter_comms.len() == 8 && scatter_sizes == BTreeSet::from([8usize]),
            format!("{} communicators, sizes {scatter_sizes:?}", scatter_comms.len()),
        ),
        ShapeCheck::new(
            "64 FFT executions in groups of 8 (16 repeating phases here: 128 bands)",
            trace
                .comm
                .iter()
                .filter(|r| r.op == CommOp::Alltoall && r.lane.rank == 0)
                .count()
                == 2 * 16,
            "2 scatters per iteration x 16 iterations on rank 0".to_string(),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
