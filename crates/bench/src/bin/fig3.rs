//! Figure 3: timeline of the FFT phase (8×8 original) with a zoom into one
//! repeating sub-phase, showing the phase structure (psi prep → pack →
//! z FFT → scatter → xy FFT/VOFR → and back), the per-phase IPC levels, the
//! MPI calls, and the two sub-communicator families.

use fftx_bench::{results_dir, CheckKind, GateOp, Harness};
use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::{
    communicator_summary, render_timeline, timeline_csv, CommOp, EventLog, StateClass,
    TimelineOptions,
};

fn main() {
    println!("=== Figure 3: FFT-phase timeline, 8 x 8 original ===\n");
    let run = run_modeled(FftxConfig::paper(8, Mode::Original));
    let trace = &run.trace;

    // Full phase (top of Fig. 3): 16 repeating iterations are visible as
    // repeating compute blocks.
    let full = render_timeline(
        trace,
        &TimelineOptions {
            width: 110,
            window: None,
            show_comm: true,
        },
    );
    println!("Full FFT phase (all 64 ranks, 16 iterations):");
    // Print only a subset of rows to keep the console readable.
    for (i, line) in full.lines().enumerate() {
        if i < 18 || line.starts_with("legend") {
            println!("{line}");
        }
    }
    println!("  ... ({} more rank rows)\n", 64usize.saturating_sub(16));

    // Zoom into the third repeating sub-phase (like the paper).
    let iter_len = run.runtime / 16.0;
    let zoom = (2.0 * iter_len, 3.2 * iter_len);
    let zoomed = render_timeline(
        trace,
        &TimelineOptions {
            width: 110,
            window: Some(zoom),
            show_comm: true,
        },
    );
    println!("Zoom into the third sub-phase:");
    for (i, line) in zoomed.lines().enumerate() {
        if i < 18 || line.starts_with("legend") {
            println!("{line}");
        }
    }
    println!();

    // Phase IPC table (the zoomed IPC timeline of the paper).
    println!("Per-phase IPC (duration-weighted means, model):");
    let mut ipc_rows = String::from("phase,mean_ipc,total_seconds\n");
    for class in StateClass::ALL {
        let t: f64 = trace
            .compute
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.duration())
            .sum();
        if t > 0.0 {
            println!("  {:<9} IPC {:.2}  ({:.3}s total)", class.name(), trace.mean_ipc(class), t);
            ipc_rows.push_str(&format!("{},{:.4},{:.6}\n", class.name(), trace.mean_ipc(class), t));
        }
    }
    println!();

    // Communicator structure (bottom-right of Fig. 3).
    let comms = communicator_summary(trace);
    println!("Communicator usage (first ranks):");
    for line in comms.lines().take(10) {
        println!("{line}");
    }
    println!("  ...\n");

    let mut h = Harness::new("fig3");
    h.artifact("fig3_timeline.csv", &timeline_csv(trace), CheckKind::Byte);
    h.artifact("fig3_phase_ipc.csv", &ipc_rows, CheckKind::Byte);

    // The run's full event log in the columnar binary format: the .bin is a
    // run product (gitignored), while the converter-generated summary is a
    // committed, byte-checked artifact proving the encode→decode→query
    // path reproduces the log.
    let log = EventLog::from_trace(trace);
    let bytes = log.encode();
    let bin_path = results_dir().join("fig3_trace.bin");
    std::fs::write(&bin_path, &bytes).expect("write fig3_trace.bin");
    println!("[written] {} ({} bytes)", bin_path.display(), bytes.len());
    let decoded = EventLog::decode(&bytes).expect("decode fig3_trace.bin");
    let summary = fftx_trace::query::summary_csv(&decoded).expect("summary of decoded log");
    h.artifact("fig3_trace_summary.csv", &summary, CheckKind::Byte);

    // Shape checks: phase IPC ordering and communicator families.
    let prep = trace.mean_ipc(StateClass::PsiPrep);
    let z = trace.mean_ipc(StateClass::FftZ);
    let xy = trace.mean_ipc(StateClass::FftXy);
    use std::collections::BTreeSet;
    let pack_comms: BTreeSet<u64> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoallv)
        .map(|r| r.comm_id)
        .collect();
    let scatter_comms: BTreeSet<u64> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall)
        .map(|r| r.comm_id)
        .collect();
    let pack_sizes: BTreeSet<usize> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoallv)
        .map(|r| r.comm_size)
        .collect();
    let scatter_sizes: BTreeSet<usize> = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall)
        .map(|r| r.comm_size)
        .collect();

    let rank0_scatters = trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall && r.lane.rank == 0)
        .count() as u64;
    h.metric_f64("prep_ipc", prep, 4)
        .metric_f64("z_ipc", z, 4)
        .metric_f64("xy_ipc", xy, 4)
        .metric_bool("ipc_ordering_prep_z_xy", prep < z && z < xy)
        .metric_u64("pack_communicators", pack_comms.len() as u64)
        .metric_u64("scatter_communicators", scatter_comms.len() as u64)
        .metric_bool(
            "pack_family_8x8",
            pack_comms.len() == 8 && pack_sizes == BTreeSet::from([8usize]),
        )
        .metric_bool(
            "scatter_family_8x8",
            scatter_comms.len() == 8 && scatter_sizes == BTreeSet::from([8usize]),
        )
        .metric_u64("rank0_scatters", rank0_scatters)
        .metric_u64("log_bytes", bytes.len() as u64);
    h.gate(
        "psi preparation has very low IPC (paper: ~0.06)",
        "prep_ipc",
        GateOp::Le,
        0.15,
    )
    .gate(
        "z-FFT IPC sits between prep and the main phase (paper: ~0.52)",
        "ipc_ordering_prep_z_xy",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "main xy/VOFR phase is the high-IPC phase (paper: ~0.77, >= 0.6)",
        "xy_ipc",
        GateOp::Ge,
        0.6,
    )
    .gate(
        "main xy/VOFR phase IPC stays below 1.0",
        "xy_ipc",
        GateOp::Le,
        1.0,
    )
    .gate(
        "pack/unpack runs on 8 sub-communicators of 8 neighbouring ranks",
        "pack_family_8x8",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "scatter runs on 8 sub-communicators of 8 strided ranks",
        "scatter_family_8x8",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "64 FFT executions in groups of 8 (2 scatters x 16 iterations on rank 0)",
        "rank0_scatters",
        GateOp::Eq,
        32.0,
    );
    std::process::exit(h.finish());
}
