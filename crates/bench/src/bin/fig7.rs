//! Figure 7: the effect of de-synchronising the compute phases — timelines
//! (left) and IPC × duration histograms (right) for the original 8×8 vs the
//! OmpSs 8×8 execution. Paper claims: the original runs its phases in
//! synchronised blocks, the OmpSs version scatters them; the main compute
//! phase's IPC rises from ~0.75 to ~0.85.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{run_modeled, FftxConfig, Mode, ModeledRun};
use fftx_trace::{render_timeline, IpcHistogram, StateClass, TimelineOptions};

/// Duration-weighted mean count of main-phase co-runners observed by a
/// main-phase burst — 64 in perfect lockstep, ~(main-phase time share)·64
/// when fully de-synchronised.
fn concentration(run: &ModeledRun) -> f64 {
    let trace = &run.trace;
    let (t0, t1) = (run.runtime * 0.1, run.runtime * 0.9);
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..400 {
        let t = t0 + (t1 - t0) * (i as f64 + 0.5) / 400.0;
        let mut xy = 0.0;
        for r in &trace.compute {
            if r.t_start <= t
                && t < r.t_end
                && (r.class == StateClass::FftXy || r.class == StateClass::Vofr)
            {
                xy += 1.0;
            }
        }
        num += xy * xy;
        den += xy;
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

fn main() {
    println!("=== Figure 7: de-synchronisation, original 8x8 vs OmpSs 8x8 ===\n");
    let orig = run_modeled(FftxConfig::paper(8, Mode::Original));
    let ompss = run_modeled(FftxConfig::paper(8, Mode::TaskPerFft));
    let mut h = Harness::new("fig7");

    for (name, run) in [("original", &orig), ("ompss", &ompss)] {
        println!("--- {name} (runtime {:.4}s) ---", run.runtime);
        // A mid-run window, a few iterations wide, like the paper's crop.
        let window = (run.runtime * 0.35, run.runtime * 0.65);
        let tl = render_timeline(
            &run.trace,
            &TimelineOptions {
                width: 100,
                window: Some(window),
                show_comm: false,
            },
        );
        for (i, line) in tl.lines().enumerate() {
            if i < 18 || line.starts_with("legend") {
                println!("{line}");
            }
        }
        println!("  ...");

        let hist = IpcHistogram::from_trace(&run.trace, Some(StateClass::FftXy), 40, 0.0, 1.2);
        println!("\nIPC histogram of the main (xy-FFT) phase:");
        print!("{}", {
            // Only show a subset of lanes for readability.
            let rendered = hist.render();
            rendered
                .lines()
                .take(14)
                .chain(rendered.lines().filter(|l| l.trim_start().starts_with("ipc:")))
                .collect::<Vec<_>>()
                .join("\n")
        });
        println!("\n  main-phase mean IPC: {:.3}, spread (stddev): {:.3}\n",
            hist.weighted_mean_ipc(), hist.ipc_spread());
        h.artifact(&format!("fig7_hist_{name}.csv"), &hist.to_csv(), CheckKind::Byte);
    }

    let ipc_orig = orig.trace.mean_ipc(StateClass::FftXy);
    let ipc_ompss = ompss.trace.mean_ipc(StateClass::FftXy);
    let conc_orig = concentration(&orig);
    let conc_ompss = concentration(&ompss);
    let spread_orig = IpcHistogram::from_trace(&orig.trace, Some(StateClass::FftXy), 60, 0.0, 1.2)
        .ipc_spread();
    let spread_ompss =
        IpcHistogram::from_trace(&ompss.trace, Some(StateClass::FftXy), 60, 0.0, 1.2).ipc_spread();

    let mut csv = String::from("version,main_ipc,ipc_spread,main_phase_concentration\n");
    csv.push_str(&format!("original,{ipc_orig:.4},{spread_orig:.4},{conc_orig:.2}\n"));
    csv.push_str(&format!("ompss,{ipc_ompss:.4},{spread_ompss:.4},{conc_ompss:.2}\n"));
    h.artifact("fig7_summary.csv", &csv, CheckKind::Byte);

    println!(
        "IPC {ipc_orig:.3} -> {ipc_ompss:.3}; main-phase co-runners {conc_orig:.1} -> \
         {conc_ompss:.1} (of 64); IPC stddev {spread_orig:.3} -> {spread_ompss:.3}"
    );
    h.metric_f64("ipc_original", ipc_orig, 4)
        .metric_f64("ipc_ompss", ipc_ompss, 4)
        .metric_f64("ipc_gain", ipc_ompss - ipc_orig, 4)
        .metric_f64("concentration_original", conc_orig, 2)
        .metric_f64("concentration_ompss", conc_ompss, 2)
        .metric_f64("concentration_drop", conc_orig - conc_ompss, 2)
        .metric_f64("ipc_spread_original", spread_orig, 4)
        .metric_f64("ipc_spread_ompss", spread_ompss, 4)
        .metric_bool("ompss_spread_wider", spread_ompss > spread_orig);
    h.gate(
        "main-phase IPC rises with de-synchronisation (paper: 0.75 -> 0.85)",
        "ipc_gain",
        GateOp::Ge,
        0.03,
    )
    .gate(
        "OmpSs main-phase IPC lands near the paper's 0.85 (>= 0.78)",
        "ipc_ompss",
        GateOp::Ge,
        0.78,
    )
    .gate(
        "OmpSs main-phase IPC stays below 0.95",
        "ipc_ompss",
        GateOp::Le,
        0.95,
    )
    .gate(
        "phases are de-synchronised (lower main-phase concentration)",
        "concentration_drop",
        GateOp::Ge,
        4.0,
    )
    .gate(
        "OmpSs IPC distribution is more scattered (the 'chaotic' histogram)",
        "ompss_spread_wider",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
