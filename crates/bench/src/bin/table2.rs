//! Table II: efficiency and scalability factors for the OmpSs (task-per-FFT)
//! version, 1×8 .. 16×8, plus the cross-table comparison against Table I
//! that carries the paper's argument: better computation/IPC scalability at
//! the cost of some parallel efficiency.

use fftx_bench::{
    render_comparison, report_checks, sweep, sweep_csv, write_artifact, ShapeCheck, PAPER_TABLE2,
};
use fftx_core::Mode;
use fftx_trace::render_efficiency_table;

fn main() {
    println!("=== Table II: efficiency/scalability factors (OmpSs task-per-FFT) ===\n");
    let points = sweep(Mode::TaskPerFft, &[1, 2, 4, 8, 16]);
    let original = sweep(Mode::Original, &[1, 2, 4, 8, 16]);

    let columns: Vec<(String, fftx_trace::EfficiencyFactors)> = points
        .iter()
        .map(|p| (p.label.clone(), p.factors))
        .collect();
    print!(
        "{}",
        render_efficiency_table(
            "EFFICIENCY AND SCALABILITY FACTORS FOR EXECUTIONS WITH 1-16 RANKS WITH 8 OMPSS TASKS EACH (model)",
            &columns
        )
    );
    println!();
    print!("{}", render_comparison("Model vs paper:", &points, &PAPER_TABLE2));
    write_artifact("table2_factors.csv", &sweep_csv(&points));

    let t2 = |i: usize| &points[i].factors;
    let t1 = |i: usize| &original[i].factors;
    let checks = vec![
        ShapeCheck::new(
            "computation scalability beats the original at full node",
            t2(3).scal.computation > t1(3).scal.computation
                && t2(4).scal.computation > t1(4).scal.computation * 0.97,
            format!(
                "8x8: {:.1}% vs {:.1}% | 16x8: {:.1}% vs {:.1}% (paper: 61.4/54.7, 37.3/27.3)",
                t2(3).scal.computation * 100.0,
                t1(3).scal.computation * 100.0,
                t2(4).scal.computation * 100.0,
                t1(4).scal.computation * 100.0
            ),
        ),
        ShapeCheck::new(
            "IPC scalability beats the original at full node",
            t2(3).scal.ipc > t1(3).scal.ipc,
            format!(
                "8x8: {:.1}% vs {:.1}% (paper: 66.1 vs 56.3)",
                t2(3).scal.ipc * 100.0,
                t1(3).scal.ipc * 100.0
            ),
        ),
        ShapeCheck::new(
            "2x hyper-threading hurts IPC less than in the original",
            t2(4).scal.ipc / t2(3).scal.ipc > t1(4).scal.ipc / t1(3).scal.ipc,
            format!(
                "ompss ratio {:.2} vs original {:.2} (paper: 0.64 vs 0.50)",
                t2(4).scal.ipc / t2(3).scal.ipc,
                t1(4).scal.ipc / t1(3).scal.ipc
            ),
        ),
        ShapeCheck::new(
            "communication efficiency still decreases with rank count",
            t2(4).intra.comm_efficiency < t2(0).intra.comm_efficiency,
            format!(
                "1x8 {:.1}% -> 16x8 {:.1}%",
                t2(0).intra.comm_efficiency * 100.0,
                t2(4).intra.comm_efficiency * 100.0
            ),
        ),
        ShapeCheck::new(
            "1x8 reference is near-perfect (ParEff ~99%)",
            t2(0).intra.parallel_efficiency > 0.97,
            format!(
                "{:.1}% (paper 99.1%)",
                t2(0).intra.parallel_efficiency * 100.0
            ),
        ),
        ShapeCheck::new(
            "global efficiency at 8x8 beats the original's",
            t2(3).global > t1(3).global,
            format!(
                "{:.1}% vs {:.1}% (paper: 51.1 vs 49.8)",
                t2(3).global * 100.0,
                t1(3).global * 100.0
            ),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
