//! Table II: efficiency and scalability factors for the OmpSs (task-per-FFT)
//! version, 1×8 .. 16×8, plus the cross-table comparison against Table I
//! that carries the paper's argument: better computation/IPC scalability at
//! the cost of some parallel efficiency.

use fftx_bench::{
    render_comparison, sweep, sweep_csv, CheckKind, GateOp, Harness, PAPER_TABLE2,
};
use fftx_core::Mode;
use fftx_trace::render_efficiency_table;

fn main() {
    println!("=== Table II: efficiency/scalability factors (OmpSs task-per-FFT) ===\n");
    let points = sweep(Mode::TaskPerFft, &[1, 2, 4, 8, 16]);
    let original = sweep(Mode::Original, &[1, 2, 4, 8, 16]);

    let columns: Vec<(String, fftx_trace::EfficiencyFactors)> = points
        .iter()
        .map(|p| (p.label.clone(), p.factors))
        .collect();
    print!(
        "{}",
        render_efficiency_table(
            "EFFICIENCY AND SCALABILITY FACTORS FOR EXECUTIONS WITH 1-16 RANKS WITH 8 OMPSS TASKS EACH (model)",
            &columns
        )
    );
    println!();
    print!("{}", render_comparison("Model vs paper:", &points, &PAPER_TABLE2));
    let mut h = Harness::new("table2");
    h.artifact("table2_factors.csv", &sweep_csv(&points), CheckKind::Byte);

    let t2 = |i: usize| &points[i].factors;
    let t1 = |i: usize| &original[i].factors;
    println!(
        "8x8 comp scal {:.1}% vs original {:.1}%; 16x8 {:.1}% vs {:.1}% \
         (paper: 61.4/54.7, 37.3/27.3)",
        t2(3).scal.computation * 100.0,
        t1(3).scal.computation * 100.0,
        t2(4).scal.computation * 100.0,
        t1(4).scal.computation * 100.0
    );
    h.metric_f64("comp_scal_8x8", t2(3).scal.computation, 4)
        .metric_f64("comp_scal_8x8_original", t1(3).scal.computation, 4)
        .metric_f64("comp_scal_16x8", t2(4).scal.computation, 4)
        .metric_f64("comp_scal_16x8_original", t1(4).scal.computation, 4)
        .metric_bool(
            "comp_scal_beats_original",
            t2(3).scal.computation > t1(3).scal.computation
                && t2(4).scal.computation > t1(4).scal.computation * 0.97,
        )
        .metric_f64("ipc_scal_8x8", t2(3).scal.ipc, 4)
        .metric_f64("ipc_scal_8x8_original", t1(3).scal.ipc, 4)
        .metric_f64("ht_ipc_ratio", t2(4).scal.ipc / t2(3).scal.ipc, 4)
        .metric_f64("ht_ipc_ratio_original", t1(4).scal.ipc / t1(3).scal.ipc, 4)
        .metric_bool(
            "comm_eff_decreases",
            t2(4).intra.comm_efficiency < t2(0).intra.comm_efficiency,
        )
        .metric_f64("parallel_eff_1x8", t2(0).intra.parallel_efficiency, 4)
        .metric_f64("global_eff_8x8", t2(3).global, 4)
        .metric_f64("global_eff_8x8_original", t1(3).global, 4)
        .metric_bool("ipc_beats_original_8x8", t2(3).scal.ipc > t1(3).scal.ipc)
        .metric_bool(
            "ht_ratio_beats_original",
            t2(4).scal.ipc / t2(3).scal.ipc > t1(4).scal.ipc / t1(3).scal.ipc,
        )
        .metric_bool("global_beats_original_8x8", t2(3).global > t1(3).global);
    h.gate(
        "computation scalability beats the original at full node",
        "comp_scal_beats_original",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "IPC scalability beats the original at full node (paper: 66.1 vs 56.3)",
        "ipc_beats_original_8x8",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "2x hyper-threading hurts IPC less than in the original (paper: 0.64 vs 0.50)",
        "ht_ratio_beats_original",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "communication efficiency still decreases with rank count",
        "comm_eff_decreases",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "1x8 reference is near-perfect (ParEff ~99%)",
        "parallel_eff_1x8",
        GateOp::Ge,
        0.97,
    )
    .gate(
        "global efficiency at 8x8 beats the original's (paper: 51.1 vs 49.8)",
        "global_beats_original_8x8",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
