//! Extension: the paper's future work (Section VI) — "overlap communication
//! and computation with asynchronously scheduled tasks … using MPI
//! communication within OmpSs tasks" (Marjanović et al.). This binary
//! compares, on the modeled KNL node:
//!
//! * strategy 1 (task-per-step, blocking collectives inside tasks),
//! * strategy 2 (task-per-FFT),
//! * the future-work mode: strategy 1 with *split-phase* collectives
//!   (post/wait in separate tasks), so transfers overlap other bands'
//!   compute automatically.

use fftx_bench::{report_checks, write_artifact, ShapeCheck};
use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::StateClass;

fn comm_wait_per_lane(run: &fftx_core::ModeledRun) -> f64 {
    let lanes = run.trace.lanes().len() as f64;
    run.trace.comm.iter().map(|r| r.duration()).sum::<f64>() / lanes
}

fn main() {
    println!("=== Future work: split-phase collectives inside tasks ===\n");
    let mut rows = String::from("config,mode,runtime_s,comm_wait_per_lane_s,main_ipc\n");
    let mut results = Vec::new();
    for nr in [8usize, 16] {
        for mode in [Mode::Original, Mode::TaskPerStep, Mode::TaskPerFft, Mode::TaskAsync] {
            let run = run_modeled(FftxConfig::paper(nr, mode));
            let wait = comm_wait_per_lane(&run);
            println!(
                "{:>2} x 8  {:<12} runtime {:.4}s   comm wait/lane {:.4}s   main IPC {:.3}",
                nr,
                mode.name(),
                run.runtime,
                wait,
                run.trace.mean_ipc(StateClass::FftXy)
            );
            rows.push_str(&format!(
                "{} x 8,{},{:.6},{:.6},{:.4}\n",
                nr,
                mode.name(),
                run.runtime,
                wait,
                run.trace.mean_ipc(StateClass::FftXy)
            ));
            results.push((nr, mode, run.runtime, wait));
        }
        println!();
    }
    write_artifact("future_overlap.csv", &rows);

    let get = |nr: usize, mode: Mode| {
        results
            .iter()
            .find(|(n, m, _, _)| *n == nr && *m == mode)
            .map(|(_, _, rt, w)| (*rt, *w))
            .expect("present")
    };
    let (steps8, steps8_wait) = get(8, Mode::TaskPerStep);
    let (async8, async8_wait) = get(8, Mode::TaskAsync);
    let (orig8, _) = get(8, Mode::Original);
    let (steps16, _) = get(16, Mode::TaskPerStep);
    let (async16, _) = get(16, Mode::TaskAsync);

    let checks = vec![
        ShapeCheck::new(
            "split-phase collectives cut the per-lane communication wait",
            async8_wait < 0.8 * steps8_wait,
            format!("steps {steps8_wait:.4}s -> async {async8_wait:.4}s per lane"),
        ),
        ShapeCheck::new(
            "the future-work mode is at least as fast as strategy 1",
            async8 <= steps8 * 1.005 && async16 <= steps16 * 1.005,
            format!("8x8: {async8:.4}s vs {steps8:.4}s; 16x8: {async16:.4}s vs {steps16:.4}s"),
        ),
        ShapeCheck::new(
            "the future-work mode beats the original",
            async8 < orig8,
            format!(
                "{async8:.4}s vs {orig8:.4}s ({:+.1}%)",
                (1.0 - async8 / orig8) * 100.0
            ),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
