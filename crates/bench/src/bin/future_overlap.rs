//! Extension: the paper's future work (Section VI) — "overlap communication
//! and computation with asynchronously scheduled tasks … using MPI
//! communication within OmpSs tasks" (Marjanović et al.). This binary
//! compares, on the modeled KNL node:
//!
//! * strategy 1 (task-per-step, blocking collectives inside tasks),
//! * strategy 2 (task-per-FFT),
//! * the future-work mode: strategy 1 with *split-phase* collectives
//!   (post/wait in separate tasks), so transfers overlap other bands'
//!   compute automatically.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::StateClass;

fn comm_wait_per_lane(run: &fftx_core::ModeledRun) -> f64 {
    let lanes = run.trace.lanes().len() as f64;
    run.trace.comm.iter().map(|r| r.duration()).sum::<f64>() / lanes
}

fn main() {
    println!("=== Future work: split-phase collectives inside tasks ===\n");
    let mut rows = String::from("config,mode,runtime_s,comm_wait_per_lane_s,main_ipc\n");
    let mut results = Vec::new();
    for nr in [8usize, 16] {
        for mode in [Mode::Original, Mode::TaskPerStep, Mode::TaskPerFft, Mode::TaskAsync] {
            let run = run_modeled(FftxConfig::paper(nr, mode));
            let wait = comm_wait_per_lane(&run);
            println!(
                "{:>2} x 8  {:<12} runtime {:.4}s   comm wait/lane {:.4}s   main IPC {:.3}",
                nr,
                mode.name(),
                run.runtime,
                wait,
                run.trace.mean_ipc(StateClass::FftXy)
            );
            rows.push_str(&format!(
                "{} x 8,{},{:.6},{:.6},{:.4}\n",
                nr,
                mode.name(),
                run.runtime,
                wait,
                run.trace.mean_ipc(StateClass::FftXy)
            ));
            results.push((nr, mode, run.runtime, wait));
        }
        println!();
    }
    let mut h = Harness::new("future_overlap");
    h.artifact("future_overlap.csv", &rows, CheckKind::Byte);

    let get = |nr: usize, mode: Mode| {
        results
            .iter()
            .find(|(n, m, _, _)| *n == nr && *m == mode)
            .map(|(_, _, rt, w)| (*rt, *w))
            .expect("present")
    };
    let (steps8, steps8_wait) = get(8, Mode::TaskPerStep);
    let (async8, async8_wait) = get(8, Mode::TaskAsync);
    let (orig8, _) = get(8, Mode::Original);
    let (steps16, _) = get(16, Mode::TaskPerStep);
    let (async16, _) = get(16, Mode::TaskAsync);

    println!(
        "8x8: async {async8:.4}s vs steps {steps8:.4}s vs original {orig8:.4}s; \
         16x8: async {async16:.4}s vs steps {steps16:.4}s"
    );
    h.metric_f64("steps8_s", steps8, 6)
        .metric_f64("async8_s", async8, 6)
        .metric_f64("orig8_s", orig8, 6)
        .metric_f64("steps8_wait_s", steps8_wait, 6)
        .metric_f64("async8_wait_s", async8_wait, 6)
        .metric_f64("wait_ratio_8x8", async8_wait / steps8_wait, 4)
        .metric_bool(
            "async_at_least_as_fast_as_steps",
            async8 <= steps8 * 1.005 && async16 <= steps16 * 1.005,
        )
        .metric_bool("async_beats_original", async8 < orig8);
    h.gate(
        "split-phase collectives cut the per-lane communication wait",
        "wait_ratio_8x8",
        GateOp::Le,
        0.8,
    )
    .gate(
        "the future-work mode is at least as fast as strategy 1",
        "async_at_least_as_fast_as_steps",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "the future-work mode beats the original",
        "async_beats_original",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
