//! Real-engine FFT benchmark: throughput and correctness of the native
//! kernels that every modeled run ultimately prices. Emits
//! `BENCH_fft.json` — the throughput numbers are wall-clock (volatile, the
//! artifact is structure-checked); the gates sit only on accuracy, which
//! is deterministic.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_fft::opcount::{fft_3d_flops, fft_flops};
use fftx_fft::{c64, max_dist, naive_dft, scale_in_place, Complex64, Direction, Fft, Fft3};
use std::time::Instant;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

/// Best-of-3 wall seconds for `iters` repetitions of `f`.
fn time3<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn main() {
    println!("=== Real FFT engine: correctness and throughput ===\n");
    let mut h = Harness::new_volatile("fft");
    let mut rows = String::from("transform,n,seconds,mflops\n");

    // --- Correctness: every fast path vs the O(n^2) oracle. Sizes cover
    // the radix kernels, the mixed-radix path and Bluestein (prime 127).
    let mut max_err = 0.0f64;
    for &n in &[8usize, 60, 90, 125, 127, 128, 243] {
        let x = signal(n);
        let want = naive_dft(&x, Direction::Forward);
        let mut got = x.clone();
        Fft::new(n).forward(&mut got);
        max_err = max_err.max(max_dist(&got, &want) / n as f64);
    }
    println!("1-D forward vs naive DFT: max normalized error {max_err:.3e}");

    // Round trip: forward then inverse then 1/n scaling must reproduce the
    // input to machine precision.
    let mut rt_err = 0.0f64;
    for &n in &[90usize, 128, 127] {
        let x = signal(n);
        let mut buf = x.clone();
        let plan = Fft::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        scale_in_place(&mut buf, 1.0 / n as f64);
        rt_err = rt_err.max(max_dist(&buf, &x));
    }
    println!("1-D round trip: max error {rt_err:.3e}");

    // 3-D round trip on the paper-like grid shape. `Fft3::forward` is
    // already 1/N-scaled (QE convention) and `inverse` unnormalised, so
    // forward→inverse is the identity with no extra scaling.
    let (nx, ny, nz) = (30usize, 30, 32);
    let plan3 = Fft3::new(nx, ny, nz);
    let vol = plan3.volume();
    let x3 = signal(vol);
    let mut buf3 = x3.clone();
    plan3.forward(&mut buf3);
    plan3.inverse(&mut buf3);
    let rt3_err = max_dist(&buf3, &x3);
    println!("3-D ({nx}x{ny}x{nz}) round trip: max error {rt3_err:.3e}\n");

    // --- Throughput: wall-clock, volatile. MFLOP/s from the shared op
    // model so the number is comparable across runs and hosts.
    let mut peak_1d = 0.0f64;
    for &n in &[128usize, 512, 2048] {
        let plan = Fft::new(n);
        let mut buf = signal(n);
        let s = time3(((1usize << 18) / n).max(64), || plan.forward(&mut buf));
        let mflops = fft_flops(n) / s / 1e6;
        peak_1d = peak_1d.max(mflops);
        println!("1-D n={n:<5} {s:.3e}s/transform  {mflops:8.1} MFLOP/s");
        rows.push_str(&format!("fft1d,{n},{s:.6e},{mflops:.1}\n"));
    }
    let mut buf3 = signal(vol);
    let s3 = time3(8, || plan3.forward(&mut buf3));
    let mflops3 = fft_3d_flops(nx, ny, nz) / s3 / 1e6;
    println!("3-D {nx}x{ny}x{nz}  {s3:.3e}s/transform  {mflops3:8.1} MFLOP/s");
    rows.push_str(&format!("fft3d,{vol},{s3:.6e},{mflops3:.1}\n"));

    h.artifact("fft.csv", &rows, CheckKind::Structure);
    h.metric_f64("max_norm_err_vs_naive", max_err, 18)
        .metric_f64("roundtrip_err_1d", rt_err, 18)
        .metric_f64("roundtrip_err_3d", rt3_err, 18)
        .metric_f64("peak_1d_mflops", peak_1d, 1)
        .metric_f64("fft3d_mflops", mflops3, 1)
        .metric_bool("throughput_positive", peak_1d > 0.0 && mflops3 > 0.0);
    h.gate(
        "fast 1-D transforms match the naive DFT oracle",
        "max_norm_err_vs_naive",
        GateOp::Le,
        1e-12,
    )
    .gate(
        "1-D forward/inverse round trip is machine-precision",
        "roundtrip_err_1d",
        GateOp::Le,
        1e-10,
    )
    .gate(
        "3-D forward/inverse round trip is machine-precision",
        "roundtrip_err_3d",
        GateOp::Le,
        1e-10,
    )
    .gate(
        "the engine produced finite positive throughput",
        "throughput_positive",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
