//! Table I: efficiency and scalability factors for the original version,
//! 1×8 .. 16×8. Printed in the paper's layout plus a side-by-side model-vs-
//! paper comparison and shape checks on every column trend.

use fftx_bench::{
    render_comparison, sweep, sweep_csv, CheckKind, GateOp, Harness, PAPER_TABLE1,
};
use fftx_core::Mode;
use fftx_trace::render_efficiency_table;

fn main() {
    println!("=== Table I: efficiency/scalability factors (original) ===\n");
    let points = sweep(Mode::Original, &[1, 2, 4, 8, 16]);

    let columns: Vec<(String, fftx_trace::EfficiencyFactors)> = points
        .iter()
        .map(|p| (p.label.clone(), p.factors))
        .collect();
    print!(
        "{}",
        render_efficiency_table(
            "EFFICIENCY AND SCALABILITY FACTORS FOR EXECUTIONS WITH 1-16 RANKS WITH 8 FFT TASK GROUPS EACH (model)",
            &columns
        )
    );
    println!();
    print!("{}", render_comparison("Model vs paper:", &points, &PAPER_TABLE1));
    let mut h = Harness::new("table1");
    h.artifact("table1_factors.csv", &sweep_csv(&points), CheckKind::Byte);

    let f = |i: usize| &points[i].factors;
    let max_ipc_err = (1..5)
        .map(|i| (points[i].factors.scal.ipc - PAPER_TABLE1[i].ipc).abs())
        .fold(0.0f64, f64::max);
    let ht_ipc_ratio = f(4).scal.ipc / f(3).scal.ipc;
    let min_lb = points
        .iter()
        .map(|p| p.factors.intra.load_balance)
        .fold(f64::INFINITY, f64::min);
    let max_ins_err = points
        .iter()
        .map(|p| (p.factors.scal.instructions - 1.0).abs())
        .fold(0.0f64, f64::max);
    println!(
        "model IPC scal [{}] vs paper [{}]",
        points
            .iter()
            .map(|p| format!("{:.2}", p.factors.scal.ipc))
            .collect::<Vec<_>>()
            .join(", "),
        PAPER_TABLE1
            .iter()
            .map(|c| format!("{:.2}", c.ipc))
            .collect::<Vec<_>>()
            .join(", ")
    );
    h.metric_f64("comm_eff_1x8", f(0).intra.comm_efficiency, 4)
        .metric_f64("comm_eff_16x8", f(4).intra.comm_efficiency, 4)
        .metric_bool(
            "comm_eff_decreases",
            f(4).intra.comm_efficiency < f(0).intra.comm_efficiency,
        )
        .metric_f64("comp_scal_8x8", f(3).scal.computation, 4)
        .metric_f64("comp_scal_16x8", f(4).scal.computation, 4)
        .metric_f64("max_ipc_err_vs_paper", max_ipc_err, 4)
        .metric_f64("ht_ipc_ratio", ht_ipc_ratio, 4)
        .metric_f64("min_load_balance", min_lb, 4)
        .metric_f64("max_ins_scal_err", max_ins_err, 4)
        .metric_f64("global_eff_16x8", f(4).global, 4);
    h.gate(
        "communication efficiency decreases with rank count",
        "comm_eff_decreases",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "computation scalability collapses at 8x8 (paper: 54.7%)",
        "comp_scal_8x8",
        GateOp::Le,
        0.70,
    )
    .gate(
        "computation scalability collapses at 16x8 (paper: 27.3%)",
        "comp_scal_16x8",
        GateOp::Le,
        0.40,
    )
    .gate(
        "IPC scalability tracks the paper column within 8 points",
        "max_ipc_err_vs_paper",
        GateOp::Le,
        0.08,
    )
    .gate(
        "IPC halving under 2x HT: ratio at least 0.40 (paper 0.50)",
        "ht_ipc_ratio",
        GateOp::Ge,
        0.40,
    )
    .gate(
        "IPC halving under 2x HT: ratio at most 0.62 (paper 0.50)",
        "ht_ipc_ratio",
        GateOp::Le,
        0.62,
    )
    .gate(
        "load balance stays high (the code is well balanced)",
        "min_load_balance",
        GateOp::Ge,
        0.92,
    )
    .gate(
        "instruction scalability stays near 100% (no work replication)",
        "max_ins_scal_err",
        GateOp::Le,
        0.03,
    )
    .gate(
        "global efficiency collapses to ~quarter at 16x8 (paper 23.5%)",
        "global_eff_16x8",
        GateOp::Le,
        0.40,
    );
    std::process::exit(h.finish());
}
