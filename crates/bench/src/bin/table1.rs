//! Table I: efficiency and scalability factors for the original version,
//! 1×8 .. 16×8. Printed in the paper's layout plus a side-by-side model-vs-
//! paper comparison and shape checks on every column trend.

use fftx_bench::{
    render_comparison, report_checks, sweep, sweep_csv, write_artifact, ShapeCheck, PAPER_TABLE1,
};
use fftx_core::Mode;
use fftx_trace::render_efficiency_table;

fn main() {
    println!("=== Table I: efficiency/scalability factors (original) ===\n");
    let points = sweep(Mode::Original, &[1, 2, 4, 8, 16]);

    let columns: Vec<(String, fftx_trace::EfficiencyFactors)> = points
        .iter()
        .map(|p| (p.label.clone(), p.factors))
        .collect();
    print!(
        "{}",
        render_efficiency_table(
            "EFFICIENCY AND SCALABILITY FACTORS FOR EXECUTIONS WITH 1-16 RANKS WITH 8 FFT TASK GROUPS EACH (model)",
            &columns
        )
    );
    println!();
    print!("{}", render_comparison("Model vs paper:", &points, &PAPER_TABLE1));
    write_artifact("table1_factors.csv", &sweep_csv(&points));

    let f = |i: usize| &points[i].factors;
    let checks = vec![
        ShapeCheck::new(
            "communication efficiency decreases with rank count",
            f(4).intra.comm_efficiency < f(0).intra.comm_efficiency,
            format!(
                "1x8 {:.1}% -> 16x8 {:.1}%",
                f(0).intra.comm_efficiency * 100.0,
                f(4).intra.comm_efficiency * 100.0
            ),
        ),
        ShapeCheck::new(
            "computation scalability collapses (the key finding)",
            f(3).scal.computation < 0.70 && f(4).scal.computation < 0.40,
            format!(
                "8x8 {:.1}%, 16x8 {:.1}% (paper: 54.7%, 27.3%)",
                f(3).scal.computation * 100.0,
                f(4).scal.computation * 100.0
            ),
        ),
        ShapeCheck::new(
            "IPC scalability tracks the paper column within 8 points",
            (1..5).all(|i| {
                (points[i].factors.scal.ipc - PAPER_TABLE1[i].ipc).abs() < 0.08
            }),
            format!(
                "model [{}] vs paper [{}]",
                points
                    .iter()
                    .map(|p| format!("{:.2}", p.factors.scal.ipc))
                    .collect::<Vec<_>>()
                    .join(", "),
                PAPER_TABLE1
                    .iter()
                    .map(|c| format!("{:.2}", c.ipc))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
        ShapeCheck::new(
            "IPC roughly halves under 2x hyper-threading (8x8 -> 16x8)",
            {
                let ratio = f(4).scal.ipc / f(3).scal.ipc;
                (0.40..0.62).contains(&ratio)
            },
            format!("ratio {:.2} (paper 0.50)", f(4).scal.ipc / f(3).scal.ipc),
        ),
        ShapeCheck::new(
            "load balance stays high (the code is well balanced)",
            points.iter().all(|p| p.factors.intra.load_balance > 0.92),
            format!(
                "min LB {:.1}%",
                points
                    .iter()
                    .map(|p| p.factors.intra.load_balance)
                    .fold(f64::INFINITY, f64::min)
                    * 100.0
            ),
        ),
        ShapeCheck::new(
            "instruction scalability stays near 100% (no work replication)",
            points.iter().all(|p| (p.factors.scal.instructions - 1.0).abs() < 0.03),
            "all within 3% of 100%".to_string(),
        ),
        ShapeCheck::new(
            "global efficiency collapses to ~quarter at 16x8",
            f(4).global < 0.40,
            format!("16x8 global {:.1}% (paper 23.5%)", f(4).global * 100.0),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
