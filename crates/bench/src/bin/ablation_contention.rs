//! Ablation C: which model mechanism produces which observable. Runs the
//! 8×8 original and OmpSs configurations with individual mechanisms of the
//! KNL model disabled:
//!
//! * full model (paper calibration)
//! * no node contention (`ContentionModel::uncontended` but keeping noise)
//! * no system/band noise (perfectly repeatable kernel)
//! * ideal network (zero-cost transfers)
//!
//! The claims being isolated: contention causes the IPC collapse; per-band
//! variability is what dynamic scheduling absorbs; the network model carries
//! the communication-efficiency decay.

use fftx_bench::{report_checks, write_artifact, ShapeCheck};
use fftx_core::{run_modeled_with, FftxConfig, Mode};
use fftx_knlsim::{CommModel, ContentionModel, KnlConfig};
use fftx_trace::StateClass;

fn main() {
    println!("=== Ablation C: mechanism isolation (8x8) ===\n");
    let knl = KnlConfig::paper();
    let full = ContentionModel::paper();
    let no_contention = ContentionModel {
        enabled: false,
        ..full
    };
    let no_noise = ContentionModel {
        noise: 0.0,
        band_noise: 0.0,
        ..full
    };
    let comm = CommModel::paper();
    let ideal_comm = comm.idealized();

    let variants: [(&str, &ContentionModel, &CommModel); 4] = [
        ("full model", &full, &comm),
        ("no contention", &no_contention, &comm),
        ("no noise", &no_noise, &comm),
        ("ideal network", &full, &ideal_comm),
    ];

    let mut rows = String::from("variant,mode,runtime_s,main_ipc\n");
    let mut table: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (name, cont, cm) in variants {
        let orig = run_modeled_with(FftxConfig::paper(8, Mode::Original), &knl, cont, cm);
        let ompss = run_modeled_with(FftxConfig::paper(8, Mode::TaskPerFft), &knl, cont, cm);
        let io = orig.trace.mean_ipc(StateClass::FftXy);
        let it = ompss.trace.mean_ipc(StateClass::FftXy);
        println!(
            "{name:<14} original {:.4}s (main IPC {:.3})   ompss {:.4}s (main IPC {:.3})   gain {:+.1}%",
            orig.runtime,
            io,
            ompss.runtime,
            it,
            (1.0 - ompss.runtime / orig.runtime) * 100.0
        );
        rows.push_str(&format!("{name},original,{:.6},{:.4}\n", orig.runtime, io));
        rows.push_str(&format!("{name},ompss,{:.6},{:.4}\n", ompss.runtime, it));
        table.push((name.to_string(), orig.runtime, ompss.runtime, io, it));
    }
    write_artifact("ablation_contention.csv", &rows);
    println!();

    let find = |n: &str| table.iter().find(|t| t.0 == n).expect("variant present");
    let full_row = find("full model");
    let nc = find("no contention");
    let nn = find("no noise");
    let ic = find("ideal network");

    let checks = vec![
        ShapeCheck::new(
            "node contention causes the IPC collapse",
            nc.3 > 1.2 * full_row.3,
            format!(
                "original main IPC {:.3} without contention vs {:.3} with",
                nc.3, full_row.3
            ),
        ),
        ShapeCheck::new(
            "without contention the node is much faster",
            nc.1 < 0.75 * full_row.1,
            format!("{:.4}s vs {:.4}s", nc.1, full_row.1),
        ),
        ShapeCheck::new(
            "per-band variability is what the dynamic scheduler absorbs",
            {
                // Without noise, the OmpSs advantage shrinks markedly.
                let gain_full = 1.0 - full_row.2 / full_row.1;
                let gain_nn = 1.0 - nn.2 / nn.1;
                gain_nn < 0.6 * gain_full
            },
            format!(
                "gain with noise {:+.1}%, without {:+.1}%",
                (1.0 - full_row.2 / full_row.1) * 100.0,
                (1.0 - nn.2 / nn.1) * 100.0
            ),
        ),
        ShapeCheck::new(
            "the network model carries a real share of the runtime",
            ic.1 < full_row.1 * 0.99,
            format!("ideal network {:.4}s vs {:.4}s", ic.1, full_row.1),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
