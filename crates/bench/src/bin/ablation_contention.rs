//! Ablation C: which model mechanism produces which observable. Runs the
//! 8×8 original and OmpSs configurations with individual mechanisms of the
//! KNL model disabled:
//!
//! * full model (paper calibration)
//! * no node contention (`ContentionModel::uncontended` but keeping noise)
//! * no system/band noise (perfectly repeatable kernel)
//! * ideal network (zero-cost transfers)
//!
//! The claims being isolated: contention causes the IPC collapse; per-band
//! variability is what dynamic scheduling absorbs; the network model carries
//! the communication-efficiency decay.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{run_modeled_with, FftxConfig, Mode};
use fftx_knlsim::{CommModel, ContentionModel, KnlConfig};
use fftx_trace::StateClass;

fn main() {
    println!("=== Ablation C: mechanism isolation (8x8) ===\n");
    let knl = KnlConfig::paper();
    let full = ContentionModel::paper();
    let no_contention = ContentionModel {
        enabled: false,
        ..full
    };
    let no_noise = ContentionModel {
        noise: 0.0,
        band_noise: 0.0,
        ..full
    };
    let comm = CommModel::paper();
    let ideal_comm = comm.idealized();

    let variants: [(&str, &ContentionModel, &CommModel); 4] = [
        ("full model", &full, &comm),
        ("no contention", &no_contention, &comm),
        ("no noise", &no_noise, &comm),
        ("ideal network", &full, &ideal_comm),
    ];

    let mut rows = String::from("variant,mode,runtime_s,main_ipc\n");
    let mut table: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for (name, cont, cm) in variants {
        let orig = run_modeled_with(FftxConfig::paper(8, Mode::Original), &knl, cont, cm);
        let ompss = run_modeled_with(FftxConfig::paper(8, Mode::TaskPerFft), &knl, cont, cm);
        let io = orig.trace.mean_ipc(StateClass::FftXy);
        let it = ompss.trace.mean_ipc(StateClass::FftXy);
        println!(
            "{name:<14} original {:.4}s (main IPC {:.3})   ompss {:.4}s (main IPC {:.3})   gain {:+.1}%",
            orig.runtime,
            io,
            ompss.runtime,
            it,
            (1.0 - ompss.runtime / orig.runtime) * 100.0
        );
        rows.push_str(&format!("{name},original,{:.6},{:.4}\n", orig.runtime, io));
        rows.push_str(&format!("{name},ompss,{:.6},{:.4}\n", ompss.runtime, it));
        table.push((name.to_string(), orig.runtime, ompss.runtime, io, it));
    }
    let mut h = Harness::new("ablation_contention");
    h.artifact("ablation_contention.csv", &rows, CheckKind::Byte);
    println!();

    let find = |n: &str| table.iter().find(|t| t.0 == n).expect("variant present");
    let full_row = find("full model");
    let nc = find("no contention");
    let nn = find("no noise");
    let ic = find("ideal network");

    let gain_full = 1.0 - full_row.2 / full_row.1;
    let gain_nn = 1.0 - nn.2 / nn.1;
    println!(
        "gain with noise {:+.1}%, without {:+.1}%; ideal network {:.4}s vs {:.4}s",
        gain_full * 100.0,
        gain_nn * 100.0,
        ic.1,
        full_row.1
    );
    h.metric_f64("full_original_s", full_row.1, 6)
        .metric_f64("full_main_ipc", full_row.3, 4)
        .metric_f64("no_contention_main_ipc", nc.3, 4)
        .metric_f64("no_contention_ipc_ratio", nc.3 / full_row.3, 4)
        .metric_f64("no_contention_runtime_ratio", nc.1 / full_row.1, 4)
        .metric_f64("gain_with_noise", gain_full, 4)
        .metric_f64("gain_without_noise", gain_nn, 4)
        .metric_f64(
            "noise_gain_ratio",
            if gain_full != 0.0 { gain_nn / gain_full } else { f64::NAN },
            4,
        )
        .metric_f64("ideal_network_runtime_ratio", ic.1 / full_row.1, 4);
    h.gate(
        "node contention causes the IPC collapse",
        "no_contention_ipc_ratio",
        GateOp::Ge,
        1.2,
    )
    .gate(
        "without contention the node is much faster",
        "no_contention_runtime_ratio",
        GateOp::Le,
        0.75,
    )
    .gate(
        "per-band variability is what the dynamic scheduler absorbs",
        "noise_gain_ratio",
        GateOp::Le,
        0.6,
    )
    .gate(
        "the network model carries a real share of the runtime",
        "ideal_network_runtime_ratio",
        GateOp::Le,
        0.99,
    );
    std::process::exit(h.finish());
}
