//! `serve` — the job-serving experiment: offered load vs goodput and tail
//! latency, auto-tuned placement vs every static scheduler policy, plus an
//! end-to-end real-execution correctness pass and a chaos-seeded run.
//!
//! Everything runs at a pinned seed over virtual time, so the CSV/JSON
//! artifacts are deterministic and the CI gates are exact:
//!
//! * **auto ≥ static** — on every load point, the auto placement's modeled
//!   goodput matches or beats the best static policy (by construction: the
//!   auto tuner searches the union of the static candidate spaces);
//! * **tail discipline** — auto's p99 latency stays within 5% of the best
//!   static policy's;
//! * **zero lost jobs** — a chaos-seeded serving run (rollbacks, retries,
//!   and one forced rank eviction) completes every accepted job with
//!   results hash-identical to direct engine runs.

use fftx_bench::{CheckKind, GateOp, Harness, MetricValue};
use fftx_core::{run_policy, SchedulerPolicy};
use fftx_serve::{
    band_hash, class_problem, generate, run_serve, LoadProfile, PlacementMode, ServeChaos,
    ServeConfig, ServeReport, TrafficConfig,
};
use std::fmt::Write as _;

const SEED: u64 = fftx_bench::harness::SEED;
const RATES: [f64; 4] = [15.0, 40.0, 80.0, 160.0];

fn traffic(rate_hz: f64) -> TrafficConfig {
    TrafficConfig {
        seed: SEED,
        rate_hz,
        duration_s: 2.0,
        tenants: 4,
        profile: LoadProfile::Burst,
    }
}

struct Point {
    rate_hz: f64,
    mode: PlacementMode,
    report: ServeReport,
}

fn modes() -> Vec<PlacementMode> {
    let mut v = vec![PlacementMode::Auto];
    v.extend(SchedulerPolicy::ALL.map(PlacementMode::Static));
    v
}

/// Direct-engine hashes for every served job of a report.
fn hashes_match_direct(report: &ServeReport, seed: u64) -> bool {
    for batch in &report.batches {
        let p = batch.placement;
        let problem = class_problem(batch.class, p.config(batch.class, batch.nbnd, seed));
        let direct = run_policy(&problem, p.policy);
        let mut start = 0;
        for j in report.jobs.iter().filter(|j| j.batch == batch.index) {
            let expect = band_hash(&direct.bands[start..start + j.request.bands]);
            if j.hash != Some(expect) {
                return false;
            }
            start += j.request.bands;
        }
    }
    true
}

fn main() {
    println!("=== fftx-serve: offered load vs goodput, auto vs static placement ===\n");

    // --- Phase 1: modeled load sweep over every placement mode. ---
    let mut points = Vec::new();
    for &rate in &RATES {
        let requests = generate(&traffic(rate));
        for mode in modes() {
            let report = run_serve(
                &requests,
                &ServeConfig {
                    mode,
                    seed: SEED,
                    ..Default::default()
                },
            )
            .expect("serve sweep");
            points.push(Point {
                rate_hz: rate,
                mode,
                report,
            });
        }
    }

    let mut csv = String::from(
        "rate_hz,mode,offered,served,shed,shed_rate,goodput_hz,p50_s,p99_s,batches,mean_batch_size\n",
    );
    for p in &mut points {
        let r = &p.report;
        let mut lat = r.latency();
        let (p50, p99) = if lat.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            (lat.p50(), lat.p99())
        };
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{:.4},{:.4},{:.6},{:.6},{},{:.3}",
            p.rate_hz,
            p.mode.name(),
            r.offered(),
            r.jobs.len(),
            r.shed.len(),
            r.shed_rate(),
            r.goodput_hz(),
            p50,
            p99,
            r.batches.len(),
            r.jobs.len() as f64 / r.batches.len().max(1) as f64,
        );
        println!(
            "  rate {:>6.1}  {:<8} served {:>4}/{:<4} goodput {:>7.2}/s  p99 {:.5}s",
            p.rate_hz,
            p.mode.name(),
            r.jobs.len(),
            r.offered(),
            r.goodput_hz(),
            p99,
        );
    }
    let mut h = Harness::new("serve");
    h.artifact("serve.csv", &csv, CheckKind::Byte);
    println!();

    // --- Gates: auto vs the static field, per load point. ---
    let mut auto_beats_goodput = true;
    let mut auto_tail_ok = true;
    let mut gate_detail = String::new();
    for &rate in &RATES {
        let at = |m: PlacementMode| {
            points
                .iter()
                .position(|p| p.rate_hz == rate && p.mode == m)
                .expect("swept")
        };
        let auto_i = at(PlacementMode::Auto);
        let auto_goodput = points[auto_i].report.goodput_hz();
        let auto_p99 = points[auto_i].report.latency().p99();
        let mut best_static_goodput = 0.0f64;
        let mut best_static_p99 = f64::INFINITY;
        for policy in SchedulerPolicy::ALL {
            let i = at(PlacementMode::Static(policy));
            best_static_goodput = best_static_goodput.max(points[i].report.goodput_hz());
            best_static_p99 = best_static_p99.min(points[i].report.latency().p99());
        }
        if auto_goodput < best_static_goodput - 1e-9 {
            auto_beats_goodput = false;
        }
        if auto_p99 > best_static_p99 * 1.05 + 1e-12 {
            auto_tail_ok = false;
        }
        let _ = write!(
            gate_detail,
            "[{rate}Hz: auto {auto_goodput:.2}/s vs best static {best_static_goodput:.2}/s] "
        );
    }

    // --- Phase 1b: overload — a hot burst against constrained buffering
    // must engage the backpressure path (bounded queue, fair share,
    // deadline shedding) with typed rejections. ---
    let overload_requests = generate(&traffic(400.0));
    let overload = run_serve(
        &overload_requests,
        &ServeConfig {
            admission: fftx_serve::AdmissionConfig {
                queue_cap: 8,
                tenant_share: 0.5,
                shed_late: true,
            },
            seed: SEED,
            ..Default::default()
        },
    )
    .expect("overload serve");
    println!(
        "overload (400Hz burst, queue cap 8): served {}, shed {} ({:.1}%), max depth {}",
        overload.jobs.len(),
        overload.shed.len(),
        overload.shed_rate() * 100.0,
        overload.depth.max(),
    );
    for kind in ["queue_full", "tenant_share", "deadline"] {
        let n = overload.counters.get(&format!("shed.{kind}"));
        if n > 0 {
            println!("  shed.{kind:<13} {n}");
        }
    }

    // --- Phase 2: real execution — served results == direct engine runs. ---
    let real_requests: Vec<_> = generate(&traffic(30.0)).into_iter().take(40).collect();
    let real = run_serve(
        &real_requests,
        &ServeConfig {
            execute_real: true,
            seed: SEED,
            ..Default::default()
        },
    )
    .expect("real serve");
    let real_ok = real.offered() == real.jobs.len() + real.shed.len()
        && !real.jobs.is_empty()
        && hashes_match_direct(&real, SEED);
    println!(
        "real execution: {} jobs over {} batches, hashes {} direct engine runs",
        real.jobs.len(),
        real.batches.len(),
        if real_ok { "match" } else { "DIVERGE from" }
    );

    // --- Phase 3: chaos-seeded serving with a forced rank eviction. ---
    let chaos_requests: Vec<_> = generate(&traffic(30.0)).into_iter().take(24).collect();
    let chaos = run_serve(
        &chaos_requests,
        &ServeConfig {
            chaos: Some(ServeChaos {
                seed: SEED ^ 0xC0DE,
                evict_batch: Some(0),
                corrupt_per_mille: 0,
            }),
            seed: SEED,
            ..Default::default()
        },
    )
    .expect("chaos serve");
    let recovered: u64 = chaos.counters.get("recovery.retries")
        + chaos.counters.get("recovery.rollbacks")
        + chaos.counters.get("recovery.evictions");
    let chaos_complete = chaos.jobs.len() + chaos.shed.len() == chaos.offered()
        && chaos.jobs.iter().all(|j| j.hash.is_some());
    let chaos_ok = chaos_complete && hashes_match_direct(&chaos, SEED);
    println!(
        "chaos serving:  {} jobs completed, {} recovery events ({} evictions), results {}",
        chaos.jobs.len(),
        recovered,
        chaos.counters.get("recovery.evictions"),
        if chaos_ok { "intact" } else { "CORRUPTED" }
    );

    // --- BENCH_serve.json: the headline numbers through the shared
    // harness, with the regression thresholds stored in the artifact. ---
    println!("auto vs static: {}", gate_detail.trim());
    let auto_40 = points
        .iter()
        .position(|p| p.rate_hz == 40.0 && p.mode == PlacementMode::Auto)
        .expect("swept");
    let overload_conserved = overload.jobs.len() + overload.shed.len() == overload.offered();
    h.metric_str("profile", "burst")
        .metric("rates_hz", MetricValue::Floats { v: RATES.to_vec(), prec: 1 })
        .metric_f64("auto_goodput_40hz", points[auto_40].report.goodput_hz(), 4)
        .metric_f64("auto_p99_40hz_s", points[auto_40].report.latency().p99(), 6)
        .metric_bool("auto_matches_best_static_goodput", auto_beats_goodput)
        .metric_bool("auto_p99_within_5pct", auto_tail_ok)
        .metric_u64("real_jobs", real.jobs.len() as u64)
        .metric_bool("real_hashes_match_direct", real_ok)
        .metric_u64("chaos_jobs_completed", chaos.jobs.len() as u64)
        .metric_u64("chaos_recovery_events", recovered)
        .metric_bool("chaos_zero_lost_jobs", chaos_ok)
        .metric_f64("overload_shed_rate", overload.shed_rate(), 4)
        .metric_bool("overload_conserved", overload_conserved);
    h.gate(
        "auto placement matches or beats every static policy's goodput",
        "auto_matches_best_static_goodput",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "auto p99 latency within 5% of the best static policy",
        "auto_p99_within_5pct",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "served results hash-match direct engine runs",
        "real_hashes_match_direct",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "chaos-seeded serving completes all accepted jobs bit-identically",
        "chaos_zero_lost_jobs",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "overload sheds typed rejections (backpressure engages)",
        "overload_shed_rate",
        GateOp::Ge,
        0.01,
    )
    .gate(
        "overload conserves requests (served + shed = offered)",
        "overload_conserved",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
