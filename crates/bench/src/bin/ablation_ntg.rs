//! Ablation A: the task-group trade-off of Section II. At a fixed total of
//! 64 ranks, sweep the number of FFT task groups T from 1 (all collective
//! cost in the scatter, involving all ranks) to 64 (all cost in pack/unpack,
//! each rank FFTs whole bands alone). The paper: "All the options between
//! these two extreme cases should be benchmarked" — this binary does.

use fftx_bench::{report_checks, write_artifact, ShapeCheck};
use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::{render_bar_chart, CommOp};

fn main() {
    println!("=== Ablation A: number of FFT task groups at fixed 64 ranks ===\n");
    let total = 64usize;
    let ntgs = [1usize, 2, 4, 8, 16, 32, 64];

    let mut labels = Vec::new();
    let mut runtimes = Vec::new();
    let mut rows = String::from("ntg,r,runtime_s,scatter_time_s,pack_time_s\n");
    let mut pack_times = Vec::new();
    let mut scatter_times = Vec::new();
    for &ntg in &ntgs {
        let cfg = FftxConfig {
            ecutwfc: 80.0,
            alat: 20.0,
            nbnd: 128,
            nr: total / ntg,
            ntg,
            mode: Mode::Original,
            seed: 2017,
        };
        let run = run_modeled(cfg);
        // Decompose communication time by operation (scatter = Alltoall,
        // pack/unpack = Alltoallv), averaged per rank.
        let lanes = run.trace.lanes().len() as f64;
        let scatter: f64 = run
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoall)
            .map(|r| r.duration())
            .sum::<f64>()
            / lanes;
        let pack: f64 = run
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoallv)
            .map(|r| r.duration())
            .sum::<f64>()
            / lanes;
        println!(
            "ntg {ntg:>2} ({}x{ntg:<2}): runtime {:.4}s  scatter/rank {:.4}s  pack/rank {:.4}s",
            total / ntg,
            run.runtime,
            scatter,
            pack
        );
        rows.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6}\n",
            ntg,
            total / ntg,
            run.runtime,
            scatter,
            pack
        ));
        labels.push(format!("ntg={ntg}"));
        runtimes.push(run.runtime);
        pack_times.push(pack);
        scatter_times.push(scatter);
    }
    println!();
    print!(
        "{}",
        render_bar_chart("runtime vs task-group count (64 ranks)", &labels, &[("orig".into(), runtimes.clone())], 40)
    );
    write_artifact("ablation_ntg.csv", &rows);

    let best = runtimes
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let checks = vec![
        ShapeCheck::new(
            "with ntg=1 the scatter dominates the communication",
            scatter_times[0] > 5.0 * pack_times[0].max(1e-12),
            format!("scatter {:.4}s vs pack {:.4}s", scatter_times[0], pack_times[0]),
        ),
        ShapeCheck::new(
            "with ntg=64 the pack/unpack dominates the communication",
            pack_times[6] > 5.0 * scatter_times[6].max(1e-12),
            format!("pack {:.4}s vs scatter {:.4}s", pack_times[6], scatter_times[6]),
        ),
        ShapeCheck::new(
            "task groups beat the no-task-group baseline (ntg=1)",
            best < runtimes[0],
            format!("best {best:.4}s vs ntg=1 {:.4}s", runtimes[0]),
        ),
        ShapeCheck::new(
            "the paper's default ntg=8 is within 10% of the sweep's best",
            runtimes[3] < 1.10 * best,
            format!("ntg=8 {:.4}s vs best {best:.4}s", runtimes[3]),
        ),
        ShapeCheck::new(
            "scatter time per rank shrinks as task groups grow",
            scatter_times[0] > scatter_times[3] && scatter_times[3] > scatter_times[6],
            format!(
                "{:.4}s -> {:.4}s -> {:.4}s",
                scatter_times[0], scatter_times[3], scatter_times[6]
            ),
        ),
    ];
    std::process::exit(report_checks(&checks));
}
