//! Ablation A: the task-group trade-off of Section II. At a fixed total of
//! 64 ranks, sweep the number of FFT task groups T from 1 (all collective
//! cost in the scatter, involving all ranks) to 64 (all cost in pack/unpack,
//! each rank FFTs whole bands alone). The paper: "All the options between
//! these two extreme cases should be benchmarked" — this binary does.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{run_modeled, Decomposition, FftxConfig, Mode};
use fftx_trace::{render_bar_chart, CommOp};

fn main() {
    println!("=== Ablation A: number of FFT task groups at fixed 64 ranks ===\n");
    let total = 64usize;
    let ntgs = [1usize, 2, 4, 8, 16, 32, 64];

    let mut labels = Vec::new();
    let mut runtimes = Vec::new();
    let mut rows = String::from("ntg,r,runtime_s,scatter_time_s,pack_time_s\n");
    let mut pack_times = Vec::new();
    let mut scatter_times = Vec::new();
    for &ntg in &ntgs {
        let cfg = FftxConfig {
            ecutwfc: 80.0,
            alat: 20.0,
            nbnd: 128,
            nr: total / ntg,
            ntg,
            mode: Mode::Original,
            decomp: Decomposition::Slab,
            seed: 2017,
        };
        let run = run_modeled(cfg);
        // Decompose communication time by operation (scatter = Alltoall,
        // pack/unpack = Alltoallv), averaged per rank.
        let lanes = run.trace.lanes().len() as f64;
        let scatter: f64 = run
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoall)
            .map(|r| r.duration())
            .sum::<f64>()
            / lanes;
        let pack: f64 = run
            .trace
            .comm
            .iter()
            .filter(|r| r.op == CommOp::Alltoallv)
            .map(|r| r.duration())
            .sum::<f64>()
            / lanes;
        println!(
            "ntg {ntg:>2} ({}x{ntg:<2}): runtime {:.4}s  scatter/rank {:.4}s  pack/rank {:.4}s",
            total / ntg,
            run.runtime,
            scatter,
            pack
        );
        rows.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6}\n",
            ntg,
            total / ntg,
            run.runtime,
            scatter,
            pack
        ));
        labels.push(format!("ntg={ntg}"));
        runtimes.push(run.runtime);
        pack_times.push(pack);
        scatter_times.push(scatter);
    }
    println!();
    print!(
        "{}",
        render_bar_chart("runtime vs task-group count (64 ranks)", &labels, &[("orig".into(), runtimes.clone())], 40)
    );
    let mut h = Harness::new("ablation_ntg");
    h.artifact("ablation_ntg.csv", &rows, CheckKind::Byte);

    let best = runtimes
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    h.metric_f64("best_runtime_s", best, 6)
        .metric_f64("ntg1_runtime_s", runtimes[0], 6)
        .metric_f64("ntg8_runtime_s", runtimes[3], 6)
        .metric_f64(
            "ntg1_scatter_vs_pack_ratio",
            scatter_times[0] / pack_times[0].max(1e-12),
            2,
        )
        .metric_f64(
            "ntg64_pack_vs_scatter_ratio",
            pack_times[6] / scatter_times[6].max(1e-12),
            2,
        )
        .metric_bool("task_groups_beat_ntg1", best < runtimes[0])
        .metric_f64("ntg8_vs_best_ratio", runtimes[3] / best, 4)
        .metric_bool(
            "scatter_shrinks_with_groups",
            scatter_times[0] > scatter_times[3] && scatter_times[3] > scatter_times[6],
        );
    h.gate(
        "with ntg=1 the scatter dominates the communication",
        "ntg1_scatter_vs_pack_ratio",
        GateOp::Ge,
        5.0,
    )
    .gate(
        "with ntg=64 the pack/unpack dominates the communication",
        "ntg64_pack_vs_scatter_ratio",
        GateOp::Ge,
        5.0,
    )
    .gate(
        "task groups beat the no-task-group baseline (ntg=1)",
        "task_groups_beat_ntg1",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "the paper's default ntg=8 is within 10% of the sweep's best",
        "ntg8_vs_best_ratio",
        GateOp::Le,
        1.10,
    )
    .gate(
        "scatter time per rank shrinks as task groups grow",
        "scatter_shrinks_with_groups",
        GateOp::Eq,
        1.0,
    );
    std::process::exit(h.finish());
}
