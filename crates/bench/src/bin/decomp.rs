//! Decomposition shoot-out: slab (one sticks↔planes exchange) versus
//! pencil (2-D process grid, two smaller transpose exchanges) versus the
//! tuner's auto choice.
//!
//! Three claims are gated:
//!
//! 1. **The lowering is free of numerics** — on the real engine every
//!    scheduler policy produces bit-identical bands under either
//!    decomposition (spot-checked here; the golden suite pins the full
//!    matrix).
//! 2. **Pencil wins at scale** — on the paper's network model the two
//!    p1/p2-sized exchanges beat the single r-sized alltoall once the
//!    per-message cost dominates, so modeled scatter throughput at high
//!    rank counts is at least slab's, and `choose_decomp` always picks
//!    the cheaper side.
//! 3. **Auto dominates** — the placement tuner's auto decision (which
//!    searches both decompositions) is never worse than either fixed
//!    decomposition, for every workload class.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_core::{
    choose_decomp, modeled_scatter_seconds, run_policy, simulate_config, Decomposition, FftxConfig,
    Mode, Problem, SchedulerPolicy,
};
use fftx_knlsim::{CommModel, ContentionModel, KnlConfig};
use fftx_serve::{GeometryClass, Tuner, TunerConfig};

const SEED: u64 = 20170814;

fn main() {
    println!("=== Decomposition: slab vs pencil vs auto ===\n");
    let mut h = Harness::new("decomp");

    // --- Real engine: bitwise equivalence across policies. ---
    println!("--- real engine: slab vs pencil bitwise ---");
    let mut bitwise_ok = true;
    for policy in SchedulerPolicy::ALL {
        for (nr, ntg) in [(4, 1), (6, 1)] {
            let mut slab_cfg = FftxConfig::small(nr, ntg, policy.mode());
            slab_cfg.seed = SEED;
            let pencil_cfg = slab_cfg.with_decomp(Decomposition::Pencil);
            let s = run_policy(&Problem::new(slab_cfg), policy);
            let p = run_policy(&Problem::new(pencil_cfg), policy);
            let same = s.bands == p.bands;
            bitwise_ok &= same;
            println!(
                "  {:<8} {}x{}  bands {}",
                policy.name(),
                nr,
                ntg,
                if same { "match" } else { "DIVERGE" }
            );
        }
    }
    println!();

    // --- Network model: scatter cost sweep over rank counts. ---
    // 256 KiB is a representative per-band exchange buffer at paper scale;
    // the message-count savings of the two grid-sized exchanges overtake
    // their extra bandwidth pass between 16 and 32 ranks there.
    println!("--- modeled scatter seconds (paper network, 256 KiB buffer) ---");
    let bytes = 1 << 18;
    let mut rows = String::from("r,slab_s,pencil_s,auto\n");
    let mut auto_matches_best = true;
    let mut speedup_r64 = 0.0;
    for r in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let slab = modeled_scatter_seconds(Decomposition::Slab, r, bytes);
        let pencil = modeled_scatter_seconds(Decomposition::Pencil, r, bytes);
        let auto = choose_decomp(r, bytes);
        // Auto must always land on the cheaper lowering.
        auto_matches_best &= modeled_scatter_seconds(auto, r, bytes) <= slab.min(pencil) + 1e-15;
        if r == 64 {
            speedup_r64 = slab / pencil;
        }
        println!(
            "  r {:>3}  slab {:.3e}s  pencil {:.3e}s  auto {}",
            r,
            slab,
            pencil,
            auto.name()
        );
        rows.push_str(&format!("{r},{slab:.9e},{pencil:.9e},{}\n", auto.name()));
    }
    h.artifact("decomp_scatter_sweep.csv", &rows, CheckKind::Byte);
    println!();

    // --- End-to-end modeled runs at high rank counts. The paper model's
    // single network channel serializes every in-flight collective, even
    // ones over disjoint rank sets — that arbitration cannot express the
    // pencil's central win (its p1 row exchanges touch disjoint ranks and
    // proceed concurrently on the real mesh). The end-to-end comparison
    // therefore runs BOTH decompositions under the same mesh model with 16
    // parallel channels; everything else (latency, bandwidth, per-message
    // cost, contention) is the paper model unchanged. ---
    println!("--- modeled end-to-end (paper network, 16-channel mesh) ---");
    let knl = KnlConfig::paper();
    let contention = ContentionModel::paper();
    let mesh = CommModel {
        channels: 16,
        ..CommModel::paper()
    };
    let e2e_ratio = |nr: usize, ntg: usize| {
        let mut cfg = FftxConfig::paper(nr, Mode::Original);
        cfg.ntg = ntg;
        let slab = simulate_config(cfg, &knl, &contention, &mesh).runtime;
        let pencil = simulate_config(
            cfg.with_decomp(Decomposition::Pencil),
            &knl,
            &contention,
            &mesh,
        )
        .runtime;
        println!(
            "  {nr:>3}x{ntg}  slab {slab:.4}s  pencil {pencil:.4}s  ({:.2}% of slab)",
            100.0 * pencil / slab
        );
        (slab, pencil)
    };
    let (slab_64, pencil_64) = e2e_ratio(64, 4);
    let (slab_128, pencil_128) = e2e_ratio(128, 2);
    println!();

    // --- Tuner: auto vs the fixed-decomposition baselines, per class. ---
    println!("--- tuner: auto vs fixed decompositions per workload class ---");
    let mut trows = String::from("class,nbnd,auto_s,slab_s,pencil_s,auto_label\n");
    let mut worst_ratio: f64 = 0.0;
    for class in GeometryClass::ALL {
        for nbnd in [4usize, 8] {
            let mut t = Tuner::new(TunerConfig::default());
            let auto = t.decide(class, nbnd);
            let slab = t.decide_decomp(class, nbnd, Decomposition::Slab).service_s;
            let pencil = t.decide_decomp(class, nbnd, Decomposition::Pencil).service_s;
            let best_fixed = slab.min(pencil);
            worst_ratio = worst_ratio.max(auto.service_s / best_fixed);
            println!(
                "  {:<7} nbnd {:>2}  auto {:.4e}s ({})  slab {:.4e}s  pencil {:.4e}s",
                class.name(),
                nbnd,
                auto.service_s,
                auto.placement.label(),
                slab,
                pencil
            );
            trows.push_str(&format!(
                "{},{},{:.9e},{:.9e},{:.9e},{}\n",
                class.name(),
                nbnd,
                auto.service_s,
                slab,
                pencil,
                auto.placement.label()
            ));
        }
    }
    h.artifact("decomp_tuner.csv", &trows, CheckKind::Byte);
    println!();

    h.metric_bool("bitwise_identical_bands", bitwise_ok)
        .metric_bool("auto_scatter_matches_best", auto_matches_best)
        .metric_f64("pencil_scatter_speedup_r64", speedup_r64, 4)
        .metric_f64("slab_e2e_64_s", slab_64, 6)
        .metric_f64("pencil_e2e_64_s", pencil_64, 6)
        .metric_f64("pencil_e2e_vs_slab_64", pencil_64 / slab_64, 4)
        .metric_f64("slab_e2e_128_s", slab_128, 6)
        .metric_f64("pencil_e2e_128_s", pencil_128, 6)
        .metric_f64("pencil_e2e_vs_slab_128", pencil_128 / slab_128, 4)
        .metric_f64("auto_vs_best_fixed_ratio", worst_ratio, 6);
    h.gate(
        "slab and pencil produce bit-identical bands on the real engine",
        "bitwise_identical_bands",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "choose_decomp always picks the cheaper modeled lowering",
        "auto_scatter_matches_best",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "pencil beats slab modeled scatter throughput at 64 ranks (CI gate)",
        "pencil_scatter_speedup_r64",
        GateOp::Ge,
        1.0,
    )
    .gate(
        "pencil end-to-end no slower than slab at 64 modeled ranks",
        "pencil_e2e_vs_slab_64",
        GateOp::Le,
        1.0,
    )
    .gate(
        "pencil end-to-end beats slab at 128 modeled ranks",
        "pencil_e2e_vs_slab_128",
        GateOp::Le,
        1.0,
    )
    .gate(
        "auto placement never worse than the best fixed decomposition",
        "auto_vs_best_fixed_ratio",
        GateOp::Le,
        1.0 + 1e-9,
    );
    std::process::exit(h.finish());
}
