//! Ablation B: taskloop grain size. The paper's strategy 1 converts the
//! main loops of `cft_2xy` and `cft_1z` into OpenMP task loops with grain
//! sizes 10 and 200. This ablation measures, on the *real* task runtime,
//! how the grain size trades scheduling overhead against load balance for
//! the z-stick FFT batch — the workload those grains were chosen for.

use fftx_bench::{CheckKind, GateOp, Harness};
use fftx_fft::{c64, cft_1z, Complex64, Direction, Fft};
use fftx_taskrt::Runtime;
use std::sync::Arc;
use std::time::Instant;

/// One measurement: run `nsl` stick FFTs of length `nz` through a taskloop
/// with the given grain on `threads` workers; returns seconds (best of 3).
fn measure(plan: &Arc<Fft>, data: &[Complex64], nsl: usize, nz: usize, grain: usize, threads: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let rt = Runtime::new(threads);
        let work = Arc::new(parking_lot::Mutex::new(data.to_vec()));
        let t0 = Instant::now();
        {
            let plan = Arc::clone(plan);
            let work = Arc::clone(&work);
            rt.taskloop("cft_1z", 0..nsl, grain, move |range| {
                // Each chunk transforms its own sticks; the lock is only
                // for splitting the buffer safely (uncontended in steady
                // state because chunks are disjoint — we copy out/in to
                // keep the example dependency-free).
                let mut local: Vec<Complex64> = {
                    let g = work.lock();
                    g[range.start * nz..range.end * nz].to_vec()
                };
                let mut scratch = Vec::new();
                cft_1z(&plan, &mut local, range.len(), nz, Direction::Forward, &mut scratch);
                let mut g = work.lock();
                g[range.start * nz..range.end * nz].copy_from_slice(&local);
            });
        }
        rt.taskwait();
        let dt = t0.elapsed().as_secs_f64();
        rt.shutdown();
        best = best.min(dt);
    }
    best
}

fn main() {
    println!("=== Ablation B: taskloop grain size (real task runtime) ===\n");
    let nz = 120;
    let nsl = 2000;
    let threads = 4;
    let plan = Arc::new(Fft::new(nz));
    let data: Vec<Complex64> = (0..nsl * nz)
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();

    // Serial reference.
    let serial = {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut buf = data.clone();
            let mut scratch = Vec::new();
            let t0 = Instant::now();
            cft_1z(&plan, &mut buf, nsl, nz, Direction::Forward, &mut scratch);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    println!("serial reference ({nsl} sticks of length {nz}): {:.4}s", serial);

    let grains = [1usize, 5, 10, 50, 200, 1000, 2000];
    let mut rows = String::from("grain,tasks,seconds,speedup_vs_serial\n");
    let mut times = Vec::new();
    for &g in &grains {
        let t = measure(&plan, &data, nsl, nz, g, threads);
        println!(
            "grain {g:>5} ({:>4} tasks, {threads} threads): {:.4}s  speedup {:.2}x",
            nsl.div_ceil(g),
            t,
            serial / t
        );
        rows.push_str(&format!("{g},{},{t:.6},{:.3}\n", nsl.div_ceil(g), serial / t));
        times.push(t);
    }
    let mut h = Harness::new_volatile("ablation_grain");
    h.artifact("ablation_grain.csv", &rows, CheckKind::Structure);
    println!();

    // Paper grains: 10 (xy rows) and 200 (z sticks).
    let t10 = times[2];
    let t200 = times[4];
    let t1 = times[0];
    let t2000 = times[6];
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("(host has {cores} core(s) — speedup checks only apply on multi-core hosts)
");
    h.metric_f64("serial_s", serial, 6)
        .metric_f64("grain1_s", t1, 6)
        .metric_f64("grain10_s", t10, 6)
        .metric_f64("grain200_s", t200, 6)
        .metric_f64("grain2000_s", t2000, 6)
        .metric_f64("best_s", best, 6)
        .metric_f64("paper_grain_vs_best_ratio", t10.min(t200) / best, 4)
        .metric_f64("grain1_vs_best_ratio", t1 / best, 4)
        .metric_f64("grain200_vs_serial_ratio", t200 / serial, 4)
        .metric_u64("host_cores", cores as u64);
    h.gate(
        "moderate grains (the paper's 10/200) are near-optimal",
        "paper_grain_vs_best_ratio",
        GateOp::Le,
        1.35,
    )
    .gate(
        "grain-1 pays visible scheduling overhead vs the best grain",
        "grain1_vs_best_ratio",
        GateOp::Ge,
        1.0,
    )
    .gate(
        "taskloop overhead at a sensible grain stays below ~35%",
        "grain200_vs_serial_ratio",
        GateOp::Le,
        1.35,
    );
    if cores > 1 {
        h.metric_f64("grain2000_vs_best_ratio", t2000 / best, 4)
            .metric_f64("best_vs_serial_ratio", best / serial, 4);
        h.gate(
            "a single huge task cannot use the threads",
            "grain2000_vs_best_ratio",
            GateOp::Ge,
            1.2,
        )
        .gate(
            "parallel execution beats serial at a sensible grain",
            "best_vs_serial_ratio",
            GateOp::Le,
            1.0,
        );
    }
    std::process::exit(h.finish());
}
