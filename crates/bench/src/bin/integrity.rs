//! Integrity experiment: the silent-data-corruption defense, gated.
//!
//! Three claims are machine-checked, all deterministic (seeded faults,
//! modeled costs — no wall clocks in the artifacts):
//!
//! 1. **100% detection** — sweeping flip rates × verify modes on the real
//!    engine: wherever `off` mode delivers a corrupted answer (the SDC
//!    baseline), `cheap` mode detects it and `full` mode repairs it.
//! 2. **Zero corrupted results delivered** — in `cheap`/`full` mode every
//!    delivered band set is bitwise identical to the fault-free run; and
//!    across the serve chaos sweep, every job hash a corrupted fleet
//!    delivers equals an independent clean re-execution of its batch.
//! 3. **≤5% `cheap` overhead at the paper 8×8** — the verify layer's extra
//!    work (Parseval passes, checkpoint clones, the verdict allreduce)
//!    priced by the KNL cost model against the modeled 8×8 runtime, using
//!    the same conservative exchange-bandwidth convention as the recovery
//!    bench.

use fftx_bench::{CheckKind, GateOp, Harness, MetricValue};
use fftx_core::stages::StagePlan;
use fftx_core::{
    run_original, run_verified, simulate_config, FftxConfig, Mode, Problem, VerifyMode,
};
use fftx_fault::{BitFlip, CorruptionConfig, RecoveryConfig};
use fftx_knlsim::{CommModel, ContentionModel, KnlConfig};
use fftx_serve::{
    assemble, band_hash, generate, run_fleet, Backend, FleetConfig, LoadProfile, Placement,
    PlacementMode, Record, Request, ServeChaos, ServeConfig, TrafficConfig,
};
use fftx_trace::CommOp;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pinned fault seed (the paper's publication date) so CI commits a
/// reproducible artifact.
const SEED: u64 = fftx_bench::harness::SEED;

/// Flip rates swept (strike probability per fault key, max 2 strikes).
const RATES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

struct SweepRow {
    rate: f64,
    mode: VerifyMode,
    detected: u64,
    rollbacks: u64,
    repaired: u64,
    checks: u64,
    delivered_clean: bool,
}

fn corruption_at(rate: f64) -> CorruptionConfig {
    if rate == 0.0 {
        return CorruptionConfig::off();
    }
    CorruptionConfig {
        bitflip: Some(BitFlip::new(SEED, rate, 2)),
        ..CorruptionConfig::off()
    }
}

fn main() {
    println!("=== Integrity: bit-flip chaos vs ABFT verify-and-recompute ===\n");
    let rc = RecoveryConfig::from_env();

    // --- Part 1: flip rate × verify mode sweep on the real engine. ---
    let problem = Problem::new(FftxConfig::small(2, 2, Mode::Original));
    let baseline = run_original(&problem);
    let mut rows: Vec<SweepRow> = Vec::new();
    for rate in RATES {
        for mode in VerifyMode::ALL {
            let (out, stats) = run_verified(&problem, corruption_at(rate), mode, &rc)
                .expect("bounded transients stay within the rollback budget");
            rows.push(SweepRow {
                rate,
                mode,
                detected: stats.detected_batches,
                rollbacks: stats.batch_rollbacks,
                repaired: stats.repaired_legs,
                checks: stats.parseval_checks.max(stats.recomputed_legs),
                delivered_clean: out.bands == baseline.bands,
            });
        }
    }
    let mut csv = String::from(
        "flip_rate,verify_mode,detected_batches,rollbacks,repaired_legs,checks,delivered_clean\n",
    );
    for r in &rows {
        println!(
            "rate {:>4} mode {:>5}: detected {} rollbacks {} repaired {} clean: {}",
            r.rate,
            r.mode.name(),
            r.detected,
            r.rollbacks,
            r.repaired,
            r.delivered_clean
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{}",
            r.rate, r.mode.name(), r.detected, r.rollbacks, r.repaired, r.checks,
            r.delivered_clean
        );
    }
    let row = |rate: f64, mode: VerifyMode| {
        rows.iter()
            .find(|r| r.rate == rate && r.mode == mode)
            .expect("swept")
    };
    // Detection is gated against the Off baseline: every rate whose
    // unverified run delivered corruption must be caught by cheap and
    // repaired by full.
    let corrupt_rates: Vec<f64> = RATES
        .iter()
        .copied()
        .filter(|&p| !row(p, VerifyMode::Off).delivered_clean)
        .collect();
    let baseline_corrupts = !corrupt_rates.is_empty();
    let all_detected = corrupt_rates
        .iter()
        .all(|&p| row(p, VerifyMode::Cheap).detected > 0 && row(p, VerifyMode::Full).repaired > 0);
    let none_delivered = rows
        .iter()
        .filter(|r| r.mode != VerifyMode::Off)
        .all(|r| r.delivered_clean);
    let clean_quiet = RATES.iter().all(|&p| {
        row(p, VerifyMode::Off).delivered_clean
            || (row(0.0, VerifyMode::Cheap).detected == 0
                && row(0.0, VerifyMode::Full).repaired == 0)
    });
    println!();

    // --- Part 2: the serve chaos sweep — a corrupted fleet must deliver
    // only hashes an independent clean re-execution reproduces. ---
    let trace = generate(&TrafficConfig {
        seed: 7,
        rate_hz: 60.0,
        duration_s: 1.0,
        tenants: 3,
        profile: LoadProfile::Steady,
    });
    let fleet_cfg = FleetConfig {
        serve: ServeConfig {
            mode: PlacementMode::Static(fftx_core::SchedulerPolicy::Serial),
            chaos: Some(ServeChaos {
                seed: SEED ^ 0xBAD,
                evict_batch: None,
                corrupt_per_mille: 1000,
            }),
            ..Default::default()
        },
        ..Default::default()
    };
    let fleet = run_fleet(&trace, &fleet_cfg).expect("corrupt fleet run");
    let detections = fleet.counters.get("fleet.corruption.detected");
    let recomputes = fleet.counters.get("fleet.corruption.recomputed");
    let quarantines = fleet.counters.get("fleet.degrade.quarantine");
    let breaker_opens = fleet.counters.get("fleet.breaker.open");
    // Replay the journal's batch formation and re-execute every batch on a
    // clean backend: the fleet's delivered hashes must all match.
    let by_id: BTreeMap<u64, Request> = trace.iter().map(|r| (r.id, *r)).collect();
    let mut members: BTreeMap<u64, Vec<Request>> = BTreeMap::new();
    let mut placements: BTreeMap<u64, Placement> = BTreeMap::new();
    for rec in fleet.journal.records() {
        match rec {
            Record::Batched { batch, jobs, .. } => {
                members.insert(*batch, jobs.iter().map(|j| by_id[j]).collect());
            }
            Record::Started { batch, nr, ntg, policy, decomp, .. } => {
                placements.insert(
                    *batch,
                    Placement {
                        nr: *nr,
                        ntg: *ntg,
                        policy: fftx_core::SchedulerPolicy::ALL[*policy],
                        decomp: fftx_core::Decomposition::ALL[*decomp],
                    },
                );
            }
            _ => {}
        }
    }
    let mut clean = Backend::new(fleet_cfg.serve.seed, None);
    let mut clean_hashes: BTreeMap<u64, u64> = BTreeMap::new();
    for (batch, reqs) in &members {
        let Some(p) = placements.get(batch) else { continue };
        let assembled = assemble(reqs.clone(), &fleet_cfg.serve.batch).expect("journaled batch");
        let run = clean.execute(&assembled, p, *batch as usize, false);
        for m in &assembled.members {
            let range = &run.output.bands[m.band_start..m.band_start + m.request.bands];
            clean_hashes.insert(m.request.id, band_hash(range));
        }
    }
    let delivered = fleet.jobs.len();
    let mismatched = fleet
        .jobs
        .iter()
        .filter(|j| j.hash != clean_hashes.get(&j.request.id).copied())
        .count();
    println!(
        "serve sweep: {delivered} jobs delivered, {mismatched} hash mismatches, \
         {detections} detections, {recomputes} recompute rollbacks, \
         {quarantines} quarantine transitions, {breaker_opens} breaker trips"
    );
    csv.push_str("\nserve,jobs,mismatched,detections,recomputes,quarantines,breaker_opens\n");
    let _ = writeln!(
        csv,
        "chaos,{delivered},{mismatched},{detections},{recomputes},{quarantines},{breaker_opens}"
    );

    // --- Part 3: modeled cheap-mode overhead at the paper 8×8. ---
    let paper_cfg = FftxConfig::paper(8, Mode::Original);
    let baseline_s = simulate_config(
        paper_cfg,
        &KnlConfig::paper(),
        &ContentionModel::paper(),
        &CommModel::paper(),
    )
    .runtime;
    let paper_problem = Problem::new(paper_cfg);
    let sp = StagePlan::for_problem(&paper_problem, 0);
    let l = &paper_problem.layout;
    let comm = CommModel::paper();
    let elem = std::mem::size_of::<fftx_fft::Complex64>();
    // KNL DDR4-2400 STREAM bandwidth (flat mode) — the rate rank-local
    // verify passes stream at. Deliberately the conservative figure:
    // MCDRAM in cache mode sustains ~4.5x this, so the real overhead is
    // lower still. (KnlConfig models cores/frequency/SMT, not memory
    // bandwidth, hence the explicit constant.)
    const LOCAL_STREAM_BW: f64 = 90.0e9;
    // Per batch, per rank (ranks verify concurrently, so the critical path
    // pays one rank's share): four Parseval passes — two over the z-stick
    // buffer, two over the plane slab — plus one checkpoint clone of the
    // rank's t band shares, all streaming rank-local memory; then the
    // 8-byte verdict allreduce priced by the exchange model.
    let pass_bytes = 2 * (sp.plan.zbuf_len() + sp.plan.planes_len()) * elem;
    let ckpt_bytes = l.t * l.ngw_rank(0) * elem;
    let allreduce_s = comm.duration(CommOp::Allreduce, paper_cfg.vmpi_ranks(), 8);
    let per_iter_s = (pass_bytes + ckpt_bytes) as f64 / LOCAL_STREAM_BW + allreduce_s;
    let cheap_overhead_s = paper_cfg.iterations() as f64 * per_iter_s;
    let cheap_pct = cheap_overhead_s / baseline_s * 100.0;
    println!(
        "\nmodeled 8x8 scale: baseline {baseline_s:.4}s  cheap verify {cheap_pct:+.3}%  \
         ({} pass bytes + {} ckpt bytes + {allreduce_s:.2e}s allreduce per batch)",
        pass_bytes, ckpt_bytes
    );
    csv.push_str("\nmodel,baseline_s,cheap_overhead_pct,pass_bytes,ckpt_bytes\n");
    let _ = writeln!(
        csv,
        "paper_8x8,{baseline_s:.6},{cheap_pct:.4},{pass_bytes},{ckpt_bytes}"
    );
    let mut h = Harness::new("integrity");
    h.artifact("integrity.csv", &csv, CheckKind::Byte);
    println!();

    // --- BENCH_integrity.json through the shared harness. ---
    println!(
        "gates: corrupting rates {corrupt_rates:?}; rate 1.0 cheap detected {}, full \
         repaired {}; rate 0.0 cheap detected {}, full repaired {}",
        row(1.0, VerifyMode::Cheap).detected,
        row(1.0, VerifyMode::Full).repaired,
        row(0.0, VerifyMode::Cheap).detected,
        row(0.0, VerifyMode::Full).repaired,
    );
    h.metric("flip_rates", MetricValue::Floats { v: RATES.to_vec(), prec: 2 })
        .metric_bool("baseline_corrupts", baseline_corrupts)
        .metric_bool("all_corruption_detected", all_detected)
        .metric_bool("zero_corrupted_delivered", none_delivered)
        .metric_bool("clean_runs_quiet", clean_quiet)
        .metric_u64("serve_jobs", delivered as u64)
        .metric_u64("serve_hash_mismatches", mismatched as u64)
        .metric_u64("serve_detections", detections)
        .metric_u64("serve_quarantine_transitions", quarantines)
        .metric_u64("serve_breaker_opens", breaker_opens)
        .metric_f64("cheap_overhead_pct", cheap_pct, 4)
        .metric_bool("zero_loss", fleet.conservation.open.is_empty())
        .metric_bool(
            "serve_hashes_clean_reproducible",
            mismatched == 0 && delivered > 0 && fleet.conservation.open.is_empty(),
        )
        .metric_bool(
            "fleet_quarantines_corruption",
            detections > 0 && quarantines > 0 && breaker_opens > 0,
        );
    h.gate(
        "unverified (off) mode delivers corruption — the SDC baseline is real",
        "baseline_corrupts",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "100% of corrupting rates detected by cheap mode and repaired by full mode",
        "all_corruption_detected",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "zero corrupted results delivered under cheap/full at every rate",
        "zero_corrupted_delivered",
        GateOp::Eq,
        1.0,
    )
    .gate("clean runs raise no false alarms", "clean_runs_quiet", GateOp::Eq, 1.0)
    .gate(
        "serve chaos sweep delivers only clean-reproducible job hashes",
        "serve_hashes_clean_reproducible",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "fleet journals the detections and quarantines the corrupting shards",
        "fleet_quarantines_corruption",
        GateOp::Eq,
        1.0,
    )
    .gate(
        "modeled cheap verify overhead stays at or under 5% of the 8x8 runtime",
        "cheap_overhead_pct",
        GateOp::Le,
        5.0,
    )
    .gate(
        "the verify layer's modeled cost is nonzero (the model is priced in)",
        "cheap_overhead_pct",
        GateOp::Ge,
        1e-4,
    );
    std::process::exit(h.finish());
}
