//! Criterion benchmark of the real (laptop-scale) miniapp executions: all
//! three modes on a small problem, exercising the full stack — plane-wave
//! setup, virtual MPI, task runtime, and the actual FFT math.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fftx_core::{run, FftxConfig, Mode, Problem};
use std::hint::black_box;

fn bench_real_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("miniapp_real");
    group.sample_size(10);
    for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
        group.bench_with_input(
            BenchmarkId::new("small_2x2", mode.name()),
            &mode,
            |b, &mode| {
                let cfg = FftxConfig::small(2, 2, mode);
                b.iter(|| {
                    let problem = Problem::new(cfg);
                    let out = run(&problem);
                    black_box(out.fft_phase_s);
                });
            },
        );
    }
    group.finish();
}

fn bench_modeled_run(c: &mut Criterion) {
    // How fast is the simulator itself? (One full 8x8 original run.)
    let mut group = c.benchmark_group("miniapp_modeled");
    group.sample_size(10);
    group.bench_function("simulate_8x8_original", |b| {
        b.iter(|| {
            let run = fftx_core::run_modeled(FftxConfig::paper(8, Mode::Original));
            black_box(run.runtime);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_real_modes, bench_modeled_run);
criterion_main!(benches);
