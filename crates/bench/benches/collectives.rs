//! Criterion benchmarks of the virtual MPI layer: alltoall/alltoallv
//! throughput across rank counts and payload sizes, barrier latency, and
//! communicator management.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftx_vmpi::World;
use std::hint::black_box;

fn bench_alltoall(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoall");
    group.sample_size(10);
    for &(ranks, count) in &[(4usize, 1024usize), (8, 1024), (8, 16 * 1024)] {
        group.throughput(Throughput::Bytes((ranks * count * 16) as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("r{ranks}"), count),
            &count,
            |b, &count| {
                b.iter(|| {
                    let out = World::new(ranks).run(|comm| {
                        let send = vec![comm.rank() as f64; ranks * count];
                        let mut acc = 0.0;
                        for tag in 0..4 {
                            let recv = comm.alltoall(&send, tag);
                            acc += recv[0];
                        }
                        acc
                    });
                    black_box(out);
                });
            },
        );
    }
    group.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoallv");
    group.sample_size(10);
    for ranks in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("ragged", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let out = World::new(ranks).run(|comm| {
                    let send: Vec<Vec<u64>> = (0..ranks)
                        .map(|dst| vec![comm.rank() as u64; 256 * (dst + 1)])
                        .collect();
                    let recv = comm.alltoallv(send, 0);
                    recv.iter().map(|v| v.len()).sum::<usize>()
                });
                black_box(out);
            });
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    group.sample_size(10);
    for ranks in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("x100", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::new(ranks).run(|comm| {
                    for _ in 0..100 {
                        comm.barrier();
                    }
                });
            });
        });
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_mgmt");
    group.sample_size(10);
    group.bench_function("split_8_ranks", |b| {
        b.iter(|| {
            let out = World::new(8).run(|comm| {
                let sub = comm.split((comm.rank() % 2) as u64, comm.rank());
                sub.size()
            });
            black_box(out);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_alltoall, bench_alltoallv, bench_barrier, bench_split);
criterion_main!(benches);
