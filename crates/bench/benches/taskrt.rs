//! Criterion benchmarks of the task runtime: spawn/drain throughput,
//! dependency-chain overhead, and taskloop dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftx_taskrt::{Runtime, Shared};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_spawn_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn_drain");
    group.sample_size(10);
    for tasks in [100usize, 1000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::new("independent", tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let rt = Runtime::new(2);
                let acc = Arc::new(AtomicU64::new(0));
                for i in 0..tasks {
                    let acc = Arc::clone(&acc);
                    rt.spawn("t", &[], move || {
                        acc.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
                rt.taskwait();
                black_box(acc.load(Ordering::Relaxed));
            });
        });
    }
    group.finish();
}

fn bench_dependency_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependency_chain");
    group.sample_size(10);
    for len in [64usize, 512] {
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("serial", len), &len, |b, &len| {
            b.iter(|| {
                let rt = Runtime::new(2);
                let data = Shared::new(0u64);
                for _ in 0..len {
                    let d = data.clone();
                    rt.spawn("inc", &[data.dep_inout()], move || {
                        *d.write() += 1;
                    });
                }
                rt.taskwait();
                black_box(*data.read());
            });
        });
    }
    group.finish();
}

fn bench_taskloop(c: &mut Criterion) {
    let mut group = c.benchmark_group("taskloop");
    group.sample_size(10);
    for grain in [10usize, 200] {
        group.bench_with_input(BenchmarkId::new("grain", grain), &grain, |b, &grain| {
            b.iter(|| {
                let rt = Runtime::new(2);
                let acc = Arc::new(AtomicU64::new(0));
                let a = Arc::clone(&acc);
                rt.taskloop("l", 0..2000, grain, move |r| {
                    a.fetch_add(r.len() as u64, Ordering::Relaxed);
                });
                rt.taskwait();
                black_box(acc.load(Ordering::Relaxed));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spawn_drain, bench_dependency_chain, bench_taskloop);
criterion_main!(benches);
