//! Criterion micro-benchmarks of the FFT engine: 1-D transforms across the
//! size classes (powers of two, QE good sizes, Bluestein primes), the
//! batched stick/plane kernels, and the dense 3-D transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftx_fft::{c64, cft_1z, cft_2xy, Complex64, Direction, Fft, Fft3};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_1d");
    for n in [64usize, 120, 128, 243, 250, 512, 1000, 1024] {
        let plan = Fft::new(n);
        let data = signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            let mut buf = data.clone();
            let mut scratch = Vec::new();
            b.iter(|| {
                plan.process_with(black_box(&mut buf), &mut scratch, Direction::Forward);
            });
        });
    }
    // A Bluestein prime for contrast.
    for n in [127usize, 509] {
        let plan = Fft::new(n);
        let data = signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, _| {
            let mut buf = data.clone();
            let mut scratch = Vec::new();
            b.iter(|| {
                plan.process_with(black_box(&mut buf), &mut scratch, Direction::Forward);
            });
        });
    }
    group.finish();
}

fn bench_stick_batch(c: &mut Criterion) {
    // The z-FFT batch of the 8x8 configuration: ~318 sticks of length 120.
    let mut group = c.benchmark_group("cft_1z");
    let nz = 120;
    for nsl in [32usize, 318] {
        let plan = Fft::new(nz);
        let data = signal(nsl * nz);
        group.throughput(Throughput::Elements((nsl * nz) as u64));
        group.bench_with_input(BenchmarkId::new("sticks", nsl), &nsl, |b, _| {
            let mut buf = data.clone();
            let mut scratch = Vec::new();
            b.iter(|| {
                cft_1z(
                    &plan,
                    black_box(&mut buf),
                    nsl,
                    nz,
                    Direction::Inverse,
                    &mut scratch,
                );
            });
        });
    }
    group.finish();
}

fn bench_plane_batch(c: &mut Criterion) {
    // The xy-FFT slab of the 8x8 configuration: 15 planes of 120x120.
    let mut group = c.benchmark_group("cft_2xy");
    group.sample_size(20);
    let (nx, ny) = (120usize, 120usize);
    for nzl in [1usize, 15] {
        let px = Fft::new(nx);
        let py = Fft::new(ny);
        let data = signal(nzl * nx * ny);
        group.throughput(Throughput::Elements((nzl * nx * ny) as u64));
        group.bench_with_input(BenchmarkId::new("planes", nzl), &nzl, |b, _| {
            let mut buf = data.clone();
            let mut scratch = Vec::new();
            b.iter(|| {
                cft_2xy(
                    &px,
                    &py,
                    black_box(&mut buf),
                    nzl,
                    nx,
                    ny,
                    Direction::Inverse,
                    &mut scratch,
                );
            });
        });
    }
    group.finish();
}

fn bench_fft_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_3d");
    group.sample_size(10);
    for n in [24usize, 48] {
        let plan = Fft3::new(n, n, n);
        let data = signal(n * n * n);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("cube", n), &n, |b, _| {
            let mut buf = data.clone();
            b.iter(|| {
                plan.inverse(black_box(&mut buf));
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fft_1d,
    bench_stick_batch,
    bench_plane_batch,
    bench_fft_3d
);
criterion_main!(benches);
