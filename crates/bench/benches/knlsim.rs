//! Criterion benchmark of the discrete-event simulator's own throughput:
//! events per second for static and task-scheduled programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fftx_knlsim::{simulate, CommModel, ContentionModel, KnlConfig, RankTasks, Segment, TaskSpec};
use fftx_trace::{CommOp, StateClass};
use std::hint::black_box;

fn static_programs(ranks: usize, iters: usize) -> Vec<RankTasks> {
    (0..ranks)
        .map(|_| {
            let mut segs = Vec::new();
            for k in 0..iters {
                segs.push(Segment::compute_keyed(StateClass::FftXy, 1e7, k as u64));
                segs.push(Segment::Collective {
                    op: CommOp::Alltoall,
                    comm_key: 1,
                    size: ranks,
                    bytes: 4096,
                    tag: 0,
                });
            }
            RankTasks::static_program(segs)
        })
        .collect()
}

fn task_programs(ranks: usize, tasks: usize, workers: usize) -> Vec<RankTasks> {
    (0..ranks)
        .map(|_| RankTasks {
            tasks: (0..tasks)
                .map(|t| {
                    TaskSpec::new(
                        format!("t{t}"),
                        t as u64,
                        vec![
                            Segment::compute_keyed(StateClass::FftXy, 1e7, t as u64),
                            Segment::Collective {
                                op: CommOp::Alltoall,
                                comm_key: 2,
                                size: ranks,
                                bytes: 4096,
                                tag: t as u64,
                            },
                        ],
                    )
                })
                .collect(),
            workers,
        })
        .collect()
}

fn bench_des(c: &mut Criterion) {
    let knl = KnlConfig::paper();
    let cont = ContentionModel::paper();
    let comm = CommModel::paper();
    let mut group = c.benchmark_group("des");
    group.sample_size(10);
    for ranks in [16usize, 64] {
        let progs = static_programs(ranks, 32);
        group.bench_with_input(BenchmarkId::new("static", ranks), &ranks, |b, _| {
            b.iter(|| {
                let r = simulate(&progs, &knl, &cont, &comm);
                black_box(r.runtime);
            });
        });
    }
    for ranks in [8usize, 16] {
        let progs = task_programs(ranks, 64, 8);
        group.bench_with_input(BenchmarkId::new("tasks", ranks), &ranks, |b, _| {
            b.iter(|| {
                let r = simulate(&progs, &knl, &cont, &comm);
                black_box(r.runtime);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_des);
criterion_main!(benches);
