//! Integration tests of the virtual MPI layer: semantics of every
//! collective, the paper's two communicator families, concurrent tagged
//! collectives, and tracing.

use fftx_trace::{CommOp, TraceSink};
use fftx_vmpi::World;
use std::time::Duration;

fn world(n: usize) -> World {
    World::new(n).with_timeout(Duration::from_secs(10))
}

#[test]
fn barrier_completes() {
    world(8).run(|comm| {
        for _ in 0..3 {
            comm.barrier();
        }
    });
}

#[test]
fn bcast_distributes_root_data() {
    let out = world(5).run(|comm| {
        let data = if comm.rank() == 2 {
            vec![10u64, 20, 30]
        } else {
            Vec::new()
        };
        comm.bcast(2, data)
    });
    for v in out {
        assert_eq!(v, vec![10, 20, 30]);
    }
}

#[test]
fn allreduce_sums_elementwise() {
    let out = world(4).run(|comm| {
        let r = comm.rank() as f64;
        comm.allreduce_sum(vec![r, 2.0 * r, 1.0])
    });
    for v in out {
        assert_eq!(v, vec![6.0, 12.0, 4.0]); // sum 0..4, 2*sum, 4*1
    }
}

#[test]
fn allreduce_max_with_custom_op() {
    let out = world(6).run(|comm| {
        let r = comm.rank() as i64;
        comm.allreduce(vec![r, -r], |a, b| *a.max(b))
    });
    for v in out {
        assert_eq!(v, vec![5, 0]);
    }
}

#[test]
fn allgather_collects_variable_lengths() {
    let out = world(4).run(|comm| {
        let mine: Vec<usize> = (0..comm.rank()).collect();
        comm.allgather(mine)
    });
    for v in out {
        assert_eq!(v.len(), 4);
        for (j, part) in v.iter().enumerate() {
            assert_eq!(part, &(0..j).collect::<Vec<_>>());
        }
    }
}

#[test]
fn alltoall_transposes_chunks() {
    let n = 4;
    let count = 3;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        // Chunk j carries (me, j, k) encoded.
        let send: Vec<u64> = (0..n * count)
            .map(|i| (me * 100 + (i / count) * 10 + i % count) as u64)
            .collect();
        comm.alltoall(&send, 0)
    });
    for (me, recv) in out.into_iter().enumerate() {
        assert_eq!(recv.len(), n * count);
        for j in 0..n {
            for k in 0..count {
                // From rank j, the chunk addressed to me.
                assert_eq!(recv[j * count + k], (j * 100 + me * 10 + k) as u64);
            }
        }
    }
}

#[test]
fn alltoallv_with_ragged_counts() {
    let n = 3;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        // Send `dst + 1` copies of `me*10 + dst` to each rank.
        let send: Vec<Vec<u32>> = (0..n)
            .map(|dst| vec![(me * 10 + dst) as u32; dst + 1])
            .collect();
        comm.alltoallv(send, 0)
    });
    for (me, recv) in out.into_iter().enumerate() {
        assert_eq!(recv.len(), n);
        for (j, part) in recv.iter().enumerate() {
            assert_eq!(part, &vec![(j * 10 + me) as u32; me + 1], "rank {me} from {j}");
        }
    }
}

#[test]
fn alltoall_into_reuses_caller_buffer_across_rounds() {
    let n = 4;
    let count = 2;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        let mut recv = Vec::new();
        let mut all = Vec::new();
        for round in 0..3u64 {
            let send: Vec<u64> = (0..n * count)
                .map(|i| round * 1000 + (me * 100 + (i / count) * 10 + i % count) as u64)
                .collect();
            comm.alltoall_into(&send, &mut recv, 0);
            all.push(recv.clone());
        }
        all
    });
    for (me, rounds) in out.into_iter().enumerate() {
        for (round, recv) in rounds.into_iter().enumerate() {
            for j in 0..n {
                for k in 0..count {
                    assert_eq!(
                        recv[j * count + k],
                        round as u64 * 1000 + (j * 100 + me * 10 + k) as u64
                    );
                }
            }
        }
    }
}

#[test]
fn alltoall_into_matches_owning_api() {
    let n = 3;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        let send: Vec<u32> = (0..n * 2).map(|i| (me * 10 + i) as u32).collect();
        let owned = comm.alltoall(&send, 0);
        let mut recv = Vec::new();
        comm.alltoall_into(&send, &mut recv, 1);
        (owned, recv)
    });
    for (owned, recv) in out {
        assert_eq!(owned, recv);
    }
}

#[test]
fn alltoallv_into_flat_segments_match_nested_api() {
    let n = 3;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        let nested: Vec<Vec<u32>> = (0..n)
            .map(|dst| vec![(me * 10 + dst) as u32; dst + 1])
            .collect();
        let counts: Vec<usize> = nested.iter().map(|v| v.len()).collect();
        let flat: Vec<u32> = nested.iter().flatten().copied().collect();
        let owned = comm.alltoallv(nested, 0);
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        comm.alltoallv_into(&flat, &counts, &mut recv, &mut recv_counts, 1);
        (owned, recv, recv_counts)
    });
    for (owned, recv, recv_counts) in out {
        let flat_owned: Vec<u32> = owned.iter().flatten().copied().collect();
        let owned_counts: Vec<usize> = owned.iter().map(|v| v.len()).collect();
        assert_eq!(flat_owned, recv);
        assert_eq!(owned_counts, recv_counts);
    }
}

#[test]
fn alltoallv_into_reuses_buffers_with_changing_counts() {
    // Counts differ per round; recv/recv_counts are refilled correctly.
    let n = 2;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        let mut all = Vec::new();
        for round in 1..4usize {
            let counts = vec![round, round * 2];
            let flat: Vec<u64> = (0..counts.iter().sum())
                .map(|i| (me * 1000 + round * 100 + i) as u64)
                .collect();
            comm.alltoallv_into(&flat, &counts, &mut recv, &mut recv_counts, 0);
            all.push((recv.clone(), recv_counts.clone()));
        }
        all
    });
    for (me, rounds) in out.into_iter().enumerate() {
        for (ri, (recv, recv_counts)) in rounds.into_iter().enumerate() {
            let round = ri + 1;
            // Peer j sent us segment `me` of its counts [round, 2*round].
            assert_eq!(recv_counts, vec![round * (me + 1); n]);
            let mut off = 0;
            for (j, &cnt) in recv_counts.iter().enumerate().take(n) {
                let peer_off = (0..me).map(|d| round * (d + 1)).sum::<usize>();
                for k in 0..cnt {
                    assert_eq!(recv[off + k], (j * 1000 + round * 100 + peer_off + k) as u64);
                }
                off += cnt;
            }
        }
    }
}

#[test]
fn send_recv_point_to_point() {
    let out = world(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1.5f64, 2.5]);
            comm.recv::<f64>(1, 8)
        } else {
            let got = comm.recv::<f64>(0, 7);
            comm.send(0, 8, vec![got[0] + got[1]]);
            got
        }
    });
    assert_eq!(out[0], vec![4.0]);
    assert_eq!(out[1], vec![1.5, 2.5]);
}

#[test]
fn messages_with_same_tag_preserve_order() {
    let out = world(2).run(|comm| {
        if comm.rank() == 0 {
            for i in 0..10u32 {
                comm.send(1, 0, vec![i]);
            }
            Vec::new()
        } else {
            (0..10).map(|_| comm.recv::<u32>(0, 0)[0]).collect::<Vec<_>>()
        }
    });
    assert_eq!(out[1], (0..10).collect::<Vec<_>>());
}

/// The paper's communicator topology: P = R*T ranks; pack groups are T
/// *neighbouring* ranks (R sub-communicators), scatter groups are R ranks
/// *strided* by T (T sub-communicators: "1, 9, 17, ...").
#[test]
fn split_builds_the_papers_two_families() {
    let (r, t) = (4, 2);
    let p = r * t;
    let out = world(p).run(|comm| {
        let me = comm.rank();
        let pack = comm.split((me / t) as u64, me % t);
        let scatter = comm.split((me % t) as u64, me / t);
        (
            pack.members().to_vec(),
            pack.rank(),
            scatter.members().to_vec(),
            scatter.rank(),
        )
    });
    for (me, (pack_members, pack_rank, scat_members, scat_rank)) in out.into_iter().enumerate() {
        let g = me / t;
        let expect_pack: Vec<usize> = (g * t..(g + 1) * t).collect();
        assert_eq!(pack_members, expect_pack, "rank {me} pack group");
        assert_eq!(pack_rank, me % t);
        let i = me % t;
        let expect_scat: Vec<usize> = (0..r).map(|q| q * t + i).collect();
        assert_eq!(scat_members, expect_scat, "rank {me} scatter group");
        assert_eq!(scat_rank, me / t);
    }
}

#[test]
fn split_groups_are_independent() {
    // An alltoall inside one subgroup must not interfere with the other's.
    let out = world(4).run(|comm| {
        let sub = comm.split((comm.rank() % 2) as u64, comm.rank());
        let send = vec![comm.rank() as u64; sub.size()];
        sub.alltoall(&send, 0)
    });
    assert_eq!(out[0], vec![0, 2]);
    assert_eq!(out[2], vec![0, 2]);
    assert_eq!(out[1], vec![1, 3]);
    assert_eq!(out[3], vec![1, 3]);
}

#[test]
fn dup_creates_independent_context() {
    let out = world(3).run(|comm| {
        let dup = comm.dup();
        assert_ne!(dup.id(), comm.id());
        assert_eq!(dup.members(), comm.members());
        // Interleave collectives on the two contexts.
        let a = comm.allreduce_sum(vec![1.0]);
        let b = dup.allreduce_sum(vec![2.0]);
        (a[0], b[0])
    });
    for (a, b) in out {
        assert_eq!((a, b), (3.0, 6.0));
    }
}

#[test]
fn concurrent_tagged_alltoalls_from_threads() {
    // Each rank runs 4 threads, each doing an alltoall with its own tag —
    // the situation the task-based miniapp creates. Scheduling order across
    // ranks is arbitrary; tags must keep instances separate.
    let n = 4;
    let tags = 4u32;
    let out = world(n).run(|comm| {
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for tag in 0..tags {
                let comm = comm.clone();
                handles.push(s.spawn(move || {
                    let send: Vec<u64> = (0..n)
                        .map(|dst| (tag as usize * 1000 + comm.rank() * 10 + dst) as u64)
                        .collect();
                    (tag, comm.alltoall(&send, tag))
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
    });
    for (me, results) in out.into_iter().enumerate() {
        for (tag, recv) in results {
            for (j, &v) in recv.iter().enumerate() {
                assert_eq!(v, (tag as usize * 1000 + j * 10 + me) as u64);
            }
        }
    }
}

#[test]
fn repeated_collectives_advance_sequence() {
    let out = world(3).run(|comm| {
        let mut acc = Vec::new();
        for i in 0..5 {
            acc.push(comm.allreduce_sum(vec![i as f64])[0]);
        }
        acc
    });
    for v in out {
        assert_eq!(v, vec![0.0, 3.0, 6.0, 9.0, 12.0]);
    }
}

#[test]
fn trace_records_comm_operations() {
    let sink = TraceSink::new();
    World::new(2)
        .with_trace(sink.clone())
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            comm.barrier();
            let send = vec![1u8, 2];
            comm.alltoall(&send, 0);
        });
    let trace = sink.finish();
    let barriers = trace.comm.iter().filter(|r| r.op == CommOp::Barrier).count();
    let a2a = trace.comm.iter().filter(|r| r.op == CommOp::Alltoall).count();
    assert_eq!(barriers, 2);
    assert_eq!(a2a, 2);
    for r in trace.comm.iter().filter(|r| r.op == CommOp::Alltoall) {
        assert_eq!(r.bytes, 2);
        assert_eq!(r.comm_size, 2);
        assert!(r.t_end >= r.t_start);
    }
}

#[test]
#[should_panic(expected = "vmpi deadlock")]
fn missing_participant_panics_with_diagnostic() {
    world(2)
        .with_timeout(Duration::from_millis(100))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.barrier();
            }
            // rank 1 never joins; rank 0 must panic with a deadlock message.
        });
}

#[test]
#[should_panic(expected = "type mismatch")]
fn type_mismatch_is_detected() {
    world(2)
        .with_timeout(Duration::from_secs(5))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1u32]);
            } else {
                let _ = comm.recv::<f64>(0, 0);
            }
        });
}

#[test]
fn large_alltoall_moves_megabytes() {
    let n = 8;
    let count = 16 * 1024; // 16k f64 per pair = 1 MiB per rank
    let out = world(n).run(|comm| {
        let me = comm.rank() as f64;
        let send: Vec<f64> = (0..n * count).map(|i| me + i as f64 * 1e-9).collect();
        let recv = comm.alltoall(&send, 0);
        recv.iter().sum::<f64>()
    });
    assert_eq!(out.len(), n);
    for s in out {
        assert!(s.is_finite());
    }
}
