//! Hardening tests: scenarios that used to hang (until the 60 s world
//! timeout tore the process down with a bare panic) now come back as typed
//! [`VmpiError`] values with a watchdog diagnostic, and the chaos engine
//! perturbs the transport without ever changing what is delivered.

use fftx_fault::{ChaosConfig, FaultKind, StallConfig};
use fftx_vmpi::{VmpiError, World};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

// ---------------------------------------------------------------------
// Watchdog: previously-hanging scenarios become Err with a diagnostic
// ---------------------------------------------------------------------

/// Scenario 1: a rank never contributes to a collective. The survivors'
/// waits used to hang (then panic); `try_alltoall` now returns a timeout
/// error whose diagnostic shows who arrived and who is missing.
#[test]
fn lost_contribution_times_out_with_diagnostic() {
    let out = World::new(3)
        .with_timeout(Duration::from_millis(300))
        .run(|comm| {
            if comm.rank() == 2 {
                // This rank "fails" before the collective.
                return None;
            }
            let send = vec![comm.rank() as u64; 3];
            Some(comm.try_alltoall(&send, 0))
        });
    assert!(out[2].is_none());
    for r in [&out[0], &out[1]] {
        let err = r.as_ref().unwrap().as_ref().unwrap_err();
        match err {
            VmpiError::Timeout {
                message,
                diagnostic,
            } => {
                assert!(
                    message.contains("vmpi deadlock") && message.contains("2/3 arrived"),
                    "message: {message}"
                );
                assert!(
                    diagnostic.contains("pending collective") && diagnostic.contains("2 arrived"),
                    "diagnostic: {diagnostic}"
                );
                // The snapshot names every rank's last event.
                assert!(diagnostic.contains("rank 0:") && diagnostic.contains("rank 2:"));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}

/// A recv with no matching sender times out with the classic one-liner
/// plus the world snapshot.
#[test]
fn recv_timeout_reports_diagnostic() {
    let out = World::new(2)
        .with_timeout(Duration::from_millis(200))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.try_recv::<u32>(1, 5).map(|_| ())
            } else {
                Ok(())
            }
        });
    let err = out[0].as_ref().unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("stuck in recv(src=1, tag=5)"),
        "error text: {text}"
    );
    assert!(text.contains("world snapshot"), "error text: {text}");
}

/// Scenario 2 (the dropped `AlltoallRequest`): the dropping rank still
/// panics loudly, but now it also cleans up its collective slot and aborts
/// the world, so peers that try to join the same collective fail fast with
/// a typed error naming the communicator and tag — and no slot leaks.
#[test]
fn dropped_request_aborts_world_without_leaking_slots() {
    let out = World::new(3)
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            if comm.rank() == 0 {
                let req = comm.ialltoall(&[1u8, 2, 3], 7);
                let panicked = catch_unwind(AssertUnwindSafe(move || drop(req))).is_err();
                assert!(panicked, "dropping a live request must panic");
                // The dropped request's slot must be gone immediately.
                assert_eq!(comm.pending_collectives(), 0, "slot leaked by drop");
                // Release the peers (p2p still works after the abort).
                comm.send(1, 99, vec![0u8]);
                comm.send(2, 99, vec![0u8]);
                Ok(vec![])
            } else {
                comm.recv::<u8>(0, 99);
                let r = comm.try_alltoall(&[9u8, 9, 9], 7);
                assert_eq!(comm.pending_collectives(), 0, "slot leaked at peer");
                r
            }
        });
    for r in [&out[1], &out[2]] {
        match r.as_ref().unwrap_err() {
            VmpiError::DroppedRequest { comm, tag, .. } => {
                assert_eq!((*comm, *tag), (0, 7));
            }
            other => panic!("expected DroppedRequest, got {other:?}"),
        }
    }
    let text = out[1].as_ref().unwrap_err().to_string();
    assert!(text.contains("comm 0") && text.contains("tag 7"), "{text}");
}

/// A payload type mismatch is a typed error from `try_recv` (and still a
/// panic with the legacy wording from `recv`).
#[test]
fn type_mismatch_is_a_typed_error() {
    let out = World::new(2)
        .with_timeout(Duration::from_secs(5))
        .run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1u32, 2, 3]);
                Ok(())
            } else {
                comm.try_recv::<f64>(0, 0).map(|_| ())
            }
        });
    match out[1].as_ref().unwrap_err() {
        VmpiError::TypeMismatch { .. } => {}
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    assert!(out[1]
        .as_ref()
        .unwrap_err()
        .to_string()
        .contains("element type mismatch with sender"));
}

// ---------------------------------------------------------------------
// Chaos engine: faults perturb timing, never payloads or order
// ---------------------------------------------------------------------

fn p2p_exchange(comm: &fftx_vmpi::Communicator, rounds: usize) -> Vec<Vec<u64>> {
    let n = comm.size();
    let me = comm.rank();
    for round in 0..rounds {
        for dst in 0..n {
            if dst != me {
                comm.send(dst, 3, vec![(me * 1000 + round) as u64]);
            }
        }
    }
    // Receive everything in (src, round) order; chaos must not change it.
    let mut got = Vec::new();
    for src in 0..n {
        if src == me {
            continue;
        }
        let mut from_src = Vec::new();
        for _ in 0..rounds {
            from_src.extend(comm.recv::<u64>(src, 3));
        }
        got.push(from_src);
    }
    got
}

#[test]
fn chaos_transport_is_lossless_and_in_order() {
    let clean = World::new(3)
        .with_timeout(Duration::from_secs(20))
        .run(|comm| p2p_exchange(comm, 12));
    let chaotic_world = World::new(3)
        .with_timeout(Duration::from_secs(20))
        .with_chaos(ChaosConfig::aggressive(0xC0FFEE));
    let chaotic = chaotic_world.run(|comm| p2p_exchange(comm, 12));
    assert_eq!(clean, chaotic, "chaos changed delivered data or order");
    let report = chaotic_world.fault_report().expect("chaos active");
    assert!(
        !report.events.is_empty(),
        "aggressive chaos injected nothing over 72 messages"
    );
    assert!(!report.deliveries.is_empty());
}

#[test]
fn chaos_preserves_collective_results() {
    let n = 4;
    let run = |world: World| {
        world.with_timeout(Duration::from_secs(20)).run(|comm| {
            let send: Vec<u64> = (0..n * 2).map(|i| (comm.rank() * 100 + i) as u64).collect();
            let a2a = comm.alltoall(&send, 1);
            let sum = comm.allreduce_sum(vec![comm.rank() as f64]);
            (a2a, sum)
        })
    };
    let clean = run(World::new(n));
    let chaotic = run(World::new(n).with_chaos(ChaosConfig::aggressive(7)));
    assert_eq!(clean, chaotic);
}

#[test]
fn same_seed_reproduces_the_fault_schedule() {
    let run = |seed: u64| {
        let world = World::new(3)
            .with_timeout(Duration::from_secs(20))
            .with_chaos(ChaosConfig::aggressive(seed));
        world.run(|comm| p2p_exchange(comm, 8));
        world.fault_report().unwrap()
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn stall_injection_records_straggler_events() {
    let cfg = ChaosConfig {
        seed: 5,
        ..ChaosConfig::default()
    }
    .with_stall(StallConfig::rank(1, Duration::from_millis(5), 2));
    let world = World::new(2)
        .with_timeout(Duration::from_secs(10))
        .with_chaos(cfg);
    world.run(|comm| {
        for _ in 0..4 {
            comm.barrier();
        }
    });
    let report = world.fault_report().unwrap();
    // Rank 1 enters 4 collectives, stalling on entries 0 and 2.
    assert_eq!(report.count(FaultKind::Stall), 2);
    for e in report.events {
        assert_eq!(e.src, 1, "only rank 1 is configured to stall");
    }
}

// ---------------------------------------------------------------------
// Fatal faults and recovery primitives
// ---------------------------------------------------------------------

/// Permanent message loss (the opt-in fatal chaos knob) surfaces at the
/// receiver as a typed timeout — not a hang, not a panic — and the report
/// names the lost message.
#[test]
fn permanent_loss_becomes_a_typed_timeout() {
    let cfg = ChaosConfig {
        seed: 9,
        ..ChaosConfig::default()
    }
    .with_loss(1.0);
    let world = World::new(2)
        .with_timeout(Duration::from_millis(300))
        .with_chaos(cfg);
    let out = world.run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 4, vec![42u64]);
            Ok(vec![])
        } else {
            comm.try_recv::<u64>(0, 4)
        }
    });
    match out[1].as_ref().unwrap_err() {
        VmpiError::Timeout { message, .. } => {
            assert!(message.contains("stuck in recv"), "{message}");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    let report = world.fault_report().unwrap();
    assert_eq!(report.count(FaultKind::Loss), 1);
    assert!(report.deliveries.is_empty(), "a lost message was delivered");
}

/// A duplicate contribution — one rank posting twice into the same
/// `(kind, tag, seq)` instance — is now a propagated [`VmpiError::Protocol`]
/// from the `try_*` family instead of an assert deep inside
/// `collective_post`, and the world aborts so peers fail fast with the
/// same typed cause. The deterministic trigger: two `shrink` calls with
/// identical arguments return handles to the *same* matching space with
/// *independent* sequence counters, so split-phase posts on both collide.
#[test]
fn duplicate_contribution_is_a_typed_protocol_error() {
    let out = World::new(2)
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            let a = comm.shrink(&[], 0);
            let b = comm.shrink(&[], 0);
            assert_eq!(a.id(), b.id(), "identical shrinks share a matching space");
            if comm.rank() == 0 {
                let req1 = a.ialltoall(&[1u8, 2], 0);
                // Fresh seq counter on `b`: this second post lands on the
                // same (kind, tag, seq) instance — a duplicate.
                let req2 = b.ialltoall(&[3u8, 4], 0);
                let r2 = req2.try_wait().map(|_| ());
                let r1 = req1.try_wait().map(|_| ());
                // The world is aborted; p2p still works to release rank 1.
                comm.send(1, 9, vec![0u8]);
                vec![r1, r2]
            } else {
                comm.recv::<u8>(0, 9);
                vec![b.try_alltoall(&[5u8, 6], 0).map(|_| ())]
            }
        });
    for r in out.iter().flatten() {
        match r.as_ref().unwrap_err() {
            VmpiError::Protocol { context } => {
                assert!(context.contains("duplicate contribution"), "{context}");
            }
            other => panic!("expected Protocol, got {other:?}"),
        }
    }
}

/// `shrink` builds the survivors' communicator without any communication:
/// same members minus the dead rank, same relative order, a fresh matching
/// space shared by all survivors, and the shrunk group is fully usable for
/// p2p and collectives.
#[test]
fn shrink_evicts_a_rank_and_keeps_collectives_working() {
    let out = World::new(4)
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            if comm.rank() == 2 {
                // The "dead" rank simply stops participating.
                return (u64::MAX, vec![]);
            }
            let small = comm.shrink(&[2], 0);
            assert_eq!(small.size(), 3);
            assert_eq!(small.members(), &[0, 1, 3]);
            // Survivor indices are compacted in order.
            let expect_index = match comm.rank() {
                0 => 0,
                1 => 1,
                3 => 2,
                _ => unreachable!(),
            };
            assert_eq!(small.rank(), expect_index);
            // The shrunk communicator must work for collectives...
            let sums = small.allreduce_sum(vec![comm.rank() as f64]);
            assert_eq!(sums, vec![4.0]);
            // ...and p2p (ring exchange).
            let nxt = (small.rank() + 1) % small.size();
            let prv = (small.rank() + small.size() - 1) % small.size();
            small.send(nxt, 1, vec![small.rank() as u64]);
            let got = small.recv::<u64>(prv, 1);
            assert_eq!(got, vec![prv as u64]);
            (small.id(), small.members().to_vec())
        });
    // Every survivor derived the identical communicator id (symmetric,
    // communication-free agreement) in the high-bit namespace.
    assert_eq!(out[0].0, out[1].0);
    assert_eq!(out[0].0, out[3].0);
    assert!(
        (out[0].0 & (1u64 << 63)) != 0,
        "shrunk ids live in the high-bit namespace"
    );
    // Different epochs give different matching spaces.
    let other = World::new(4)
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            if comm.rank() == 2 {
                return (0, 0);
            }
            (comm.shrink(&[2], 0).id(), comm.shrink(&[2], 1).id())
        });
    assert_ne!(other[0].0, other[0].1);
}

/// Duplicates are discarded by sequence number; the report shows both the
/// injection and the discard once the duplicated channel sees more traffic.
#[test]
fn duplicates_are_discarded_not_delivered() {
    let cfg = ChaosConfig {
        seed: 21,
        p_duplicate: 1.0,
        ..ChaosConfig::default()
    };
    let world = World::new(2)
        .with_timeout(Duration::from_secs(10))
        .with_chaos(cfg);
    let out = world.run(|comm| {
        if comm.rank() == 0 {
            for i in 0..10u64 {
                comm.send(1, 0, vec![i]);
            }
            vec![]
        } else {
            (0..10).flat_map(|_| comm.recv::<u64>(0, 0)).collect()
        }
    });
    assert_eq!(out[1], (0..10).collect::<Vec<u64>>());
    let report = world.fault_report().unwrap();
    assert_eq!(report.count(FaultKind::Duplicate), 10);
    assert!(report.count(FaultKind::DuplicateDiscarded) >= 9);
    // Exactly ten real deliveries.
    assert_eq!(report.deliveries.len(), 10);
}
