//! Integration tests of the checksummed exchange: seeded payload
//! corruption on the staged "wire" copy must surface as a typed
//! [`VmpiError::Integrity`] on the receiving rank — never as silently
//! wrong numbers — and a clean transport must never trip a checksum.

use fftx_fault::PayloadCorrupt;
use fftx_vmpi::{ChaosConfig, VmpiError, World};
use std::time::Duration;

fn world(n: usize) -> World {
    World::new(n).with_timeout(Duration::from_secs(10))
}

fn corrupting_world(n: usize, seed: u64, p: f64) -> World {
    let cfg = ChaosConfig {
        seed,
        ..ChaosConfig::default()
    }
    .with_corruption(PayloadCorrupt::new(seed, p));
    world(n).with_chaos(cfg)
}

/// The uniform alltoall payload rank `r` sends in these tests: chunk `j`
/// carries values encoding `(r, j, position)`.
fn payload(rank: usize, size: usize, count: usize) -> Vec<f64> {
    (0..size * count)
        .map(|i| (rank * 1000 + i) as f64 + 0.5)
        .collect()
}

/// What the clean exchange must deliver to `rank`.
fn expected(rank: usize, size: usize, count: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(size * count);
    for src in 0..size {
        let theirs = payload(src, size, count);
        out.extend_from_slice(&theirs[rank * count..(rank + 1) * count]);
    }
    out
}

#[test]
fn clean_exchange_never_trips_a_checksum() {
    let size = 4;
    let out = world(size).run(move |comm| {
        let send = payload(comm.rank(), size, 3);
        let mut recv = Vec::new();
        comm.try_alltoall_into(&send, &mut recv, 7)?;
        let req = comm.ialltoall(&send, 8);
        let nb = req.try_wait()?;
        assert_eq!(nb, recv, "blocking and split-phase must agree");
        Ok::<Vec<f64>, VmpiError>(recv)
    });
    for (rank, r) in out.into_iter().enumerate() {
        assert_eq!(r.expect("clean exchange"), expected(rank, size, 3));
    }
}

#[test]
fn full_rate_corruption_is_always_detected_in_alltoall() {
    let size = 4;
    let out = corrupting_world(size, 42, 1.0).run(move |comm| {
        let send = payload(comm.rank(), size, 5);
        let mut recv = vec![-1.0f64];
        let err = comm
            .try_alltoall_into(&send, &mut recv, 7)
            .expect_err("every chunk is struck at p=1.0");
        // Nothing corrupted may reach the caller's buffer.
        assert_eq!(recv, vec![-1.0], "recv untouched on detection");
        err
    });
    for e in out {
        match e {
            VmpiError::Integrity { peer, tag, expected, got } => {
                assert!(peer < size);
                assert_eq!(tag, 7);
                assert_ne!(expected, got);
            }
            other => panic!("expected Integrity, got {other}"),
        }
    }
}

#[test]
fn full_rate_corruption_is_always_detected_in_alltoallv() {
    let size = 3;
    let out = corrupting_world(size, 7, 1.0).run(move |comm| {
        let me = comm.rank();
        // Variable segment lengths: rank r sends j+1 elements to rank j.
        let send_counts: Vec<usize> = (0..size).map(|j| j + 1).collect();
        let send: Vec<f64> = (0..send_counts.iter().sum::<usize>())
            .map(|i| (me * 100 + i) as f64)
            .collect();
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        let err = comm
            .try_alltoallv_into(&send, &send_counts, &mut recv, &mut recv_counts, 9)
            .expect_err("every segment is struck at p=1.0");
        assert!(recv.is_empty(), "no partial delivery on detection");
        assert!(recv_counts.is_empty());
        err
    });
    for e in out {
        assert!(
            matches!(e, VmpiError::Integrity { tag: 9, .. }),
            "expected Integrity, got {e}"
        );
    }
}

#[test]
fn split_phase_wait_detects_corruption() {
    let size = 2;
    let out = corrupting_world(size, 99, 1.0).run(move |comm| {
        let send = payload(comm.rank(), size, 4);
        comm.ialltoall(&send, 3).try_wait().expect_err("struck")
    });
    for e in out {
        assert!(matches!(e, VmpiError::Integrity { tag: 3, .. }));
    }
}

#[test]
fn empty_chunks_never_false_positive_even_when_struck() {
    let size = 3;
    let out = corrupting_world(size, 5, 1.0).run(move |comm| {
        // A strike against a zero-length segment has nothing to flip; the
        // checksum of "nothing" must still verify.
        let send: Vec<f64> = Vec::new();
        let counts = vec![0usize; size];
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        comm.try_alltoallv_into(&send, &counts, &mut recv, &mut recv_counts, 1)?;
        Ok::<usize, VmpiError>(recv.len())
    });
    for r in out {
        assert_eq!(r.expect("empty exchange is clean"), 0);
    }
}

#[test]
fn every_delivered_result_is_bit_identical_to_the_clean_run() {
    // The zero-corrupted-results-delivered property at a moderate strike
    // rate: over many exchanges, each rank either gets a typed Integrity
    // error or *exactly* the clean payload — never a third outcome.
    let size = 4;
    let count = 6;
    let rounds = 40;
    let out = corrupting_world(size, 2024, 0.25).run(move |comm| {
        let me = comm.rank();
        let send = payload(me, size, count);
        let want = expected(me, size, count);
        let mut detected = 0usize;
        let mut clean = 0usize;
        for round in 0..rounds {
            let mut recv = Vec::new();
            match comm.try_alltoall_into(&send, &mut recv, 11 + round) {
                Ok(()) => {
                    assert_eq!(recv, want, "delivered data must be bit-identical");
                    clean += 1;
                }
                Err(VmpiError::Integrity { .. }) => detected += 1,
                Err(other) => panic!("unexpected transport error: {other}"),
            }
        }
        (detected, clean)
    });
    let total_detected: usize = out.iter().map(|(d, _)| d).sum();
    let total_clean: usize = out.iter().map(|(_, c)| c).sum();
    assert!(total_detected > 0, "p=0.25 over {rounds} rounds must strike");
    assert!(total_clean > 0, "p=0.25 must leave some exchanges clean");
}

#[test]
fn detection_is_deterministic_in_the_seed() {
    let size = 3;
    let run = |seed: u64| {
        corrupting_world(size, seed, 0.5).run(move |comm| {
            let send = payload(comm.rank(), size, 2);
            (0..20u32)
                .map(|round| {
                    comm.try_alltoall_into(&send, &mut Vec::new(), 50 + round)
                        .is_err()
                })
                .collect::<Vec<bool>>()
        })
    };
    assert_eq!(run(77), run(77), "same seed, same detection schedule");
    assert_ne!(run(77), run(78), "different seeds differ somewhere");
}
