//! Tests of the split-phase (nonblocking) collectives: semantics identical
//! to the blocking alltoall, overlap actually possible, mixing of blocking
//! and nonblocking calls, and the lost-request diagnostic.

use fftx_vmpi::World;
use std::time::Duration;

fn world(n: usize) -> World {
    World::new(n).with_timeout(Duration::from_secs(10))
}

#[test]
fn ialltoall_matches_blocking_semantics() {
    let n = 4;
    let count = 3;
    let out = world(n).run(|comm| {
        let me = comm.rank();
        let send: Vec<u64> = (0..n * count)
            .map(|i| (me * 100 + (i / count) * 10 + i % count) as u64)
            .collect();
        let req = comm.ialltoall(&send, 0);
        req.wait()
    });
    for (me, recv) in out.into_iter().enumerate() {
        for j in 0..n {
            for k in 0..count {
                assert_eq!(recv[j * count + k], (j * 100 + me * 10 + k) as u64);
            }
        }
    }
}

#[test]
fn work_happens_between_post_and_wait() {
    // Every rank posts, computes something, then waits — the exchange must
    // complete regardless of what happens in between.
    let out = world(3).run(|comm| {
        let send = vec![comm.rank() as f64; 3];
        let req = comm.ialltoall(&send, 0);
        assert!(req.posted_at() >= 0.0);
        // Simulated overlapped compute.
        let mut acc = 0.0;
        for i in 0..10_000 {
            acc += (i as f64).sqrt();
        }
        let recv = req.wait();
        (recv, acc)
    });
    for (recv, _) in out {
        assert_eq!(recv, vec![0.0, 1.0, 2.0]);
    }
}

#[test]
fn test_eventually_reports_completion() {
    let out = world(2).run(|comm| {
        let send = vec![comm.rank() as u32; 2];
        let req = comm.ialltoall(&send, 0);
        // Both ranks have posted by the time either can spin for long;
        // poll until complete, then collect.
        let mut polls = 0usize;
        while !req.test() {
            polls += 1;
            std::thread::yield_now();
            assert!(polls < 10_000_000, "test() never became true");
        }
        req.wait()
    });
    assert_eq!(out[0], vec![0, 1]);
    assert_eq!(out[1], vec![0, 1]);
}

#[test]
fn several_requests_in_flight() {
    let n = 3;
    let out = world(n).run(|comm| {
        let reqs: Vec<_> = (0..4u32)
            .map(|tag| {
                let send: Vec<u64> = (0..n).map(|d| (tag as usize * 100 + d) as u64).collect();
                comm.ialltoall(&send, tag)
            })
            .collect();
        reqs.into_iter().map(|r| r.wait()).collect::<Vec<_>>()
    });
    for recv_sets in out {
        for (tag, recv) in recv_sets.iter().enumerate() {
            for (j, &v) in recv.iter().enumerate() {
                let me_chunk = v as usize % 100;
                assert_eq!(v as usize / 100, tag, "from rank {j}");
                let _ = me_chunk;
            }
        }
    }
}

#[test]
fn mixes_with_blocking_alltoall_in_order() {
    let out = world(2).run(|comm| {
        let a = comm.ialltoall(&[comm.rank() as u32, comm.rank() as u32], 0);
        let b = comm.alltoall(&[10 + comm.rank() as u32, 10 + comm.rank() as u32], 0);
        let a = a.wait();
        (a, b)
    });
    for (a, b) in out {
        assert_eq!(a, vec![0, 1]);
        assert_eq!(b, vec![10, 11]);
    }
}

#[test]
fn wait_records_only_the_wait_interval() {
    use fftx_trace::{CommOp, TraceSink};
    let sink = TraceSink::new();
    World::new(2)
        .with_trace(sink.clone())
        .with_timeout(Duration::from_secs(10))
        .run(|comm| {
            let req = comm.ialltoall(&[1u8, 2], 0);
            // Both ranks sleep after posting; the transfer completes during
            // the sleep, so the recorded wait must be much shorter.
            std::thread::sleep(Duration::from_millis(30));
            let posted = req.posted_at();
            let out = req.wait();
            (posted, out)
        });
    let trace = sink.finish();
    let rec = trace
        .comm
        .iter()
        .find(|r| r.op == CommOp::Alltoall)
        .expect("alltoall recorded");
    assert!(
        rec.duration() < 0.025,
        "wait interval {}s should exclude the overlapped transfer",
        rec.duration()
    );
}

#[test]
#[should_panic(expected = "dropped without wait")]
fn dropping_a_request_is_a_loud_error() {
    world(1).run(|comm| {
        let req = comm.ialltoall(&[1u8], 0);
        drop(req);
    });
}
