//! Property tests: alltoall/alltoallv against a sequential permutation
//! oracle for random rank counts and payload shapes.

use fftx_vmpi::World;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoall_is_a_block_transpose(n in 1usize..6, count in 1usize..8) {
        let out = World::new(n)
            .with_timeout(Duration::from_secs(20))
            .run(|comm| {
                let me = comm.rank();
                let send: Vec<u64> = (0..n * count)
                    .map(|i| (me * 10_000 + i) as u64)
                    .collect();
                comm.alltoall(&send, 0)
            });
        for (me, recv) in out.into_iter().enumerate() {
            for j in 0..n {
                for k in 0..count {
                    let expect = (j * 10_000 + me * count + k) as u64;
                    prop_assert_eq!(recv[j * count + k], expect);
                }
            }
        }
    }

    #[test]
    fn alltoallv_conserves_every_element(
        n in 1usize..5,
        counts in proptest::collection::vec(0usize..7, 25),
    ) {
        // counts[src * n + dst] elements from src to dst (matrix truncated
        // to the n*n prefix).
        let matrix: Vec<Vec<usize>> = (0..n)
            .map(|s| (0..n).map(|d| counts[(s * n + d) % counts.len()]).collect())
            .collect();
        let matrix_ref = &matrix;
        let out = World::new(n)
            .with_timeout(Duration::from_secs(20))
            .run(move |comm| {
                let me = comm.rank();
                let send: Vec<Vec<u64>> = (0..n)
                    .map(|dst| {
                        (0..matrix_ref[me][dst])
                            .map(|k| (me * 1_000_000 + dst * 1000 + k) as u64)
                            .collect()
                    })
                    .collect();
                comm.alltoallv(send, 0)
            });
        for (me, recv) in out.into_iter().enumerate() {
            prop_assert_eq!(recv.len(), n);
            for (src, part) in recv.iter().enumerate() {
                let expect: Vec<u64> = (0..matrix[src][me])
                    .map(|k| (src * 1_000_000 + me * 1000 + k) as u64)
                    .collect();
                prop_assert_eq!(part, &expect, "dst {} from {}", me, src);
            }
        }
    }

    #[test]
    fn split_partitions_the_world(n in 1usize..8, modulo in 1usize..4) {
        let out = World::new(n)
            .with_timeout(Duration::from_secs(20))
            .run(|comm| {
                let sub = comm.split((comm.rank() % modulo) as u64, comm.rank());
                (sub.members().to_vec(), sub.rank(), sub.id())
            });
        // Groups with the same members share an id; members are sorted and
        // partition 0..n.
        let mut seen = vec![false; n];
        for (me, (members, my_rank, _id)) in out.iter().enumerate() {
            prop_assert_eq!(members[*my_rank], me);
            prop_assert!(members.windows(2).all(|w| w[0] < w[1]));
            for &m in members {
                prop_assert_eq!(m % modulo, me % modulo);
            }
            seen[me] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Same color -> identical communicator id.
        for (a, (ma, _, ida)) in out.iter().enumerate() {
            for (b, (mb, _, idb)) in out.iter().enumerate() {
                if a % modulo == b % modulo {
                    prop_assert_eq!(ma, mb);
                    prop_assert_eq!(ida, idb);
                }
            }
        }
    }
}
