//! Communicators: rank identity, point-to-point messaging, collectives,
//! `split`/`dup`. Collectives are *tag-qualified*: concurrent collectives on
//! the same communicator from different tasks match by `(kind, tag, seq)`,
//! which is what lets the task-based miniapp versions run several alltoalls
//! in flight at once (one per in-flight FFT task).
//!
//! ## Deadlock-freedom with blocking collectives inside tasks
//!
//! A collective returns once all communicator members have deposited their
//! contribution. With FIFO task scheduling and the same task-creation order
//! on every rank, the set of tags a rank's workers can be blocked on is a
//! window of the oldest unfinished tags; the globally oldest unfinished tag
//! is inside every rank's window, so some worker on every rank eventually
//! deposits for it and the system always makes progress. The
//! [`crate::world::World`] timeout turns any violation of this discipline
//! (mismatched tags, missing participants) into a loud failure — a
//! [`VmpiError::Timeout`] carrying a world snapshot from the `try_*`
//! variants, a panic formatting the same error from the classic calls —
//! instead of a hang.
//!
//! ## Fault injection
//!
//! When the world carries a chaos engine, `send` asks it for a wire plan
//! (drop-with-retry, delay, duplication, reordering) and `recv` restores
//! per-channel order by sequence number while discarding duplicate copies;
//! collectives consult the engine's rank-stall schedule on entry. All of it
//! is semantically lossless: a chaotic run delivers exactly the payloads of
//! a clean run, in the same per-channel order, just later — which is what
//! the chaos-determinism property tests pin down.

use crate::error::VmpiError;
use crate::integrity::{checksum_slice, Checksum};
use crate::world::{
    CollKey, CollKind, CollSlot, Envelope, Mailbox, P2pKey, RankEvent, WorldShared,
};
use fftx_fault::MessagePlan;
use fftx_trace::{current_thread, CommOp, CommRecord, Lane};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A rank's staged variable-length contribution: flat payload,
/// per-destination counts, per-destination pack-time checksums.
type VarStaged<T> = (Vec<T>, Vec<usize>, Vec<u64>);

/// A group of ranks with a private communication context.
#[derive(Clone)]
pub struct Communicator {
    shared: Arc<WorldShared>,
    id: u64,
    /// World ranks of the members, in index order.
    ranks: Arc<Vec<usize>>,
    /// This rank's index within `ranks`.
    index: usize,
    /// Per-(kind, tag) sequence counters, shared among clones on this rank.
    seq: Arc<Mutex<HashMap<(CollKind, u32), u64>>>,
}

impl Communicator {
    pub(crate) fn world(shared: Arc<WorldShared>, ranks: Arc<Vec<usize>>, rank: usize) -> Self {
        Communicator {
            shared,
            id: 0,
            ranks,
            index: rank,
            seq: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Rank of the caller inside this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.index
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The caller's rank in the world communicator.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.ranks[self.index]
    }

    /// World ranks of all members, in communicator order.
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }

    /// Stable communicator identifier (0 is the world communicator).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current time on the world clock (seconds since `World::run` began).
    pub fn now(&self) -> f64 {
        self.shared.clock.now()
    }

    /// A clone of the world clock, so other components (e.g. the task
    /// runtime) can stamp trace records on the same time base.
    pub fn clock(&self) -> fftx_trace::WallClock {
        self.shared.clock.clone()
    }

    /// The trace sink attached to the world, if any.
    pub fn trace_sink(&self) -> Option<fftx_trace::TraceSink> {
        self.shared.trace.clone()
    }

    /// Number of collective slots currently staged in the world (all
    /// communicators). Useful to assert the absence of slot leaks after a
    /// failure was handled.
    pub fn pending_collectives(&self) -> usize {
        self.shared.collectives.lock().len()
    }

    fn lane(&self) -> Lane {
        Lane::new(self.world_rank(), current_thread())
    }

    pub(crate) fn record(&self, op: CommOp, bytes: usize, t0: f64, t1: f64) {
        if let Some(sink) = &self.shared.trace {
            sink.comm(CommRecord {
                lane: self.lane(),
                op,
                comm_id: self.id,
                comm_size: self.size(),
                bytes,
                t_start: t0,
                t_end: t1,
            });
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Sends `data` to `dst` (communicator index) with `tag`. Non-blocking
    /// in the buffered-send sense: the message is enqueued immediately
    /// (under chaos, after the injected retransmit/delay latency).
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u32, data: Vec<T>) {
        assert!(dst < self.size(), "send: dst {dst} out of range");
        let t0 = self.now();
        let bytes = std::mem::size_of::<T>() * data.len();
        let key = P2pKey {
            comm_id: self.id,
            src: self.index,
            dst,
            tag,
        };
        let plan = match &self.shared.chaos {
            Some(engine) => {
                let plan = engine.plan_message(self.id, self.index, dst, u64::from(tag));
                let latency = plan.latency(engine.config());
                if !latency.is_zero() {
                    // Retransmit backoff and wire delay happen before the
                    // message becomes visible.
                    std::thread::sleep(latency);
                }
                plan
            }
            None => MessagePlan::clean(0),
        };
        self.shared.note(
            self.world_rank(),
            RankEvent::Send {
                comm: self.id,
                dst,
                tag,
            },
        );
        if plan.lost {
            // Permanent loss (fatal chaos): the message never reaches the
            // mailbox and is never retransmitted. The receiver's watchdog
            // turns the gap into a typed timeout for the recovery layer.
            let t1 = self.now();
            self.record(CommOp::SendRecv, bytes, t0, t1);
            return;
        }
        {
            let mut boxes = self.shared.mailboxes.lock();
            let mailbox = boxes.entry(key).or_default();
            let envelope = Envelope {
                payload: Some(Box::new(data)),
                seq: plan.seq,
                dup: false,
            };
            if plan.reorder {
                // Jump the queue; the receiver restores order by `seq`.
                mailbox.queue.push_front(envelope);
            } else {
                mailbox.queue.push_back(envelope);
            }
            if plan.duplicate {
                // The copy carries no payload: the receiver discards
                // duplicates by sequence number without ever opening them.
                mailbox.queue.push_back(Envelope {
                    payload: None,
                    seq: plan.seq,
                    dup: true,
                });
            }
        }
        self.shared.mail_cv.notify_all();
        let t1 = self.now();
        self.record(CommOp::SendRecv, bytes, t0, t1);
    }

    /// Receives a message from `src` (communicator index) with `tag`,
    /// blocking until one arrives.
    ///
    /// # Panics
    /// Panics on element-type mismatch with the sender, or after the world
    /// timeout expires (deadlock diagnostic). [`Communicator::try_recv`] is
    /// the non-panicking variant.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> Vec<T> {
        self.try_recv(src, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Communicator::recv`], but surfaces timeout and type-mismatch
    /// failures as [`VmpiError`] values instead of panicking.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u32) -> Result<Vec<T>, VmpiError> {
        assert!(src < self.size(), "recv: src {src} out of range");
        let t0 = self.now();
        let key = P2pKey {
            comm_id: self.id,
            src,
            dst: self.index,
            tag,
        };
        self.shared.note(
            self.world_rank(),
            RankEvent::RecvWait {
                comm: self.id,
                src,
                tag,
            },
        );
        let chaos = self.shared.chaos.clone();
        let deadline = Instant::now() + self.shared.timeout;
        let mut boxes = self.shared.mailboxes.lock();
        let envelope = loop {
            let taken = boxes.get_mut(&key).and_then(|mailbox| {
                if chaos.is_none() {
                    mailbox.queue.pop_front()
                } else {
                    take_in_order(mailbox, key, chaos.as_deref())
                }
            });
            if let Some(envelope) = taken {
                // Without chaos an empty mailbox can be dropped; with chaos
                // it must persist — it carries the receiver's `next_seq`
                // cursor, which has to outlive queue drains.
                if chaos.is_none() && boxes.get(&key).is_some_and(|mb| mb.queue.is_empty()) {
                    boxes.remove(&key);
                }
                break envelope;
            }
            if self
                .shared
                .mail_cv
                .wait_until(&mut boxes, deadline)
                .timed_out()
            {
                drop(boxes);
                return Err(VmpiError::Timeout {
                    message: format!(
                        "vmpi deadlock: rank {} (comm {}) stuck in recv(src={src}, tag={tag})",
                        self.index, self.id
                    ),
                    diagnostic: self.shared.diagnostic_snapshot(),
                });
            }
        };
        drop(boxes);
        if let Some(engine) = &chaos {
            engine.note_delivery(self.id, src, self.index, u64::from(tag), envelope.seq);
        }
        let payload = envelope.payload.expect("delivered envelope has a payload");
        let data = match payload.downcast::<Vec<T>>() {
            Ok(data) => *data,
            Err(_) => return Err(VmpiError::TypeMismatch { context: "recv" }),
        };
        self.shared.note(
            self.world_rank(),
            RankEvent::RecvDone {
                comm: self.id,
                src,
                tag,
            },
        );
        let t1 = self.now();
        let bytes = std::mem::size_of::<T>() * data.len();
        self.record(CommOp::SendRecv, bytes, t0, t1);
        Ok(data)
    }

    // ------------------------------------------------------------------
    // Generic collective machinery
    // ------------------------------------------------------------------

    /// Runs one collective instance: deposits `contribution`, and on the
    /// last arrival runs `complete` over the contributions (in communicator
    /// index order) to produce per-index results.
    fn collective<C, R, F>(&self, kind: CollKind, tag: u32, contribution: C, complete: F) -> R
    where
        C: Send + 'static,
        R: Send + 'static,
        F: FnOnce(Vec<C>) -> Vec<R>,
    {
        self.try_collective(kind, tag, contribution, complete)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Communicator::collective`] with failures as values: the world
    /// abort flag is checked before posting (so an aborted world fails fast
    /// without staging a new slot), and the wait surfaces timeouts.
    fn try_collective<C, R, F>(
        &self,
        kind: CollKind,
        tag: u32,
        contribution: C,
        complete: F,
    ) -> Result<R, VmpiError>
    where
        C: Send + 'static,
        R: Send + 'static,
        F: FnOnce(Vec<C>) -> Vec<R>,
    {
        if let Some(cause) = self.shared.abort_cause() {
            return Err(cause);
        }
        self.collective_post(kind, tag, contribution, complete)
            .try_wait_inner()
    }

    /// [`Communicator::try_collective`] with a fault-injection hook: after
    /// the collective's sequence number is allocated (so the decision site
    /// is fully identified), `tamper` may mutate the staged contribution in
    /// place — this is where the seeded payload-corruption profile strikes
    /// the "wire" copy, *after* pack-time checksums were computed.
    fn try_collective_tampered<C, R, F, G>(
        &self,
        kind: CollKind,
        tag: u32,
        contribution: C,
        tamper: G,
        complete: F,
    ) -> Result<R, VmpiError>
    where
        C: Send + 'static,
        R: Send + 'static,
        F: FnOnce(Vec<C>) -> Vec<R>,
        G: FnOnce(&mut C, u64),
    {
        if let Some(cause) = self.shared.abort_cause() {
            return Err(cause);
        }
        self.collective_post_tampered(kind, tag, contribution, tamper, complete)
            .try_wait_inner()
    }

    /// Posts one collective instance without waiting: deposits
    /// `contribution` (completing the operation if this is the last
    /// arrival) and returns a request to collect the result later — the
    /// split-phase (`MPI_Ialltoall`-style) primitive that lets a task
    /// overlap the transfer with other work.
    fn collective_post<C, R, F>(
        &self,
        kind: CollKind,
        tag: u32,
        contribution: C,
        complete: F,
    ) -> CollRequest<R>
    where
        C: Send + 'static,
        R: Send + 'static,
        F: FnOnce(Vec<C>) -> Vec<R>,
    {
        self.collective_post_tampered(kind, tag, contribution, |_c: &mut C, _seq| {}, complete)
    }

    /// [`Communicator::collective_post`] with the post-pack `tamper` hook
    /// (see [`Communicator::try_collective_tampered`]).
    fn collective_post_tampered<C, R, F, G>(
        &self,
        kind: CollKind,
        tag: u32,
        mut contribution: C,
        tamper: G,
        complete: F,
    ) -> CollRequest<R>
    where
        C: Send + 'static,
        R: Send + 'static,
        F: FnOnce(Vec<C>) -> Vec<R>,
        G: FnOnce(&mut C, u64),
    {
        if let Some(engine) = &self.shared.chaos {
            if let Some(pause) = engine.stall_before_collective(self.world_rank()) {
                // Injected straggler: this rank arrives late.
                std::thread::sleep(pause);
            }
        }
        let size = self.size();
        let seq = {
            let mut counters = self.seq.lock();
            let c = counters.entry((kind, tag)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let key = CollKey {
            comm_id: self.id,
            kind,
            tag,
            seq,
        };
        // The staged copy is the NIC-buffer stand-in: anything that mangles
        // it between here and result pickup models silent wire corruption.
        tamper(&mut contribution, seq);
        self.shared
            .note(self.world_rank(), RankEvent::CollEnter { key });
        if self.shared.abort_cause().is_some() {
            // The world is failed: do not stage new slots (they could never
            // complete and would read as leaks). The wait reports the cause.
            return CollRequest {
                shared: Arc::clone(&self.shared),
                key,
                index: self.index,
                world_rank: self.world_rank(),
                size,
                t_post: self.now(),
                taken: false,
                posted: false,
                _marker: std::marker::PhantomData,
            };
        }
        let mut slots = self.shared.collectives.lock();
        let slot = slots.entry(key).or_insert_with(|| CollSlot {
            contributions: HashMap::new(),
            results: HashMap::new(),
            readers_left: size,
            done: false,
        });
        let prev = slot
            .contributions
            .insert(self.index, Box::new(contribution));
        // Matching-protocol violations used to be asserts deep inside this
        // function. They are now propagated: the corrupt slot is torn down,
        // the world aborts with a [`VmpiError::Protocol`] (peers of this
        // instance are wedged — they must fail fast, not time out), and the
        // caller's wait observes the typed error.
        let mut violation: Option<String> = None;
        if prev.is_some() {
            violation = Some(format!(
                "duplicate contribution to {key:?} from index {} — two concurrent \
                 collectives on one communicator must use distinct tags",
                self.index
            ));
        } else if slot.contributions.len() == size {
            // Completer: assemble inputs in index order and produce results.
            let mut inputs = Vec::with_capacity(size);
            for i in 0..size {
                match slot.contributions.remove(&i) {
                    None => {
                        violation =
                            Some(format!("contribution {i} missing from {key:?} at completion"));
                        break;
                    }
                    Some(boxed) => match boxed.downcast::<C>() {
                        Ok(c) => inputs.push(*c),
                        Err(_) => {
                            violation = Some(format!(
                                "contribution {i} to {key:?} has a mismatched payload type"
                            ));
                            break;
                        }
                    },
                }
            }
            if violation.is_none() {
                let results = complete(inputs);
                if results.len() != size {
                    violation = Some(format!(
                        "completer for {key:?} produced {} results for {size} participants",
                        results.len()
                    ));
                } else if let Some(slot) = slots.get_mut(&key) {
                    for (i, r) in results.into_iter().enumerate() {
                        slot.results.insert(i, Box::new(r));
                    }
                    slot.done = true;
                    self.shared.coll_cv.notify_all();
                } else {
                    violation = Some(format!("slot for {key:?} vanished during completion"));
                }
            }
        }
        if let Some(context) = violation {
            slots.remove(&key);
            drop(slots);
            self.shared.abort(VmpiError::Protocol { context });
            return CollRequest {
                shared: Arc::clone(&self.shared),
                key,
                index: self.index,
                world_rank: self.world_rank(),
                size,
                t_post: self.now(),
                taken: false,
                // No valid contribution is standing (the slot is gone); the
                // wait reports the abort cause instead of blocking.
                posted: false,
                _marker: std::marker::PhantomData,
            };
        }
        drop(slots);
        CollRequest {
            shared: Arc::clone(&self.shared),
            key,
            index: self.index,
            world_rank: self.world_rank(),
            size,
            t_post: self.now(),
            taken: false,
            posted: true,
            _marker: std::marker::PhantomData,
        }
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Barrier over all members.
    pub fn barrier(&self) {
        self.barrier_tagged(0)
    }

    /// Non-panicking barrier: timeouts and world aborts come back as
    /// [`VmpiError`] values.
    pub fn try_barrier(&self) -> Result<(), VmpiError> {
        let t0 = self.now();
        let size = self.size();
        self.try_collective(CollKind::Barrier, 0, (), |_c: Vec<()>| vec![(); size])?;
        let t1 = self.now();
        self.record(CommOp::Barrier, 0, t0, t1);
        Ok(())
    }

    /// Tag-qualified barrier (for use inside concurrent tasks).
    pub fn barrier_tagged(&self, tag: u32) {
        let t0 = self.now();
        let size = self.size();
        self.collective(CollKind::Barrier, tag, (), |_c: Vec<()>| vec![(); size]);
        let t1 = self.now();
        self.record(CommOp::Barrier, 0, t0, t1);
    }

    /// Broadcast from `root` (communicator index). Non-root ranks pass any
    /// vector (typically empty) and receive the root's data.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: Vec<T>) -> Vec<T> {
        assert!(root < self.size(), "bcast: root out of range");
        let t0 = self.now();
        let size = self.size();
        let out = self.collective(
            CollKind::Bcast,
            0,
            if self.index == root { Some(data) } else { None },
            move |mut contribs: Vec<Option<Vec<T>>>| {
                let payload = contribs[root].take().expect("root contributed");
                (0..size).map(|_| payload.clone()).collect()
            },
        );
        let t1 = self.now();
        let bytes = std::mem::size_of::<T>() * out.len();
        self.record(CommOp::Bcast, bytes, t0, t1);
        out
    }

    /// Element-wise allreduce with a caller-supplied associative operation.
    pub fn allreduce<T, F>(&self, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let t0 = self.now();
        let size = self.size();
        let bytes = std::mem::size_of::<T>() * data.len();
        let out = self.collective(
            CollKind::Allreduce,
            0,
            data,
            move |contribs: Vec<Vec<T>>| {
                let mut acc = contribs[0].clone();
                for c in &contribs[1..] {
                    assert_eq!(c.len(), acc.len(), "allreduce length mismatch");
                    for (a, b) in acc.iter_mut().zip(c) {
                        *a = op(a, b);
                    }
                }
                (0..size).map(|_| acc.clone()).collect()
            },
        );
        let t1 = self.now();
        self.record(CommOp::Allreduce, bytes, t0, t1);
        out
    }

    /// Sum-allreduce over `f64` values.
    pub fn allreduce_sum(&self, data: Vec<f64>) -> Vec<f64> {
        self.allreduce(data, |a, b| a + b)
    }

    /// Gathers every rank's vector; all ranks receive all vectors in
    /// communicator index order (lengths may differ, like `MPI_Allgatherv`).
    pub fn allgather<T: Clone + Send + 'static>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        let t0 = self.now();
        let size = self.size();
        let bytes = std::mem::size_of::<T>() * data.len();
        let out = self.collective(
            CollKind::Allgather,
            0,
            data,
            move |contribs: Vec<Vec<T>>| (0..size).map(|_| contribs.clone()).collect(),
        );
        let t1 = self.now();
        self.record(CommOp::Gather, bytes, t0, t1);
        out
    }

    /// `MPI_Alltoall`: `send.len()` must be `size * count`; chunk `j` goes to
    /// rank `j`. The result holds chunk `j` received from rank `j`.
    pub fn alltoall<T: Clone + Send + Checksum + 'static>(&self, send: &[T], tag: u32) -> Vec<T> {
        self.try_alltoall(send, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Communicator::alltoall`], surfacing timeouts, world aborts
    /// and checksum failures as [`VmpiError`] values.
    pub fn try_alltoall<T: Clone + Send + Checksum + 'static>(
        &self,
        send: &[T],
        tag: u32,
    ) -> Result<Vec<T>, VmpiError> {
        let mut recv = Vec::new();
        self.try_alltoall_into(send, &mut recv, tag)?;
        Ok(recv)
    }

    /// Zero-copy [`Communicator::alltoall`]: the received buffer lands in
    /// caller-owned `recv` (any previous contents replaced).
    ///
    /// # Panics
    /// On timeout / world abort / checksum failure;
    /// [`Communicator::try_alltoall_into`] is the non-panicking variant.
    pub fn alltoall_into<T: Clone + Send + Checksum + 'static>(
        &self,
        send: &[T],
        recv: &mut Vec<T>,
        tag: u32,
    ) {
        self.try_alltoall_into(send, recv, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Communicator::alltoall`], but writing the result into
    /// caller-owned `recv` instead of returning a fresh buffer.
    ///
    /// The transport stages exactly one owned copy of `send` (standing in
    /// for the NIC/MPI-internal send buffer — contributions must outlive
    /// the caller under timeouts and split-phase waits) plus one `u64`
    /// checksum per destination chunk, computed at pack time; the completer
    /// then transposes the staged buffers **in place** and hands each rank
    /// its own staging buffer back as the receive storage. Every chunk is
    /// re-hashed at unpack; a mismatch with its pack-time checksum returns
    /// [`VmpiError::Integrity`] naming the peer, and nothing is written to
    /// `recv`.
    pub fn try_alltoall_into<T: Clone + Send + Checksum + 'static>(
        &self,
        send: &[T],
        recv: &mut Vec<T>,
        tag: u32,
    ) -> Result<(), VmpiError> {
        let size = self.size();
        assert!(
            send.len().is_multiple_of(size),
            "alltoall: buffer length {} not divisible by communicator size {}",
            send.len(),
            size
        );
        let count = send.len() / size;
        let t0 = self.now();
        let bytes = std::mem::size_of_val(send);
        let (data, sums) = self.try_collective_tampered(
            CollKind::Alltoall,
            tag,
            (send.to_vec(), pack_sums_uniform(send, count, size)),
            self.uniform_chunk_tamper(count, tag),
            move |contribs: Vec<(Vec<T>, Vec<u64>)>| complete_alltoall_checksummed(contribs, count),
        )?;
        verify_uniform_chunks(&data, count, &sums, tag)?;
        *recv = data;
        let t1 = self.now();
        self.record(CommOp::Alltoall, bytes, t0, t1);
        Ok(())
    }

    /// The payload-corruption hook for uniform-chunk alltoalls: a tamper
    /// closure that asks the chaos engine, per destination chunk, whether
    /// the seeded corruption profile strikes this `(site, seq)` — and if so
    /// flips one bit of the *staged* copy. A no-op without a chaos engine
    /// or corruption profile.
    fn uniform_chunk_tamper<T: Checksum + Send + 'static>(
        &self,
        count: usize,
        tag: u32,
    ) -> impl FnOnce(&mut (Vec<T>, Vec<u64>), u64) {
        let chaos = self.shared.chaos.clone();
        let comm = self.id;
        let me = self.index;
        let size = self.size();
        move |staged, seq| {
            let Some(engine) = chaos else { return };
            for dst in 0..size {
                if let Some(strike) = engine.plan_chunk_corruption(comm, me, dst, u64::from(tag), seq)
                {
                    let chunk = &mut staged.0[dst * count..(dst + 1) * count];
                    if !chunk.is_empty() {
                        let i = strike.index(chunk.len());
                        chunk[i].flip_bit(strike.bit);
                    }
                }
            }
        }
    }

    /// `MPI_Alltoallv`: `send[j]` is the (arbitrary-length) slice for rank
    /// `j`; the result's entry `j` is what rank `j` sent to the caller.
    pub fn alltoallv<T: Clone + Send + Sync + Checksum + 'static>(
        &self,
        send: Vec<Vec<T>>,
        tag: u32,
    ) -> Vec<Vec<T>> {
        self.try_alltoallv(send, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Communicator::alltoallv`], surfacing timeouts, world aborts
    /// and checksum failures as [`VmpiError`] values. Thin wrapper over
    /// [`Communicator::try_alltoallv_into`] (flatten, exchange, split).
    pub fn try_alltoallv<T: Clone + Send + Sync + Checksum + 'static>(
        &self,
        send: Vec<Vec<T>>,
        tag: u32,
    ) -> Result<Vec<Vec<T>>, VmpiError> {
        let size = self.size();
        assert_eq!(send.len(), size, "alltoallv: need one slice per rank");
        let send_counts: Vec<usize> = send.iter().map(|v| v.len()).collect();
        let flat: Vec<T> = send.into_iter().flatten().collect();
        let mut recv = Vec::new();
        let mut recv_counts = Vec::new();
        self.try_alltoallv_into(&flat, &send_counts, &mut recv, &mut recv_counts, tag)?;
        let mut out = Vec::with_capacity(size);
        let mut off = 0;
        for &c in &recv_counts {
            out.push(recv[off..off + c].to_vec());
            off += c;
        }
        Ok(out)
    }

    /// Zero-copy [`Communicator::alltoallv`] (see
    /// [`Communicator::try_alltoallv_into`]).
    ///
    /// # Panics
    /// On timeout / world abort / checksum failure.
    pub fn alltoallv_into<T: Clone + Send + Sync + Checksum + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
        tag: u32,
    ) {
        self.try_alltoallv_into(send, send_counts, recv, recv_counts, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Flat-buffer `MPI_Alltoallv`: `send` holds the segment for rank `j`
    /// at offset `send_counts[..j].sum()` with length `send_counts[j]`;
    /// after the exchange `recv` holds rank `j`'s segment for this rank at
    /// offset `recv_counts[..j].sum()` (both caller-owned buffers are
    /// cleared and refilled, reusing their capacity).
    ///
    /// The transport stages one owned copy of `(send, send_counts)` plus
    /// one pack-time checksum per destination segment; the completer shares
    /// the staged contributions among all participants without copying or
    /// reshaping them (one `Arc` per collective), and each rank gathers its
    /// own segments straight into `recv` at pickup — no per-rank result
    /// buffers are ever built. Each segment is re-hashed at gather; on a
    /// mismatch with the sender's pack-time checksum, `recv`/`recv_counts`
    /// are left cleared and [`VmpiError::Integrity`] names the peer.
    pub fn try_alltoallv_into<T: Clone + Send + Sync + Checksum + 'static>(
        &self,
        send: &[T],
        send_counts: &[usize],
        recv: &mut Vec<T>,
        recv_counts: &mut Vec<usize>,
        tag: u32,
    ) -> Result<(), VmpiError> {
        let size = self.size();
        assert_eq!(
            send_counts.len(),
            size,
            "alltoallv: need one count per rank"
        );
        assert_eq!(
            send.len(),
            send_counts.iter().sum::<usize>(),
            "alltoallv: send length does not match counts"
        );
        let t0 = self.now();
        let bytes = std::mem::size_of_val(send);
        let sums = pack_sums_var(send, send_counts);
        let all: Arc<Vec<VarStaged<T>>> = self.try_collective_tampered(
            CollKind::Alltoallv,
            tag,
            (send.to_vec(), send_counts.to_vec(), sums),
            self.var_chunk_tamper(tag),
            move |contribs: Vec<VarStaged<T>>| {
                let shared = Arc::new(contribs);
                (0..size).map(|_| Arc::clone(&shared)).collect()
            },
        )?;
        recv.clear();
        recv_counts.clear();
        let me = self.index;
        for (peer, (flat, counts, sums)) in all.iter().enumerate() {
            assert_eq!(counts.len(), size, "alltoallv: peer count-vector size");
            let offset: usize = counts[..me].iter().sum();
            let len = counts[me];
            let segment = &flat[offset..offset + len];
            let expected = sums[me];
            let got = checksum_slice(segment);
            if got != expected {
                // Deliver nothing: a partially filled recv would hand the
                // caller a mix of verified and unverified segments.
                recv.clear();
                recv_counts.clear();
                return Err(VmpiError::Integrity {
                    peer,
                    tag,
                    expected,
                    got,
                });
            }
            recv.extend_from_slice(segment);
            recv_counts.push(len);
        }
        let t1 = self.now();
        self.record(CommOp::Alltoallv, bytes, t0, t1);
        Ok(())
    }

    /// [`Communicator::uniform_chunk_tamper`] for variable-length segments:
    /// strike offsets follow the staged count vector.
    fn var_chunk_tamper<T: Checksum + Send + 'static>(
        &self,
        tag: u32,
    ) -> impl FnOnce(&mut VarStaged<T>, u64) {
        let chaos = self.shared.chaos.clone();
        let comm = self.id;
        let me = self.index;
        move |staged, seq| {
            let Some(engine) = chaos else { return };
            let mut offset = 0;
            for dst in 0..staged.1.len() {
                let len = staged.1[dst];
                if let Some(strike) = engine.plan_chunk_corruption(comm, me, dst, u64::from(tag), seq)
                {
                    let chunk = &mut staged.0[offset..offset + len];
                    if !chunk.is_empty() {
                        let i = strike.index(chunk.len());
                        chunk[i].flip_bit(strike.bit);
                    }
                }
                offset += len;
            }
        }
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Splits the communicator: ranks passing the same `color` form a new
    /// communicator, ordered by `(key, old index)` — `MPI_Comm_split`.
    pub fn split(&self, color: u64, key: usize) -> Communicator {
        let size = self.size();
        let shared = Arc::clone(&self.shared);
        let ranks = Arc::clone(&self.ranks);
        let (new_id, members, my_index) = self.collective(
            CollKind::Split,
            0,
            (color, key),
            move |contribs: Vec<(u64, usize)>| {
                // Group indices by color.
                let mut colors: Vec<u64> = contribs.iter().map(|c| c.0).collect();
                colors.sort_unstable();
                colors.dedup();
                // Allocate one fresh id per color, deterministically ordered.
                let base = shared
                    .next_comm_id
                    .fetch_add(colors.len() as u64, Ordering::Relaxed);
                let mut results: Vec<Option<(u64, Vec<usize>, usize)>> = vec![None; size];
                for (ci, &col) in colors.iter().enumerate() {
                    let mut group: Vec<usize> = (0..size).filter(|&i| contribs[i].0 == col).collect();
                    group.sort_by_key(|&i| (contribs[i].1, i));
                    let world_members: Vec<usize> = group.iter().map(|&i| ranks[i]).collect();
                    for (pos, &i) in group.iter().enumerate() {
                        results[i] = Some((base + ci as u64, world_members.clone(), pos));
                    }
                }
                results.into_iter().map(|r| r.expect("all grouped")).collect()
            },
        );
        Communicator {
            shared: Arc::clone(&self.shared),
            id: new_id,
            ranks: Arc::new(members),
            index: my_index,
            seq: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Split-phase `MPI_Ialltoall`: posts the contribution and returns a
    /// request; the transfer completes as soon as every rank has *posted*,
    /// so the caller can compute while the exchange is in flight and
    /// [`AlltoallRequest::wait`] later. Matching follows the same
    /// `(tag, sequence)` rules as [`Communicator::alltoall`] — the two may
    /// be mixed on one communicator as long as every rank issues them in
    /// the same order per tag.
    pub fn ialltoall<T: Clone + Send + Checksum + 'static>(
        &self,
        send: &[T],
        tag: u32,
    ) -> AlltoallRequest<T> {
        let size = self.size();
        assert!(
            send.len().is_multiple_of(size),
            "ialltoall: buffer length {} not divisible by communicator size {}",
            send.len(),
            size
        );
        let count = send.len() / size;
        let bytes = std::mem::size_of_val(send);
        let inner = self.collective_post_tampered(
            CollKind::Alltoall,
            tag,
            (send.to_vec(), pack_sums_uniform(send, count, size)),
            self.uniform_chunk_tamper(count, tag),
            move |contribs: Vec<(Vec<T>, Vec<u64>)>| complete_alltoall_checksummed(contribs, count),
        );
        AlltoallRequest {
            inner,
            comm: self.clone(),
            bytes,
            tag,
            count,
        }
    }

    /// Shrinks the communicator after a rank eviction, **without
    /// communication**: the surviving members (world ranks of this
    /// communicator minus `dead`, given as world ranks) form a new
    /// communicator in the same relative order.
    ///
    /// Unlike [`Communicator::split`] this performs no collective — a
    /// collective over a group containing dead ranks could never complete.
    /// Consistency instead rests on symmetric knowledge: every survivor
    /// must call `shrink` with the identical `dead` set and `epoch` (the
    /// recovery-epoch counter disambiguating repeated shrinks), which is
    /// exactly what a watchdog-agreement protocol would establish; see
    /// DESIGN.md §11. The new communicator id is derived deterministically
    /// from `(old id, dead set, epoch)` in a high-bit namespace disjoint
    /// from the counter-allocated `split`/`dup` ids, so every survivor
    /// lands in the same fresh matching space.
    ///
    /// # Panics
    /// Panics when the caller itself is listed dead or no rank survives.
    pub fn shrink(&self, dead: &[usize], epoch: u64) -> Communicator {
        let me = self.world_rank();
        assert!(
            !dead.contains(&me),
            "shrink: caller (world rank {me}) is in the dead set"
        );
        let survivors: Vec<usize> = self
            .ranks
            .iter()
            .copied()
            .filter(|r| !dead.contains(r))
            .collect();
        let index = survivors
            .iter()
            .position(|&r| r == me)
            .expect("caller is a member and survives");
        let mut sorted_dead: Vec<usize> = dead
            .iter()
            .copied()
            .filter(|d| self.ranks.contains(d))
            .collect();
        sorted_dead.sort_unstable();
        sorted_dead.dedup();
        let mut h = mix64(self.id ^ 0x5D3A_F0B2_91C7_644E);
        for &d in &sorted_dead {
            h = mix64(h ^ d as u64);
        }
        h = mix64(h ^ epoch);
        let id = (1 << 63) | (h >> 1);
        Communicator {
            shared: Arc::clone(&self.shared),
            id,
            ranks: Arc::new(survivors),
            index,
            seq: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Duplicates the communicator into a fresh communication context
    /// (`MPI_Comm_dup`): same group, independent matching space.
    pub fn dup(&self) -> Communicator {
        let size = self.size();
        let shared = Arc::clone(&self.shared);
        let new_id = self.collective(CollKind::Dup, 0, (), move |_c: Vec<()>| {
            let id = shared.next_comm_id.fetch_add(1, Ordering::Relaxed);
            vec![id; size]
        });
        Communicator {
            shared: Arc::clone(&self.shared),
            id: new_id,
            ranks: Arc::clone(&self.ranks),
            index: self.index,
            seq: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

/// In-place block transpose of an alltoall's staged send buffers: after the
/// call, `contribs[i]` chunk `j` holds what rank `j` sent to rank `i`, so
/// each rank's own staging buffer doubles as its receive buffer — the
/// completer allocates nothing.
fn transpose_chunks<T>(contribs: &mut [Vec<T>], count: usize) {
    for i in 0..contribs.len() {
        for j in (i + 1)..contribs.len() {
            let (a, b) = contribs.split_at_mut(j);
            a[i][j * count..(j + 1) * count]
                .swap_with_slice(&mut b[0][i * count..(i + 1) * count]);
        }
    }
}

/// Pack-time checksums for a uniform-chunk alltoall: `sums[j]` hashes the
/// chunk destined for rank `j`, computed from the caller's buffer *before*
/// the staged copy can be tampered with.
fn pack_sums_uniform<T: Checksum>(send: &[T], count: usize, size: usize) -> Vec<u64> {
    (0..size)
        .map(|j| checksum_slice(&send[j * count..(j + 1) * count]))
        .collect()
}

/// Pack-time checksums for variable-length segments (`alltoallv`).
fn pack_sums_var<T: Checksum>(send: &[T], counts: &[usize]) -> Vec<u64> {
    let mut sums = Vec::with_capacity(counts.len());
    let mut offset = 0;
    for &len in counts {
        sums.push(checksum_slice(&send[offset..offset + len]));
        offset += len;
    }
    sums
}

/// Completer of a checksummed alltoall: transposes the staged data buffers
/// in place (each rank's staging buffer becomes its receive buffer) and
/// transposes the checksum matrix alongside, so rank `i`'s result carries
/// `sums[j]` = the checksum rank `j` computed for the chunk it sent to `i`.
fn complete_alltoall_checksummed<T>(
    contribs: Vec<(Vec<T>, Vec<u64>)>,
    count: usize,
) -> Vec<(Vec<T>, Vec<u64>)> {
    let (mut datas, sums): (Vec<Vec<T>>, Vec<Vec<u64>>) = contribs.into_iter().unzip();
    transpose_chunks(&mut datas, count);
    datas
        .into_iter()
        .enumerate()
        .map(|(i, data)| (data, sums.iter().map(|s| s[i]).collect()))
        .collect()
}

/// Unpack-time verification of a uniform-chunk alltoall: re-hashes every
/// received chunk against its sender's pack-time checksum.
fn verify_uniform_chunks<T: Checksum>(
    data: &[T],
    count: usize,
    sums: &[u64],
    tag: u32,
) -> Result<(), VmpiError> {
    for (peer, &expected) in sums.iter().enumerate() {
        let got = checksum_slice(&data[peer * count..(peer + 1) * count]);
        if got != expected {
            return Err(VmpiError::Integrity {
                peer,
                tag,
                expected,
                got,
            });
        }
    }
    Ok(())
}

/// splitmix64 finalizer — derives deterministic shrunk-communicator ids.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chaos-mode delivery: hand out the envelope with the receiver's next
/// sequence number (restoring order) and discard stale duplicate copies.
fn take_in_order(
    mailbox: &mut Mailbox,
    key: P2pKey,
    chaos: Option<&fftx_fault::ChaosEngine>,
) -> Option<Envelope> {
    let mut i = 0;
    while i < mailbox.queue.len() {
        if mailbox.queue[i].dup && mailbox.queue[i].seq < mailbox.next_seq {
            let stale = mailbox.queue.remove(i).expect("index in bounds");
            if let Some(engine) = chaos {
                engine.note_duplicate_discarded(
                    key.comm_id,
                    key.src,
                    key.dst,
                    u64::from(key.tag),
                    stale.seq,
                );
            }
        } else {
            i += 1;
        }
    }
    let pos = mailbox
        .queue
        .iter()
        .position(|e| !e.dup && e.seq == mailbox.next_seq)?;
    let envelope = mailbox.queue.remove(pos).expect("index in bounds");
    mailbox.next_seq += 1;
    Some(envelope)
}

/// A pending split-phase collective: the typed result of a
/// `collective_post`. Dropping an unconsumed request is an error: the slot
/// is cleaned up, the world is aborted (so peers fail fast instead of
/// hanging), and the drop panics.
pub(crate) struct CollRequest<R> {
    shared: Arc<WorldShared>,
    key: CollKey,
    index: usize,
    /// The caller's world rank (status notes).
    world_rank: usize,
    size: usize,
    t_post: f64,
    taken: bool,
    /// Whether this request staged a contribution (false when the world was
    /// already aborted at post time).
    posted: bool,
    _marker: std::marker::PhantomData<fn() -> R>,
}

impl<R: Send + 'static> CollRequest<R> {
    /// True once the collective has completed (all participants posted and
    /// the result is ready). Never blocks.
    pub(crate) fn test(&self) -> bool {
        let slots = self.shared.collectives.lock();
        slots.get(&self.key).map(|s| s.done).unwrap_or(true)
    }

    /// Blocks until completion and returns this rank's result, or the
    /// timeout / world-abort error.
    fn try_wait_inner(mut self) -> Result<R, VmpiError> {
        // The request is consumed either way; the Drop cleanup is only for
        // requests that were never waited on.
        self.taken = true;
        if !self.posted {
            return Err(self
                .shared
                .abort_cause()
                .expect("unposted request implies an aborted world"));
        }
        let deadline = Instant::now() + self.shared.timeout;
        let mut slots = self.shared.collectives.lock();
        loop {
            if slots.get(&self.key).map(|s| s.done).unwrap_or(false) {
                break;
            }
            if let Some(cause) = self.shared.abort_cause() {
                drop(slots);
                return Err(cause);
            }
            if self
                .shared
                .coll_cv
                .wait_until(&mut slots, deadline)
                .timed_out()
            {
                let arrived = slots
                    .get(&self.key)
                    .map(|s| s.contributions.len())
                    .unwrap_or(0);
                drop(slots);
                return Err(VmpiError::Timeout {
                    message: format!(
                        "vmpi deadlock: rank {} stuck waiting on {:?}; {arrived}/{} arrived",
                        self.index, self.key, self.size
                    ),
                    diagnostic: self.shared.diagnostic_snapshot(),
                });
            }
        }
        // The slot and this rank's result must be present once `done` was
        // observed; if they are not, the matching protocol was violated —
        // propagate instead of panicking so recovery code can catch it.
        let Some(slot) = slots.get_mut(&self.key) else {
            drop(slots);
            return Err(VmpiError::Protocol {
                context: format!("slot for {:?} vanished before result pickup", self.key),
            });
        };
        let Some(mine) = slot.results.remove(&self.index) else {
            drop(slots);
            return Err(VmpiError::Protocol {
                context: format!(
                    "no result for index {} in completed {:?}",
                    self.index, self.key
                ),
            });
        };
        slot.readers_left -= 1;
        if slot.readers_left == 0 {
            slots.remove(&self.key);
        }
        drop(slots);
        self.shared
            .note(self.world_rank, RankEvent::CollDone { key: self.key });
        match mine.downcast::<R>() {
            Ok(r) => Ok(*r),
            Err(_) => Err(VmpiError::TypeMismatch {
                context: "collective result",
            }),
        }
    }
}

impl<R> Drop for CollRequest<R> {
    fn drop(&mut self) {
        if self.taken || std::thread::panicking() {
            return;
        }
        // Remove this request's footprint so the slot cannot leak...
        if self.posted {
            let mut slots = self.shared.collectives.lock();
            if let Some(slot) = slots.get_mut(&self.key) {
                if slot.done {
                    slot.results.remove(&self.index);
                    slot.readers_left -= 1;
                    if slot.readers_left == 0 {
                        slots.remove(&self.key);
                    }
                } else {
                    // Incomplete: the collective can never finish now, so
                    // tear the slot down entirely.
                    slots.remove(&self.key);
                }
            }
        }
        // ...mark the world failed so peers error out promptly...
        self.shared.abort(VmpiError::DroppedRequest {
            comm: self.key.comm_id,
            tag: self.key.tag,
            detail: format!("{:?}", self.key),
        });
        // ...and keep the loud local diagnostic.
        panic!(
            "vmpi: a split-phase collective request was dropped without wait() \
             (key {:?}) — its peers would hang",
            self.key
        );
    }
}

/// A pending nonblocking alltoall (see [`Communicator::ialltoall`]).
pub struct AlltoallRequest<T> {
    inner: CollRequest<(Vec<T>, Vec<u64>)>,
    comm: Communicator,
    bytes: usize,
    /// Collective tag, reported by integrity errors at wait time.
    tag: u32,
    /// Per-peer chunk length, for checksum verification at wait time.
    count: usize,
}

impl<T: Clone + Send + Checksum + 'static> AlltoallRequest<T> {
    /// True once every rank has posted and the exchange is complete.
    pub fn test(&self) -> bool {
        self.inner.test()
    }

    /// Time the request was posted (world clock).
    pub fn posted_at(&self) -> f64 {
        self.inner.t_post
    }

    /// Blocks until the exchange completes and returns the received buffer
    /// (chunk `j` came from rank `j`). Records the comm event spanning the
    /// *wait* only — overlapped transfer time does not appear as
    /// communication, exactly the accounting the overlap optimisation is
    /// after.
    pub fn wait(self) -> Vec<T> {
        self.try_wait().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`AlltoallRequest::wait`], surfacing timeouts, world aborts
    /// (e.g. a peer dropping its request) and checksum failures as
    /// [`VmpiError`] values.
    pub fn try_wait(self) -> Result<Vec<T>, VmpiError> {
        let t0 = self.comm.now();
        let bytes = self.bytes;
        let tag = self.tag;
        let count = self.count;
        let comm = self.comm.clone();
        let (data, sums) = self.inner.try_wait_inner()?;
        verify_uniform_chunks(&data, count, &sums, tag)?;
        let t1 = comm.now();
        comm.record(CommOp::Alltoall, bytes, t0, t1);
        Ok(data)
    }

    /// [`AlltoallRequest::try_wait`] into a caller-owned buffer (previous
    /// contents replaced) — the arena-path variant.
    pub fn try_wait_into(self, recv: &mut Vec<T>) -> Result<(), VmpiError> {
        *recv = self.try_wait()?;
        Ok(())
    }

    /// [`AlltoallRequest::wait`] into a caller-owned buffer (previous
    /// contents replaced), panicking on transport errors.
    pub fn wait_into(self, recv: &mut Vec<T>) {
        self.try_wait_into(recv).unwrap_or_else(|e| panic!("{e}"))
    }
}
