//! # fftx-vmpi
//!
//! Virtual MPI over threads — the communication substrate of the FFTXlib
//! reproduction. One OS thread per rank inside a single process, real data
//! movement through shared memory, and the MPI surface the miniapp needs:
//! communicators with `split`/`dup`, point-to-point messaging, barriers,
//! broadcast, allreduce, allgather, and the two collectives at the heart of
//! the paper — `alltoall` (the stick↔plane scatter) and `alltoallv` (the
//! band-group pack/unpack).
//!
//! Collectives are tag-qualified so that several can be in flight on one
//! communicator at once (one per concurrently executing FFT task). Every
//! operation can be recorded into an [`fftx_trace::TraceSink`].
//!
//! The alltoall family is *checksummed end to end*: every chunk is hashed
//! when the transport stages it and verified before it reaches the caller's
//! receive buffer, so silent payload corruption surfaces as a typed
//! [`VmpiError::Integrity`] instead of wrong numbers (see [`integrity`]).

#![warn(missing_docs)]

pub mod comm;
pub mod error;
pub mod integrity;
pub mod world;

pub use comm::{AlltoallRequest, Communicator};
pub use error::VmpiError;
pub use integrity::{checksum_slice, Checksum};
pub use fftx_fault::{ChaosConfig, FaultReport, StallConfig};
pub use world::World;
