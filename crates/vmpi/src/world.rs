//! The virtual MPI "universe": one OS thread per rank inside a single
//! process, with shared-memory mailboxes and collective staging areas.
//!
//! This substitutes for the on-node Intel MPI of the paper's KNL testbed.
//! Semantics (communicator topology, alltoall/alltoallv dataflow) are
//! identical to MPI; on-node MPI implementations move bytes through shared
//! memory just like this does.
//!
//! ## Hardening
//!
//! The world carries three robustness mechanisms on top of the transport:
//!
//! * an optional **chaos engine** ([`fftx_fault::ChaosEngine`]) injecting
//!   deterministic message delay / reordering / duplication / bounded drop
//!   and rank stalls — enabled via [`World::with_chaos`] or the
//!   `FFTX_CHAOS_SEED` environment variable, and completely absent (one
//!   `Option` branch per operation) otherwise;
//! * a **watchdog**: every blocking wait carries the world timeout and, on
//!   expiry, produces a [`WorldShared::diagnostic_snapshot`] — per-rank last
//!   events, pending collective slots, mailbox depths — instead of hanging;
//! * an **abort flag**: an unrecoverable local error (a dropped split-phase
//!   request) marks the whole world failed, so peers blocked on collectives
//!   fail fast with a typed error instead of waiting out the timeout.

use crate::comm::Communicator;
use crate::error::VmpiError;
use fftx_fault::{ChaosConfig, ChaosEngine, FaultReport};
use fftx_trace::{TraceSink, WallClock};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Matching key for point-to-point messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct P2pKey {
    pub comm_id: u64,
    pub src: usize,
    pub dst: usize,
    pub tag: u32,
}

/// One message on the wire. Under chaos, `seq` restores per-channel order
/// and identifies duplicate copies; without chaos every envelope is
/// `seq = 0, dup = false` and the queue is plain FIFO.
pub(crate) struct Envelope {
    /// The payload; `None` for duplicate decoys (which the receiver always
    /// discards, so they never need the data).
    pub payload: Option<Box<dyn Any + Send>>,
    /// Per-channel sequence number stamped by the sender.
    pub seq: u64,
    /// Marks an injected duplicate copy.
    pub dup: bool,
}

/// Per-channel mailbox: the queue plus the receiver's in-order cursor.
#[derive(Default)]
pub(crate) struct Mailbox {
    pub queue: VecDeque<Envelope>,
    /// Next sequence number the receiver delivers (chaos mode only).
    pub next_seq: u64,
}

/// Collective operation kinds, part of the matching key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CollKind {
    Barrier,
    Bcast,
    Allreduce,
    Allgather,
    Alltoall,
    Alltoallv,
    Split,
    Dup,
}

/// Matching key for collectives: every rank of `comm_id` calling the same
/// kind with the same tag and per-(kind,tag) sequence number participates in
/// the same operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CollKey {
    pub comm_id: u64,
    pub kind: CollKind,
    pub tag: u32,
    pub seq: u64,
}

/// One in-flight collective.
pub(crate) struct CollSlot {
    /// Per-participant contribution, keyed by index within the communicator.
    pub contributions: HashMap<usize, Box<dyn Any + Send>>,
    /// Per-participant results, filled by the completer (the last arriver).
    pub results: HashMap<usize, Box<dyn Any + Send>>,
    /// How many participants still have to pick up their result.
    pub readers_left: usize,
    /// Set once the completer has produced `results`.
    pub done: bool,
}

/// The last thing a rank was observed doing (watchdog diagnostics).
#[derive(Debug, Clone, Copy)]
pub(crate) enum RankEvent {
    Spawned,
    Send { comm: u64, dst: usize, tag: u32 },
    RecvWait { comm: u64, src: usize, tag: u32 },
    RecvDone { comm: u64, src: usize, tag: u32 },
    CollEnter { key: CollKey },
    CollDone { key: CollKey },
}

impl std::fmt::Display for RankEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankEvent::Spawned => write!(f, "spawned"),
            RankEvent::Send { comm, dst, tag } => {
                write!(f, "send(comm={comm}, dst={dst}, tag={tag})")
            }
            RankEvent::RecvWait { comm, src, tag } => {
                write!(f, "blocked in recv(comm={comm}, src={src}, tag={tag})")
            }
            RankEvent::RecvDone { comm, src, tag } => {
                write!(f, "received(comm={comm}, src={src}, tag={tag})")
            }
            RankEvent::CollEnter { key } => write!(f, "entered collective {key:?}"),
            RankEvent::CollDone { key } => write!(f, "finished collective {key:?}"),
        }
    }
}

/// A rank's last event plus its world-clock timestamp.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankStatus {
    pub event: RankEvent,
    pub at: f64,
}

pub(crate) struct WorldShared {
    pub mailboxes: Mutex<HashMap<P2pKey, Mailbox>>,
    pub mail_cv: Condvar,
    pub collectives: Mutex<HashMap<CollKey, CollSlot>>,
    pub coll_cv: Condvar,
    pub next_comm_id: AtomicU64,
    pub trace: Option<TraceSink>,
    pub clock: WallClock,
    pub timeout: Duration,
    /// Fault injection; `None` (the default) costs one branch per op.
    pub chaos: Option<Arc<ChaosEngine>>,
    /// Fast-path flag for [`WorldShared::abort_cause`].
    pub aborted: AtomicBool,
    /// First unrecoverable error; sticky.
    pub abort_slot: Mutex<Option<VmpiError>>,
    /// Per-world-rank last events for the watchdog snapshot.
    pub status: Mutex<Vec<RankStatus>>,
}

impl WorldShared {
    /// Records `event` as `world_rank`'s most recent activity.
    pub(crate) fn note(&self, world_rank: usize, event: RankEvent) {
        let mut st = self.status.lock();
        if world_rank < st.len() {
            st[world_rank] = RankStatus {
                event,
                at: self.clock.now(),
            };
        }
    }

    /// Marks the world failed (first cause wins) and wakes every waiter so
    /// blocked collectives fail fast instead of timing out.
    pub(crate) fn abort(&self, cause: VmpiError) {
        {
            let mut slot = self.abort_slot.lock();
            if slot.is_none() {
                *slot = Some(cause);
            }
        }
        self.aborted.store(true, Ordering::Release);
        // Lock-then-notify so a waiter between its flag check and its wait
        // cannot miss the wakeup.
        drop(self.mailboxes.lock());
        self.mail_cv.notify_all();
        drop(self.collectives.lock());
        self.coll_cv.notify_all();
    }

    /// The sticky abort cause, if any. One atomic load when healthy.
    pub(crate) fn abort_cause(&self) -> Option<VmpiError> {
        if !self.aborted.load(Ordering::Acquire) {
            return None;
        }
        self.abort_slot.lock().clone()
    }

    /// Renders the watchdog snapshot: per-rank last events, pending
    /// collective slots, and mailbox depths. Locks are taken one at a time
    /// (callers must hold none of them).
    pub(crate) fn diagnostic_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("world snapshot at timeout:\n");
        {
            let st = self.status.lock();
            for (r, s) in st.iter().enumerate() {
                let _ = writeln!(out, "  rank {r}: last event {} at t={:.6}s", s.event, s.at);
            }
        }
        {
            let slots = self.collectives.lock();
            if slots.is_empty() {
                out.push_str("  no pending collective slots\n");
            }
            let mut keys: Vec<&CollKey> = slots.keys().collect();
            keys.sort_by_key(|k| (k.comm_id, k.tag, k.seq));
            for key in keys {
                let slot = &slots[key];
                let _ = writeln!(
                    out,
                    "  pending collective {key:?}: {} arrived, done={}, readers_left={}",
                    slot.contributions.len(),
                    slot.done,
                    slot.readers_left
                );
            }
        }
        {
            let boxes = self.mailboxes.lock();
            let mut keys: Vec<&P2pKey> = boxes
                .iter()
                .filter(|(_, mb)| !mb.queue.is_empty())
                .map(|(k, _)| k)
                .collect();
            keys.sort_by_key(|k| (k.comm_id, k.src, k.dst, k.tag));
            for key in keys {
                let _ = writeln!(
                    out,
                    "  undelivered p2p {key:?}: {} queued",
                    boxes[key].queue.len()
                );
            }
        }
        out
    }
}

/// Configuration and entry point of a virtual MPI execution.
pub struct World {
    nranks: usize,
    trace: Option<TraceSink>,
    timeout: Duration,
    chaos: Option<Arc<ChaosEngine>>,
}

impl World {
    /// A world of `nranks` virtual ranks. When `FFTX_CHAOS_SEED` is set in
    /// the environment, the corresponding chaos schedule is applied (see
    /// [`ChaosConfig::from_env`]) — that is how whole test suites run under
    /// fault injection without code changes.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "World: need at least one rank");
        World {
            nranks,
            trace: None,
            timeout: Duration::from_secs(60),
            chaos: ChaosConfig::from_env().map(|cfg| Arc::new(ChaosEngine::new(cfg))),
        }
    }

    /// Attaches a trace sink; every communication operation is recorded.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Sets the blocking-wait timeout after which a stuck operation panics
    /// with a deadlock diagnostic (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Runs the world under `cfg`'s deterministic fault schedule
    /// (overriding any environment-variable chaos).
    pub fn with_chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(Arc::new(ChaosEngine::new(cfg)));
        self
    }

    /// Disables fault injection, including the environment-variable pickup.
    pub fn without_chaos(mut self) -> Self {
        self.chaos = None;
        self
    }

    /// The chaos engine's report so far (`None` when chaos is disabled).
    /// Call after [`World::run`] for the complete fault schedule; the
    /// engine outlives the run.
    pub fn fault_report(&self) -> Option<FaultReport> {
        self.chaos.as_ref().map(|e| e.report())
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Spawns one thread per rank, hands each a world communicator, and
    /// returns the per-rank results in rank order.
    ///
    /// A panic on any rank propagates out of `run` (after the scope joins
    /// the remaining threads, which may themselves hit the deadlock timeout
    /// if they were waiting for the failed rank).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        let shared = Arc::new(WorldShared {
            mailboxes: Mutex::new(HashMap::new()),
            mail_cv: Condvar::new(),
            collectives: Mutex::new(HashMap::new()),
            coll_cv: Condvar::new(),
            next_comm_id: AtomicU64::new(1),
            trace: self.trace.clone(),
            clock: WallClock::new(),
            timeout: self.timeout,
            chaos: self.chaos.clone(),
            aborted: AtomicBool::new(false),
            abort_slot: Mutex::new(None),
            status: Mutex::new(vec![
                RankStatus {
                    event: RankEvent::Spawned,
                    at: 0.0,
                };
                self.nranks
            ]),
        });
        let ranks: Arc<Vec<usize>> = Arc::new((0..self.nranks).collect());
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.nranks);
            for rank in 0..self.nranks {
                let shared = Arc::clone(&shared);
                let ranks = Arc::clone(&ranks);
                handles.push(scope.spawn(move || {
                    let comm = Communicator::world(shared, ranks, rank);
                    f(&comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise the original payload so callers (and tests)
                    // see the rank's own panic message.
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = World::new(4).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::new(1).run(|comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::new(0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        World::new(2)
            .with_timeout(Duration::from_millis(200))
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("boom");
                }
            });
    }

    #[test]
    fn fault_report_is_none_without_chaos() {
        let w = World::new(2).without_chaos();
        w.run(|comm| comm.barrier());
        assert!(w.fault_report().is_none());
    }
}
