//! The virtual MPI "universe": one OS thread per rank inside a single
//! process, with shared-memory mailboxes and collective staging areas.
//!
//! This substitutes for the on-node Intel MPI of the paper's KNL testbed.
//! Semantics (communicator topology, alltoall/alltoallv dataflow) are
//! identical to MPI; on-node MPI implementations move bytes through shared
//! memory just like this does.

use crate::comm::Communicator;
use fftx_trace::{TraceSink, WallClock};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

/// Matching key for point-to-point messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct P2pKey {
    pub comm_id: u64,
    pub src: usize,
    pub dst: usize,
    pub tag: u32,
}

/// Collective operation kinds, part of the matching key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CollKind {
    Barrier,
    Bcast,
    Allreduce,
    Allgather,
    Alltoall,
    Alltoallv,
    Split,
    Dup,
}

/// Matching key for collectives: every rank of `comm_id` calling the same
/// kind with the same tag and per-(kind,tag) sequence number participates in
/// the same operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CollKey {
    pub comm_id: u64,
    pub kind: CollKind,
    pub tag: u32,
    pub seq: u64,
}

/// One in-flight collective.
pub(crate) struct CollSlot {
    /// Per-participant contribution, keyed by index within the communicator.
    pub contributions: HashMap<usize, Box<dyn Any + Send>>,
    /// Per-participant results, filled by the completer (the last arriver).
    pub results: HashMap<usize, Box<dyn Any + Send>>,
    /// How many participants still have to pick up their result.
    pub readers_left: usize,
    /// Set once the completer has produced `results`.
    pub done: bool,
}

pub(crate) struct WorldShared {
    pub mailboxes: Mutex<HashMap<P2pKey, std::collections::VecDeque<Box<dyn Any + Send>>>>,
    pub mail_cv: Condvar,
    pub collectives: Mutex<HashMap<CollKey, CollSlot>>,
    pub coll_cv: Condvar,
    pub next_comm_id: AtomicU64,
    pub trace: Option<TraceSink>,
    pub clock: WallClock,
    pub timeout: Duration,
}

/// Configuration and entry point of a virtual MPI execution.
pub struct World {
    nranks: usize,
    trace: Option<TraceSink>,
    timeout: Duration,
}

impl World {
    /// A world of `nranks` virtual ranks.
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "World: need at least one rank");
        World {
            nranks,
            trace: None,
            timeout: Duration::from_secs(60),
        }
    }

    /// Attaches a trace sink; every communication operation is recorded.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Sets the blocking-wait timeout after which a stuck operation panics
    /// with a deadlock diagnostic (default 60 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Spawns one thread per rank, hands each a world communicator, and
    /// returns the per-rank results in rank order.
    ///
    /// A panic on any rank propagates out of `run` (after the scope joins
    /// the remaining threads, which may themselves hit the deadlock timeout
    /// if they were waiting for the failed rank).
    pub fn run<T, F>(self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        let shared = Arc::new(WorldShared {
            mailboxes: Mutex::new(HashMap::new()),
            mail_cv: Condvar::new(),
            collectives: Mutex::new(HashMap::new()),
            coll_cv: Condvar::new(),
            next_comm_id: AtomicU64::new(1),
            trace: self.trace,
            clock: WallClock::new(),
            timeout: self.timeout,
        });
        let ranks: Arc<Vec<usize>> = Arc::new((0..self.nranks).collect());
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.nranks);
            for rank in 0..self.nranks {
                let shared = Arc::clone(&shared);
                let ranks = Arc::clone(&ranks);
                handles.push(scope.spawn(move || {
                    let comm = Communicator::world(shared, ranks, rank);
                    f(&comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // Re-raise the original payload so callers (and tests)
                    // see the rank's own panic message.
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = World::new(4).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::new(1).run(|comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::new(0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        World::new(2)
            .with_timeout(Duration::from_millis(200))
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("boom");
                }
            });
    }
}
