//! The checksummed-exchange substrate: a wire-hashable element trait and
//! the chunk checksum the alltoall family carries per peer.
//!
//! Every `alltoall_into` / `alltoallv_into` / `ialltoall` chunk is hashed
//! at *pack* time (when the transport stages its one owned copy — the
//! NIC-buffer stand-in) and verified at *unpack* (when the receiving rank
//! lifts its segment out of the completed collective). Anything that
//! mangles the staged bytes in between — the seeded
//! [`PayloadCorrupt`](fftx_fault::PayloadCorrupt) profile, or a real
//! memory error in a production transport — surfaces as a typed
//! [`VmpiError::Integrity`](crate::VmpiError) naming the peer, the tag,
//! and both checksums, *before* the corrupted data reaches the caller's
//! receive buffer.
//!
//! The hash is an FNV/splitmix-style fold over each element's canonical
//! 64-bit image. It is not cryptographic and does not need to be: the
//! adversary is a bit flip, not an attacker, and any single-bit change of
//! the image changes the fold with overwhelming probability (the tests pin
//! single-bit sensitivity explicitly).

/// An element that can travel through a checksummed exchange: it exposes a
/// canonical 64-bit image for hashing, and a bit-flip primitive so the
/// seeded corruption profiles can strike payloads of any element type.
pub trait Checksum {
    /// The element's canonical 64-bit image (e.g. `f64::to_bits`). Two
    /// elements with equal images are indistinguishable on the wire.
    fn image(&self) -> u64;

    /// Flips one bit of the element's representation (`bit` taken modulo
    /// the representation width). Fault injection only.
    fn flip_bit(&mut self, bit: u32);
}

macro_rules! impl_checksum_int {
    ($($t:ty),*) => {$(
        impl Checksum for $t {
            #[inline]
            fn image(&self) -> u64 {
                *self as u64
            }
            #[inline]
            fn flip_bit(&mut self, bit: u32) {
                *self ^= (1 as $t).rotate_left(bit % <$t>::BITS);
            }
        }
    )*};
}

impl_checksum_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Checksum for f64 {
    #[inline]
    fn image(&self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn flip_bit(&mut self, bit: u32) {
        *self = f64::from_bits(self.to_bits() ^ (1u64 << (bit % 64)));
    }
}

impl Checksum for f32 {
    #[inline]
    fn image(&self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn flip_bit(&mut self, bit: u32) {
        *self = f32::from_bits(self.to_bits() ^ (1u32 << (bit % 32)));
    }
}

/// splitmix64 finalizer — the per-element mixing step of the chunk fold.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The chunk checksum: a positional fold of each element's image. Position
/// matters (a swap of two unequal elements changes the sum) and every
/// single-bit change of any image changes the result with overwhelming
/// probability.
pub fn checksum_slice<T: Checksum>(chunk: &[T]) -> u64 {
    let mut acc = 0x1620_43B8_D6F0_5E91u64 ^ chunk.len() as u64;
    for x in chunk {
        acc = mix(acc ^ x.image());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_pure_and_length_sensitive() {
        let a = vec![1.0f64, 2.0, 3.0];
        assert_eq!(checksum_slice(&a), checksum_slice(&a));
        assert_ne!(checksum_slice(&a), checksum_slice(&a[..2]));
        assert_ne!(checksum_slice::<f64>(&[]), checksum_slice(&[0.0]));
    }

    #[test]
    fn checksum_is_position_sensitive() {
        assert_ne!(
            checksum_slice(&[1.0f64, 2.0]),
            checksum_slice(&[2.0f64, 1.0])
        );
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let base = vec![0.5f64, -3.25, 1e-300, 7.0];
        let sum = checksum_slice(&base);
        for i in 0..base.len() {
            for bit in 0..64 {
                let mut mutated = base.clone();
                mutated[i].flip_bit(bit);
                assert_ne!(
                    checksum_slice(&mutated),
                    sum,
                    "flip of bit {bit} in element {i} must change the checksum"
                );
            }
        }
    }

    #[test]
    fn flip_bit_is_an_involution_across_types() {
        let mut x = 42u32;
        x.flip_bit(70); // reduced modulo width
        x.flip_bit(70);
        assert_eq!(x, 42);
        let mut y = -1.5f64;
        y.flip_bit(63);
        assert!(y > 0.0, "sign bit flipped");
        y.flip_bit(63);
        assert_eq!(y, -1.5);
        let mut z = 7i16;
        z.flip_bit(3);
        assert_eq!(z, 15);
    }

    #[test]
    fn integer_images_are_value_stable() {
        assert_eq!(3u8.image(), 3u64);
        assert_eq!(3u64.image(), 3u64);
        assert_eq!(checksum_slice(&[1u8, 2, 3]), checksum_slice(&[1u64, 2, 3]));
    }
}
