//! Typed errors for the virtual MPI layer.
//!
//! Historically every failure here was a `panic!` deep inside a blocking
//! call. The `try_*` APIs surface the same conditions as values instead, so
//! callers (and the resilience experiments) can observe a deadlock timeout
//! or an aborted collective without tearing the whole world down. The
//! panicking wrappers still exist and format these errors, so the legacy
//! diagnostics (and the tests pinning their wording) are unchanged.

use std::fmt;

/// A failure of a virtual MPI operation.
#[derive(Debug, Clone)]
pub enum VmpiError {
    /// A blocking operation exceeded the world timeout. `message` carries
    /// the classic one-line deadlock diagnostic; `diagnostic` the world
    /// snapshot taken at expiry (per-rank last events, pending collective
    /// slots, mailbox depths).
    Timeout {
        /// One-line description of what was stuck where.
        message: String,
        /// Multi-line world snapshot captured when the timeout fired.
        diagnostic: String,
    },
    /// A received payload failed to downcast to the expected element type.
    TypeMismatch {
        /// Which operation observed the mismatch.
        context: &'static str,
    },
    /// A split-phase collective request was dropped without `wait()`; the
    /// world aborted so its peers fail fast instead of hanging.
    DroppedRequest {
        /// Communicator the dropped request was posted on.
        comm: u64,
        /// Tag of the dropped collective.
        tag: u32,
        /// Debug rendering of the full matching key.
        detail: String,
    },
    /// The collective matching protocol was violated (duplicate
    /// contribution, missing contribution or result at completion, wrong
    /// completer arity). Formerly a panic deep inside `collective_post`;
    /// now a value so recovery code can observe it — the world still aborts
    /// because a protocol violation means peers are wedged too.
    Protocol {
        /// What was violated where.
        context: String,
    },
    /// A checksummed exchange chunk failed verification at unpack: the
    /// data `peer` packed does not match what arrived. Unlike the other
    /// variants this one is *survivable* — nothing is wedged, the world
    /// stays up, and the caller's recovery path (band-batch rollback,
    /// recompute, eviction of a persistently flaky peer) replays the
    /// exchange.
    Integrity {
        /// The rank whose chunk failed verification.
        peer: usize,
        /// Tag of the collective carrying the chunk.
        tag: u32,
        /// Checksum computed at pack time.
        expected: u64,
        /// Checksum recomputed at unpack.
        got: u64,
    },
}

impl fmt::Display for VmpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmpiError::Timeout {
                message,
                diagnostic,
            } => {
                write!(f, "{message}")?;
                if !diagnostic.is_empty() {
                    write!(f, "\n{diagnostic}")?;
                }
                Ok(())
            }
            VmpiError::TypeMismatch { context } => {
                write!(f, "{context}: element type mismatch with sender")
            }
            VmpiError::DroppedRequest { comm, tag, detail } => write!(
                f,
                "vmpi: collective on comm {comm} (tag {tag}) aborted: a split-phase \
                 request ({detail}) was dropped without wait() — peers fail fast \
                 instead of hanging"
            ),
            VmpiError::Protocol { context } => {
                write!(f, "vmpi: collective protocol violation: {context}")
            }
            VmpiError::Integrity {
                peer,
                tag,
                expected,
                got,
            } => write!(
                f,
                "vmpi: integrity violation: chunk from rank {peer} (tag {tag}) failed \
                 checksum verification at unpack (packed {expected:#018x}, got {got:#018x})"
            ),
        }
    }
}

impl std::error::Error for VmpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_display_keeps_the_legacy_line() {
        let e = VmpiError::Timeout {
            message: "vmpi deadlock: rank 1 (comm 0) stuck in recv(src=0, tag=3)".into(),
            diagnostic: "rank 0: ...".into(),
        };
        let s = e.to_string();
        assert!(s.contains("vmpi deadlock"));
        assert!(s.contains("stuck in recv"));
        assert!(s.contains("rank 0: ..."));
    }

    #[test]
    fn protocol_violation_names_the_site() {
        let e = VmpiError::Protocol {
            context: "duplicate contribution to CollKey { .. } from index 2".into(),
        };
        let s = e.to_string();
        assert!(s.contains("protocol violation"));
        assert!(s.contains("duplicate contribution"));
    }

    #[test]
    fn integrity_names_peer_tag_and_both_checksums() {
        let e = VmpiError::Integrity {
            peer: 3,
            tag: 12,
            expected: 0xDEAD,
            got: 0xBEEF,
        };
        let s = e.to_string();
        assert!(s.contains("integrity violation"));
        assert!(s.contains("rank 3"));
        assert!(s.contains("tag 12"));
        assert!(s.contains("0x000000000000dead"));
        assert!(s.contains("0x000000000000beef"));
    }

    #[test]
    fn dropped_request_names_comm_and_tag() {
        let e = VmpiError::DroppedRequest {
            comm: 4,
            tag: 9,
            detail: "CollKey { .. }".into(),
        };
        let s = e.to_string();
        assert!(s.contains("comm 4"));
        assert!(s.contains("tag 9"));
        assert!(s.contains("dropped without wait"));
    }
}
