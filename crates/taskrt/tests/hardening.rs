//! Failure-propagation tests: a panicking task body must not deadlock its
//! dependents or poison the worker pool — it surfaces at `taskwait` as a
//! typed [`TaskError`] naming the task and its dependency chain, the
//! runtime goes fail-stop (remaining bodies are skipped but the graph
//! drains), and an armed watchdog turns a stuck `taskwait` into a timeout
//! with the task-graph wavefront.

use fftx_taskrt::{RetryPolicy, Runtime, Shared, TaskError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A dependent of a failed task used to wait forever on a predecessor that
/// would never "finish". Now the failure drains the graph: the dependent is
/// released (body skipped) and `try_taskwait` reports the failing label.
#[test]
fn failed_task_releases_dependents_without_running_them() {
    let rt = Runtime::new(2);
    let x = Shared::new(0u64);
    let ran = Arc::new(AtomicUsize::new(0));
    rt.spawn("boom", &[x.dep_inout()], || panic!("task exploded"));
    let r = Arc::clone(&ran);
    rt.spawn("dependent", &[x.dep_inout()], move || {
        r.fetch_add(1, Ordering::Relaxed);
    });
    let err = rt.try_taskwait().expect_err("failure must surface");
    match &err {
        TaskError::Failed { label, message, .. } => {
            assert_eq!(label, "boom");
            assert!(message.contains("task exploded"), "message: {message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Drain fully, then confirm the dependent's body never ran.
    let _ = rt.try_shutdown();
    assert_eq!(ran.load(Ordering::Relaxed), 0, "dependent body must be skipped");
}

/// The error's dependency chain carries the labels of the direct
/// predecessors that were unfinished when the failing task was submitted.
/// A gate task holds the chain in place until everything is spawned.
#[test]
fn failure_reports_the_dependency_chain() {
    let rt = Runtime::new(2);
    let x = Shared::new(0u64);
    let (release, gate) = mpsc::channel::<()>();
    rt.spawn("gate", &[x.dep_inout()], move || {
        let _ = gate.recv();
    });
    rt.spawn("stage-a", &[x.dep_inout()], || {});
    rt.spawn("stage-b", &[x.dep_inout()], || panic!("mid-pipeline failure"));
    release.send(()).unwrap();
    let err = rt.try_taskwait().expect_err("failure must surface");
    match &err {
        TaskError::Failed { label, chain, .. } => {
            assert_eq!(label, "stage-b");
            assert_eq!(chain, &["stage-a".to_string()]);
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let text = err.to_string();
    assert!(
        text.contains("task 'stage-b'") && text.contains("stage-a"),
        "error text: {text}"
    );
    let _ = rt.try_shutdown();
}

/// The failure is sticky: tasks spawned after it are skipped too, and every
/// later `taskwait` reports the same first cause.
#[test]
fn failure_is_sticky_and_fail_stop() {
    let rt = Runtime::new(2);
    rt.spawn("first-boom", &[], || panic!("original cause"));
    assert!(rt.try_taskwait().is_err());
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    rt.spawn("late", &[], move || {
        r.fetch_add(1, Ordering::Relaxed);
    });
    let err = rt.try_taskwait().expect_err("sticky failure");
    match &err {
        TaskError::Failed { label, message, .. } => {
            assert_eq!(label, "first-boom");
            assert!(message.contains("original cause"));
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let _ = rt.try_shutdown();
    assert_eq!(ran.load(Ordering::Relaxed), 0, "post-failure body must be skipped");
}

/// `shutdown` refuses to let an unobserved failure slip by silently;
/// `try_shutdown` reports it as a value.
#[test]
fn try_shutdown_surfaces_unobserved_failure() {
    let rt = Runtime::new(2);
    rt.spawn("quiet-boom", &[], || panic!("nobody waited"));
    // No taskwait: the failure must still come out at shutdown.
    let err = rt.try_shutdown().expect_err("failure must not vanish");
    assert!(err.to_string().contains("quiet-boom"), "{err}");
}

// ---------------------------------------------------------------------
// Task re-execution (recovery mechanism 1)
// ---------------------------------------------------------------------

/// A retryable task that panics twice and then succeeds is re-executed in
/// place: `taskwait` sees success, dependents run with the final outcome,
/// and the runtime accounts the two re-executions.
#[test]
fn retryable_task_recovers_from_transient_panics() {
    let rt = Runtime::new(2);
    let x = Shared::new(0u64);
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let xs = x.clone();
    rt.spawn_retryable(
        "flaky",
        None,
        &[x.dep_out()],
        RetryPolicy::retries(3),
        move || {
            if a.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("transient fault");
            }
            *xs.write() = 7;
        },
    );
    let saw = Shared::new(0u64);
    let (xr, sw) = (x.clone(), saw.clone());
    rt.spawn("dependent", &[x.dep_in(), saw.dep_out()], move || {
        *sw.write() = *xr.read();
    });
    rt.try_taskwait().expect("retries must absorb the fault");
    assert_eq!(attempts.load(Ordering::Relaxed), 3, "1 attempt + 2 retries");
    assert_eq!(rt.retries(), 2);
    assert_eq!(*saw.read(), 7, "dependent sees the successful attempt");
    rt.shutdown();
}

/// When the retry budget is exhausted the failure escalates exactly like a
/// plain task panic — fail-stop, typed error — and the message reports how
/// many attempts were burned.
#[test]
fn exhausted_retry_budget_escalates_to_task_error() {
    let rt = Runtime::new(2);
    let policy = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(40),
    };
    rt.spawn_retryable("doomed", None, &[], policy, || panic!("permanent fault"));
    let err = rt.try_taskwait().expect_err("budget exhaustion must surface");
    match &err {
        TaskError::Failed { label, message, .. } => {
            assert_eq!(label, "doomed");
            assert!(message.contains("permanent fault"), "message: {message}");
            assert!(
                message.contains("retry budget exhausted after 3 attempts"),
                "message: {message}"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert_eq!(rt.retries(), 2, "both re-executions are accounted");
    let _ = rt.try_shutdown();
}

/// Retries honour the bounded exponential backoff: three waits of
/// 1 ms, 2 ms, 4 ms put at least 7 ms between first and last attempt.
#[test]
fn retry_backoff_paces_reexecutions() {
    let rt = Runtime::new(1);
    let policy = RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(100),
    };
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    let t0 = std::time::Instant::now();
    rt.spawn_retryable("paced", None, &[], policy, move || {
        if a.fetch_add(1, Ordering::Relaxed) < 3 {
            panic!("again");
        }
    });
    rt.try_taskwait().expect("fourth attempt succeeds");
    assert!(
        t0.elapsed() >= Duration::from_millis(7),
        "backoff must pace retries (elapsed {:?})",
        t0.elapsed()
    );
    rt.shutdown();
}

/// The taskwait watchdog: a task that never finishes turns `try_taskwait`
/// into a timeout error carrying the task-graph wavefront (who is running,
/// who is blocked behind it) instead of hanging forever.
#[test]
fn watchdog_reports_the_wavefront_instead_of_hanging() {
    let rt = Runtime::builder(2)
        .taskwait_timeout(Duration::from_millis(100))
        .build();
    let x = Shared::new(0u64);
    let (release, gate) = mpsc::channel::<()>();
    rt.spawn("stuck", &[x.dep_inout()], move || {
        let _ = gate.recv();
    });
    rt.spawn("waiting-behind", &[x.dep_inout()], || {});
    let err = rt.try_taskwait().expect_err("watchdog must fire");
    match &err {
        TaskError::Timeout { waited, wavefront } => {
            assert_eq!(*waited, Duration::from_millis(100));
            assert!(wavefront.contains("stuck"), "wavefront: {wavefront}");
            assert!(
                wavefront.contains("waiting-behind") && wavefront.contains("pending deps"),
                "wavefront: {wavefront}"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(err.to_string().contains("taskrt deadlock"));
    // Unblock so the pool drains; the wait now succeeds.
    release.send(()).unwrap();
    rt.try_taskwait().expect("released graph finishes");
    rt.shutdown();
}
