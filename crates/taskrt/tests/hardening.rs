//! Failure-propagation tests: a panicking task body must not deadlock its
//! dependents or poison the worker pool — it surfaces at `taskwait` as a
//! typed [`TaskError`] naming the task and its dependency chain, the
//! runtime goes fail-stop (remaining bodies are skipped but the graph
//! drains), and an armed watchdog turns a stuck `taskwait` into a timeout
//! with the task-graph wavefront.

use fftx_taskrt::{Runtime, Shared, TaskError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A dependent of a failed task used to wait forever on a predecessor that
/// would never "finish". Now the failure drains the graph: the dependent is
/// released (body skipped) and `try_taskwait` reports the failing label.
#[test]
fn failed_task_releases_dependents_without_running_them() {
    let rt = Runtime::new(2);
    let x = Shared::new(0u64);
    let ran = Arc::new(AtomicUsize::new(0));
    rt.spawn("boom", &[x.dep_inout()], || panic!("task exploded"));
    let r = Arc::clone(&ran);
    rt.spawn("dependent", &[x.dep_inout()], move || {
        r.fetch_add(1, Ordering::Relaxed);
    });
    let err = rt.try_taskwait().expect_err("failure must surface");
    match &err {
        TaskError::Failed { label, message, .. } => {
            assert_eq!(label, "boom");
            assert!(message.contains("task exploded"), "message: {message}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Drain fully, then confirm the dependent's body never ran.
    let _ = rt.try_shutdown();
    assert_eq!(ran.load(Ordering::Relaxed), 0, "dependent body must be skipped");
}

/// The error's dependency chain carries the labels of the direct
/// predecessors that were unfinished when the failing task was submitted.
/// A gate task holds the chain in place until everything is spawned.
#[test]
fn failure_reports_the_dependency_chain() {
    let rt = Runtime::new(2);
    let x = Shared::new(0u64);
    let (release, gate) = mpsc::channel::<()>();
    rt.spawn("gate", &[x.dep_inout()], move || {
        let _ = gate.recv();
    });
    rt.spawn("stage-a", &[x.dep_inout()], || {});
    rt.spawn("stage-b", &[x.dep_inout()], || panic!("mid-pipeline failure"));
    release.send(()).unwrap();
    let err = rt.try_taskwait().expect_err("failure must surface");
    match &err {
        TaskError::Failed { label, chain, .. } => {
            assert_eq!(label, "stage-b");
            assert_eq!(chain, &["stage-a".to_string()]);
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let text = err.to_string();
    assert!(
        text.contains("task 'stage-b'") && text.contains("stage-a"),
        "error text: {text}"
    );
    let _ = rt.try_shutdown();
}

/// The failure is sticky: tasks spawned after it are skipped too, and every
/// later `taskwait` reports the same first cause.
#[test]
fn failure_is_sticky_and_fail_stop() {
    let rt = Runtime::new(2);
    rt.spawn("first-boom", &[], || panic!("original cause"));
    assert!(rt.try_taskwait().is_err());
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    rt.spawn("late", &[], move || {
        r.fetch_add(1, Ordering::Relaxed);
    });
    let err = rt.try_taskwait().expect_err("sticky failure");
    match &err {
        TaskError::Failed { label, message, .. } => {
            assert_eq!(label, "first-boom");
            assert!(message.contains("original cause"));
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let _ = rt.try_shutdown();
    assert_eq!(ran.load(Ordering::Relaxed), 0, "post-failure body must be skipped");
}

/// `shutdown` refuses to let an unobserved failure slip by silently;
/// `try_shutdown` reports it as a value.
#[test]
fn try_shutdown_surfaces_unobserved_failure() {
    let rt = Runtime::new(2);
    rt.spawn("quiet-boom", &[], || panic!("nobody waited"));
    // No taskwait: the failure must still come out at shutdown.
    let err = rt.try_shutdown().expect_err("failure must not vanish");
    assert!(err.to_string().contains("quiet-boom"), "{err}");
}

/// The taskwait watchdog: a task that never finishes turns `try_taskwait`
/// into a timeout error carrying the task-graph wavefront (who is running,
/// who is blocked behind it) instead of hanging forever.
#[test]
fn watchdog_reports_the_wavefront_instead_of_hanging() {
    let rt = Runtime::builder(2)
        .taskwait_timeout(Duration::from_millis(100))
        .build();
    let x = Shared::new(0u64);
    let (release, gate) = mpsc::channel::<()>();
    rt.spawn("stuck", &[x.dep_inout()], move || {
        let _ = gate.recv();
    });
    rt.spawn("waiting-behind", &[x.dep_inout()], || {});
    let err = rt.try_taskwait().expect_err("watchdog must fire");
    match &err {
        TaskError::Timeout { waited, wavefront } => {
            assert_eq!(*waited, Duration::from_millis(100));
            assert!(wavefront.contains("stuck"), "wavefront: {wavefront}");
            assert!(
                wavefront.contains("waiting-behind") && wavefront.contains("pending deps"),
                "wavefront: {wavefront}"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(err.to_string().contains("taskrt deadlock"));
    // Unblock so the pool drains; the wait now succeeds.
    release.send(()).unwrap();
    rt.try_taskwait().expect("released graph finishes");
    rt.shutdown();
}
