//! Property tests: randomly generated task graphs must respect the
//! OmpSs dependency semantics regardless of worker count and timing.

use fftx_taskrt::{Dep, Runtime, Shared};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A random task spec: which of `H` handles it touches and how.
#[derive(Debug, Clone)]
struct TaskSpec {
    /// (handle index, writes?)
    touches: Vec<(usize, bool)>,
}

fn task_spec(handles: usize) -> impl Strategy<Value = TaskSpec> {
    proptest::collection::btree_set((0..handles, any::<bool>()), 1..=3.min(handles)).prop_map(|s| {
        // Deduplicate handle indices (a task declares each region once;
        // writing wins when both were drawn).
        let mut touches: Vec<(usize, bool)> = Vec::new();
        for (h, w) in s {
            if let Some(e) = touches.iter_mut().find(|e| e.0 == h) {
                e.1 |= w;
            } else {
                touches.push((h, w));
            }
        }
        TaskSpec { touches }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential-consistency oracle: executing the same task list serially
    /// must produce the same per-handle value sequence, because the
    /// dependency rules serialise every pair of conflicting tasks in
    /// submission order.
    #[test]
    fn random_dags_match_serial_execution(
        specs in proptest::collection::vec(task_spec(4), 1..40),
        nthreads in 1usize..6,
    ) {
        let handles = 4;
        // Serial oracle: each handle accumulates the ids of writers.
        let mut oracle: Vec<Vec<usize>> = vec![Vec::new(); handles];
        for (id, spec) in specs.iter().enumerate() {
            for &(h, writes) in &spec.touches {
                if writes {
                    oracle[h].push(id);
                }
            }
        }

        let rt = Runtime::new(nthreads);
        let regions: Vec<Shared<Vec<usize>>> =
            (0..handles).map(|_| Shared::new(Vec::new())).collect();
        for (id, spec) in specs.iter().enumerate() {
            let deps: Vec<Dep> = spec
                .touches
                .iter()
                .map(|&(h, w)| if w { regions[h].dep_inout() } else { regions[h].dep_in() })
                .collect();
            let my_regions: Vec<(Shared<Vec<usize>>, bool)> = spec
                .touches
                .iter()
                .map(|&(h, w)| (regions[h].clone(), w))
                .collect();
            rt.spawn(&format!("t{id}"), &deps, move || {
                for (r, writes) in &my_regions {
                    if *writes {
                        r.write().push(id);
                    } else {
                        // Reads exercise the reader/writer checker.
                        let _ = r.read().len();
                    }
                }
            });
        }
        rt.taskwait();
        for (h, region) in regions.iter().enumerate() {
            prop_assert_eq!(&*region.read(), &oracle[h], "handle {}", h);
        }
    }

    /// Readers between two writers all observe the first writer's value.
    #[test]
    fn readers_see_preceding_writer(nreaders in 1usize..12, nthreads in 1usize..6) {
        let rt = Runtime::new(nthreads);
        let data = Shared::new(0u64);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let d = data.clone();
        rt.spawn("w1", &[data.dep_out()], move || *d.write() = 1);
        for _ in 0..nreaders {
            let d = data.clone();
            let s = Arc::clone(&seen);
            rt.spawn("r", &[data.dep_in()], move || s.lock().push(*d.read()));
        }
        let d = data.clone();
        rt.spawn("w2", &[data.dep_out()], move || *d.write() = 2);
        rt.taskwait();
        prop_assert_eq!(seen.lock().len(), nreaders);
        prop_assert!(seen.lock().iter().all(|&v| v == 1));
        prop_assert_eq!(*data.read(), 2);
    }

    /// taskloop covers each index exactly once for arbitrary range/grain.
    #[test]
    fn taskloop_partition(len in 0usize..200, grain in 1usize..50, nthreads in 1usize..5) {
        let rt = Runtime::new(nthreads);
        let hits = Arc::new(Mutex::new(vec![0u8; len]));
        let h = Arc::clone(&hits);
        rt.taskloop("l", 0..len, grain, move |r| {
            let mut g = h.lock();
            for i in r {
                g[i] += 1;
            }
        });
        rt.taskwait();
        prop_assert!(hits.lock().iter().all(|&v| v == 1));
    }
}
