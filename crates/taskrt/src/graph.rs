//! The dependency-slot spawn API: build a task graph declaratively over
//! abstract dependency slots, then submit it to a [`Runtime`] in one call.
//!
//! A *slot* is a bare [`Handle`] minted by [`SlotArena`] — it takes part in
//! the OmpSs dependency rules exactly like a [`crate::Shared`] region's
//! handle but carries no storage. This decouples the *shape* of a task
//! graph (which stages read/write which logical buffers) from the *data
//! placement* a particular scheduler policy chooses (per-band `Shared`
//! buffers, per-worker arenas, in-flight network requests), which is what
//! lets one declarative stage graph drive every policy.

use crate::handle::{Dep, Handle};
use crate::runtime::Runtime;

/// Mints pure dependency slots and remembers them (handy for debugging and
/// for asserting how many slots a graph construction used).
#[derive(Debug, Default)]
pub struct SlotArena {
    minted: Vec<Handle>,
}

impl SlotArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints a fresh dependency slot.
    pub fn mint(&mut self) -> Handle {
        let h = Handle::fresh();
        self.minted.push(h);
        h
    }

    /// Every slot minted so far, in order.
    pub fn minted(&self) -> &[Handle] {
        &self.minted
    }
}

struct GraphNode {
    label: String,
    priority: Option<u64>,
    deps: Vec<Dep>,
    body: Box<dyn FnOnce() + Send + 'static>,
}

/// A batch of tasks built ahead of submission. Nodes are submitted in
/// creation order, which is also the runtime's tie-break for equal
/// priorities — so a graph built in deterministic order schedules
/// deterministically.
#[derive(Default)]
pub struct TaskGraph {
    nodes: Vec<GraphNode>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its index in creation order.
    pub fn node(
        &mut self,
        label: impl Into<String>,
        priority: Option<u64>,
        deps: Vec<Dep>,
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        self.nodes.push(GraphNode {
            label: label.into(),
            priority,
            deps,
            body: Box::new(body),
        });
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl Runtime {
    /// Submits every node of `graph` in creation order. Dependencies are
    /// resolved by the usual OmpSs rules over the nodes' declared slots;
    /// nodes whose slots never conflict run concurrently.
    pub fn spawn_graph(&self, graph: TaskGraph) {
        for n in graph.nodes {
            self.spawn_boxed(&n.label, n.priority, &n.deps, n.body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn slot_arena_mints_unique_handles() {
        let mut arena = SlotArena::new();
        let a = arena.mint();
        let b = arena.mint();
        assert_ne!(a, b);
        assert_eq!(arena.minted(), &[a, b]);
        assert_eq!(a.dep_in().handle, a);
        assert!(a.dep_out().access.writes());
    }

    #[test]
    fn slot_flow_dependencies_order_a_chain() {
        // writer -> inout -> reader over one slot must run in order even
        // with many workers racing.
        let rt = Runtime::new(4);
        let mut slots = SlotArena::new();
        let s = slots.mint();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        for (i, dep) in [s.dep_out(), s.dep_inout(), s.dep_in()].into_iter().enumerate() {
            let log = Arc::clone(&log);
            graph.node(format!("n{i}"), None, vec![dep], move || {
                log.lock().unwrap().push(i);
            });
        }
        rt.spawn_graph(graph);
        rt.taskwait();
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
        rt.shutdown();
    }

    #[test]
    fn independent_slots_do_not_serialise() {
        let rt = Runtime::new(2);
        let mut slots = SlotArena::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut graph = TaskGraph::new();
        for i in 0..8 {
            let s = slots.mint();
            let done = Arc::clone(&done);
            graph.node(format!("t{i}"), Some(i as u64), vec![s.dep_inout()], move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(graph.len(), 8);
        assert!(!graph.is_empty());
        rt.spawn_graph(graph);
        rt.taskwait();
        assert_eq!(done.load(Ordering::Relaxed), 8);
        rt.shutdown();
    }

    #[test]
    fn anti_dependency_orders_writer_after_readers() {
        // Two readers then a writer on the same slot: the writer must wait
        // for both reads (the `out` anti-dependency rule).
        let rt = Runtime::new(4);
        let mut slots = SlotArena::new();
        let s = slots.mint();
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut graph = TaskGraph::new();
        for i in 0..2 {
            let log = Arc::clone(&log);
            graph.node(format!("read{i}"), None, vec![s.dep_in()], move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                log.lock().unwrap().push("read");
            });
        }
        let log2 = Arc::clone(&log);
        graph.node("write", None, vec![s.dep_out()], move || {
            log2.lock().unwrap().push("write");
        });
        rt.spawn_graph(graph);
        rt.taskwait();
        assert_eq!(*log.lock().unwrap(), vec!["read", "read", "write"]);
        rt.shutdown();
    }
}
