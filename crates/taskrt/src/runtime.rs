//! The task scheduler — the Nanos++ role: dynamic dependency resolution and
//! FIFO dispatch onto a worker-thread pool.
//!
//! Tasks are submitted with a list of [`Dep`]s; the runtime builds the
//! dependency graph on the fly (flow, anti and output dependencies, exactly
//! the OmpSs rules) and runs every task whose predecessors have finished on
//! the first free worker. FIFO order is load-bearing: together with
//! identical task-creation order on every rank it gives the deadlock-freedom
//! argument for blocking collectives inside tasks (see `fftx-vmpi`).

use crate::error::TaskError;
use crate::handle::{Dep, Handle};
use fftx_trace::{set_current_thread, Lane, TaskRecord, TraceSink, WallClock};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Re-execution policy for tasks submitted with
/// [`Runtime::spawn_retryable`]: a panicking attempt is retried in place
/// with bounded exponential backoff before the failure escalates to
/// [`TaskError::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-executions after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff cap: the wait before retry `n` is
    /// `min(base_backoff · 2^n, max_backoff)`.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` re-executions and the default backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The bounded exponential backoff before retry `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// A task body: run-once closures from [`Runtime::spawn`], or re-runnable
/// bodies from [`Runtime::spawn_retryable`] (which must be idempotent over
/// their input snapshot — re-execution assumes attempt n+1 sees the same
/// inputs attempt n did).
enum TaskBody {
    Once(Box<dyn FnOnce() + Send>),
    Retryable {
        body: Arc<dyn Fn() + Send + Sync>,
        policy: RetryPolicy,
    },
}

struct TaskState {
    label: String,
    priority: u64,
    body: Option<TaskBody>,
    /// Unfinished predecessors.
    pending: usize,
    /// Tasks to release when this one finishes.
    successors: Vec<u64>,
    /// Labels of the direct predecessors that were unfinished at
    /// submission (failure diagnostics).
    pred_labels: Vec<String>,
    t_created: f64,
}

#[derive(Default)]
struct HandleState {
    last_writer: Option<u64>,
    readers_since_write: Vec<u64>,
}

#[derive(Default)]
struct Sched {
    tasks: HashMap<u64, TaskState>,
    /// Min-heap on (priority, id): lowest priority value runs first; ties
    /// resolve to creation order, so the default (priority == id) is FIFO.
    ready: BinaryHeap<Reverse<(u64, u64)>>,
    handles: HashMap<Handle, HandleState>,
    next_id: u64,
    unfinished: usize,
    shutdown: bool,
    /// First task failure; sticky — the runtime is fail-stop after it.
    failure: Option<TaskError>,
}

impl Sched {
    /// Renders the task-graph wavefront: what is running, ready, blocked.
    fn wavefront(&self) -> String {
        use std::fmt::Write;
        let ready_ids: std::collections::HashSet<u64> =
            self.ready.iter().map(|Reverse((_p, id))| *id).collect();
        let mut running = Vec::new();
        let mut ready = Vec::new();
        let mut blocked = Vec::new();
        let mut ids: Vec<&u64> = self.tasks.keys().collect();
        ids.sort();
        for id in ids {
            let t = &self.tasks[id];
            if t.body.is_none() {
                running.push(format!("{} (id {id})", t.label));
            } else if ready_ids.contains(id) {
                ready.push(format!("{} (id {id})", t.label));
            } else {
                blocked.push(format!("{} (id {id}, {} pending deps)", t.label, t.pending));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "  running: [{}]", running.join(", "));
        let _ = writeln!(out, "  ready:   [{}]", ready.join(", "));
        let _ = writeln!(out, "  blocked: [{}]", blocked.join(", "));
        let _ = write!(out, "  unfinished tasks: {}", self.unfinished);
        out
    }
}

/// Best-effort text of a panic payload.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

struct Inner {
    sched: Mutex<Sched>,
    cv_ready: Condvar,
    cv_done: Condvar,
    trace: Option<TraceSink>,
    clock: WallClock,
    rank: usize,
    /// Optional taskwait watchdog (None = wait forever, the default).
    taskwait_timeout: Option<Duration>,
    /// Total task re-executions performed (recovery accounting).
    retries: AtomicU64,
}

/// Builder for [`Runtime`].
pub struct RuntimeBuilder {
    nthreads: usize,
    trace: Option<TraceSink>,
    clock: WallClock,
    rank: usize,
    taskwait_timeout: Option<Duration>,
}

impl RuntimeBuilder {
    /// Attaches a trace sink; task lifecycles are recorded into it.
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Uses an external clock (e.g. the vmpi world clock) for timestamps.
    pub fn clock(mut self, clock: WallClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the rank recorded in trace lanes (default 0).
    pub fn rank(mut self, rank: usize) -> Self {
        self.rank = rank;
        self
    }

    /// Arms the taskwait watchdog: a `taskwait` that outlives `timeout`
    /// returns [`TaskError::Timeout`] carrying the task-graph wavefront
    /// instead of hanging (default: wait forever).
    pub fn taskwait_timeout(mut self, timeout: Duration) -> Self {
        self.taskwait_timeout = Some(timeout);
        self
    }

    /// Starts the worker pool.
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a worker thread;
    /// [`RuntimeBuilder::try_build`] is the non-panicking variant.
    pub fn build(self) -> Runtime {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Starts the worker pool, reporting OS thread-spawn failure as a
    /// typed [`TaskError::Spawn`] instead of panicking. On failure every
    /// already-started worker is shut down and joined before the error is
    /// returned, so nothing leaks.
    pub fn try_build(self) -> Result<Runtime, TaskError> {
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched::default()),
            cv_ready: Condvar::new(),
            cv_done: Condvar::new(),
            trace: self.trace,
            clock: self.clock,
            rank: self.rank,
            taskwait_timeout: self.taskwait_timeout,
            retries: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(self.nthreads);
        for w in 0..self.nthreads {
            let handle = std::thread::Builder::new()
                .name(format!("taskrt-r{}w{}", self.rank, w))
                .spawn({
                    let inner = Arc::clone(&inner);
                    move || worker_loop(&inner, w)
                });
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => {
                    // Tear the partial pool down before reporting: no task
                    // has run yet (nothing was spawned into the runtime),
                    // so a plain drain-and-join leaves no state behind.
                    let started = workers.len();
                    let mut rt = Runtime { inner, workers };
                    rt.shutdown_impl();
                    drop(rt);
                    return Err(TaskError::Spawn {
                        worker: w,
                        started,
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(Runtime { inner, workers })
    }
}

/// A per-rank task runtime with `nthreads` workers.
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Builder with `nthreads` worker threads.
    pub fn builder(nthreads: usize) -> RuntimeBuilder {
        assert!(nthreads > 0, "Runtime: need at least one worker");
        RuntimeBuilder {
            nthreads,
            trace: None,
            clock: WallClock::new(),
            rank: 0,
            taskwait_timeout: None,
        }
    }

    /// Convenience: a plain runtime with `nthreads` workers.
    pub fn new(nthreads: usize) -> Runtime {
        Self::builder(nthreads).build()
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a task. `deps` declare the regions it touches; the runtime
    /// orders it after every conflicting earlier task (flow/anti/output
    /// dependencies) and otherwise runs it as soon as a worker is free.
    pub fn spawn<F>(&self, label: &str, deps: &[Dep], body: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.spawn_prio(label, None, deps, body)
    }

    /// Like [`Runtime::spawn`] with an explicit scheduling priority (lower
    /// runs first; equal priorities run in creation order). The miniapp
    /// gives every task of band `b` priority `b`, which makes every rank
    /// drain bands in the same order — the invariant behind the
    /// deadlock-freedom argument for blocking collectives inside tasks.
    pub fn spawn_prio<F>(&self, label: &str, priority: Option<u64>, deps: &[Dep], body: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.submit(label, priority, deps, TaskBody::Once(Box::new(body)))
    }

    /// Submits a **retryable** task: `body` must be idempotent over its
    /// input snapshot (read inputs, compute, write outputs last — the
    /// shape of all the miniapp's band tasks), because on a panic the same
    /// worker re-executes it in place after a bounded exponential backoff
    /// (`policy`), up to `policy.max_retries` times, before the failure
    /// escalates to [`TaskError::Failed`] as usual. Successors only ever
    /// observe the final outcome; the dependency graph is unaware of
    /// retries. Re-executions are counted in [`Runtime::retries`].
    pub fn spawn_retryable<F>(
        &self,
        label: &str,
        priority: Option<u64>,
        deps: &[Dep],
        policy: RetryPolicy,
        body: F,
    ) where
        F: Fn() + Send + Sync + 'static,
    {
        self.submit(
            label,
            priority,
            deps,
            TaskBody::Retryable {
                body: Arc::new(body),
                policy,
            },
        )
    }

    /// Total task re-executions performed by this runtime so far.
    pub fn retries(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// [`Runtime::spawn_prio`] for an already-boxed body (the graph
    /// submission path, which stores heterogeneous bodies).
    pub(crate) fn spawn_boxed(
        &self,
        label: &str,
        priority: Option<u64>,
        deps: &[Dep],
        body: Box<dyn FnOnce() + Send + 'static>,
    ) {
        self.submit(label, priority, deps, TaskBody::Once(body))
    }

    fn submit(&self, label: &str, priority: Option<u64>, deps: &[Dep], body: TaskBody) {
        let t_created = self.inner.clock.now();
        let mut sched = self.inner.sched.lock();
        assert!(!sched.shutdown, "Runtime: spawn after shutdown");
        let id = sched.next_id;
        let priority = priority.unwrap_or(id);
        sched.next_id += 1;
        sched.unfinished += 1;

        // Dependency edges per the OmpSs rules.
        let mut pending = 0;
        let mut pred_labels: Vec<String> = Vec::new();
        let predecessor_of =
            |sched: &mut Sched, pred: u64, id: u64, pending: &mut usize, labels: &mut Vec<String>| {
                if let Some(t) = sched.tasks.get_mut(&pred) {
                    if !t.successors.contains(&id) {
                        t.successors.push(id);
                        *pending += 1;
                        labels.push(t.label.clone());
                    }
                }
            };
        for dep in deps {
            // Collect predecessor ids first to appease the borrow checker.
            let (writer, readers): (Option<u64>, Vec<u64>) = {
                let hs = sched.handles.entry(dep.handle).or_default();
                (hs.last_writer, hs.readers_since_write.clone())
            };
            if dep.access.writes() {
                if let Some(w) = writer {
                    predecessor_of(&mut sched, w, id, &mut pending, &mut pred_labels);
                }
                for r in readers {
                    if r != id {
                        predecessor_of(&mut sched, r, id, &mut pending, &mut pred_labels);
                    }
                }
                let hs = sched.handles.get_mut(&dep.handle).expect("handle present");
                hs.last_writer = Some(id);
                hs.readers_since_write.clear();
            } else {
                if let Some(w) = writer {
                    predecessor_of(&mut sched, w, id, &mut pending, &mut pred_labels);
                }
                let hs = sched.handles.get_mut(&dep.handle).expect("handle present");
                if !hs.readers_since_write.contains(&id) {
                    hs.readers_since_write.push(id);
                }
            }
        }

        sched.tasks.insert(
            id,
            TaskState {
                label: label.to_string(),
                priority,
                body: Some(body),
                pending,
                successors: Vec::new(),
                pred_labels,
                t_created,
            },
        );
        if pending == 0 {
            sched.ready.push(Reverse((priority, id)));
            drop(sched);
            self.inner.cv_ready.notify_one();
        }
    }

    /// OmpSs `taskloop`: splits `range` into chunks of `grain` iterations
    /// and submits one dependency-free task per chunk.
    pub fn taskloop<F>(&self, label: &str, range: std::ops::Range<usize>, grain: usize, body: F)
    where
        F: Fn(std::ops::Range<usize>) + Send + Sync + 'static,
    {
        assert!(grain > 0, "taskloop: grain must be positive");
        let body = Arc::new(body);
        let mut start = range.start;
        let mut chunk_idx = 0;
        while start < range.end {
            let end = (start + grain).min(range.end);
            let body = Arc::clone(&body);
            self.spawn(&format!("{label}[{chunk_idx}]"), &[], move || body(start..end));
            start = end;
            chunk_idx += 1;
        }
    }

    /// Blocks until every task submitted so far has finished (`taskwait`).
    ///
    /// # Panics
    /// Re-raises the first task failure as a panic whose message carries
    /// the failed task's label, dependency chain, and original payload
    /// text; panics likewise when the watchdog (if armed) expires.
    /// [`Runtime::try_taskwait`] is the non-panicking variant.
    pub fn taskwait(&self) {
        self.try_taskwait().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Runtime::taskwait`], surfacing failures as values: the first
    /// task panic comes back as [`TaskError::Failed`] (sticky — the
    /// runtime is fail-stop after it and skips remaining task bodies), a
    /// watchdog expiry as [`TaskError::Timeout`] with the task-graph
    /// wavefront.
    pub fn try_taskwait(&self) -> Result<(), TaskError> {
        let deadline = self.inner.taskwait_timeout.map(|t| Instant::now() + t);
        let mut sched = self.inner.sched.lock();
        loop {
            if let Some(failure) = &sched.failure {
                return Err(failure.clone());
            }
            if sched.unfinished == 0 {
                return Ok(());
            }
            match deadline {
                None => self.inner.cv_done.wait(&mut sched),
                Some(d) => {
                    if self.inner.cv_done.wait_until(&mut sched, d).timed_out() {
                        return Err(TaskError::Timeout {
                            waited: self.inner.taskwait_timeout.expect("deadline implies timeout"),
                            wavefront: sched.wavefront(),
                        });
                    }
                }
            }
        }
    }

    /// Stops the workers after draining outstanding work.
    ///
    /// # Panics
    /// Panics if a task failure occurred and was never observed via
    /// `taskwait` (so failures cannot slip by silently);
    /// [`Runtime::try_shutdown`] is the non-panicking variant.
    pub fn shutdown(self) {
        self.try_shutdown().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Stops the workers after draining outstanding work, reporting any
    /// unobserved task failure instead of panicking.
    pub fn try_shutdown(mut self) -> Result<(), TaskError> {
        self.shutdown_impl();
        let sched = self.inner.sched.lock();
        match &sched.failure {
            Some(f) => Err(f.clone()),
            None => Ok(()),
        }
    }

    fn shutdown_impl(&mut self) {
        {
            let mut sched = self.inner.sched.lock();
            sched.shutdown = true;
        }
        self.inner.cv_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

/// Fans `f(0..n)` out over a private pool of `nthreads` workers and
/// returns the results in slot order — the independent-task map the
/// Monte-Carlo planner uses to run seeded fleet simulations concurrently.
/// Each slot's value depends only on its index, so the output is
/// deterministic regardless of execution interleaving. Panics propagate
/// the first task failure, like [`Runtime::taskwait`].
pub fn parallel_map<T, F>(nthreads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if n == 0 {
        return Vec::new();
    }
    let rt = Runtime::new(nthreads.clamp(1, n));
    let f = Arc::new(f);
    let slots: Arc<Mutex<Vec<Option<T>>>> =
        Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    for i in 0..n {
        let f = Arc::clone(&f);
        let slots = Arc::clone(&slots);
        rt.spawn(&format!("pmap.{i}"), &[], move || {
            let v = f(i);
            slots.lock()[i] = Some(v);
        });
    }
    rt.taskwait();
    rt.shutdown();
    let mut slots = slots.lock();
    slots
        .iter_mut()
        .enumerate()
        .map(|(i, s)| s.take().unwrap_or_else(|| panic!("parallel_map: slot {i} never filled")))
        .collect()
}

fn worker_loop(inner: &Inner, worker_idx: usize) {
    set_current_thread(worker_idx);
    loop {
        let (id, body, label, t_created) = {
            let mut sched = inner.sched.lock();
            loop {
                if let Some(Reverse((_prio, id))) = sched.ready.pop() {
                    let failed = sched.failure.is_some();
                    let t = sched.tasks.get_mut(&id).expect("ready task exists");
                    let mut body = t.body.take().expect("task not yet run");
                    if failed {
                        // Fail-stop: after the first failure we stop running
                        // bodies but keep the graph bookkeeping so everything
                        // drains and nothing deadlocks.
                        body = TaskBody::Once(Box::new(|| {}));
                    }
                    break (id, body, t.label.clone(), t.t_created);
                }
                if sched.shutdown {
                    return;
                }
                inner.cv_ready.wait(&mut sched);
            }
        };

        let t_start = inner.clock.now();
        // `attempts` counts re-executions; the trace record spans all of
        // them (a retried task reads as one long task, which is exactly the
        // overhead the recovery bench measures).
        let (result, attempts) = match body {
            TaskBody::Once(f) => (std::panic::catch_unwind(AssertUnwindSafe(f)), 0),
            TaskBody::Retryable { body, policy } => {
                let mut attempt = 0u32;
                loop {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| body())) {
                        Ok(()) => break (Ok(()), attempt),
                        Err(p) => {
                            if attempt >= policy.max_retries {
                                break (Err(p), attempt);
                            }
                            inner.retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(policy.backoff(attempt));
                            attempt += 1;
                        }
                    }
                }
            }
        };
        let t_end = inner.clock.now();

        if let Some(sink) = &inner.trace {
            sink.task(TaskRecord {
                lane: Lane::new(inner.rank, worker_idx),
                task_id: id,
                label,
                t_created,
                t_start,
                t_end,
            });
        }

        let mut sched = inner.sched.lock();
        let task = sched.tasks.remove(&id).expect("task exists");
        if let Err(p) = result {
            if sched.failure.is_none() {
                let mut message = payload_text(p.as_ref());
                if attempts > 0 {
                    message = format!("{message} (retry budget exhausted after {} attempts)",
                        attempts + 1);
                }
                sched.failure = Some(TaskError::Failed {
                    label: task.label.clone(),
                    chain: task.pred_labels.clone(),
                    message,
                });
            }
        }
        let mut woke = 0;
        for succ in task.successors {
            if let Some(s) = sched.tasks.get_mut(&succ) {
                s.pending -= 1;
                if s.pending == 0 {
                    let p = s.priority;
                    sched.ready.push(Reverse((p, succ)));
                    woke += 1;
                }
            }
        }
        sched.unfinished -= 1;
        let done = sched.unfinished == 0 || sched.failure.is_some();
        drop(sched);
        for _ in 0..woke {
            inner.cv_ready.notify_one();
        }
        if done {
            inner.cv_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Shared;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_independent_tasks() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            rt.spawn("inc", &[], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.taskwait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn parallel_map_returns_slot_ordered_results() {
        let out = parallel_map(4, 17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert!(parallel_map(3, 0, |i| i).is_empty());
        // More workers than slots clamps instead of spawning idle threads.
        assert_eq!(parallel_map(64, 2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn flow_dependency_orders_tasks() {
        let rt = Runtime::new(4);
        let data = Shared::new(Vec::<u32>::new());
        for i in 0..50u32 {
            let d = data.clone();
            rt.spawn("append", &[data.dep_inout()], move || {
                d.write().push(i);
            });
        }
        rt.taskwait();
        assert_eq!(*data.read(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn readers_run_concurrently_between_writers() {
        let rt = Runtime::new(4);
        let data = Shared::new(1u64);
        let sum = Shared::new(0u64);
        let d = data.clone();
        rt.spawn("write", &[data.dep_out()], move || {
            *d.write() = 10;
        });
        for _ in 0..8 {
            let d = data.clone();
            let s = sum.clone();
            rt.spawn("read", &[data.dep_in(), sum.dep_inout()], move || {
                let v = *d.read();
                *s.write() += v;
            });
        }
        let d = data.clone();
        rt.spawn("write2", &[data.dep_out()], move || {
            *d.write() = 99;
        });
        rt.taskwait();
        // All 8 readers must have seen 10 (after write, before write2).
        assert_eq!(*sum.read(), 80);
        assert_eq!(*data.read(), 99);
    }

    #[test]
    fn taskwait_then_more_tasks() {
        let rt = Runtime::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        let c1 = Arc::clone(&c);
        rt.spawn("a", &[], move || {
            c1.fetch_add(1, Ordering::Relaxed);
        });
        rt.taskwait();
        assert_eq!(c.load(Ordering::Relaxed), 1);
        let c2 = Arc::clone(&c);
        rt.spawn("b", &[], move || {
            c2.fetch_add(10, Ordering::Relaxed);
        });
        rt.taskwait();
        assert_eq!(c.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn taskloop_covers_range_in_grains() {
        let rt = Runtime::new(4);
        let hits = Arc::new(Mutex::new(vec![0u32; 103]));
        let h = Arc::clone(&hits);
        rt.taskloop("loop", 0..103, 10, move |r| {
            let mut g = h.lock();
            for i in r {
                g[i] += 1;
            }
        });
        rt.taskwait();
        assert!(hits.lock().iter().all(|&v| v == 1));
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn task_panic_reaches_taskwait() {
        let rt = Runtime::new(2);
        rt.spawn("bad", &[], || panic!("task exploded"));
        rt.taskwait();
    }

    #[test]
    fn try_build_starts_a_working_pool() {
        let rt = Runtime::builder(3).try_build().expect("spawn succeeds");
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let c = Arc::clone(&c);
            rt.spawn("t", &[], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.try_taskwait().expect("no failures");
        rt.try_shutdown().expect("clean shutdown");
        assert_eq!(c.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn shutdown_drains_work() {
        let rt = Runtime::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&c);
            rt.spawn("t", &[], move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.taskwait();
        rt.shutdown();
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn trace_records_task_lifecycle() {
        let sink = TraceSink::new();
        let rt = Runtime::builder(2).trace(sink.clone()).rank(3).build();
        rt.spawn("traced", &[], || {});
        rt.taskwait();
        rt.shutdown();
        let t = sink.finish();
        assert_eq!(t.tasks.len(), 1);
        let rec = &t.tasks[0];
        assert_eq!(rec.label, "traced");
        assert_eq!(rec.lane.rank, 3);
        assert!(rec.t_start >= rec.t_created);
        assert!(rec.t_end >= rec.t_start);
    }

    #[test]
    fn fifo_start_order_for_independent_tasks() {
        // With one worker, independent tasks must start in creation order.
        let rt = Runtime::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let o = Arc::clone(&order);
            rt.spawn("t", &[], move || o.lock().push(i));
        }
        rt.taskwait();
        assert_eq!(*order.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn diamond_dependency() {
        // a -> (b, c) -> d
        let rt = Runtime::new(4);
        let x = Shared::new(0u64);
        let y = Shared::new(0u64);
        let z = Shared::new(0u64);
        let xs = x.clone();
        rt.spawn("a", &[x.dep_out()], move || *xs.write() = 5);
        let (xr, yw) = (x.clone(), y.clone());
        rt.spawn("b", &[x.dep_in(), y.dep_out()], move || {
            *yw.write() = *xr.read() * 2
        });
        let (xr, zw) = (x.clone(), z.clone());
        rt.spawn("c", &[x.dep_in(), z.dep_out()], move || {
            *zw.write() = *xr.read() + 1
        });
        let (yr, zr, xw) = (y.clone(), z.clone(), x.clone());
        rt.spawn("d", &[y.dep_in(), z.dep_in(), x.dep_inout()], move || {
            *xw.write() = *yr.read() + *zr.read()
        });
        rt.taskwait();
        assert_eq!(*x.read(), 16);
    }
}
