//! Data regions and dependency declarations — the `in`/`out`/`inout`
//! clauses of OmpSs's `task` construct.
//!
//! [`Shared<T>`] is the storage a task operates on. Access goes through
//! runtime-checked read/write guards: the dependency graph is what
//! *schedules* conflicting tasks apart; the guards *verify* the annotations
//! were right (a wrong `in` where `inout` was needed panics instead of
//! racing, which is how we keep the `unsafe` sound).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_HANDLE: AtomicU64 = AtomicU64::new(1);

/// Identifier of a data region, used by the dependency tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(pub u64);

impl Handle {
    /// Mints a fresh handle not backed by any [`Shared`] storage: a pure
    /// *dependency slot*. The tracker only needs identity, so a bare handle
    /// participates in the OmpSs ordering rules exactly like a `Shared`
    /// region's handle while the data it stands for can live anywhere — a
    /// `Shared` buffer, a worker arena, or the network (see
    /// `crate::graph::SlotArena`).
    pub fn fresh() -> Handle {
        Handle(NEXT_HANDLE.fetch_add(1, Ordering::Relaxed))
    }

    /// `in` dependency on this slot.
    pub fn dep_in(self) -> Dep {
        Dep {
            handle: self,
            access: Access::In,
        }
    }

    /// `out` dependency on this slot.
    pub fn dep_out(self) -> Dep {
        Dep {
            handle: self,
            access: Access::Out,
        }
    }

    /// `inout` dependency on this slot.
    pub fn dep_inout(self) -> Dep {
        Dep {
            handle: self,
            access: Access::InOut,
        }
    }
}

/// Access mode of a task on a data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read-only (`in` clause): orders after the region's last writer.
    In,
    /// Write-only (`out` clause): orders after the last writer and all
    /// readers since (anti-dependency).
    Out,
    /// Read-write (`inout` clause): same ordering as `Out`.
    InOut,
}

impl Access {
    /// True when the access writes the region.
    pub fn writes(self) -> bool {
        matches!(self, Access::Out | Access::InOut)
    }
}

/// One dependency declaration of a task.
#[derive(Debug, Clone, Copy)]
pub struct Dep {
    /// Region.
    pub handle: Handle,
    /// Mode.
    pub access: Access,
}

struct SharedInner<T: ?Sized> {
    /// `> 0`: number of readers; `-1`: one writer; `0`: free.
    state: AtomicI64,
    handle: Handle,
    cell: UnsafeCell<T>,
}

// SAFETY: access to `cell` is mediated by the atomic `state` protocol below
// (multiple readers xor one writer); a protocol violation panics before any
// aliasing access is handed out.
unsafe impl<T: ?Sized + Send> Send for SharedInner<T> {}
unsafe impl<T: ?Sized + Send> Sync for SharedInner<T> {}

/// A task-shared data region with runtime-verified reader/writer discipline.
pub struct Shared<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Shared<T> {
    /// Wraps `value` in a new region with a fresh handle.
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(SharedInner {
                state: AtomicI64::new(0),
                handle: Handle(NEXT_HANDLE.fetch_add(1, Ordering::Relaxed)),
                cell: UnsafeCell::new(value),
            }),
        }
    }

    /// The region's dependency handle.
    pub fn handle(&self) -> Handle {
        self.inner.handle
    }

    /// `in` dependency on this region.
    pub fn dep_in(&self) -> Dep {
        Dep {
            handle: self.handle(),
            access: Access::In,
        }
    }

    /// `out` dependency on this region.
    pub fn dep_out(&self) -> Dep {
        Dep {
            handle: self.handle(),
            access: Access::Out,
        }
    }

    /// `inout` dependency on this region.
    pub fn dep_inout(&self) -> Dep {
        Dep {
            handle: self.handle(),
            access: Access::InOut,
        }
    }

    /// Acquires shared read access.
    ///
    /// # Panics
    /// Panics if a writer currently holds the region — that means a task's
    /// dependency annotations were wrong.
    pub fn read(&self) -> ReadGuard<'_, T> {
        let mut cur = self.inner.state.load(Ordering::Acquire);
        loop {
            assert!(
                cur >= 0,
                "Shared: read while a writer is active — missing in/inout dependency \
                 (handle {:?})",
                self.inner.handle
            );
            match self.inner.state.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        ReadGuard { shared: self }
    }

    /// Acquires exclusive write access.
    ///
    /// # Panics
    /// Panics if any reader or writer holds the region.
    pub fn write(&self) -> WriteGuard<'_, T> {
        let prev =
            self.inner
                .state
                .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
        assert!(
            prev.is_ok(),
            "Shared: write while {} active — missing out/inout dependency (handle {:?})",
            match prev {
                Err(n) if n > 0 => "readers are",
                _ => "a writer is",
            },
            self.inner.handle
        );
        WriteGuard { shared: self }
    }

    /// Consumes the region and returns the inner value if this is the last
    /// clone; otherwise returns `Err(self)`.
    pub fn try_unwrap(self) -> Result<T, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.cell.into_inner()),
            Err(inner) => Err(Shared { inner }),
        }
    }
}

/// Shared read guard; derefs to `&T`.
pub struct ReadGuard<'a, T> {
    shared: &'a Shared<T>,
}

impl<T> Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: state > 0 guarantees no writer exists.
        unsafe { &*self.shared.inner.cell.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        self.shared.inner.state.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive write guard; derefs to `&mut T`.
pub struct WriteGuard<'a, T> {
    shared: &'a Shared<T>,
}

impl<T> Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: state == -1 guarantees exclusivity.
        unsafe { &*self.shared.inner.cell.get() }
    }
}

impl<T> DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: state == -1 guarantees exclusivity.
        unsafe { &mut *self.shared.inner.cell.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        self.shared.inner.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_unique() {
        let a = Shared::new(0u32);
        let b = Shared::new(0u32);
        assert_ne!(a.handle(), b.handle());
        assert_eq!(a.handle(), a.clone().handle());
    }

    #[test]
    fn read_write_roundtrip() {
        let s = Shared::new(vec![1, 2, 3]);
        {
            let mut w = s.write();
            w.push(4);
        }
        let r = s.read();
        assert_eq!(*r, vec![1, 2, 3, 4]);
    }

    #[test]
    fn multiple_readers_allowed() {
        let s = Shared::new(5u64);
        let r1 = s.read();
        let r2 = s.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    #[should_panic(expected = "missing out/inout dependency")]
    fn write_under_reader_panics() {
        let s = Shared::new(0u8);
        let _r = s.read();
        let _w = s.write();
    }

    #[test]
    #[should_panic(expected = "missing in/inout dependency")]
    fn read_under_writer_panics() {
        let s = Shared::new(0u8);
        let _w = s.write();
        let _r = s.read();
    }

    #[test]
    fn guards_release_on_drop() {
        let s = Shared::new(0u8);
        drop(s.write());
        drop(s.read());
        drop(s.write());
    }

    #[test]
    fn dep_constructors() {
        let s = Shared::new(());
        assert_eq!(s.dep_in().access, Access::In);
        assert_eq!(s.dep_out().access, Access::Out);
        assert_eq!(s.dep_inout().access, Access::InOut);
        assert!(Access::Out.writes() && Access::InOut.writes() && !Access::In.writes());
        assert_eq!(s.dep_in().handle, s.handle());
    }

    #[test]
    fn try_unwrap_returns_value_when_unique() {
        let s = Shared::new(7i32);
        assert_eq!(s.try_unwrap().ok(), Some(7));
        let s = Shared::new(7i32);
        let s2 = s.clone();
        assert!(s.try_unwrap().is_err());
        assert_eq!(*s2.read(), 7);
    }

    #[test]
    fn concurrent_readers_from_threads() {
        let s = Shared::new(42u64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        assert_eq!(*s.read(), 42);
                    }
                });
            }
        });
    }
}
