//! # fftx-taskrt
//!
//! A task-based runtime in the style of OmpSs/Nanos++: tasks declare
//! `in`/`out`/`inout` dependencies on data regions, the runtime builds the
//! dependency graph dynamically and dispatches ready tasks FIFO onto a
//! worker-thread pool. This is the programming-model substrate for the two
//! optimisation strategies of the paper (task-per-step with flow
//! dependencies, and task-per-FFT with independent tasks).
//!
//! * [`handle::Shared`] — a data region with runtime-verified reader/writer
//!   discipline (wrong dependency annotations panic instead of racing);
//! * [`runtime::Runtime`] — the scheduler: `spawn`, `taskloop`, `taskwait`.

#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod handle;
pub mod runtime;

pub use error::TaskError;
pub use graph::{SlotArena, TaskGraph};
pub use handle::{Access, Dep, Handle, Shared};
pub use runtime::{parallel_map, RetryPolicy, Runtime, RuntimeBuilder};
