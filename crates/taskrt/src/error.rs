//! Typed task-failure reporting.
//!
//! A panic inside a task body used to be re-raised by `taskwait` as the
//! bare payload, with no indication of *which* task failed or what depended
//! on it — and every queued task still ran against the half-written state
//! the failed task left behind. [`TaskError`] captures the task label, its
//! unfinished dependency chain at submission, and the panic message; the
//! runtime goes fail-stop after the first failure (remaining bodies are
//! skipped, dependents are released, nothing deadlocks).

use std::fmt;
use std::time::Duration;

/// Why a `taskwait` could not complete normally.
#[derive(Debug, Clone)]
pub enum TaskError {
    /// A task body panicked.
    Failed {
        /// Label of the failed task.
        label: String,
        /// Labels of the task's direct dependencies that were still
        /// unfinished when it was submitted (its wait-for lineage).
        chain: Vec<String>,
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
    },
    /// The taskwait watchdog expired before outstanding tasks finished.
    Timeout {
        /// The configured watchdog timeout.
        waited: Duration,
        /// Task-graph wavefront at expiry: running / ready / blocked tasks.
        wavefront: String,
    },
    /// The OS refused to spawn a worker thread (resource exhaustion at
    /// pool construction — nothing has run yet, so the caller can retry
    /// with a smaller pool).
    Spawn {
        /// Worker index whose spawn failed.
        worker: usize,
        /// Workers already running when the spawn failed (all joined
        /// before this error is returned).
        started: usize,
        /// The OS error text.
        message: String,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Failed {
                label,
                chain,
                message,
            } => {
                write!(f, "taskrt: task '{label}' failed: {message}")?;
                if chain.is_empty() {
                    write!(f, " (no unfinished dependencies at submission)")
                } else {
                    write!(f, " (dependency chain: {})", chain.join(" <- "))
                }
            }
            TaskError::Timeout { waited, wavefront } => write!(
                f,
                "taskrt deadlock: taskwait timed out after {waited:?}; task-graph \
                 wavefront:\n{wavefront}"
            ),
            TaskError::Spawn {
                worker,
                started,
                message,
            } => write!(
                f,
                "taskrt: spawning worker {worker} failed after {started} workers \
                 started: {message}"
            ),
        }
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_display_carries_payload_and_chain() {
        let e = TaskError::Failed {
            label: "fft[3]".into(),
            chain: vec!["pack[3]".into(), "prep[3]".into()],
            message: "task exploded".into(),
        };
        let s = e.to_string();
        assert!(s.contains("task 'fft[3]'"));
        assert!(s.contains("task exploded"));
        assert!(s.contains("pack[3] <- prep[3]"));
    }

    #[test]
    fn timeout_display_names_the_wavefront() {
        let e = TaskError::Timeout {
            waited: Duration::from_millis(250),
            wavefront: "  running: stuck[0]".into(),
        };
        let s = e.to_string();
        assert!(s.contains("taskrt deadlock"));
        assert!(s.contains("stuck[0]"));
    }
}
