//! The planned execution engine: a per-group [`ExecPlan`] precomputing
//! every index map and dimension the kernel steps need (built once per
//! [`crate::problem::Problem`], reused by every iteration, band and
//! replay), and the reusable [`BufferArena`] the engines thread through
//! the hot loop so the steady state performs **zero heap allocations per
//! iteration** on the engine side.
//!
//! The split mirrors FFTW/FFTXlib's plan-once/execute-many contract:
//!
//! * **plan time** — wrap the z-gather/scatter tables of
//!   [`fftx_pw::TaskGroupLayout::index_maps`] (deposit/extract per member,
//!   xy-column offsets per peer group), resolve the padded-scatter chunk
//!   geometry, and intern the three 1-D FFT plans through
//!   [`fftx_fft::cached_plan`];
//! * **execute time** — every data-movement step is a flat table-driven
//!   copy between arena slices; buffers are grown once and then only
//!   rewritten.
//!
//! Scatter-chunk padding (`chunk = max_nst * max_npp` per peer, like QE's
//! `fft_scatter`) is *never read* by the unpack steps, so a reused scatter
//! buffer legitimately carries stale padding. Set `FFTX_ARENA_POISON=1` to
//! NaN-fill the scatter staging buffers before each pack: if any consumer
//! ever read a padding slot the NaNs would propagate into the bands and the
//! golden bitwise suite would fail.

use crate::config::Decomposition;
use fftx_fft::{cached_plan, Complex64, Fft};
use fftx_pw::{FftGrid, GroupIndexMaps, ProcessGrid, TaskGroupLayout};
use std::sync::Arc;
use std::sync::OnceLock;

/// True when `FFTX_ARENA_POISON=1`: poison reused scatter staging buffers
/// with NaNs to prove the padding slots are dead (read once, cached).
pub fn arena_poison() -> bool {
    static POISON: OnceLock<bool> = OnceLock::new();
    *POISON.get_or_init(|| std::env::var("FFTX_ARENA_POISON").is_ok_and(|v| v == "1"))
}

const POISON_VALUE: Complex64 = Complex64 {
    re: f64::NAN,
    im: f64::NAN,
};

/// Precomputed tables of the pencil lowering of the scatter exchange: the
/// p1 × p2 factorisation of the scatter family and the chunk staging
/// permutation that makes the two-phase (row, then column) transpose land
/// its receive buffer in slab order. `None` on a slab plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PencilTables {
    /// The p1 × p2 process grid over the scatter family.
    pub pgrid: ProcessGrid,
    /// Staging slot of the chunk destined to family-rank `gp`
    /// (`pgrid.chunk_pos(gp)`, precomputed flat).
    pub chunk_pos: Vec<usize>,
}

impl PencilTables {
    /// Tables for a scatter family of `r` ranks.
    pub fn for_family(r: usize) -> Self {
        let pgrid = ProcessGrid::factor(r);
        PencilTables {
            pgrid,
            chunk_pos: (0..r).map(|gp| pgrid.chunk_pos(gp)).collect(),
        }
    }
}

/// Everything static about one task group's pipeline, computed once:
/// dimensions, flat index maps, chunk geometry and interned FFT plans.
pub struct ExecPlan {
    /// The task group this plan serves.
    pub g: usize,
    /// Number of task groups (= scatter family size).
    pub r: usize,
    /// Members per task group (= pack family size).
    pub t: usize,
    /// Dense grid dimensions.
    pub grid: FftGrid,
    /// Sticks owned by the group (`U_g`).
    pub nst: usize,
    /// Planes owned by the group.
    pub npp: usize,
    /// First owned global plane (`plane_range(g).0`).
    pub z0: usize,
    /// Elements per xy plane (`nr1 * nr2`).
    pub plane: usize,
    /// Padded per-peer scatter chunk (`max_nst * max_npp`).
    pub chunk: usize,
    /// Plane padding stride inside a chunk.
    pub max_npp: usize,
    /// Total coefficients of the group (`ngw_group(g)`).
    pub ngw_group: usize,
    /// Plane ranges of *all* groups (the scatter peers).
    pub plane_range: Vec<(usize, usize)>,
    /// Flat gather/scatter tables (deposit/extract, xy columns).
    pub maps: GroupIndexMaps,
    /// Interned 1-D plan along x.
    pub x: Arc<Fft>,
    /// Interned 1-D plan along y.
    pub y: Arc<Fft>,
    /// Interned 1-D plan along z.
    pub z: Arc<Fft>,
    /// Pencil-lowering tables (`None` = slab).
    pub pencil: Option<PencilTables>,
}

impl ExecPlan {
    /// Plans task group `g` of `l` under the slab decomposition.
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        Self::for_layout_decomp(l, g, Decomposition::Slab)
    }

    /// Plans task group `g` of `l` under `decomp`: precomputes the index
    /// maps (and, for pencil, the staging permutation) and interns the FFT
    /// plans. Build once, execute many.
    pub fn for_layout_decomp(l: &TaskGroupLayout, g: usize, decomp: Decomposition) -> Self {
        let grid = l.grid;
        ExecPlan {
            g,
            r: l.r,
            t: l.t,
            grid,
            nst: l.nst_group(g),
            npp: l.npp(g),
            z0: l.plane_range[g].0,
            plane: grid.nr1 * grid.nr2,
            chunk: l.max_nst_group() * l.max_npp(),
            max_npp: l.max_npp(),
            ngw_group: l.ngw_group(g),
            plane_range: l.plane_range.clone(),
            maps: l.index_maps(g),
            x: cached_plan(grid.nr1),
            y: cached_plan(grid.nr2),
            z: cached_plan(grid.nr3),
            pencil: match decomp {
                Decomposition::Slab => None,
                Decomposition::Pencil => Some(PencilTables::for_family(l.r)),
            },
        }
    }

    /// The decomposition this plan was lowered for.
    pub fn decomp(&self) -> Decomposition {
        if self.pencil.is_some() {
            Decomposition::Pencil
        } else {
            Decomposition::Slab
        }
    }

    /// Staging slot of the chunk destined to family-rank `gp`: `gp` under
    /// slab, the pencil permutation otherwise.
    fn chunk_slot(&self, gp: usize) -> usize {
        self.pencil.as_ref().map_or(gp, |p| p.chunk_pos[gp])
    }

    /// z-stick buffer length (`nst * nr3`).
    pub fn zbuf_len(&self) -> usize {
        self.nst * self.grid.nr3
    }

    /// Plane slab length (`npp * nr1 * nr2`).
    pub fn planes_len(&self) -> usize {
        self.npp * self.plane
    }

    /// Scatter staging buffer length (`r * chunk`).
    pub fn scatter_len(&self) -> usize {
        self.r * self.chunk
    }

    /// Coefficients member `j` contributes (`ngw_rank(g*t + j)`).
    pub fn ngw_member(&self, j: usize) -> usize {
        self.maps.member_offsets[j + 1] - self.maps.member_offsets[j]
    }

    /// PsiPrep: (re)size both work buffers and zero them — exactly the
    /// state a fresh allocation would have, without the allocation.
    pub fn prep(&self, zbuf: &mut Vec<Complex64>, planes: &mut Vec<Complex64>) {
        zbuf.clear();
        zbuf.resize(self.zbuf_len(), Complex64::ZERO);
        planes.clear();
        planes.resize(self.planes_len(), Complex64::ZERO);
    }

    /// Deposits the member-major coefficient stream (the flat pack receive:
    /// member 0's share, then member 1's, …) into the z-stick buffer via
    /// the precomputed table. The buffer must be prep-zeroed.
    pub fn deposit_stream(&self, stream: &[Complex64], zbuf: &mut [Complex64]) {
        assert_eq!(stream.len(), self.ngw_group, "deposit_stream: stream length");
        assert_eq!(zbuf.len(), self.zbuf_len(), "deposit_stream: zbuf size");
        for (&ix, &v) in self.maps.deposit.iter().zip(stream) {
            zbuf[ix as usize] = v;
        }
    }

    /// Deposits one member's share into the z-stick buffer (the `j`-slice
    /// of [`ExecPlan::deposit_stream`]).
    pub fn deposit_member(&self, j: usize, share: &[Complex64], zbuf: &mut [Complex64]) {
        assert_eq!(zbuf.len(), self.zbuf_len(), "deposit_member: zbuf size");
        let table = &self.maps.deposit[self.maps.member_offsets[j]..self.maps.member_offsets[j + 1]];
        assert_eq!(share.len(), table.len(), "deposit_member: share {j} length");
        for (&ix, &v) in table.iter().zip(share) {
            zbuf[ix as usize] = v;
        }
    }

    /// Inverse of [`ExecPlan::deposit_stream`]: gathers the member-major
    /// stream out of the z-stick buffer into `out` (reusing its capacity)
    /// and the per-member counts into `counts` — together the flat unpack
    /// send list.
    pub fn extract_stream(
        &self,
        zbuf: &[Complex64],
        out: &mut Vec<Complex64>,
        counts: &mut Vec<usize>,
    ) {
        assert_eq!(zbuf.len(), self.zbuf_len(), "extract_stream: zbuf size");
        out.clear();
        out.extend(self.maps.deposit.iter().map(|&ix| zbuf[ix as usize]));
        counts.clear();
        counts.extend((0..self.t).map(|j| self.ngw_member(j)));
    }

    /// Gathers one member's share out of the z-stick buffer into `out`
    /// (reusing its capacity).
    pub fn extract_member(&self, j: usize, zbuf: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(zbuf.len(), self.zbuf_len(), "extract_member: zbuf size");
        let table = &self.maps.deposit[self.maps.member_offsets[j]..self.maps.member_offsets[j + 1]];
        out.clear();
        out.extend(table.iter().map(|&ix| zbuf[ix as usize]));
    }

    /// Grows a scatter staging buffer to `r * chunk` on first use (padding
    /// zeroed) and NaN-poisons it when `FFTX_ARENA_POISON=1`. Stale padding
    /// on reuse is deliberate: the unpack steps never read those slots.
    fn ensure_scatter(&self, buf: &mut Vec<Complex64>) {
        if buf.len() != self.scatter_len() {
            buf.clear();
            buf.resize(self.scatter_len(), Complex64::ZERO);
        }
        if arena_poison() {
            buf.fill(POISON_VALUE);
        }
    }

    /// Builds the padded forward-scatter send buffer in `send`: the chunk
    /// for peer `g'` holds this group's sticks restricted to `g'`'s plane
    /// range, laid out `[stick][local z]` with stride `max_npp`. Under the
    /// pencil lowering the chunk sits at the staging slot the two-phase
    /// exchange expects instead of slot `g'`.
    pub fn scatter_pack(&self, zbuf: &[Complex64], send: &mut Vec<Complex64>) {
        let nr3 = self.grid.nr3;
        assert_eq!(zbuf.len(), self.zbuf_len(), "scatter_pack: zbuf size");
        self.ensure_scatter(send);
        for gp in 0..self.r {
            let (gz0, gz1) = self.plane_range[gp];
            let base = self.chunk_slot(gp) * self.chunk;
            for s in 0..self.nst {
                let col = s * nr3;
                let dst = base + s * self.max_npp;
                send[dst..dst + (gz1 - gz0)].copy_from_slice(&zbuf[col + gz0..col + gz1]);
            }
        }
    }

    /// Deposits the forward-scatter receive buffer into the plane slab via
    /// the precomputed xy-column table: peer `g'`'s chunk carries the
    /// sticks of `U_{g'}` over this group's planes.
    pub fn scatter_unpack_to_planes(&self, recv: &[Complex64], planes: &mut [Complex64]) {
        assert_eq!(recv.len(), self.scatter_len(), "scatter_unpack: recv size");
        assert_eq!(planes.len(), self.planes_len(), "scatter_unpack: planes size");
        for gp in 0..self.r {
            let base = gp * self.chunk;
            for (si, &at) in self.maps.plane_cols[gp].iter().enumerate() {
                let at = at as usize;
                let src = base + si * self.max_npp;
                for zl in 0..self.npp {
                    planes[zl * self.plane + at] = recv[src + zl];
                }
            }
        }
    }

    /// Inverse of [`ExecPlan::scatter_unpack_to_planes`]: extracts every
    /// peer's stick columns from the plane slab into the backward-scatter
    /// send buffer.
    pub fn planes_to_scatter(&self, planes: &[Complex64], send: &mut Vec<Complex64>) {
        assert_eq!(planes.len(), self.planes_len(), "planes_to_scatter: planes size");
        self.ensure_scatter(send);
        for gp in 0..self.r {
            let base = self.chunk_slot(gp) * self.chunk;
            for (si, &at) in self.maps.plane_cols[gp].iter().enumerate() {
                let at = at as usize;
                let dst = base + si * self.max_npp;
                for zl in 0..self.npp {
                    send[dst + zl] = planes[zl * self.plane + at];
                }
            }
        }
    }

    /// The mid-exchange restage of the pencil lowering: chunk-transposes
    /// the row-phase receive buffer into column-phase send order
    /// (`mid[(rp·p2 + c)·chunk] ← recv[(c·p1 + rp)·chunk]`), so that after
    /// the column exchange every rank holds chunks in plain source order —
    /// the slab order [`ExecPlan::scatter_unpack_to_planes`] and
    /// [`ExecPlan::zbuf_from_scatter`] expect.
    ///
    /// # Panics
    /// Panics on a slab plan, or when `recv` is not `r * chunk` long.
    pub fn pencil_restage(&self, recv: &[Complex64], mid: &mut Vec<Complex64>) {
        let tables = self.pencil.as_ref().expect("pencil_restage: slab plan");
        let (p1, p2) = (tables.pgrid.p1, tables.pgrid.p2);
        assert_eq!(recv.len(), self.scatter_len(), "pencil_restage: recv size");
        self.ensure_scatter(mid);
        for rp in 0..p1 {
            for c in 0..p2 {
                let dst = (rp * p2 + c) * self.chunk;
                let src = (c * p1 + rp) * self.chunk;
                mid[dst..dst + self.chunk].copy_from_slice(&recv[src..src + self.chunk]);
            }
        }
    }

    /// Inverse of [`ExecPlan::scatter_pack`]: rebuilds the z-stick buffer
    /// from the backward-scatter receive buffer.
    pub fn zbuf_from_scatter(&self, recv: &[Complex64], zbuf: &mut [Complex64]) {
        let nr3 = self.grid.nr3;
        assert_eq!(recv.len(), self.scatter_len(), "zbuf_from_scatter: recv size");
        assert_eq!(zbuf.len(), self.zbuf_len(), "zbuf_from_scatter: zbuf size");
        for gp in 0..self.r {
            let (gz0, gz1) = self.plane_range[gp];
            let base = gp * self.chunk;
            for s in 0..self.nst {
                let col = s * nr3;
                let src = base + s * self.max_npp;
                zbuf[col + gz0..col + gz1].copy_from_slice(&recv[src..src + (gz1 - gz0)]);
            }
        }
    }
}

/// The per-rank (per-worker, in task modes) buffer arena: every scratch
/// and staging buffer of the pipeline, owned in one place and reused
/// across iterations, bands and replays. All buffers start empty and are
/// grown by their first use; after that warmup the engine side of an
/// iteration performs no heap allocation (the transport's internal staging
/// copy — the stand-in for the NIC — is the one deliberate exception, see
/// DESIGN.md §12).
#[derive(Default)]
pub struct BufferArena {
    /// z-stick buffer (`nst * nr3`).
    pub zbuf: Vec<Complex64>,
    /// Plane slab (`npp * nr1 * nr2`).
    pub planes: Vec<Complex64>,
    /// FFT butterfly scratch.
    pub scratch: Vec<Complex64>,
    /// y-column gather buffer of the xy transform.
    pub col: Vec<Complex64>,
    /// Flat per-band-share staging: pack send / unpack receive
    /// (`t * ngw_rank`).
    pub sharebuf: Vec<Complex64>,
    /// Flat group-stream staging: pack receive / unpack send
    /// (`ngw_group`).
    pub groupbuf: Vec<Complex64>,
    /// Send-count scratch of the pack/unpack `alltoallv`.
    pub counts: Vec<usize>,
    /// Receive-count scratch of the pack/unpack `alltoallv`.
    pub recv_counts: Vec<usize>,
    /// Padded scatter send staging (`r * chunk`).
    pub scatter_send: Vec<Complex64>,
    /// Padded scatter receive buffer (`r * chunk`).
    pub scatter_recv: Vec<Complex64>,
    /// Mid-exchange restage buffer of the pencil lowering (`r * chunk`;
    /// stays empty under slab).
    pub pencil_mid: Vec<Complex64>,
}

impl BufferArena {
    /// An empty arena; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steps;
    use fftx_fft::c64;
    use fftx_pw::{Cell, GSphere, StickSet, DUAL};

    fn layout(r: usize, t: usize) -> TaskGroupLayout {
        let cell = Cell::cubic(7.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 6.0);
        let sphere = GSphere::generate(&cell, 6.0, &grid);
        let set = StickSet::build(&sphere, &grid);
        TaskGroupLayout::new(grid, set, r, t)
    }

    fn marked_share(l: &TaskGroupLayout, rank: usize, band: usize) -> Vec<Complex64> {
        (0..l.ngw_rank(rank))
            .map(|n| c64(band as f64 * 1e6 + rank as f64 * 1e3 + n as f64, 1.0))
            .collect()
    }

    #[test]
    fn plan_dimensions_match_layout() {
        let l = layout(3, 2);
        for g in 0..l.r {
            let p = ExecPlan::for_layout(&l, g);
            assert_eq!(p.zbuf_len(), l.nst_group(g) * l.grid.nr3);
            assert_eq!(p.planes_len(), l.npp(g) * l.grid.nr1 * l.grid.nr2);
            assert_eq!(p.chunk, steps::scatter_chunk_len(&l));
            assert_eq!(p.ngw_group, l.ngw_group(g));
            let total: usize = (0..p.t).map(|j| p.ngw_member(j)).sum();
            assert_eq!(total, p.ngw_group);
        }
    }

    #[test]
    fn plan_deposit_extract_match_layout_walk() {
        let l = layout(2, 3);
        let g = 1;
        let plan = ExecPlan::for_layout(&l, g);
        // Reference: the layout-arithmetic deposit of steps.rs.
        let shares: Vec<Vec<Complex64>> = (0..l.t)
            .map(|j| marked_share(&l, g * l.t + j, 7))
            .collect();
        let mut want = vec![Complex64::ZERO; plan.zbuf_len()];
        for (j, s) in shares.iter().enumerate() {
            steps::deposit_member_share(&l, g, j, s, &mut want);
        }
        // Plan path: flat member-major stream through the table.
        let stream: Vec<Complex64> = shares.iter().flatten().copied().collect();
        let mut zbuf = Vec::new();
        let mut planes = Vec::new();
        plan.prep(&mut zbuf, &mut planes);
        plan.deposit_stream(&stream, &mut zbuf);
        assert_eq!(zbuf, want);
        // Extraction is the exact inverse, member by member and flat.
        let mut out = Vec::new();
        for (j, s) in shares.iter().enumerate() {
            plan.extract_member(j, &zbuf, &mut out);
            assert_eq!(&out, s, "member {j}");
        }
        let mut counts = Vec::new();
        plan.extract_stream(&zbuf, &mut out, &mut counts);
        assert_eq!(out, stream);
        let want_counts: Vec<usize> = shares.iter().map(Vec::len).collect();
        assert_eq!(counts, want_counts);
    }

    #[test]
    fn plan_scatter_matches_steps_reference() {
        let l = layout(3, 2);
        let g = 2;
        let plan = ExecPlan::for_layout(&l, g);
        let zbuf: Vec<Complex64> = (0..plan.zbuf_len())
            .map(|n| c64(n as f64, -(n as f64)))
            .collect();
        let want = steps::scatter_pack(&l, g, &zbuf);
        let mut send = Vec::new();
        plan.scatter_pack(&zbuf, &mut send);
        assert_eq!(send, want);
        // Echoed chunks rebuild the z buffer (same shape both ways).
        let mut back = vec![Complex64::ZERO; zbuf.len()];
        plan.zbuf_from_scatter(&send, &mut back);
        assert_eq!(back, zbuf);
        // Plane deposit/extract agree with the reference too.
        let mut planes = vec![Complex64::ZERO; plan.planes_len()];
        let mut want_planes = planes.clone();
        plan.scatter_unpack_to_planes(&send, &mut planes);
        steps::scatter_unpack_to_planes(&l, g, &send, &mut want_planes);
        assert_eq!(planes, want_planes);
        let want_bw = steps::planes_to_scatter_sends(&l, g, &planes);
        let mut bw = Vec::new();
        plan.planes_to_scatter(&planes, &mut bw);
        // The reference zeroes its padding each call; the plan only
        // guarantees the *read* slots. Compare those.
        for gp in 0..l.r {
            for (si, _) in l.group_sticks[gp].iter().enumerate() {
                for zl in 0..l.npp(g) {
                    let at = gp * plan.chunk + si * plan.max_npp + zl;
                    assert_eq!(bw[at], want_bw[at]);
                }
            }
        }
    }

    /// Emulates one alltoall over a `members`-sized family: every rank's
    /// block `m` of `send` lands as block `me` of member `m`'s receive.
    fn emulate_alltoall(sends: &[Vec<Complex64>], members: usize) -> Vec<Vec<Complex64>> {
        let total = sends[0].len();
        let block = total / members;
        (0..members)
            .map(|me| {
                let mut recv = vec![Complex64::ZERO; total];
                for (m, s) in sends.iter().enumerate() {
                    recv[m * block..(m + 1) * block]
                        .copy_from_slice(&s[me * block..(me + 1) * block]);
                }
                recv
            })
            .collect()
    }

    #[test]
    fn pencil_two_phase_reproduces_slab_exchange() {
        // Full-family emulation: pack every group's zbuf under both
        // lowerings, run the slab alltoall vs the row exchange + restage +
        // column exchange, and require the final receive buffers to be
        // identical in every *read* slot — the bitwise-identity argument
        // of DESIGN.md §18, checked at the table level.
        for (r, t) in [(4usize, 1usize), (6, 1), (3, 2)] {
            let l = layout(r, t);
            let slab: Vec<ExecPlan> = (0..r).map(|g| ExecPlan::for_layout(&l, g)).collect();
            let pencil: Vec<ExecPlan> = (0..r)
                .map(|g| ExecPlan::for_layout_decomp(&l, g, Decomposition::Pencil))
                .collect();
            let pgrid = pencil[0].pencil.as_ref().unwrap().pgrid;
            let (p1, p2) = (pgrid.p1, pgrid.p2);
            let zbufs: Vec<Vec<Complex64>> = (0..r)
                .map(|g| {
                    (0..slab[g].zbuf_len())
                        .map(|n| c64(g as f64 * 1e6 + n as f64, n as f64))
                        .collect()
                })
                .collect();
            // Slab: one full-family exchange.
            let mut slab_sends = Vec::new();
            for g in 0..r {
                let mut s = Vec::new();
                slab[g].scatter_pack(&zbufs[g], &mut s);
                slab_sends.push(s);
            }
            let slab_recv = emulate_alltoall(&slab_sends, r);
            // Pencil: row exchange (family index g has row g/p2, col g%p2;
            // row peers are contiguous), restage, column exchange (column
            // peers are strided by p2).
            let mut pen_sends = Vec::new();
            for g in 0..r {
                let mut s = Vec::new();
                pencil[g].scatter_pack(&zbufs[g], &mut s);
                pen_sends.push(s);
            }
            let mut pen_recv = vec![Vec::new(); r];
            for row in 0..p1 {
                let family: Vec<Vec<Complex64>> =
                    (0..p2).map(|c| pen_sends[row * p2 + c].clone()).collect();
                for (c, recv) in emulate_alltoall(&family, p2).into_iter().enumerate() {
                    pen_recv[row * p2 + c] = recv;
                }
            }
            let mut mids = Vec::new();
            for g in 0..r {
                let mut mid = Vec::new();
                pencil[g].pencil_restage(&pen_recv[g], &mut mid);
                mids.push(mid);
            }
            let mut pen_final = vec![Vec::new(); r];
            for col in 0..p2 {
                let family: Vec<Vec<Complex64>> =
                    (0..p1).map(|rp| mids[rp * p2 + col].clone()).collect();
                for (rp, recv) in emulate_alltoall(&family, p1).into_iter().enumerate() {
                    pen_final[rp * p2 + col] = recv;
                }
            }
            // Compare the read slots of every chunk (padding may differ).
            for g in 0..r {
                for gp in 0..r {
                    for s in 0..l.nst_group(gp) {
                        let npp = l.npp(g);
                        let at = gp * slab[g].chunk + s * slab[g].max_npp;
                        assert_eq!(
                            &pen_final[g][at..at + npp],
                            &slab_recv[g][at..at + npp],
                            "r={r} t={t} rank {g} chunk {gp} stick {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn arena_reuse_is_stable_across_rounds() {
        // Re-running the same movement through a warm arena must reproduce
        // the first round bit for bit (stale padding notwithstanding).
        let l = layout(2, 2);
        let g = 0;
        let plan = ExecPlan::for_layout(&l, g);
        let shares: Vec<Vec<Complex64>> = (0..l.t)
            .map(|j| marked_share(&l, g * l.t + j, 3))
            .collect();
        let stream: Vec<Complex64> = shares.iter().flatten().copied().collect();
        let mut a = BufferArena::new();
        let mut first: Option<(Vec<Complex64>, Vec<Complex64>)> = None;
        for _ in 0..3 {
            plan.prep(&mut a.zbuf, &mut a.planes);
            plan.deposit_stream(&stream, &mut a.zbuf);
            plan.scatter_pack(&a.zbuf, &mut a.scatter_send);
            // Loopback: every peer echoes our chunk layout.
            a.scatter_recv.clear();
            a.scatter_recv.extend_from_slice(&a.scatter_send);
            plan.scatter_unpack_to_planes(&a.scatter_recv, &mut a.planes);
            plan.planes_to_scatter(&a.planes, &mut a.scatter_send);
            let mut counts = Vec::new();
            let mut out = Vec::new();
            plan.extract_stream(&a.zbuf, &mut out, &mut counts);
            match &first {
                None => first = Some((a.planes.clone(), out)),
                Some((p0, o0)) => {
                    assert_eq!(&a.planes, p0);
                    assert_eq!(&out, o0);
                }
            }
        }
    }
}
