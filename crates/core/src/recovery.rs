//! The self-healing execution engine: recovery mechanisms layered on the
//! typed error surface of `fftx-vmpi` and `fftx-taskrt`, so that injected
//! fatal faults no longer abort a run — they cost time, never answers.
//!
//! Three mechanisms, in escalation order:
//!
//! 1. **Task re-execution** ([`run_retry`]): band tasks are submitted with
//!    [`fftx_taskrt::Runtime::spawn_retryable`] — a panicking body is
//!    re-executed in place after a bounded exponential backoff. Sound
//!    because the band bodies are idempotent over their input snapshot:
//!    they read the band share, compute into the worker's arena (whose
//!    work buffers the prep step re-zeroes on every attempt), and
//!    write the share last. Injected crashes fire *before* the band's
//!    first collective, so a replay performs each collective exactly once
//!    in total and peers only observe added latency (a fault after a
//!    collective would desynchronise the matching sequence numbers — that
//!    class escalates through the watchdog instead).
//! 2. **Band-batch checkpoint/rollback** ([`run_rollback`]): the original
//!    pipeline snapshots each batch's input shares at the iteration
//!    boundary; a collective that times out mid-batch surfaces as a typed
//!    [`VmpiError`], the batch is rolled back to the checkpoint and
//!    replayed, up to [`RecoveryConfig::max_rollbacks`] times.
//! 3. **Rank eviction with layout re-planning** ([`run_eviction`]): a rank
//!    that dies at a batch boundary is evicted; survivors shrink the world
//!    communicator ([`fftx_vmpi::Communicator::shrink`]), re-factorise
//!    R×T over the surviving rank count ([`fftx_pw::factorise_rt`]),
//!    rebuild the stick/plane distribution, and redistribute every band —
//!    including the victim's sticks, recovered from its ring buddy's
//!    checkpoints — onto the re-planned layout, then finish the run.
//!
//! **Consistency without agreement.** Every injected fatal fault is a pure
//! function of `(seed, logical key, attempt)` — never of rank identity or
//! wall time — so all ranks reach identical retry/rollback/eviction
//! decisions and the per-communicator collective sequence counters stay
//! aligned across replays with no agreement protocol. A production runtime
//! would run a watchdog-agreement round at each decision point; the
//! deterministic plan is the stand-in that keeps the experiments
//! reproducible (DESIGN.md §11).
//!
//! **Bitwise identity.** Recovery must not change the answer. The z-FFTs
//! are per-stick, the xy-FFTs per-plane, and VOFR point-wise — none of the
//! arithmetic depends on which rank owns a stick or plane, so replays and
//! re-planned layouts move data differently but compute identical bits.
//! The tests (and the `recovery` bench harness) pin this down against
//! fault-free baselines.

use crate::config::Mode;
use crate::original::{finish_run, RunOutput};
use crate::plan::BufferArena;
use crate::problem::Problem;
use crate::recorder::Recorder;
use crate::stages::{ScatterComms, StagePlan};
use fftx_fault::{BatchAborts, RankDeath, RecoveryConfig, TaskCrashes};
use fftx_fft::Complex64;
use fftx_pw::{
    assemble_shares, extract_share, factorise_rt, StickDist, StickSet, TaskGroupLayout,
};
use fftx_taskrt::{RetryPolicy, Runtime, Shared, TaskError};
use fftx_trace::TraceSink;
use fftx_vmpi::{Communicator, VmpiError, World};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Base tag of the buddy-checkpoint point-to-point messages (one tag per
/// batch; distinct communicators keep phases apart).
const CKPT_TAG_BASE: u32 = 100;
/// Tag of the per-band redistribution `alltoallv` after an eviction.
const REDIST_TAG: u32 = 7;

/// What the recovery layer did during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Task re-executions absorbed by the runtimes (mechanism 1).
    pub task_retries: u64,
    /// Band batches rolled back to their checkpoint and replayed
    /// (mechanism 2; counted once per rank-symmetric rollback).
    pub batch_rollbacks: u64,
    /// Ranks evicted from the world (mechanism 3).
    pub evictions: u64,
    /// World ranks that were evicted.
    pub evicted_ranks: Vec<usize>,
    /// R×T layout before recovery.
    pub layout_before: (usize, usize),
    /// R×T layout after re-planning (equal to `layout_before` when no rank
    /// was evicted).
    pub layout_after: (usize, usize),
    /// Bytes of checkpoint state written (batch snapshots and buddy
    /// copies), summed over ranks — the raw material of the recovery
    /// overhead model in `fftx-knlsim`.
    pub checkpoint_bytes: u64,
}

// The shared batch runner lives in the stage graph now:
// [`crate::stages::StageRunner::band_batch`] is the fallible replay unit
// (prep, collective pack, transform, collective unpack) and
// [`crate::stages::StageRunner::band_fused`] the idempotent per-band task
// body — one implementation for the engines and the recovery layer alike.

// ---------------------------------------------------------------------
// Mechanism 1: task re-execution
// ---------------------------------------------------------------------

/// Runs the task-per-FFT engine with retryable band tasks: transient task
/// crashes (injected by `crashes`, keyed by `(rank, band)`) are absorbed by
/// in-place re-execution under the retry budget of `recovery`; exhaustion
/// escalates to the usual typed [`TaskError`]. Returns the run output and
/// the recovery accounting.
pub fn run_retry(
    problem: &Arc<Problem>,
    crashes: Option<TaskCrashes>,
    recovery: &RecoveryConfig,
) -> Result<(RunOutput, RecoveryStats), TaskError> {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::TaskPerFft),
        "run_retry: config mode must be TaskPerFft"
    );
    let policy = RetryPolicy {
        max_retries: recovery.max_retries,
        base_backoff: recovery.base_backoff,
        max_backoff: recovery.max_backoff,
    };
    let sink = TraceSink::new();
    let world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    let results = world.run(|comm| rank_retry(problem, comm, crashes, policy));
    let mut plain = Vec::with_capacity(results.len());
    let mut retries = 0u64;
    for r in results {
        let (shares, span, n) = r?;
        retries += n;
        plain.push((shares, span));
    }
    sink.counter("recovery.retries", retries);
    let out = finish_run(problem, sink, plain);
    let stats = RecoveryStats {
        task_retries: retries,
        layout_before: (problem.layout.r, problem.layout.t),
        layout_after: (problem.layout.r, problem.layout.t),
        ..Default::default()
    };
    Ok((out, stats))
}

type RankShares = Vec<Vec<Complex64>>;

fn rank_retry(
    problem: &Arc<Problem>,
    comm: &Communicator,
    crashes: Option<TaskCrashes>,
    policy: RetryPolicy,
) -> Result<(RankShares, f64, u64), TaskError> {
    let cfg = problem.config;
    let w = comm.rank();
    let g = w; // layout has t = 1: every rank is its own task group
    let sp = Arc::new(StagePlan::for_problem(problem, g));
    // Collective: every rank constructs the scatter communicator set (and,
    // under the pencil decomposition, its row/column sub-communicators)
    // before any task runs.
    let sc = Arc::new(ScatterComms::new(comm.clone(), cfg.decomp));
    let arenas: Arc<Vec<Shared<BufferArena>>> = Arc::new(
        (0..cfg.ntg).map(|_| Shared::new(BufferArena::new())).collect(),
    );
    let shares: Vec<Shared<Vec<Complex64>>> = problem
        .initial_shares(w)
        .into_iter()
        .map(Shared::new)
        .collect();

    let mut builder = Runtime::builder(cfg.ntg).clock(comm.clock()).rank(w);
    if let Some(sink) = comm.trace_sink() {
        builder = builder.trace(sink);
    }
    let rt = builder.build();

    comm.barrier();
    let t_start = comm.now();
    for (b, share) in shares.iter().enumerate() {
        let problem = Arc::clone(problem);
        let comm = comm.clone();
        let sp = Arc::clone(&sp);
        let sc = Arc::clone(&sc);
        let arenas = Arc::clone(&arenas);
        let share = share.clone();
        let attempts = Arc::new(AtomicU32::new(0));
        // The fault key of this rank's task for band b. Crashes are local
        // decisions (no collective state is consumed before the injection
        // point), so unlike batch aborts they need no cross-rank symmetry.
        let key = ((w as u64) << 32) | b as u64;
        rt.spawn_retryable(
            &format!("fft-band-{b}"),
            Some(b as u64),
            &[share.dep_inout()],
            policy,
            move || {
                let attempt = attempts.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = crashes {
                    if c.should_crash(key, attempt) {
                        panic!("injected transient task fault (band {b}, attempt {attempt})");
                    }
                }
                // Idempotent over the input snapshot: band_fused reads the
                // share, computes into the worker's arena (prep re-zeroes
                // its work buffers on every attempt), writes the share last.
                let rec = Recorder::new(comm.trace_sink(), comm.clock(), comm.rank());
                let runner = sp.runner(&problem.v, &rec);
                let mut guard = arenas[fftx_trace::current_thread()].write();
                runner
                    .band_fused(b, &sc, &share, &mut guard)
                    .unwrap_or_else(|e| panic!("{e}"));
            },
        );
    }
    let waited = rt.try_taskwait();
    if waited.is_ok() {
        comm.barrier();
    }
    let t_end = comm.now();
    let retries = rt.retries();
    let shutdown = rt.try_shutdown();
    waited?;
    shutdown?;
    let shares = shares
        .into_iter()
        .map(|s| s.try_unwrap().ok().expect("share uniquely owned after taskwait"))
        .collect();
    Ok((shares, t_end - t_start, retries))
}

// ---------------------------------------------------------------------
// Mechanism 2: band-batch checkpoint / rollback
// ---------------------------------------------------------------------

/// Runs the original pipeline with per-batch checkpointing: each iteration
/// snapshots the batch's input shares at the step boundary; a collective
/// timeout (injected by `aborts`, keyed by batch index — symmetric on every
/// rank) rolls the batch back to the checkpoint and replays it, up to
/// [`RecoveryConfig::max_rollbacks`] times before the error escalates.
pub fn run_rollback(
    problem: &Arc<Problem>,
    aborts: Option<BatchAborts>,
    recovery: &RecoveryConfig,
) -> Result<(RunOutput, RecoveryStats), VmpiError> {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::Original),
        "run_rollback: config mode must be Original"
    );
    let sink = TraceSink::new();
    let world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    let results = world.run(|comm| rank_rollback(problem, comm, aborts, recovery));
    let mut plain = Vec::with_capacity(results.len());
    let mut rollbacks = 0u64;
    let mut ckpt_bytes = 0u64;
    for r in results {
        let (shares, span, n, bytes) = r?;
        // Rollback decisions are rank-symmetric; count each once.
        rollbacks = rollbacks.max(n);
        ckpt_bytes += bytes;
        plain.push((shares, span));
    }
    sink.counter("recovery.rollbacks", rollbacks);
    sink.counter("recovery.checkpoint_bytes", ckpt_bytes);
    let out = finish_run(problem, sink, plain);
    let stats = RecoveryStats {
        batch_rollbacks: rollbacks,
        checkpoint_bytes: ckpt_bytes,
        layout_before: (problem.layout.r, problem.layout.t),
        layout_after: (problem.layout.r, problem.layout.t),
        ..Default::default()
    };
    Ok((out, stats))
}

fn rank_rollback(
    problem: &Arc<Problem>,
    comm: &Communicator,
    aborts: Option<BatchAborts>,
    recovery: &RecoveryConfig,
) -> Result<(RankShares, f64, u64, u64), VmpiError> {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let g = l.task_group_of(w);
    let i = l.member_of(w);
    let t = l.t;
    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = ScatterComms::new(comm.split(i as u64, g), cfg.decomp);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let sp = StagePlan::for_problem(problem, g);
    let runner = sp.runner(&problem.v, &rec);
    let mut shares = problem.initial_shares(w);
    let mut arena = BufferArena::new();
    let mut rollbacks = 0u64;
    let mut ckpt_bytes = 0u64;

    comm.barrier();
    let t_start = comm.now();
    for k in 0..cfg.iterations() {
        // Checkpoint cut at the step boundary: snapshot the batch's input
        // shares (everything a replay needs — the prep step re-zeroes the
        // arena's work buffers on every attempt).
        let checkpoint: Vec<Vec<Complex64>> =
            (0..t).map(|j| shares[k * t + j].clone()).collect();
        ckpt_bytes += checkpoint
            .iter()
            .map(|s| (s.len() * std::mem::size_of::<Complex64>()) as u64)
            .sum::<u64>();
        let mut attempt = 0u32;
        loop {
            let inject = aborts.is_some_and(|a| a.should_abort(k as u64, attempt));
            match runner.band_batch(
                k * t,
                &pack_comm,
                &scatter_comm,
                &mut shares,
                &mut arena,
                inject,
            ) {
                Ok(()) => break,
                Err(e) => {
                    if attempt >= recovery.max_rollbacks {
                        return Err(e);
                    }
                    // Roll back: restore the batch's input shares and
                    // replay. The abort decision is a pure function of
                    // (seed, batch, attempt), so every rank replays in
                    // lockstep and the collective sequence counters stay
                    // aligned.
                    for (j, c) in checkpoint.iter().enumerate() {
                        shares[k * t + j] = c.clone();
                    }
                    rollbacks += 1;
                    attempt += 1;
                }
            }
        }
    }
    comm.try_barrier()?;
    let t_end = comm.now();
    Ok((shares, t_end - t_start, rollbacks, ckpt_bytes))
}

// ---------------------------------------------------------------------
// Mechanism 3: rank eviction + layout re-planning
// ---------------------------------------------------------------------

/// Survivor-side result of an eviction run.
struct EvictionOutcome {
    /// Rank in the shrunk world (also the rank in the re-planned stick
    /// distribution).
    shrunk_rank: usize,
    /// All band shares under the re-planned distribution.
    shares: RankShares,
    /// Buddy-checkpoint bytes this rank sent.
    ckpt_bytes: u64,
}

/// Runs the original pipeline through a rank death: `death.rank` stops at
/// the boundary of batch `death.batch`; the survivors evict it, shrink the
/// world, re-factorise R×T over the remaining ranks (preferring
/// [`RecoveryConfig::prefer_t`]), redistribute every band's sticks onto
/// the re-planned layout — the victim's state recovered from its ring
/// buddy's checkpoints (processed bands) and deterministic recomputation
/// (unprocessed bands) — and finish the run.
pub fn run_eviction(
    problem: &Arc<Problem>,
    death: RankDeath,
    recovery: &RecoveryConfig,
) -> Result<(RunOutput, RecoveryStats), VmpiError> {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::Original),
        "run_eviction: config mode must be Original"
    );
    let l = &problem.layout;
    let p = cfg.vmpi_ranks();
    assert!(death.rank < p, "run_eviction: dead rank {} out of range", death.rank);
    assert!(
        death.batch < cfg.iterations(),
        "run_eviction: rank dies after the run already ended"
    );
    let (r2, t2) = factorise_rt(p - 1, recovery.prefer_t);
    let done_bands = death.batch * l.t;
    assert!(
        (cfg.nbnd - done_bands).is_multiple_of(t2),
        "run_eviction: {} remaining bands not divisible by re-planned T = {t2}",
        cfg.nbnd - done_bands
    );
    let new_l = TaskGroupLayout::new(l.grid, l.set.clone(), r2, t2);
    new_l.validate();

    let sink = TraceSink::new();
    let world = World::new(p).with_trace(sink.clone());
    let results = world.run(|comm| rank_eviction(problem, comm, death, &new_l));

    let mut outcomes: Vec<EvictionOutcome> = Vec::with_capacity(p - 1);
    let mut fft_phase_s = 0.0_f64;
    for r in results {
        let (outcome, span) = r?;
        fft_phase_s = fft_phase_s.max(span);
        if let Some(o) = outcome {
            outcomes.push(o);
        }
    }
    assert_eq!(outcomes.len(), p - 1, "every survivor reports an outcome");
    outcomes.sort_by_key(|o| o.shrunk_rank);
    let ckpt_bytes = outcomes.iter().map(|o| o.ckpt_bytes).sum();
    sink.counter("recovery.evictions", 1);
    sink.counter("recovery.checkpoint_bytes", ckpt_bytes);
    let bands = (0..cfg.nbnd)
        .map(|b| {
            let shares: Vec<Vec<Complex64>> =
                outcomes.iter().map(|o| o.shares[b].clone()).collect();
            assemble_shares(&new_l.set, &new_l.dist, &shares)
        })
        .collect();
    let out = RunOutput {
        bands,
        trace: sink.finish(),
        fft_phase_s,
    };
    let stats = RecoveryStats {
        evictions: 1,
        evicted_ranks: vec![death.rank],
        layout_before: (l.r, l.t),
        layout_after: (r2, t2),
        checkpoint_bytes: ckpt_bytes,
        ..Default::default()
    };
    Ok((out, stats))
}

fn rank_eviction(
    problem: &Arc<Problem>,
    comm: &Communicator,
    death: RankDeath,
    new_l: &TaskGroupLayout,
) -> Result<(Option<EvictionOutcome>, f64), VmpiError> {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let p = comm.size();
    let g = l.task_group_of(w);
    let i = l.member_of(w);
    let t = l.t;
    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = ScatterComms::new(comm.split(i as u64, g), cfg.decomp);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let sp = StagePlan::for_problem(problem, g);
    let runner = sp.runner(&problem.v, &rec);
    let mut shares = problem.initial_shares(w);
    let mut arena = BufferArena::new();
    let mut ckpt_bytes = 0u64;
    let succ = (w + 1) % p;
    let pred = (w + p - 1) % p;
    // Buddy checkpoints received from the ring predecessor, keyed by batch.
    let mut stored: HashMap<usize, Vec<Complex64>> = HashMap::new();

    comm.barrier();
    let t_start = comm.now();

    // Phase 1: the original layout up to the death boundary, with buddy
    // checkpointing — after each batch, every rank sends its updated batch
    // shares to its ring successor, so each rank's processed state has an
    // off-rank copy that one failure cannot erase.
    for k in 0..death.batch {
        runner.band_batch(k * t, &pack_comm, &scatter_comm, &mut shares, &mut arena, false)?;
        let flat: Vec<Complex64> = (0..t)
            .flat_map(|j| shares[k * t + j].iter().copied())
            .collect();
        ckpt_bytes += (flat.len() * std::mem::size_of::<Complex64>()) as u64;
        comm.send(succ, CKPT_TAG_BASE + k as u32, flat);
        stored.insert(k, comm.try_recv(pred, CKPT_TAG_BASE + k as u32)?);
    }

    if w == death.rank {
        // The victim stops at the batch boundary, mid-run.
        return Ok((None, comm.now() - t_start));
    }

    // Survivors: evict, shrink, re-plan. Knowledge of the death is
    // symmetric (the deterministic fault plan stands in for the
    // watchdog-agreement round — DESIGN.md §11), so every survivor builds
    // the same shrunk communicator and re-planned layout locally, without
    // communication.
    let shrunk = comm.shrink(&[death.rank], 0);
    let me2 = shrunk.rank();
    let t2 = new_l.t;
    let done_bands = death.batch * t;

    // The victim's ring buddy reconstructs the victim's held state:
    // processed bands from the received checkpoints, unprocessed bands
    // recomputed from the deterministic problem.
    let buddy = (death.rank + 1) % p;
    let victim_shares: Option<RankShares> = if w == buddy {
        let vlen = l.ngw_rank(death.rank);
        Some(
            (0..cfg.nbnd)
                .map(|b| {
                    if b < done_bands {
                        let (kb, j) = (b / t, b % t);
                        let flat = &stored[&kb];
                        flat[j * vlen..(j + 1) * vlen].to_vec()
                    } else {
                        extract_share(&l.set, &l.dist, death.rank, &problem.band(b))
                    }
                })
                .collect(),
        )
    } else {
        None
    };

    // Redistribute every band from the old stick distribution to the
    // re-planned one: one alltoallv per band on the shrunk world, the
    // buddy acting as the victim's proxy.
    let new_owner = stick_owner(&new_l.dist, l.set.nst());
    let mut new_shares: RankShares = Vec::with_capacity(cfg.nbnd);
    for b in 0..cfg.nbnd {
        let mut held: Vec<(usize, &[Complex64])> = vec![(w, shares[b].as_slice())];
        if let Some(vs) = &victim_shares {
            held.push((death.rank, vs[b].as_slice()));
        }
        let sends = redistribution_sends(&l.set, &l.dist, &new_owner, &held, shrunk.size());
        let recv = shrunk.try_alltoallv(sends, REDIST_TAG)?;
        new_shares.push(deposit_redistributed(
            &l.set,
            &l.dist,
            &new_l.dist,
            &new_owner,
            me2,
            shrunk.members(),
            death.rank,
            buddy,
            &recv,
        ));
    }

    // Phase 2: the remaining batches under the re-planned R×T layout. The
    // single stage-graph re-plan ([`StagePlan::for_layout`]) covers every
    // scheduler policy (eviction is the one path where plans cannot be
    // precomputed — the layout is only known after the death); the arena is
    // reused, its buffers re-fitted to the new geometry.
    let g2 = new_l.task_group_of(me2);
    let i2 = new_l.member_of(me2);
    let pack2 = shrunk.split(g2 as u64, i2);
    let scat2 = ScatterComms::new(shrunk.split(i2 as u64, g2), cfg.decomp);
    let sp2 = StagePlan::for_layout_decomp(new_l, g2, cfg.decomp);
    let runner2 = sp2.runner(&problem.v, &rec);
    let p2 = shrunk.size();
    let rem_batches = (cfg.nbnd - done_bands) / t2;
    for kk in 0..rem_batches {
        let base = done_bands + kk * t2;
        runner2.band_batch(base, &pack2, &scat2, &mut new_shares, &mut arena, false)?;
        // Checkpointing continues on the survivor ring — a second eviction
        // is out of scope, but the steady-state traffic is part of the
        // overhead the experiment measures.
        let flat: Vec<Complex64> = (base..base + t2)
            .flat_map(|b| new_shares[b].iter().copied())
            .collect();
        ckpt_bytes += (flat.len() * std::mem::size_of::<Complex64>()) as u64;
        let tag = CKPT_TAG_BASE + (death.batch + kk) as u32;
        shrunk.send((me2 + 1) % p2, tag, flat);
        let _ = shrunk.try_recv::<Complex64>((me2 + p2 - 1) % p2, tag)?;
    }
    shrunk.try_barrier()?;
    let t_end = comm.now();
    Ok((
        Some(EvictionOutcome {
            shrunk_rank: me2,
            shares: new_shares,
            ckpt_bytes,
        }),
        t_end - t_start,
    ))
}

// ---------------------------------------------------------------------
// Redistribution helpers (pure)
// ---------------------------------------------------------------------

/// Old world ranks whose shares survivor `world` contributes to the
/// redistribution: its own, plus the victim's when it is the buddy.
fn held_old_ranks(world: usize, victim: usize, buddy: usize) -> Vec<usize> {
    if world == buddy {
        vec![world, victim]
    } else {
        vec![world]
    }
}

/// Maps stick id → owning rank index of `dist`.
fn stick_owner(dist: &StickDist, nst: usize) -> Vec<usize> {
    let mut owner = vec![usize::MAX; nst];
    for (r, sticks) in dist.per_rank.iter().enumerate() {
        for &s in sticks {
            owner[s] = r;
        }
    }
    debug_assert!(owner.iter().all(|&o| o != usize::MAX));
    owner
}

/// Builds the per-destination send list of the redistribution `alltoallv`:
/// each held old-rank share is walked in its old stick order and every
/// stick's coefficients go to the stick's new owner.
fn redistribution_sends(
    set: &StickSet,
    old_dist: &StickDist,
    new_owner: &[usize],
    held: &[(usize, &[Complex64])],
    nranks_new: usize,
) -> Vec<Vec<Complex64>> {
    let mut sends: Vec<Vec<Complex64>> = vec![Vec::new(); nranks_new];
    for &(old_rank, share) in held {
        let mut off = 0;
        for &s in &old_dist.per_rank[old_rank] {
            let len = set.sticks[s].len();
            sends[new_owner[s]].extend_from_slice(&share[off..off + len]);
            off += len;
        }
        debug_assert_eq!(off, share.len(), "old share of rank {old_rank} fully consumed");
    }
    sends
}

/// Inverse of [`redistribution_sends`] on the receiving side: every source
/// chunk is walked in the same deterministic (held old rank, old stick
/// order) sequence and deposited at the stick's offset in the new share.
#[allow(clippy::too_many_arguments)]
fn deposit_redistributed(
    set: &StickSet,
    old_dist: &StickDist,
    new_dist: &StickDist,
    new_owner: &[usize],
    me: usize,
    members: &[usize],
    victim: usize,
    buddy: usize,
    recv: &[Vec<Complex64>],
) -> Vec<Complex64> {
    // Offsets of my sticks inside the new share.
    let mut my_off = vec![usize::MAX; set.nst()];
    let mut off = 0;
    for &s in &new_dist.per_rank[me] {
        my_off[s] = off;
        off += set.sticks[s].len();
    }
    let mut out = vec![Complex64::ZERO; new_dist.ngw_per_rank[me]];
    for (j, chunk) in recv.iter().enumerate() {
        let mut cursor = 0;
        for old_rank in held_old_ranks(members[j], victim, buddy) {
            for &s in &old_dist.per_rank[old_rank] {
                if new_owner[s] == me {
                    let len = set.sticks[s].len();
                    out[my_off[s]..my_off[s] + len]
                        .copy_from_slice(&chunk[cursor..cursor + len]);
                    cursor += len;
                }
            }
        }
        debug_assert_eq!(cursor, chunk.len(), "chunk from source {j} fully consumed");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FftxConfig;
    use crate::original::run_original;
    use crate::taskmodes::run_task_per_fft;

    fn eviction_config() -> FftxConfig {
        // 7 ranks as 7×1; after evicting one, 6 survivors re-plan to 3×2.
        let mut c = FftxConfig::small(7, 1, Mode::Original);
        c.nbnd = 6;
        c
    }

    #[test]
    fn retried_tasks_produce_bitwise_identical_bands() {
        let cfg = FftxConfig::small(2, 2, Mode::TaskPerFft);
        let problem = Problem::new(cfg);
        let baseline = run_task_per_fft(&problem);
        // Every task crashes at least once; budget (3) covers max 2 crashes.
        let crashes = TaskCrashes::new(11, 1.0, 2);
        let (out, stats) =
            run_retry(&problem, Some(crashes), &RecoveryConfig::default()).expect("recovers");
        assert!(
            stats.task_retries >= cfg.nbnd as u64 * cfg.vmpi_ranks() as u64,
            "every band task on every rank must retry: {}",
            stats.task_retries
        );
        assert_eq!(out.bands, baseline.bands, "recovery changed the answer");
    }

    #[test]
    fn clean_retry_run_is_free_of_retries() {
        let cfg = FftxConfig::small(2, 2, Mode::TaskPerFft);
        let problem = Problem::new(cfg);
        let baseline = run_task_per_fft(&problem);
        let (out, stats) = run_retry(&problem, None, &RecoveryConfig::default()).expect("clean");
        assert_eq!(stats.task_retries, 0);
        assert_eq!(out.bands, baseline.bands);
    }

    #[test]
    fn rolled_back_batches_produce_bitwise_identical_bands() {
        let cfg = FftxConfig::small(2, 2, Mode::Original);
        let problem = Problem::new(cfg);
        let baseline = run_original(&problem);
        // Every batch aborts 1-2 times; the rollback budget (4) covers it.
        let aborts = BatchAborts::new(5, 1.0, 2);
        let (out, stats) =
            run_rollback(&problem, Some(aborts), &RecoveryConfig::default()).expect("recovers");
        assert!(
            stats.batch_rollbacks >= cfg.iterations() as u64,
            "every batch must roll back at least once: {}",
            stats.batch_rollbacks
        );
        assert!(stats.checkpoint_bytes > 0);
        assert_eq!(out.bands, baseline.bands, "rollback changed the answer");
    }

    #[test]
    fn exhausted_rollback_budget_escalates_to_typed_timeout() {
        let cfg = FftxConfig::small(2, 2, Mode::Original);
        let problem = Problem::new(cfg);
        let aborts = BatchAborts::new(5, 1.0, 2);
        let no_budget = RecoveryConfig {
            max_rollbacks: 0,
            ..RecoveryConfig::default()
        };
        let Err(err) = run_rollback(&problem, Some(aborts), &no_budget) else {
            panic!("exhausted budget must escalate");
        };
        match err {
            VmpiError::Timeout { message, .. } => {
                assert!(message.contains("injected collective timeout"), "{message}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn eviction_replans_layout_and_keeps_bands_identical() {
        let problem = Problem::new(eviction_config());
        let baseline = run_original(&problem);
        // Cover an interior victim and the ring-wraparound buddy (victim
        // p-1 whose buddy is rank 0).
        for victim in [3, 6] {
            let (out, stats) = run_eviction(
                &problem,
                RankDeath::at(victim, 2),
                &RecoveryConfig::default(),
            )
            .expect("survivors finish");
            assert_eq!(stats.evicted_ranks, vec![victim]);
            assert_eq!(stats.layout_before, (7, 1));
            assert_eq!(stats.layout_after, (3, 2), "6 survivors re-plan to 3×2");
            assert!(stats.checkpoint_bytes > 0);
            assert_eq!(
                out.bands, baseline.bands,
                "eviction of rank {victim} changed the answer"
            );
        }
    }

    #[test]
    fn eviction_before_first_batch_recomputes_everything() {
        // Death at batch 0: the buddy has no checkpoints, every victim band
        // is recomputed deterministically.
        let problem = Problem::new(eviction_config());
        let baseline = run_original(&problem);
        let (out, stats) = run_eviction(
            &problem,
            RankDeath::at(0, 0),
            &RecoveryConfig::default(),
        )
        .expect("survivors finish");
        assert_eq!(stats.layout_after, (3, 2));
        assert_eq!(out.bands, baseline.bands);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `me` indexes sends, dists and members alike
    fn redistribution_roundtrip_matches_extract_share() {
        // Pure-data check of the redistribution helpers: route the sends by
        // hand and verify each survivor ends up with exactly its share
        // under the new distribution.
        let problem = Problem::new(eviction_config());
        let l = &problem.layout;
        let set = &l.set;
        let (victim, buddy) = (3usize, 4usize);
        let members: Vec<usize> = (0..7).filter(|&r| r != victim).collect();
        let new_dist = StickDist::balance(set, 6);
        let new_owner = stick_owner(&new_dist, set.nst());
        let band = problem.band(1);
        let old_shares: Vec<Vec<Complex64>> = (0..7)
            .map(|r| extract_share(set, &l.dist, r, &band))
            .collect();
        // Every survivor's sends, buddy doubling as the victim's proxy.
        let all_sends: Vec<Vec<Vec<Complex64>>> = members
            .iter()
            .map(|&w| {
                let mut held: Vec<(usize, &[Complex64])> = vec![(w, old_shares[w].as_slice())];
                if w == buddy {
                    held.push((victim, old_shares[victim].as_slice()));
                }
                redistribution_sends(set, &l.dist, &new_owner, &held, members.len())
            })
            .collect();
        for me in 0..members.len() {
            // recv[j] = what source j sent to `me`.
            let recv: Vec<Vec<Complex64>> =
                (0..members.len()).map(|j| all_sends[j][me].clone()).collect();
            let got = deposit_redistributed(
                set, &l.dist, &new_dist, &new_owner, me, &members, victim, buddy, &recv,
            );
            let expect = extract_share(set, &new_dist, me, &band);
            assert_eq!(got, expect, "survivor {me} reassembled the wrong share");
        }
    }
}
