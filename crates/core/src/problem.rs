//! Problem setup shared by every execution engine: grid, layout, potential,
//! and per-rank band shares — all deterministic from the configuration, so
//! each rank builds an identical copy with no communication (exactly how
//! FFTXlib initialises its descriptor on every process).

use crate::config::FftxConfig;
use crate::plan::ExecPlan;
use fftx_fft::Complex64;
use fftx_pw::{
    extract_share, generate_band, generate_potential, Cell, FftGrid, GSphere, StickSet,
    TaskGroupLayout, DUAL,
};
use std::sync::Arc;

/// Immutable problem state shared by all ranks of one run.
pub struct Problem {
    /// The configuration it was built from.
    pub config: FftxConfig,
    /// The simulation cell.
    pub cell: Cell,
    /// The distributed layout (grid, sticks, groups, planes).
    pub layout: TaskGroupLayout,
    /// Dense real-space potential.
    pub v: Vec<f64>,
    /// Per-group execution plans (index maps, chunk geometry, interned FFT
    /// plans), built once here and shared by every engine and iteration.
    plans: Vec<Arc<ExecPlan>>,
}

impl Problem {
    /// Builds the problem for `config` (validates it first).
    pub fn new(config: FftxConfig) -> Arc<Self> {
        let cell = Cell::cubic(config.alat);
        let grid = FftGrid::from_cutoff(&cell, DUAL * config.ecutwfc);
        Self::with_grid(config, grid)
    }

    /// Builds the problem for `config` on an explicitly chosen dense grid
    /// instead of the cutoff-derived one. This is how the serving layer's
    /// `prime` geometry class forces a dimension with a large prime factor
    /// (Bluestein path) through the full stack — [`Problem::new`] always
    /// rounds through `good_fft_order`, so no cutoff can produce such a
    /// grid. The grid must still hold the cutoff sphere (the caller only
    /// ever *grows* a dimension, which is always safe).
    pub fn with_grid(config: FftxConfig, grid: FftGrid) -> Arc<Self> {
        config.validate();
        let cell = Cell::cubic(config.alat);
        let sphere = GSphere::generate(&cell, config.ecutwfc, &grid);
        let set = StickSet::build(&sphere, &grid);
        let layout = TaskGroupLayout::new(grid, set, config.nr, config.layout_ntg());
        layout.validate();
        let v = generate_potential(&grid, config.seed);
        let plans = (0..layout.r)
            .map(|g| Arc::new(ExecPlan::for_layout_decomp(&layout, g, config.decomp)))
            .collect();
        Arc::new(Problem {
            config,
            cell,
            layout,
            v,
            plans,
        })
    }

    /// A problem sharing this one's cell, layout, potential, and execution
    /// plans, with a different band count — the batch entry point of the
    /// serving layer. The layout and plans depend only on the geometry, so
    /// a batch of coalesced requests reuses the index maps and interned FFT
    /// plans built once per geometry class instead of paying the full
    /// [`Problem::new`] per batch.
    ///
    /// # Panics
    /// Panics when the adjusted configuration fails validation (band count
    /// not divisible by the task-group count).
    pub fn with_nbnd(&self, nbnd: usize) -> Arc<Self> {
        let mut config = self.config;
        config.nbnd = nbnd;
        config.validate();
        Arc::new(Problem {
            config,
            cell: self.cell,
            layout: self.layout.clone(),
            v: self.v.clone(),
            plans: self.plans.clone(),
        })
    }

    /// The precomputed execution plan of task group `g`.
    pub fn exec_plan(&self, g: usize) -> &Arc<ExecPlan> {
        &self.plans[g]
    }

    /// Canonical coefficients of band `b`.
    pub fn band(&self, b: usize) -> Vec<Complex64> {
        generate_band(&self.layout.set, b, self.config.seed)
    }

    /// Rank `rank`'s share of every band (the initial distributed state).
    pub fn initial_shares(&self, rank: usize) -> Vec<Vec<Complex64>> {
        (0..self.config.nbnd)
            .map(|b| extract_share(&self.layout.set, &self.layout.dist, rank, &self.band(b)))
            .collect()
    }

    /// The slab of V(r) owned by task group `g` (planes
    /// `plane_range(g)`), referenced into the dense potential.
    pub fn v_slab(&self, g: usize) -> &[f64] {
        let plane = self.layout.grid.nr1 * self.layout.grid.nr2;
        let (z0, z1) = self.layout.plane_range[g];
        &self.v[z0 * plane..z1 * plane]
    }

    /// Grid dimensions.
    pub fn grid(&self) -> FftGrid {
        self.layout.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use fftx_pw::assemble_shares;

    #[test]
    fn problem_setup_is_deterministic() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let p1 = Problem::new(c);
        let p2 = Problem::new(c);
        assert_eq!(p1.v, p2.v);
        assert_eq!(p1.band(1), p2.band(1));
        assert_eq!(p1.layout.group_sticks, p2.layout.group_sticks);
    }

    #[test]
    fn shares_reassemble_to_bands() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let p = Problem::new(c);
        let all: Vec<Vec<Vec<Complex64>>> = (0..c.vmpi_ranks())
            .map(|r| p.initial_shares(r))
            .collect();
        for b in 0..c.nbnd {
            let shares: Vec<Vec<Complex64>> = all.iter().map(|r| r[b].clone()).collect();
            let band = assemble_shares(&p.layout.set, &p.layout.dist, &shares);
            assert_eq!(band, p.band(b));
        }
    }

    #[test]
    fn v_slabs_tile_the_grid() {
        let c = FftxConfig::small(3, 1, Mode::Original);
        let p = Problem::new(c);
        let total: usize = (0..3).map(|g| p.v_slab(g).len()).sum();
        assert_eq!(total, p.grid().volume());
        // Concatenation equals the dense potential.
        let mut cat = Vec::new();
        for g in 0..3 {
            cat.extend_from_slice(p.v_slab(g));
        }
        assert_eq!(cat, p.v);
    }

    #[test]
    fn with_nbnd_matches_a_fresh_build() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let base = Problem::new(c);
        let grown = base.with_nbnd(8);
        assert_eq!(grown.config.nbnd, 8);
        let fresh = Problem::new(FftxConfig { nbnd: 8, ..c });
        assert_eq!(grown.v, fresh.v);
        assert_eq!(grown.band(7), fresh.band(7));
        assert_eq!(grown.layout.group_sticks, fresh.layout.group_sticks);
        for r in 0..c.vmpi_ranks() {
            assert_eq!(grown.initial_shares(r), fresh.initial_shares(r));
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn with_nbnd_validates() {
        let base = Problem::new(FftxConfig::small(1, 4, Mode::Original));
        let _ = base.with_nbnd(6);
    }

    #[test]
    fn with_grid_matches_new_on_the_derived_grid() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let base = Problem::new(c);
        let explicit = Problem::with_grid(c, base.grid());
        assert_eq!(explicit.v, base.v);
        assert_eq!(explicit.band(1), base.band(1));
        assert_eq!(explicit.layout.group_sticks, base.layout.group_sticks);
    }

    #[test]
    fn with_grid_accepts_a_prime_dimension() {
        // Grow z to a prime above the direct-size limit: the stick layout
        // and plans must still build, and the grid survives verbatim.
        let c = FftxConfig::small(2, 2, Mode::Original);
        let base = Problem::new(c);
        let g = base.grid();
        let raw = FftGrid::raw(g.nr1, g.nr2, 41);
        let p = Problem::with_grid(c, raw);
        assert_eq!(p.grid().nr3, 41);
        assert_eq!(p.v.len(), p.grid().volume());
        p.layout.validate();
    }

    #[test]
    fn task_mode_layout_has_one_group_member() {
        let c = FftxConfig::small(4, 2, Mode::TaskPerFft);
        let p = Problem::new(c);
        assert_eq!(p.layout.t, 1);
        assert_eq!(p.layout.r, 4);
    }
}
