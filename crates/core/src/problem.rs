//! Problem setup shared by every execution engine: grid, layout, potential,
//! and per-rank band shares — all deterministic from the configuration, so
//! each rank builds an identical copy with no communication (exactly how
//! FFTXlib initialises its descriptor on every process).

use crate::config::FftxConfig;
use crate::plan::ExecPlan;
use fftx_fft::Complex64;
use fftx_pw::{
    extract_share, generate_band, generate_potential, Cell, FftGrid, GSphere, StickSet,
    TaskGroupLayout, DUAL,
};
use std::sync::Arc;

/// Immutable problem state shared by all ranks of one run.
pub struct Problem {
    /// The configuration it was built from.
    pub config: FftxConfig,
    /// The simulation cell.
    pub cell: Cell,
    /// The distributed layout (grid, sticks, groups, planes).
    pub layout: TaskGroupLayout,
    /// Dense real-space potential.
    pub v: Vec<f64>,
    /// Per-group execution plans (index maps, chunk geometry, interned FFT
    /// plans), built once here and shared by every engine and iteration.
    plans: Vec<Arc<ExecPlan>>,
}

impl Problem {
    /// Builds the problem for `config` (validates it first).
    pub fn new(config: FftxConfig) -> Arc<Self> {
        config.validate();
        let cell = Cell::cubic(config.alat);
        let grid = FftGrid::from_cutoff(&cell, DUAL * config.ecutwfc);
        let sphere = GSphere::generate(&cell, config.ecutwfc, &grid);
        let set = StickSet::build(&sphere, &grid);
        let layout = TaskGroupLayout::new(grid, set, config.nr, config.layout_ntg());
        layout.validate();
        let v = generate_potential(&grid, config.seed);
        let plans = (0..layout.r)
            .map(|g| Arc::new(ExecPlan::for_layout(&layout, g)))
            .collect();
        Arc::new(Problem {
            config,
            cell,
            layout,
            v,
            plans,
        })
    }

    /// The precomputed execution plan of task group `g`.
    pub fn exec_plan(&self, g: usize) -> &Arc<ExecPlan> {
        &self.plans[g]
    }

    /// Canonical coefficients of band `b`.
    pub fn band(&self, b: usize) -> Vec<Complex64> {
        generate_band(&self.layout.set, b, self.config.seed)
    }

    /// Rank `rank`'s share of every band (the initial distributed state).
    pub fn initial_shares(&self, rank: usize) -> Vec<Vec<Complex64>> {
        (0..self.config.nbnd)
            .map(|b| extract_share(&self.layout.set, &self.layout.dist, rank, &self.band(b)))
            .collect()
    }

    /// The slab of V(r) owned by task group `g` (planes
    /// `plane_range(g)`), referenced into the dense potential.
    pub fn v_slab(&self, g: usize) -> &[f64] {
        let plane = self.layout.grid.nr1 * self.layout.grid.nr2;
        let (z0, z1) = self.layout.plane_range[g];
        &self.v[z0 * plane..z1 * plane]
    }

    /// Grid dimensions.
    pub fn grid(&self) -> FftGrid {
        self.layout.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;
    use fftx_pw::assemble_shares;

    #[test]
    fn problem_setup_is_deterministic() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let p1 = Problem::new(c);
        let p2 = Problem::new(c);
        assert_eq!(p1.v, p2.v);
        assert_eq!(p1.band(1), p2.band(1));
        assert_eq!(p1.layout.group_sticks, p2.layout.group_sticks);
    }

    #[test]
    fn shares_reassemble_to_bands() {
        let c = FftxConfig::small(2, 2, Mode::Original);
        let p = Problem::new(c);
        let all: Vec<Vec<Vec<Complex64>>> = (0..c.vmpi_ranks())
            .map(|r| p.initial_shares(r))
            .collect();
        for b in 0..c.nbnd {
            let shares: Vec<Vec<Complex64>> = all.iter().map(|r| r[b].clone()).collect();
            let band = assemble_shares(&p.layout.set, &p.layout.dist, &shares);
            assert_eq!(band, p.band(b));
        }
    }

    #[test]
    fn v_slabs_tile_the_grid() {
        let c = FftxConfig::small(3, 1, Mode::Original);
        let p = Problem::new(c);
        let total: usize = (0..3).map(|g| p.v_slab(g).len()).sum();
        assert_eq!(total, p.grid().volume());
        // Concatenation equals the dense potential.
        let mut cat = Vec::new();
        for g in 0..3 {
            cat.extend_from_slice(p.v_slab(g));
        }
        assert_eq!(cat, p.v);
    }

    #[test]
    fn task_mode_layout_has_one_group_member() {
        let c = FftxConfig::small(4, 2, Mode::TaskPerFft);
        let p = Problem::new(c);
        assert_eq!(p.layout.t, 1);
        assert_eq!(p.layout.r, 4);
    }
}
