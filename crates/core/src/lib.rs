//! # fftx-core
//!
//! The FFTXlib miniapp itself: the distributed FFT kernel of Quantum
//! ESPRESSO that applies a real-space-diagonal operator to plane-wave
//! wavefunctions, in the variants the paper studies:
//!
//! * [`stages`] — the unified stage-graph execution core: the per-band
//!   pipeline as a typed task graph, executed by pluggable scheduler
//!   policies (serial, task-per-step, task-per-FFT, split-phase async, and
//!   the hybrid overlap+desync policy of the paper's conclusion);
//! * [`original`] / [`taskmodes`] — the historical entry points for the
//!   static MPI code and the OmpSs strategies, now thin wrappers over
//!   [`stages`];
//! * [`modelplan`] — lowering of the same kernel onto the KNL discrete-event
//!   simulator for the paper's node-scale experiments.
//!
//! Every real execution is verifiable against the serial reference pipeline
//! in `fftx-pw` ([`verify`]).

#![warn(missing_docs)]

pub mod config;
pub mod modelplan;
pub mod original;
pub mod plan;
pub mod problem;
pub mod recorder;
pub mod recovery;
pub mod stages;
pub mod steps;
pub mod taskmodes;
pub mod verify;

pub use config::env::{load as load_env, valid_policies, EnvError, EnvKnobs, FleetKnobs};
pub use config::{valid_decomps, DecompChoice, Decomposition, FftxConfig, Mode};
pub use original::{run_original, RunOutput};
pub use plan::{BufferArena, ExecPlan, PencilTables};
pub use recovery::{run_eviction, run_retry, run_rollback, RecoveryStats};
pub use verify::{probe_fft_unit, run_verified, VerifyMode, VerifyStats, PARSEVAL_TOL};
pub use problem::Problem;
// Re-exported so `Problem::with_grid` callers (the serving layer's
// explicit-grid geometry classes) can name the grid type without a direct
// fftx-pw dependency.
pub use fftx_pw::{Cell, FftGrid, DUAL};
pub use modelplan::{
    build_programs, choose_decomp, modeled_scatter_seconds, resolve_decomp, run_modeled,
    run_modeled_with, simulate_config, simulate_config_faulty, ModeledRun,
};
pub use stages::{
    run_policy, run_policy_chaotic, ScatterComms, SchedulerPolicy, StageKind, StagePlan,
    StageRunner, BAND_PIPELINE,
};
pub use taskmodes::{run, run_chaotic};
