//! # fftx-core
//!
//! The FFTXlib miniapp itself: the distributed FFT kernel of Quantum
//! ESPRESSO that applies a real-space-diagonal operator to plane-wave
//! wavefunctions, in the three variants the paper studies:
//!
//! * [`original`] — the static two-layer MPI code with FFT task groups;
//! * [`taskmodes`] — the two OmpSs optimisation strategies (task-per-step
//!   with flow dependencies, task-per-FFT with independent tasks);
//! * [`modelplan`] — lowering of the same kernel onto the KNL discrete-event
//!   simulator for the paper's node-scale experiments.
//!
//! Every real execution is verifiable against the serial reference pipeline
//! in `fftx-pw` ([`verify`]).

#![warn(missing_docs)]

pub mod config;
pub mod modelplan;
pub mod original;
pub mod plan;
pub mod problem;
pub mod recorder;
pub mod recovery;
pub mod steps;
pub mod taskmodes;

pub use config::{FftxConfig, Mode};
pub use original::{run_original, RunOutput};
pub use plan::{BufferArena, ExecPlan};
pub use recovery::{run_eviction, run_retry, run_rollback, RecoveryStats};
pub use problem::Problem;
pub use modelplan::{
    build_programs, run_modeled, run_modeled_with, simulate_config, simulate_config_faulty,
    ModeledRun,
};
pub use taskmodes::{run, run_chaotic};
