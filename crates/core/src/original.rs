//! The original FFTXlib kernel: static two-layer MPI parallelisation with
//! FFT task groups (Fig. 1 of the paper), executed for real on virtual MPI
//! ranks with actual FFT math and data movement.
//!
//! Per outer iteration k (bands `kT .. (k+1)T`), every rank `g*T + i` runs:
//!
//! ```text
//! pack    : Alltoallv in the task group  (band shares -> band k*T+i on U_g)
//! FFT z   : inverse 1-D FFTs over the group's sticks
//! scatter : padded Alltoall in the strided family (sticks -> plane slab)
//! FFT xy  : inverse 2-D FFTs over the owned planes
//! VOFR    : psi(r) *= V(r)
//! FFT xy  : forward
//! scatter : Alltoall back (planes -> sticks)
//! FFT z   : forward
//! unpack  : Alltoallv back (band k*T+i -> band shares)
//! ```
//!
//! Every data-movement step runs through the precomputed tables of
//! [`ExecPlan`] into the rank's [`BufferArena`]; after the first iteration
//! warms the arena, the engine side of the loop performs no heap
//! allocation (DESIGN.md §12).

use crate::plan::{BufferArena, ExecPlan};
use crate::problem::Problem;
use crate::recorder::Recorder;
use fftx_fft::opcount;
use fftx_fft::{cft_1z, cft_2xy_buf, Complex64, Direction};
use fftx_pw::{apply_potential_slab, assemble_shares, TaskGroupLayout};
use fftx_trace::{StateClass, Trace, TraceSink};
use fftx_vmpi::{Communicator, VmpiError, World};
use std::sync::Arc;

/// Result of a real execution.
pub struct RunOutput {
    /// Updated bands, reassembled into canonical order.
    pub bands: Vec<Vec<Complex64>>,
    /// The recorded trace (compute bursts, MPI calls, tasks).
    pub trace: Trace,
    /// FFT-phase wall time: max over ranks of the barrier-to-barrier span.
    pub fft_phase_s: f64,
}

/// Per-iteration flop estimates used for trace counters.
pub struct StepFlops {
    /// PsiPrep (buffer clearing).
    pub prep: f64,
    /// Pack/unpack deposit copies.
    pub pack: f64,
    /// The z-FFT batch.
    pub fft_z: f64,
    /// Local copies around the scatter.
    pub scatter_copy: f64,
    /// The xy-FFT batch.
    pub fft_xy: f64,
    /// The VOFR point-wise multiply.
    pub vofr: f64,
}

impl StepFlops {
    /// Estimates for the rank in task group `g`.
    pub fn for_group(problem: &Problem, g: usize) -> Self {
        Self::for_layout(&problem.layout, g)
    }

    /// Estimates for task group `g` of an explicit layout (the recovery
    /// engine re-plans the layout mid-run, away from the problem's own).
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        let grid = l.grid;
        let nst = l.nst_group(g);
        let npp = l.npp(g);
        let plane = grid.nr1 * grid.nr2;
        StepFlops {
            // The prep phase clears/initialises both work buffers (the
            // paper's conspicuous low-IPC "psi preparation" segment).
            prep: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            pack: opcount::copy_flops(l.ngw_group(g)),
            fft_z: opcount::fft_z_batch_flops(grid.nr3, nst),
            scatter_copy: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            fft_xy: opcount::fft_xy_batch_flops(grid.nr1, grid.nr2, npp),
            vofr: opcount::pointwise_mul_flops(npp * plane),
        }
    }
}

/// The body of one iteration *after* the pack deposit and *before* the
/// unpack extraction: z-FFT, scatter, xy-FFT, VOFR and the way back.
/// Shared verbatim by all three execution modes. `tag` keeps concurrent
/// scatters of different bands apart.
pub fn transform_core(
    plan: &ExecPlan,
    v: &[f64],
    scatter_comm: &Communicator,
    tag: u32,
    arena: &mut BufferArena,
    flops: &StepFlops,
    rec: &Recorder,
) {
    try_transform_core(plan, v, scatter_comm, tag, arena, flops, rec)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`transform_core`] surfacing collective timeouts and world aborts as
/// [`VmpiError`] values instead of panicking — the fallible building block
/// of the recovery engine (which replays batches and runs re-planned
/// layouts the problem doesn't know about, through plans built with
/// [`ExecPlan::for_layout`]).
pub fn try_transform_core(
    plan: &ExecPlan,
    v: &[f64],
    scatter_comm: &Communicator,
    tag: u32,
    arena: &mut BufferArena,
    flops: &StepFlops,
    rec: &Recorder,
) -> Result<(), VmpiError> {
    // Inverse FFT along z (G -> r on the stick columns).
    rec.compute(StateClass::FftZ, flops.fft_z, || {
        cft_1z(
            &plan.z,
            &mut arena.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Inverse,
            &mut arena.scratch,
        );
    });

    // Forward scatter: sticks -> planes.
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        plan.scatter_pack(&arena.zbuf, &mut arena.scatter_send);
    });
    scatter_comm.try_alltoall_into(&arena.scatter_send, &mut arena.scatter_recv, tag)?;
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        plan.scatter_unpack_to_planes(&arena.scatter_recv, &mut arena.planes);
    });

    // Inverse FFT in the xy planes.
    rec.compute(StateClass::FftXy, flops.fft_xy, || {
        cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut arena.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Inverse,
            &mut arena.scratch,
            &mut arena.col,
        );
    });

    // VOFR: apply the local potential on the owned slab.
    rec.compute(StateClass::Vofr, flops.vofr, || {
        apply_potential_slab(&mut arena.planes, v, &plan.grid, plan.z0, plan.npp);
    });

    // Forward FFT in the xy planes.
    rec.compute(StateClass::FftXy, flops.fft_xy, || {
        cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut arena.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Forward,
            &mut arena.scratch,
            &mut arena.col,
        );
    });

    // Backward scatter: planes -> sticks.
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        plan.planes_to_scatter(&arena.planes, &mut arena.scatter_send);
    });
    scatter_comm.try_alltoall_into(&arena.scatter_send, &mut arena.scatter_recv, tag)?;
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        plan.zbuf_from_scatter(&arena.scatter_recv, &mut arena.zbuf);
    });

    // Forward FFT along z.
    rec.compute(StateClass::FftZ, flops.fft_z, || {
        cft_1z(
            &plan.z,
            &mut arena.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Forward,
            &mut arena.scratch,
        );
    });
    Ok(())
}

/// Stages the pack send: the T band shares of iteration base `base`,
/// flattened member-major into `sharebuf` with per-member `counts`.
pub(crate) fn stage_pack_sends(
    shares: &[Vec<Complex64>],
    base: usize,
    t: usize,
    sharebuf: &mut Vec<Complex64>,
    counts: &mut Vec<usize>,
) {
    sharebuf.clear();
    counts.clear();
    for j in 0..t {
        let s = &shares[base + j];
        sharebuf.extend_from_slice(s);
        counts.push(s.len());
    }
}

/// Scatters the flat unpack receive back into the band shares (member `j`
/// returned this rank's share of band `base + j`), reusing each share's
/// capacity.
pub(crate) fn unstage_unpack_recv(
    shares: &mut [Vec<Complex64>],
    base: usize,
    sharebuf: &[Complex64],
    recv_counts: &[usize],
) {
    let mut off = 0;
    for (j, &n) in recv_counts.iter().enumerate() {
        let dst = &mut shares[base + j];
        dst.clear();
        dst.extend_from_slice(&sharebuf[off..off + n]);
        off += n;
    }
}

/// Runs the original static kernel on R×T virtual MPI ranks and returns the
/// reassembled bands, trace and FFT-phase time.
pub fn run_original(problem: &Arc<Problem>) -> RunOutput {
    run_original_chaotic(problem, None).0
}

/// [`run_original`] with explicit chaos injection: when `chaos` is `Some`,
/// the transport perturbs message timing per the seeded config (the output
/// must be bit-identical — chaos is lossless by construction) and the fault
/// schedule comes back alongside the run. `None` defers to the
/// `FFTX_CHAOS_*` environment, like every `World`.
pub fn run_original_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<fftx_vmpi::ChaosConfig>,
) -> (RunOutput, Option<fftx_vmpi::FaultReport>) {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, crate::config::Mode::Original),
        "run_original: config mode mismatch"
    );
    let p = cfg.vmpi_ranks();
    let sink = TraceSink::new();
    let mut world = World::new(p).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| rank_original(problem, comm));
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

/// Per-rank body of the original kernel: plan once, then an allocation-free
/// steady-state loop through the arena.
fn rank_original(problem: &Problem, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let g = l.task_group_of(w);
    let i = l.member_of(w);
    let t = l.t;

    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = comm.split(i as u64, g);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let plan = problem.exec_plan(g);
    let flops = StepFlops::for_group(problem, g);
    let mut shares = problem.initial_shares(w);
    let mut arena = BufferArena::new();

    comm.barrier();
    let t_start = comm.now();
    for k in 0..cfg.iterations() {
        // PsiPrep: clear the work buffers. The z buffer must be zero off
        // the sphere entries before the deposit; the plane slab must be
        // zero at non-stick xy positions before the forward scatter, or
        // stale values from the previous band group leak in.
        rec.compute(StateClass::PsiPrep, flops.prep, || {
            plan.prep(&mut arena.zbuf, &mut arena.planes);
        });

        // Pack: every member contributes its share of each of the T bands.
        rec.compute(StateClass::Pack, flops.pack / 2.0, || {
            stage_pack_sends(&shares, k * t, t, &mut arena.sharebuf, &mut arena.counts);
        });
        pack_comm.alltoallv_into(
            &arena.sharebuf,
            &arena.counts,
            &mut arena.groupbuf,
            &mut arena.recv_counts,
            0,
        );
        rec.compute(StateClass::Pack, flops.pack / 2.0, || {
            plan.deposit_stream(&arena.groupbuf, &mut arena.zbuf);
        });

        transform_core(plan, &problem.v, &scatter_comm, 0, &mut arena, &flops, &rec);

        // Unpack: give every member back its share of its band.
        rec.compute(StateClass::Unpack, flops.pack / 2.0, || {
            plan.extract_stream(&arena.zbuf, &mut arena.groupbuf, &mut arena.counts);
        });
        pack_comm.alltoallv_into(
            &arena.groupbuf,
            &arena.counts,
            &mut arena.sharebuf,
            &mut arena.recv_counts,
            1,
        );
        rec.compute(StateClass::Unpack, flops.pack / 2.0, || {
            unstage_unpack_recv(&mut shares, k * t, &arena.sharebuf, &arena.recv_counts);
        });
    }
    comm.barrier();
    let t_end = comm.now();
    (shares, t_end - t_start)
}

/// Reassembles bands from per-rank shares and closes the trace.
pub fn finish_run(
    problem: &Problem,
    sink: TraceSink,
    results: Vec<(Vec<Vec<Complex64>>, f64)>,
) -> RunOutput {
    let fft_phase_s = results
        .iter()
        .map(|(_, t)| *t)
        .fold(0.0_f64, f64::max);
    let nbnd = problem.config.nbnd;
    let bands = (0..nbnd)
        .map(|b| {
            let shares: Vec<Vec<Complex64>> =
                results.iter().map(|(s, _)| s[b].clone()).collect();
            assemble_shares(&problem.layout.set, &problem.layout.dist, &shares)
        })
        .collect();
    RunOutput {
        bands,
        trace: sink.finish(),
        fft_phase_s,
    }
}
