//! The original FFTXlib kernel: static two-layer MPI parallelisation with
//! FFT task groups (Fig. 1 of the paper), executed for real on virtual MPI
//! ranks with actual FFT math and data movement.
//!
//! Per outer iteration k (bands `kT .. (k+1)T`), every rank `g*T + i` runs:
//!
//! ```text
//! pack    : Alltoallv in the task group  (band shares -> band k*T+i on U_g)
//! FFT z   : inverse 1-D FFTs over the group's sticks
//! scatter : padded Alltoall in the strided family (sticks -> plane slab)
//! FFT xy  : inverse 2-D FFTs over the owned planes
//! VOFR    : psi(r) *= V(r)
//! FFT xy  : forward
//! scatter : Alltoall back (planes -> sticks)
//! FFT z   : forward
//! unpack  : Alltoallv back (band k*T+i -> band shares)
//! ```

use crate::problem::Problem;
use crate::recorder::Recorder;
use crate::steps;
use fftx_fft::opcount;
use fftx_fft::{cft_1z, cft_2xy, Complex64, Direction, Fft};
use fftx_pw::{apply_potential_slab, assemble_shares, TaskGroupLayout};
use fftx_trace::{StateClass, Trace, TraceSink};
use fftx_vmpi::{Communicator, VmpiError, World};
use std::sync::Arc;

/// Result of a real execution.
pub struct RunOutput {
    /// Updated bands, reassembled into canonical order.
    pub bands: Vec<Vec<Complex64>>,
    /// The recorded trace (compute bursts, MPI calls, tasks).
    pub trace: Trace,
    /// FFT-phase wall time: max over ranks of the barrier-to-barrier span.
    pub fft_phase_s: f64,
}

/// FFT plans shared by the steps of one rank.
pub struct Plans {
    /// Along x.
    pub x: Fft,
    /// Along y.
    pub y: Fft,
    /// Along z.
    pub z: Fft,
}

impl Plans {
    /// Builds the three 1-D plans for the problem grid.
    pub fn new(problem: &Problem) -> Self {
        let g = problem.grid();
        Plans {
            x: Fft::new(g.nr1),
            y: Fft::new(g.nr2),
            z: Fft::new(g.nr3),
        }
    }
}

/// Per-iteration flop estimates used for trace counters.
pub struct StepFlops {
    /// PsiPrep (buffer clearing).
    pub prep: f64,
    /// Pack/unpack deposit copies.
    pub pack: f64,
    /// The z-FFT batch.
    pub fft_z: f64,
    /// Local copies around the scatter.
    pub scatter_copy: f64,
    /// The xy-FFT batch.
    pub fft_xy: f64,
    /// The VOFR point-wise multiply.
    pub vofr: f64,
}

impl StepFlops {
    /// Estimates for the rank in task group `g`.
    pub fn for_group(problem: &Problem, g: usize) -> Self {
        Self::for_layout(&problem.layout, g)
    }

    /// Estimates for task group `g` of an explicit layout (the recovery
    /// engine re-plans the layout mid-run, away from the problem's own).
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        let grid = l.grid;
        let nst = l.nst_group(g);
        let npp = l.npp(g);
        let plane = grid.nr1 * grid.nr2;
        StepFlops {
            // The prep phase clears/initialises both work buffers (the
            // paper's conspicuous low-IPC "psi preparation" segment).
            prep: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            pack: opcount::copy_flops(l.ngw_group(g)),
            fft_z: opcount::fft_z_batch_flops(grid.nr3, nst),
            scatter_copy: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            fft_xy: opcount::fft_xy_batch_flops(grid.nr1, grid.nr2, npp),
            vofr: opcount::pointwise_mul_flops(npp * plane),
        }
    }
}

/// State one rank carries through the pipeline of one band group.
pub struct BandPipeline {
    /// z-stick buffer (`nst_group * nr3`).
    pub zbuf: Vec<Complex64>,
    /// Plane slab (`npp * nr1 * nr2`).
    pub planes: Vec<Complex64>,
    /// FFT scratch.
    pub scratch: Vec<Complex64>,
}

impl BandPipeline {
    /// Allocates buffers for task group `g`.
    pub fn new(problem: &Problem, g: usize) -> Self {
        Self::for_layout(&problem.layout, g)
    }

    /// Allocates buffers for task group `g` of an explicit layout.
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        let grid = l.grid;
        BandPipeline {
            zbuf: vec![Complex64::ZERO; l.nst_group(g) * grid.nr3],
            planes: vec![Complex64::ZERO; l.npp(g) * grid.nr1 * grid.nr2],
            scratch: Vec::new(),
        }
    }
}

/// The body of one iteration *after* the pack deposit and *before* the
/// unpack extraction: z-FFT, scatter, xy-FFT, VOFR and the way back.
/// Shared verbatim by all three execution modes. `tag` keeps concurrent
/// scatters of different bands apart.
#[allow(clippy::too_many_arguments)]
pub fn transform_core(
    problem: &Problem,
    g: usize,
    scatter_comm: &Communicator,
    tag: u32,
    pipe: &mut BandPipeline,
    plans: &Plans,
    flops: &StepFlops,
    rec: &Recorder,
) {
    try_transform_core(
        &problem.layout,
        &problem.v,
        g,
        scatter_comm,
        tag,
        pipe,
        plans,
        flops,
        rec,
    )
    .unwrap_or_else(|e| panic!("{e}"))
}

/// [`transform_core`] against an explicit layout and dense potential,
/// surfacing collective timeouts and world aborts as [`VmpiError`] values
/// instead of panicking — the fallible building block of the recovery
/// engine (which replays batches and runs re-planned layouts the problem
/// doesn't know about).
#[allow(clippy::too_many_arguments)]
pub fn try_transform_core(
    l: &TaskGroupLayout,
    v: &[f64],
    g: usize,
    scatter_comm: &Communicator,
    tag: u32,
    pipe: &mut BandPipeline,
    plans: &Plans,
    flops: &StepFlops,
    rec: &Recorder,
) -> Result<(), VmpiError> {
    let grid = l.grid;
    let nst = l.nst_group(g);
    let npp = l.npp(g);
    let (z0, _) = l.plane_range[g];

    // Inverse FFT along z (G -> r on the stick columns).
    rec.compute(StateClass::FftZ, flops.fft_z, || {
        cft_1z(
            &plans.z,
            &mut pipe.zbuf,
            nst,
            grid.nr3,
            Direction::Inverse,
            &mut pipe.scratch,
        );
    });

    // Forward scatter: sticks -> planes.
    let send = rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        steps::scatter_pack(l, g, &pipe.zbuf)
    });
    let recv = scatter_comm.try_alltoall(&send, tag)?;
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        steps::scatter_unpack_to_planes(l, g, &recv, &mut pipe.planes);
    });

    // Inverse FFT in the xy planes.
    rec.compute(StateClass::FftXy, flops.fft_xy, || {
        cft_2xy(
            &plans.x,
            &plans.y,
            &mut pipe.planes,
            npp,
            grid.nr1,
            grid.nr2,
            Direction::Inverse,
            &mut pipe.scratch,
        );
    });

    // VOFR: apply the local potential on the owned slab.
    rec.compute(StateClass::Vofr, flops.vofr, || {
        apply_potential_slab(&mut pipe.planes, v, &grid, z0, npp);
    });

    // Forward FFT in the xy planes.
    rec.compute(StateClass::FftXy, flops.fft_xy, || {
        cft_2xy(
            &plans.x,
            &plans.y,
            &mut pipe.planes,
            npp,
            grid.nr1,
            grid.nr2,
            Direction::Forward,
            &mut pipe.scratch,
        );
    });

    // Backward scatter: planes -> sticks.
    let send = rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        steps::planes_to_scatter_sends(l, g, &pipe.planes)
    });
    let recv = scatter_comm.try_alltoall(&send, tag)?;
    rec.compute(StateClass::Other, flops.scatter_copy / 2.0, || {
        steps::zbuf_from_scatter_recv(l, g, &recv, &mut pipe.zbuf);
    });

    // Forward FFT along z.
    rec.compute(StateClass::FftZ, flops.fft_z, || {
        cft_1z(
            &plans.z,
            &mut pipe.zbuf,
            nst,
            grid.nr3,
            Direction::Forward,
            &mut pipe.scratch,
        );
    });
    Ok(())
}

/// Runs the original static kernel on R×T virtual MPI ranks and returns the
/// reassembled bands, trace and FFT-phase time.
pub fn run_original(problem: &Arc<Problem>) -> RunOutput {
    run_original_chaotic(problem, None).0
}

/// [`run_original`] with explicit chaos injection: when `chaos` is `Some`,
/// the transport perturbs message timing per the seeded config (the output
/// must be bit-identical — chaos is lossless by construction) and the fault
/// schedule comes back alongside the run. `None` defers to the
/// `FFTX_CHAOS_*` environment, like every `World`.
pub fn run_original_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<fftx_vmpi::ChaosConfig>,
) -> (RunOutput, Option<fftx_vmpi::FaultReport>) {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, crate::config::Mode::Original),
        "run_original: config mode mismatch"
    );
    let p = cfg.vmpi_ranks();
    let sink = TraceSink::new();
    let mut world = World::new(p).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| rank_original(problem, comm));
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

/// Per-rank body of the original kernel.
fn rank_original(problem: &Problem, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let g = l.task_group_of(w);
    let i = l.member_of(w);
    let t = l.t;

    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = comm.split(i as u64, g);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let plans = Plans::new(problem);
    let flops = StepFlops::for_group(problem, g);
    let mut shares = problem.initial_shares(w);
    let mut pipe = BandPipeline::new(problem, g);

    comm.barrier();
    let t_start = comm.now();
    for k in 0..cfg.iterations() {
        // PsiPrep: clear the work buffers. The z buffer must be zero off
        // the sphere entries before the deposit; the plane slab must be
        // zero at non-stick xy positions before the forward scatter, or
        // stale values from the previous band group leak in.
        rec.compute(StateClass::PsiPrep, flops.prep, || {
            pipe.zbuf.fill(Complex64::ZERO);
            pipe.planes.fill(Complex64::ZERO);
        });

        // Pack: every member contributes its share of each of the T bands.
        let sends = rec.compute(StateClass::Pack, flops.pack / 2.0, || {
            let refs: Vec<&[Complex64]> = (0..t).map(|j| shares[k * t + j].as_slice()).collect();
            steps::pack_sends(&refs)
        });
        let recv = pack_comm.alltoallv(sends, 0);
        rec.compute(StateClass::Pack, flops.pack / 2.0, || {
            steps::deposit_pack_recv(l, g, &recv, &mut pipe.zbuf);
        });

        transform_core(problem, g, &scatter_comm, 0, &mut pipe, &plans, &flops, &rec);

        // Unpack: give every member back its share of its band.
        let sends = rec.compute(StateClass::Unpack, flops.pack / 2.0, || {
            steps::extract_unpack_sends(l, g, &pipe.zbuf)
        });
        let recv = pack_comm.alltoallv(sends, 1);
        rec.compute(StateClass::Unpack, flops.pack / 2.0, || {
            for (j, share) in recv.into_iter().enumerate() {
                shares[k * t + j] = share;
            }
        });
    }
    comm.barrier();
    let t_end = comm.now();
    (shares, t_end - t_start)
}

/// Reassembles bands from per-rank shares and closes the trace.
pub fn finish_run(
    problem: &Problem,
    sink: TraceSink,
    results: Vec<(Vec<Vec<Complex64>>, f64)>,
) -> RunOutput {
    let fft_phase_s = results
        .iter()
        .map(|(_, t)| *t)
        .fold(0.0_f64, f64::max);
    let nbnd = problem.config.nbnd;
    let bands = (0..nbnd)
        .map(|b| {
            let shares: Vec<Vec<Complex64>> =
                results.iter().map(|(s, _)| s[b].clone()).collect();
            assemble_shares(&problem.layout.set, &problem.layout.dist, &shares)
        })
        .collect();
    RunOutput {
        bands,
        trace: sink.finish(),
        fft_phase_s,
    }
}
