//! The original FFTXlib kernel: static two-layer MPI parallelisation with
//! FFT task groups (Fig. 1 of the paper), executed for real on virtual MPI
//! ranks with actual FFT math and data movement.
//!
//! Per outer iteration k (bands `kT .. (k+1)T`), every rank `g*T + i` runs:
//!
//! ```text
//! pack    : Alltoallv in the task group  (band shares -> band k*T+i on U_g)
//! FFT z   : inverse 1-D FFTs over the group's sticks
//! scatter : padded Alltoall in the strided family (sticks -> plane slab)
//! FFT xy  : inverse 2-D FFTs over the owned planes
//! VOFR    : psi(r) *= V(r)
//! FFT xy  : forward
//! scatter : Alltoall back (planes -> sticks)
//! FFT z   : forward
//! unpack  : Alltoallv back (band k*T+i -> band shares)
//! ```
//!
//! Since the stage-graph refactor (DESIGN.md §13) the pipeline itself lives
//! in [`crate::stages`]: this kernel is the [`SchedulerPolicy::Serial`]
//! scheduling of the shared stage graph, looping
//! [`crate::stages::StageRunner::band_batch`] over the rank's
//! [`crate::plan::BufferArena`]. After the first iteration warms the arena,
//! the engine side of the loop performs no heap allocation (DESIGN.md §12).
//! This module keeps the run output/flop-estimate types and the original
//! entry points.

use crate::problem::Problem;
use crate::stages::{run_policy_chaotic, SchedulerPolicy};
use fftx_fft::opcount;
use fftx_fft::Complex64;
use fftx_pw::{assemble_shares, TaskGroupLayout};
use fftx_trace::{Trace, TraceSink};
use std::sync::Arc;

/// Result of a real execution.
pub struct RunOutput {
    /// Updated bands, reassembled into canonical order.
    pub bands: Vec<Vec<Complex64>>,
    /// The recorded trace (compute bursts, MPI calls, tasks, stage spans).
    pub trace: Trace,
    /// FFT-phase wall time: max over ranks of the barrier-to-barrier span.
    pub fft_phase_s: f64,
}

/// Per-iteration flop estimates used for trace counters.
pub struct StepFlops {
    /// PsiPrep (buffer clearing).
    pub prep: f64,
    /// Pack/unpack deposit copies.
    pub pack: f64,
    /// The z-FFT batch.
    pub fft_z: f64,
    /// Local copies around the scatter.
    pub scatter_copy: f64,
    /// The xy-FFT batch.
    pub fft_xy: f64,
    /// The VOFR point-wise multiply.
    pub vofr: f64,
}

impl StepFlops {
    /// Estimates for the rank in task group `g`.
    pub fn for_group(problem: &Problem, g: usize) -> Self {
        Self::for_layout(&problem.layout, g)
    }

    /// Estimates for task group `g` of an explicit layout (the recovery
    /// engine re-plans the layout mid-run, away from the problem's own).
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        let grid = l.grid;
        let nst = l.nst_group(g);
        let npp = l.npp(g);
        let plane = grid.nr1 * grid.nr2;
        StepFlops {
            // The prep phase clears/initialises both work buffers (the
            // paper's conspicuous low-IPC "psi preparation" segment).
            prep: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            pack: opcount::copy_flops(l.ngw_group(g)),
            fft_z: opcount::fft_z_batch_flops(grid.nr3, nst),
            scatter_copy: opcount::copy_flops(nst * grid.nr3 + npp * plane),
            fft_xy: opcount::fft_xy_batch_flops(grid.nr1, grid.nr2, npp),
            vofr: opcount::pointwise_mul_flops(npp * plane),
        }
    }
}

/// Runs the original static kernel on R×T virtual MPI ranks and returns the
/// reassembled bands, trace and FFT-phase time.
pub fn run_original(problem: &Arc<Problem>) -> RunOutput {
    run_original_chaotic(problem, None).0
}

/// [`run_original`] with explicit chaos injection: when `chaos` is `Some`,
/// the transport perturbs message timing per the seeded config (the output
/// must be bit-identical — chaos is lossless by construction) and the fault
/// schedule comes back alongside the run. `None` defers to the
/// `FFTX_CHAOS_*` environment, like every `World`.
pub fn run_original_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<fftx_vmpi::ChaosConfig>,
) -> (RunOutput, Option<fftx_vmpi::FaultReport>) {
    run_policy_chaotic(problem, SchedulerPolicy::Serial, chaos)
}

/// Reassembles bands from per-rank shares and closes the trace.
pub fn finish_run(
    problem: &Problem,
    sink: TraceSink,
    results: Vec<(Vec<Vec<Complex64>>, f64)>,
) -> RunOutput {
    let fft_phase_s = results
        .iter()
        .map(|(_, t)| *t)
        .fold(0.0_f64, f64::max);
    let nbnd = problem.config.nbnd;
    let bands = (0..nbnd)
        .map(|b| {
            let shares: Vec<Vec<Complex64>> =
                results.iter().map(|(s, _)| s[b].clone()).collect();
            assemble_shares(&problem.layout.set, &problem.layout.dist, &shares)
        })
        .collect();
    RunOutput {
        bands,
        trace: sink.finish(),
        fft_phase_s,
    }
}
