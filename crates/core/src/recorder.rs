//! Helper for stamping compute bursts into the trace from the real
//! execution engines.

use fftx_trace::{ComputeRecord, Lane, StageRecord, StateClass, TraceSink, WallClock};

/// Nominal clock used to convert real durations into "cycles" for the trace
/// counters (KNL's 1.4 GHz). Only the *consistency* matters: IPC values on
/// real traces are indicative, the calibrated IPC story lives in the KNL
/// simulator.
pub const NOMINAL_HZ: f64 = 1.4e9;

/// Records compute bursts for one lane.
#[derive(Clone)]
pub struct Recorder {
    sink: Option<TraceSink>,
    clock: WallClock,
    rank: usize,
}

impl Recorder {
    /// A recorder for `rank`, stamping with `clock` into `sink`.
    pub fn new(sink: Option<TraceSink>, clock: WallClock, rank: usize) -> Self {
        Recorder { sink, clock, rank }
    }

    /// Current time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Runs `f`, recording it as a compute burst of `class` with the given
    /// flop estimate. The thread index is taken from the lane context set by
    /// the task runtime (0 on plain MPI ranks).
    pub fn compute<R>(&self, class: StateClass, flops: f64, f: impl FnOnce() -> R) -> R {
        let t0 = self.clock.now();
        let out = f();
        let t1 = self.clock.now();
        if let Some(sink) = &self.sink {
            sink.compute(ComputeRecord {
                lane: Lane::new(self.rank, fftx_trace::current_thread()),
                class,
                t_start: t0,
                t_end: t1,
                instructions: flops,
                cycles: (t1 - t0) * NOMINAL_HZ,
            });
        }
        out
    }

    /// Adds `n` to counter `key` in the trace log — the hook the recovery
    /// and integrity layers use to publish retry/rollback/detection tallies
    /// into the same columnar store the execution records land in.
    pub fn counter(&self, key: &str, n: u64) {
        if let Some(sink) = &self.sink {
            sink.counter(key, n);
        }
    }

    /// Runs `f`, recording it as a span of stage-graph node `stage` on band
    /// `band`. The span covers everything inside `f` — the stage's compute
    /// bursts and any communication — so per-stage histograms see the
    /// stage's full cost regardless of which scheduler policy executed it.
    pub fn stage<R>(&self, stage: u32, band: usize, f: impl FnOnce() -> R) -> R {
        let t0 = self.clock.now();
        let out = f();
        let t1 = self.clock.now();
        if let Some(sink) = &self.sink {
            sink.stage(StageRecord {
                lane: Lane::new(self.rank, fftx_trace::current_thread()),
                stage,
                band: band as u32,
                t_start: t0,
                t_end: t1,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_burst_with_counters() {
        let sink = TraceSink::new();
        let rec = Recorder::new(Some(sink.clone()), WallClock::new(), 5);
        let out = rec.compute(StateClass::Vofr, 1234.0, || 7);
        assert_eq!(out, 7);
        let t = sink.finish();
        assert_eq!(t.compute.len(), 1);
        assert_eq!(t.compute[0].lane.rank, 5);
        assert_eq!(t.compute[0].class, StateClass::Vofr);
        assert_eq!(t.compute[0].instructions, 1234.0);
        assert!(t.compute[0].t_end >= t.compute[0].t_start);
    }

    #[test]
    fn no_sink_is_a_passthrough() {
        let rec = Recorder::new(None, WallClock::new(), 0);
        assert_eq!(rec.compute(StateClass::Pack, 0.0, || 42), 42);
        assert_eq!(rec.stage(3, 1, || 42), 42);
        rec.counter("noop", 1); // no sink: silently dropped
    }

    #[test]
    fn counters_accumulate_in_the_log() {
        let sink = TraceSink::new();
        let rec = Recorder::new(Some(sink.clone()), WallClock::new(), 0);
        rec.counter("recovery.retries", 2);
        rec.counter("recovery.retries", 3);
        assert_eq!(sink.counter_total("recovery.retries"), 5);
    }

    #[test]
    fn records_stage_span_enclosing_compute() {
        let sink = TraceSink::new();
        let rec = Recorder::new(Some(sink.clone()), WallClock::new(), 2);
        let out = rec.stage(7, 4, || rec.compute(StateClass::FftZ, 10.0, || 1));
        assert_eq!(out, 1);
        let t = sink.finish();
        assert_eq!(t.stages.len(), 1);
        let s = t.stages[0];
        assert_eq!((s.stage, s.band, s.lane.rank), (7, 4, 2));
        assert!(s.t_start <= t.compute[0].t_start && s.t_end >= t.compute[0].t_end);
    }
}
