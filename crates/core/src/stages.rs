//! The unified stage-graph execution core.
//!
//! Every engine in this crate runs the same per-band pipeline — pack,
//! z-FFT, forward scatter, xy-FFTs around VOFR, backward scatter, z-FFT,
//! unpack. Historically each engine (`original`, the two OmpSs strategies,
//! the split-phase variant) hand-wired that pipeline a second, third and
//! fourth time; this module replaces them with **one typed stage graph**
//! executed by interchangeable **scheduler policies**:
//!
//! * [`StageKind`] / [`StageNode`] / [`BAND_PIPELINE`] — the declarative
//!   graph: each stage declares which logical [`Slot`]s it reads and
//!   writes. Node ids are stable, so traces, histograms and recovery key
//!   on the graph instead of on per-mode label conventions.
//! * [`StageRunner`] — the one implementation of every stage's math and
//!   data movement against [`ExecPlan`]/[`BufferArena`], recording the
//!   per-stage trace spans ([`crate::recorder::Recorder::stage`]) once for
//!   all policies. Recovery replays ([`StageRunner::band_batch`],
//!   [`StageRunner::band_fused`]) and fault injection hook here too.
//! * [`SchedulerPolicy`] — how the graph is scheduled:
//!   [`SchedulerPolicy::Serial`] (the original static loop),
//!   [`SchedulerPolicy::TaskPerStep`] (strategy 1: one task per stage,
//!   flow dependencies), [`SchedulerPolicy::TaskPerFft`] (strategy 2: the
//!   whole band is one task), [`SchedulerPolicy::TaskAsync`] (split-phase
//!   scatters), and the paper's future-work [`SchedulerPolicy::Hybrid`].
//!
//! **The hybrid policy** (Section VI of the paper) combines both
//! strategies: each band becomes a *chain of three* fused tasks — head
//! (pack + z-FFT + scatter post), mid (scatter wait + xy-FFTs + VOFR +
//! return post) and tail (wait + z-FFT + unpack) — whose boundaries are
//! exactly the nonblocking collectives. Communication overlaps other
//! bands' compute (strategy 1's win) *and* the coarse per-band tasks
//! de-synchronise the compute phases across ranks (strategy 2's win).
//! Deadlock freedom follows the split-phase argument of the async mode:
//! posts live at the *end* of never-blocking tasks at band priority, so
//! every rank drains all posts of a band before any worker can idle in the
//! matching wait (waits carry deferred priority `b + nbnd`).
//!
//! Task policies build a [`fftx_taskrt::TaskGraph`] whose dependencies are
//! declared over pure slots minted by [`fftx_taskrt::SlotArena`]
//! (`taskrt`'s dependency-slot spawn API): the graph shape comes from
//! [`BAND_PIPELINE`], the data placement from the policy.

use crate::config::{Decomposition, Mode};
use crate::original::{finish_run, RunOutput, StepFlops};
use crate::plan::{BufferArena, ExecPlan};
use crate::problem::Problem;
use crate::recorder::Recorder;
use fftx_fft::{cft_1z, cft_2xy_buf, Complex64, Direction};
use fftx_pw::{apply_potential_slab, ProcessGrid, TaskGroupLayout};
use fftx_taskrt::{Dep, Handle, Runtime, Shared, SlotArena, TaskGraph};
use fftx_trace::{StateClass, TraceSink};
use fftx_vmpi::{
    AlltoallRequest, ChaosConfig, Communicator, FaultReport, VmpiError, World,
};
use std::sync::Arc;

// ---------------------------------------------------------------------
// The stage graph
// ---------------------------------------------------------------------

/// A node of the per-band pipeline, with a stable numeric id used to key
/// trace spans and histograms across every scheduler policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// Clear/initialise the work buffers (the paper's "psi preparation").
    Prep,
    /// Deposit band shares onto the z-stick buffer.
    Pack,
    /// Inverse 1-D FFT batch along z.
    FftZInv,
    /// Forward scatter: sticks → plane slab (padded Alltoall).
    ScatterFwd,
    /// Inverse 2-D FFT batch over the owned planes.
    FftXyInv,
    /// Point-wise ψ(r)·V(r).
    Vofr,
    /// Forward 2-D FFT batch.
    FftXyFwd,
    /// Backward scatter: planes → sticks.
    ScatterBwd,
    /// Forward 1-D FFT batch along z.
    FftZFwd,
    /// Extract the band shares back out of the z-stick buffer.
    Unpack,
}

impl StageKind {
    /// Every stage, in pipeline order.
    pub const ALL: [StageKind; 10] = [
        StageKind::Prep,
        StageKind::Pack,
        StageKind::FftZInv,
        StageKind::ScatterFwd,
        StageKind::FftXyInv,
        StageKind::Vofr,
        StageKind::FftXyFwd,
        StageKind::ScatterBwd,
        StageKind::FftZFwd,
        StageKind::Unpack,
    ];

    /// Stable node id (the `stage` field of trace records).
    pub fn id(self) -> u32 {
        self as u32
    }

    /// The stage of node id `id`.
    pub fn from_id(id: u32) -> Option<StageKind> {
        Self::ALL.get(id as usize).copied()
    }

    /// Short name (doubles as the task-label stem, `"<name>[<band>]"`).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Prep => "prep",
            StageKind::Pack => "pack",
            StageKind::FftZInv => "fftz-inv",
            StageKind::ScatterFwd => "scatter-fw",
            StageKind::FftXyInv => "fftxy-inv",
            StageKind::Vofr => "vofr",
            StageKind::FftXyFwd => "fftxy-fw",
            StageKind::ScatterBwd => "scatter-bw",
            StageKind::FftZFwd => "fftz-fw",
            StageKind::Unpack => "unpack",
        }
    }

    /// The trace state class of the stage's compute.
    pub fn class(self) -> StateClass {
        match self {
            StageKind::Prep => StateClass::PsiPrep,
            StageKind::Pack => StateClass::Pack,
            StageKind::FftZInv | StageKind::FftZFwd => StateClass::FftZ,
            StageKind::ScatterFwd | StageKind::ScatterBwd => StateClass::Other,
            StageKind::FftXyInv | StageKind::FftXyFwd => StateClass::FftXy,
            StageKind::Vofr => StateClass::Vofr,
            StageKind::Unpack => StateClass::Unpack,
        }
    }
}

/// A logical data slot of one band's pipeline. Policies decide where the
/// data actually lives; the graph only needs the slot identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The band's share of the wavefunction (pipeline input and output).
    Share,
    /// The z-stick buffer.
    Zbuf,
    /// The xy-plane slab.
    Planes,
    /// The in-flight forward-scatter request (split-phase policies only).
    ReqFwd,
    /// The in-flight backward-scatter request.
    ReqBwd,
}

/// One stage with its declared slot accesses. A slot in both lists is an
/// `inout` dependency.
#[derive(Debug, Clone, Copy)]
pub struct StageNode {
    /// Which stage.
    pub kind: StageKind,
    /// Slots the stage reads.
    pub reads: &'static [Slot],
    /// Slots the stage writes.
    pub writes: &'static [Slot],
}

/// The per-band pipeline as task-graph nodes. `Prep` is absent: task
/// policies give every band fresh zeroed buffers (prep is what a fresh
/// allocation already did), while the serial policy runs it explicitly
/// against its reused arena.
pub const BAND_PIPELINE: [StageNode; 9] = [
    StageNode {
        kind: StageKind::Pack,
        reads: &[Slot::Share],
        writes: &[Slot::Zbuf],
    },
    StageNode {
        kind: StageKind::FftZInv,
        reads: &[Slot::Zbuf],
        writes: &[Slot::Zbuf],
    },
    StageNode {
        kind: StageKind::ScatterFwd,
        reads: &[Slot::Zbuf, Slot::Planes],
        writes: &[Slot::Planes],
    },
    StageNode {
        kind: StageKind::FftXyInv,
        reads: &[Slot::Planes],
        writes: &[Slot::Planes],
    },
    StageNode {
        kind: StageKind::Vofr,
        reads: &[Slot::Planes],
        writes: &[Slot::Planes],
    },
    StageNode {
        kind: StageKind::FftXyFwd,
        reads: &[Slot::Planes],
        writes: &[Slot::Planes],
    },
    StageNode {
        kind: StageKind::ScatterBwd,
        reads: &[Slot::Planes, Slot::Zbuf],
        writes: &[Slot::Zbuf],
    },
    StageNode {
        kind: StageKind::FftZFwd,
        reads: &[Slot::Zbuf],
        writes: &[Slot::Zbuf],
    },
    StageNode {
        kind: StageKind::Unpack,
        reads: &[Slot::Zbuf],
        writes: &[Slot::Share],
    },
];

/// One band's dependency slots, minted fresh per band (bands are mutually
/// independent; the slots only order the stages *within* a band).
#[derive(Debug, Clone, Copy)]
pub struct BandSlots {
    share: Handle,
    zbuf: Handle,
    planes: Handle,
    req_fwd: Handle,
    req_bwd: Handle,
}

impl BandSlots {
    /// Mints the five slots of one band.
    pub fn mint(arena: &mut SlotArena) -> Self {
        BandSlots {
            share: arena.mint(),
            zbuf: arena.mint(),
            planes: arena.mint(),
            req_fwd: arena.mint(),
            req_bwd: arena.mint(),
        }
    }

    /// The handle backing `slot`.
    pub fn handle(&self, slot: Slot) -> Handle {
        match slot {
            Slot::Share => self.share,
            Slot::Zbuf => self.zbuf,
            Slot::Planes => self.planes,
            Slot::ReqFwd => self.req_fwd,
            Slot::ReqBwd => self.req_bwd,
        }
    }
}

impl StageNode {
    /// The node's dependency list over one band's slots: read-only slots
    /// become `in`, write-only `out`, read+write `inout`.
    pub fn deps(&self, slots: &BandSlots) -> Vec<Dep> {
        let mut deps = Vec::with_capacity(self.reads.len() + self.writes.len());
        for &s in self.reads {
            if self.writes.contains(&s) {
                deps.push(slots.handle(s).dep_inout());
            } else {
                deps.push(slots.handle(s).dep_in());
            }
        }
        for &s in self.writes {
            if !self.reads.contains(&s) {
                deps.push(slots.handle(s).dep_out());
            }
        }
        deps
    }
}

// ---------------------------------------------------------------------
// Scatter communicators (the decomposition axis at the transport level)
// ---------------------------------------------------------------------

/// The row/column communicator pair of the pencil lowering: `row` spans
/// the p2 ranks sharing a process-grid row (member index = column),
/// `col` the p1 ranks sharing a column (member index = row).
pub struct PencilComms {
    /// Row communicator (phase-1 exchange, size p2).
    pub row: Communicator,
    /// Column communicator (phase-2 exchange, size p1).
    pub col: Communicator,
}

/// The communicator bundle of the scatter exchange — the transport half of
/// the decomposition axis. Slab uses `full` directly; pencil additionally
/// carries the row/column split of the family. Both row and column
/// exchanges reuse the caller's tag: the communicators are distinct, so
/// their matching spaces never collide.
pub struct ScatterComms {
    /// The whole scatter family.
    pub full: Communicator,
    /// The pencil split, when the plan is lowered for pencil.
    pub pencil: Option<PencilComms>,
}

impl ScatterComms {
    /// Builds the bundle over a scatter-family communicator. The pencil
    /// splits are collective over `full`, so every family member must call
    /// this in the same order (exactly like the splits that created `full`
    /// itself).
    pub fn new(full: Communicator, decomp: Decomposition) -> Self {
        let pencil = match decomp {
            Decomposition::Slab => None,
            Decomposition::Pencil => {
                let pg = ProcessGrid::factor(full.size());
                let g = full.rank();
                let row = full.split(pg.row(g) as u64, pg.col(g));
                let col = full.split(pg.col(g) as u64, pg.row(g));
                Some(PencilComms { row, col })
            }
        };
        ScatterComms { full, pencil }
    }

    /// The communicator a scatter *post* goes out on: the row half under
    /// pencil (phase 2 completes in the wait), the full family under slab.
    pub fn post_comm(&self) -> &Communicator {
        self.pencil.as_ref().map_or(&self.full, |p| &p.row)
    }

    /// The decomposition this bundle serves.
    pub fn decomp(&self) -> Decomposition {
        if self.pencil.is_some() {
            Decomposition::Pencil
        } else {
            Decomposition::Slab
        }
    }
}

impl Clone for ScatterComms {
    fn clone(&self) -> Self {
        ScatterComms {
            full: self.full.clone(),
            pencil: self.pencil.as_ref().map(|p| PencilComms {
                row: p.row.clone(),
                col: p.col.clone(),
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Plan bundle (the one re-plan path)
// ---------------------------------------------------------------------

/// Execution plan plus flop estimates for one task group — everything a
/// [`StageRunner`] needs that depends on the layout. Built once per rank
/// through [`StagePlan::for_problem`]; recovery's eviction path rebuilds it
/// through [`StagePlan::for_layout`] after shrinking the world, so a single
/// re-plan covers every scheduler policy.
pub struct StagePlan {
    /// Precomputed index tables and interned FFT plans.
    pub plan: Arc<ExecPlan>,
    /// Per-stage flop estimates for the trace counters.
    pub flops: StepFlops,
}

impl StagePlan {
    /// The plan of task group `g` of the problem's own layout.
    pub fn for_problem(problem: &Problem, g: usize) -> Self {
        StagePlan {
            plan: Arc::clone(problem.exec_plan(g)),
            flops: StepFlops::for_group(problem, g),
        }
    }

    /// A plan for task group `g` of an explicit layout (the mid-run re-plan
    /// after a rank eviction, where the layout is only known at runtime).
    pub fn for_layout(l: &TaskGroupLayout, g: usize) -> Self {
        Self::for_layout_decomp(l, g, Decomposition::Slab)
    }

    /// [`StagePlan::for_layout`] under an explicit decomposition — the
    /// eviction re-plan must keep the surviving ranks on the decomposition
    /// the run started with.
    pub fn for_layout_decomp(l: &TaskGroupLayout, g: usize, decomp: Decomposition) -> Self {
        StagePlan {
            plan: Arc::new(ExecPlan::for_layout_decomp(l, g, decomp)),
            flops: StepFlops::for_layout(l, g),
        }
    }

    /// A runner over this plan for one rank's recorder.
    pub fn runner<'a>(&'a self, v: &'a [f64], rec: &'a Recorder) -> StageRunner<'a> {
        StageRunner {
            plan: &self.plan,
            v,
            flops: &self.flops,
            rec,
        }
    }
}

// ---------------------------------------------------------------------
// Stage bodies
// ---------------------------------------------------------------------

/// Stages the pack send: the T band shares of iteration base `base`,
/// flattened member-major into `sharebuf` with per-member `counts`.
fn stage_pack_sends(
    shares: &[Vec<Complex64>],
    base: usize,
    t: usize,
    sharebuf: &mut Vec<Complex64>,
    counts: &mut Vec<usize>,
) {
    sharebuf.clear();
    counts.clear();
    for j in 0..t {
        let s = &shares[base + j];
        sharebuf.extend_from_slice(s);
        counts.push(s.len());
    }
}

/// Scatters the flat unpack receive back into the band shares (member `j`
/// returned this rank's share of band `base + j`), reusing each share's
/// capacity.
fn unstage_unpack_recv(
    shares: &mut [Vec<Complex64>],
    base: usize,
    sharebuf: &[Complex64],
    recv_counts: &[usize],
) {
    let mut off = 0;
    for (j, &n) in recv_counts.iter().enumerate() {
        let dst = &mut shares[base + j];
        dst.clear();
        dst.extend_from_slice(&sharebuf[off..off + n]);
        off += n;
    }
}

/// Executes stages for one rank: the single implementation of every
/// stage's math and data movement, shared by all scheduler policies and by
/// the recovery engine. Each method records the stage's trace span and the
/// compute bursts the engines always recorded (classes, flop estimates and
/// order are unchanged — traces stay comparable across the refactor).
pub struct StageRunner<'a> {
    /// Precomputed tables.
    pub plan: &'a ExecPlan,
    /// The local potential V(r).
    pub v: &'a [f64],
    /// Flop estimates.
    pub flops: &'a StepFlops,
    /// The rank's recorder.
    pub rec: &'a Recorder,
}

impl StageRunner<'_> {
    fn span<R>(&self, kind: StageKind, band: usize, f: impl FnOnce() -> R) -> R {
        self.rec.stage(kind.id(), band, f)
    }

    /// `Prep`: re-zero the reused work buffers (serial policy and fused
    /// per-band tasks, whose arenas carry state between bands).
    pub fn prep(&self, band: usize, zbuf: &mut Vec<Complex64>, planes: &mut Vec<Complex64>) {
        self.span(StageKind::Prep, band, || {
            self.rec.compute(StateClass::PsiPrep, self.flops.prep, || {
                self.plan.prep(zbuf, planes);
            })
        })
    }

    /// `Pack`, local form (task layouts have T = 1: the "redistribution"
    /// is a deposit of the rank's own share).
    pub fn pack_local(&self, band: usize, share: &[Complex64], zbuf: &mut [Complex64]) {
        self.span(StageKind::Pack, band, || {
            self.rec.compute(StateClass::Pack, self.flops.pack, || {
                self.plan.deposit_member(0, share, zbuf);
            })
        })
    }

    /// `Pack`, collective form (serial policy): every member contributes
    /// its share of each of the batch's T bands via `alltoallv`.
    pub fn pack_exchange(
        &self,
        base: usize,
        shares: &[Vec<Complex64>],
        pack_comm: &Communicator,
        a: &mut BufferArena,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::Pack, base, || {
            self.rec.compute(StateClass::Pack, self.flops.pack / 2.0, || {
                stage_pack_sends(shares, base, self.plan.t, &mut a.sharebuf, &mut a.counts);
            });
            pack_comm.try_alltoallv_into(
                &a.sharebuf,
                &a.counts,
                &mut a.groupbuf,
                &mut a.recv_counts,
                0,
            )?;
            self.rec.compute(StateClass::Pack, self.flops.pack / 2.0, || {
                self.plan.deposit_stream(&a.groupbuf, &mut a.zbuf);
            });
            Ok(())
        })
    }

    /// `FftZInv`/`FftZFwd`: the 1-D FFT batch over the group's sticks.
    pub fn fft_z(
        &self,
        kind: StageKind,
        band: usize,
        zbuf: &mut [Complex64],
        scratch: &mut Vec<Complex64>,
    ) {
        let dir = match kind {
            StageKind::FftZInv => Direction::Inverse,
            StageKind::FftZFwd => Direction::Forward,
            other => unreachable!("fft_z stage kind {other:?}"),
        };
        self.span(kind, band, || {
            self.rec.compute(StateClass::FftZ, self.flops.fft_z, || {
                cft_1z(
                    &self.plan.z,
                    zbuf,
                    self.plan.nst,
                    self.plan.grid.nr3,
                    dir,
                    scratch,
                );
            })
        })
    }

    /// `FftXyInv`/`FftXyFwd`: the 2-D FFT batch over the owned planes.
    pub fn fft_xy(
        &self,
        kind: StageKind,
        band: usize,
        planes: &mut [Complex64],
        scratch: &mut Vec<Complex64>,
        col: &mut Vec<Complex64>,
    ) {
        let dir = match kind {
            StageKind::FftXyInv => Direction::Inverse,
            StageKind::FftXyFwd => Direction::Forward,
            other => unreachable!("fft_xy stage kind {other:?}"),
        };
        self.span(kind, band, || {
            self.rec.compute(StateClass::FftXy, self.flops.fft_xy, || {
                cft_2xy_buf(
                    &self.plan.x,
                    &self.plan.y,
                    planes,
                    self.plan.npp,
                    self.plan.grid.nr1,
                    self.plan.grid.nr2,
                    dir,
                    scratch,
                    col,
                );
            })
        })
    }

    /// `Vofr`: apply the local potential on the owned slab.
    pub fn vofr(&self, band: usize, planes: &mut [Complex64]) {
        self.span(StageKind::Vofr, band, || {
            self.rec.compute(StateClass::Vofr, self.flops.vofr, || {
                apply_potential_slab(planes, self.v, &self.plan.grid, self.plan.z0, self.plan.npp);
            })
        })
    }

    /// The exchange leg of a blocking scatter: one full-family alltoall
    /// under slab; row alltoall → chunk-transpose restage → column
    /// alltoall under pencil. Phase 2 lands the receive buffer in slab
    /// order (see [`ExecPlan::pencil_restage`]), so the unpack side is
    /// decomposition-blind. Both phases reuse `tag` — the communicators
    /// differ, so the matching spaces are disjoint.
    fn scatter_exchange(
        &self,
        sc: &ScatterComms,
        tag: u32,
        send: &[Complex64],
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        match &sc.pencil {
            None => sc.full.try_alltoall_into(send, recv, tag),
            Some(p) => {
                p.row.try_alltoall_into(send, recv, tag)?;
                self.rec
                    .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                        self.plan.pencil_restage(recv, mid);
                    });
                p.col.try_alltoall_into(mid, recv, tag)
            }
        }
    }

    /// Completes a split-phase scatter: wait for the posted phase (the row
    /// alltoall under pencil, the whole exchange under slab), then run
    /// pencil's restage + blocking column alltoall. The column exchange
    /// inside a wait cannot deadlock: waits of band `b` carry deferred
    /// priority `b + nbnd` on every rank, so all ranks order their
    /// outstanding column collectives identically (see DESIGN.md §18).
    fn scatter_finish(
        &self,
        sc: &ScatterComms,
        tag: u32,
        req: AlltoallRequest<Complex64>,
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        req.wait_into(recv);
        if let Some(p) = &sc.pencil {
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                    self.plan.pencil_restage(recv, mid);
                });
            p.col.try_alltoall_into(mid, recv, tag)?;
        }
        Ok(())
    }

    /// `ScatterFwd`, fused blocking form: pack sticks, padded exchange
    /// (one or two alltoalls per the decomposition), unpack onto the plane
    /// slab.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_fwd(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        zbuf: &[Complex64],
        planes: &mut [Complex64],
        send: &mut Vec<Complex64>,
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::ScatterFwd, band, || {
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                    self.plan.scatter_pack(zbuf, send);
                });
            self.scatter_exchange(sc, tag, send, recv, mid)?;
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                    self.plan.scatter_unpack_to_planes(recv, planes);
                });
            Ok(())
        })
    }

    /// `ScatterFwd`, split-phase post half: never blocks — the transport
    /// stages its own copy of the send, so the staging buffer is free for
    /// reuse the moment the post returns. Under pencil this posts the row
    /// phase; the wait half completes the column phase.
    pub fn scatter_fwd_post(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        zbuf: &[Complex64],
        send: &mut Vec<Complex64>,
    ) -> AlltoallRequest<Complex64> {
        self.span(StageKind::ScatterFwd, band, || {
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 4.0, || {
                    self.plan.scatter_pack(zbuf, send);
                });
            sc.post_comm().ialltoall(send, tag)
        })
    }

    /// `ScatterFwd`, split-phase wait half: blocks only for the
    /// unoverlapped remainder of the transfer (plus, under pencil, the
    /// column exchange).
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_fwd_wait(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        req: AlltoallRequest<Complex64>,
        planes: &mut [Complex64],
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::ScatterFwd, band, || {
            self.scatter_finish(sc, tag, req, recv, mid)?;
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 4.0, || {
                    self.plan.scatter_unpack_to_planes(recv, planes);
                });
            Ok(())
        })
    }

    /// `ScatterBwd`, fused blocking form.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_bwd(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        planes: &[Complex64],
        zbuf: &mut [Complex64],
        send: &mut Vec<Complex64>,
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::ScatterBwd, band, || {
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                    self.plan.planes_to_scatter(planes, send);
                });
            self.scatter_exchange(sc, tag, send, recv, mid)?;
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 2.0, || {
                    self.plan.zbuf_from_scatter(recv, zbuf);
                });
            Ok(())
        })
    }

    /// `ScatterBwd`, split-phase post half.
    pub fn scatter_bwd_post(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        planes: &[Complex64],
        send: &mut Vec<Complex64>,
    ) -> AlltoallRequest<Complex64> {
        self.span(StageKind::ScatterBwd, band, || {
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 4.0, || {
                    self.plan.planes_to_scatter(planes, send);
                });
            sc.post_comm().ialltoall(send, tag)
        })
    }

    /// `ScatterBwd`, split-phase wait half.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_bwd_wait(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        req: AlltoallRequest<Complex64>,
        zbuf: &mut [Complex64],
        recv: &mut Vec<Complex64>,
        mid: &mut Vec<Complex64>,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::ScatterBwd, band, || {
            self.scatter_finish(sc, tag, req, recv, mid)?;
            self.rec
                .compute(StateClass::Other, self.flops.scatter_copy / 4.0, || {
                    self.plan.zbuf_from_scatter(recv, zbuf);
                });
            Ok(())
        })
    }

    /// `Unpack`, local form: back to the band share.
    pub fn unpack_local(&self, band: usize, zbuf: &[Complex64], share: &mut Vec<Complex64>) {
        self.span(StageKind::Unpack, band, || {
            self.rec.compute(StateClass::Unpack, self.flops.pack, || {
                self.plan.extract_member(0, zbuf, share);
            })
        })
    }

    /// `Unpack`, collective form: give every member back its share.
    pub fn unpack_exchange(
        &self,
        base: usize,
        shares: &mut [Vec<Complex64>],
        pack_comm: &Communicator,
        a: &mut BufferArena,
    ) -> Result<(), VmpiError> {
        self.span(StageKind::Unpack, base, || {
            self.rec.compute(StateClass::Unpack, self.flops.pack / 2.0, || {
                self.plan
                    .extract_stream(&a.zbuf, &mut a.groupbuf, &mut a.counts);
            });
            pack_comm.try_alltoallv_into(
                &a.groupbuf,
                &a.counts,
                &mut a.sharebuf,
                &mut a.recv_counts,
                1,
            )?;
            self.rec.compute(StateClass::Unpack, self.flops.pack / 2.0, || {
                unstage_unpack_recv(shares, base, &a.sharebuf, &a.recv_counts);
            });
            Ok(())
        })
    }

    /// The pipeline middle (z-FFT → scatter → xy-FFTs/VOFR → scatter →
    /// z-FFT) over the arena's buffers. `tag` keeps concurrent scatters of
    /// different bands apart.
    pub fn transform(
        &self,
        band: usize,
        sc: &ScatterComms,
        tag: u32,
        a: &mut BufferArena,
    ) -> Result<(), VmpiError> {
        let BufferArena {
            zbuf,
            planes,
            scratch,
            col,
            scatter_send,
            scatter_recv,
            pencil_mid,
            ..
        } = a;
        self.fft_z(StageKind::FftZInv, band, zbuf, scratch);
        self.scatter_fwd(band, sc, tag, zbuf, planes, scatter_send, scatter_recv, pencil_mid)?;
        self.fft_xy(StageKind::FftXyInv, band, planes, scratch, col);
        self.vofr(band, planes);
        self.fft_xy(StageKind::FftXyFwd, band, planes, scratch, col);
        self.scatter_bwd(band, sc, tag, planes, zbuf, scatter_send, scatter_recv, pencil_mid)?;
        self.fft_z(StageKind::FftZFwd, band, zbuf, scratch);
        Ok(())
    }

    /// One band batch of the serial policy (bands `base .. base + T`):
    /// prep, collective pack, transform, collective unpack — every
    /// collective fallible. This is also recovery's replay unit: when
    /// `inject_abort` is set the batch fails *mid-flight* with the same
    /// typed error a real watchdog expiry produces (the pack collective has
    /// completed — its sequence number is consumed symmetrically on every
    /// rank — the scatter never runs), so the rollback path cannot tell it
    /// from a real timeout.
    #[allow(clippy::too_many_arguments)]
    pub fn band_batch(
        &self,
        base: usize,
        pack_comm: &Communicator,
        scatter_comm: &ScatterComms,
        shares: &mut [Vec<Complex64>],
        a: &mut BufferArena,
        inject_abort: bool,
    ) -> Result<(), VmpiError> {
        self.prep(base, &mut a.zbuf, &mut a.planes);
        self.pack_exchange(base, shares, pack_comm, a)?;
        if inject_abort {
            return Err(VmpiError::Timeout {
                message: format!(
                    "vmpi deadlock: injected collective timeout in band batch starting at band {base}"
                ),
                diagnostic: String::new(),
            });
        }
        self.transform(base, scatter_comm, 0, a)?;
        self.unpack_exchange(base, shares, pack_comm, a)?;
        Ok(())
    }

    /// One whole band as a single fused body (the task-per-FFT policy and
    /// recovery's retryable band tasks): idempotent over the input
    /// snapshot — read the share, compute in the worker's arena (prep
    /// re-zeroes it on every attempt), write the share last.
    pub fn band_fused(
        &self,
        band: usize,
        sc: &ScatterComms,
        share: &Shared<Vec<Complex64>>,
        a: &mut BufferArena,
    ) -> Result<(), VmpiError> {
        self.prep(band, &mut a.zbuf, &mut a.planes);
        self.pack_local(band, &share.read(), &mut a.zbuf);
        self.transform(band, sc, band as u32, a)?;
        self.unpack_local(band, &a.zbuf, &mut share.write());
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scheduler policies
// ---------------------------------------------------------------------

/// How the stage graph is scheduled — the engine-selection axis the
/// `FFTX_SCHEDULER` environment knob exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// The original static loop: R×T MPI ranks, collective pack, one batch
    /// of T bands per iteration.
    Serial,
    /// Strategy 1 (Fig. 4): one task per stage with flow dependencies.
    TaskPerStep,
    /// Strategy 2 (Fig. 5): one task per band.
    TaskPerFft,
    /// Strategy 1 with split-phase scatters (post/wait tasks).
    TaskAsync,
    /// The paper's future-work combination: three fused tasks per band
    /// split at the nonblocking collectives — overlap *and* de-sync.
    Hybrid,
}

impl SchedulerPolicy {
    /// Every policy.
    pub const ALL: [SchedulerPolicy; 5] = [
        SchedulerPolicy::Serial,
        SchedulerPolicy::TaskPerStep,
        SchedulerPolicy::TaskPerFft,
        SchedulerPolicy::TaskAsync,
        SchedulerPolicy::Hybrid,
    ];

    /// The policy scheduling a configuration's [`Mode`].
    pub fn for_mode(mode: Mode) -> Self {
        match mode {
            Mode::Original => SchedulerPolicy::Serial,
            Mode::TaskPerStep => SchedulerPolicy::TaskPerStep,
            Mode::TaskPerFft => SchedulerPolicy::TaskPerFft,
            Mode::TaskAsync => SchedulerPolicy::TaskAsync,
            Mode::Hybrid => SchedulerPolicy::Hybrid,
        }
    }

    /// The [`Mode`] this policy executes.
    pub fn mode(self) -> Mode {
        match self {
            SchedulerPolicy::Serial => Mode::Original,
            SchedulerPolicy::TaskPerStep => Mode::TaskPerStep,
            SchedulerPolicy::TaskPerFft => Mode::TaskPerFft,
            SchedulerPolicy::TaskAsync => Mode::TaskAsync,
            SchedulerPolicy::Hybrid => Mode::Hybrid,
        }
    }

    /// Short name (the `FFTX_SCHEDULER` value selecting this policy).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerPolicy::Serial => "serial",
            SchedulerPolicy::TaskPerStep => "step",
            SchedulerPolicy::TaskPerFft => "fft",
            SchedulerPolicy::TaskAsync => "async",
            SchedulerPolicy::Hybrid => "hybrid",
        }
    }

    /// Parses an `FFTX_SCHEDULER` value (the CLI mode spellings are
    /// accepted as aliases).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "serial" | "original" => Some(SchedulerPolicy::Serial),
            "step" | "steps" => Some(SchedulerPolicy::TaskPerStep),
            "fft" | "ffts" => Some(SchedulerPolicy::TaskPerFft),
            "async" => Some(SchedulerPolicy::TaskAsync),
            "hybrid" => Some(SchedulerPolicy::Hybrid),
            _ => None,
        }
    }

    /// The policy selected by the `FFTX_SCHEDULER` environment variable,
    /// if set to a valid value.
    pub fn from_env() -> Option<Self> {
        std::env::var("FFTX_SCHEDULER").ok().and_then(|s| Self::parse(&s))
    }
}

/// One empty arena per runtime worker; task bodies index with
/// [`fftx_trace::current_thread`] (a worker runs one task at a time, so
/// the `Shared` access check never trips).
pub(crate) fn worker_arenas(workers: usize) -> Arc<Vec<Shared<BufferArena>>> {
    Arc::new((0..workers).map(|_| Shared::new(BufferArena::new())).collect())
}

/// Runs the problem under `policy` and returns the reassembled bands,
/// trace and FFT-phase time.
pub fn run_policy(problem: &Arc<Problem>, policy: SchedulerPolicy) -> RunOutput {
    run_policy_chaotic(problem, policy, None).0
}

/// [`run_policy`] with explicit chaos injection: when `chaos` is `Some`,
/// the transport perturbs message timing per the seeded config (the output
/// must be bit-identical — chaos is lossless by construction) and the
/// fault schedule comes back alongside the run. `None` defers to the
/// `FFTX_CHAOS_*` environment, like every `World`.
pub fn run_policy_chaotic(
    problem: &Arc<Problem>,
    policy: SchedulerPolicy,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    let cfg = problem.config;
    assert_eq!(
        cfg.mode,
        policy.mode(),
        "run_policy: config mode must match the scheduler policy"
    );
    let sink = TraceSink::new();
    let mut world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| match policy {
        SchedulerPolicy::Serial => rank_serial(problem, comm),
        _ => rank_tasks(problem, comm, policy),
    });
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

/// Per-rank body of the serial policy: plan once, then an allocation-free
/// steady-state loop of band batches through the arena.
fn rank_serial(problem: &Problem, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let g = l.task_group_of(w);
    let i = l.member_of(w);

    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = ScatterComms::new(comm.split(i as u64, g), cfg.decomp);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let sp = StagePlan::for_problem(problem, g);
    let runner = sp.runner(&problem.v, &rec);
    let mut shares = problem.initial_shares(w);
    let mut arena = BufferArena::new();

    comm.barrier();
    let t_start = comm.now();
    for k in 0..cfg.iterations() {
        runner
            .band_batch(k * l.t, &pack_comm, &scatter_comm, &mut shares, &mut arena, false)
            .unwrap_or_else(|e| panic!("{e}"));
    }
    comm.barrier();
    let t_end = comm.now();
    (shares, t_end - t_start)
}

/// Context cloned into every task of one rank.
struct RankEnv {
    problem: Arc<Problem>,
    comm: Communicator,
    sc: Arc<ScatterComms>,
    sp: Arc<StagePlan>,
    arenas: Arc<Vec<Shared<BufferArena>>>,
}

impl RankEnv {
    fn recorder(&self) -> Recorder {
        Recorder::new(self.comm.trace_sink(), self.comm.clock(), self.comm.rank())
    }

    /// The running worker's arena (one task per worker at a time).
    fn arena(&self) -> &Shared<BufferArena> {
        &self.arenas[fftx_trace::current_thread()]
    }
}

impl Clone for RankEnv {
    fn clone(&self) -> Self {
        RankEnv {
            problem: Arc::clone(&self.problem),
            comm: self.comm.clone(),
            sc: Arc::clone(&self.sc),
            sp: Arc::clone(&self.sp),
            arenas: Arc::clone(&self.arenas),
        }
    }
}

/// Per-rank body of every task policy: build the band task graph per the
/// policy, submit it, drain it.
fn rank_tasks(
    problem: &Arc<Problem>,
    comm: &Communicator,
    policy: SchedulerPolicy,
) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let w = comm.rank();
    let g = w; // task layouts have t = 1: every rank is its own task group
    let env = RankEnv {
        problem: Arc::clone(problem),
        comm: comm.clone(),
        // Task layouts scatter over the whole world; the pencil split (a
        // collective) happens here, before any task runs.
        sc: Arc::new(ScatterComms::new(comm.clone(), cfg.decomp)),
        sp: Arc::new(StagePlan::for_problem(problem, g)),
        arenas: worker_arenas(cfg.ntg),
    };
    let shares: Vec<Shared<Vec<Complex64>>> = problem
        .initial_shares(w)
        .into_iter()
        .map(Shared::new)
        .collect();

    let mut builder = Runtime::builder(cfg.ntg).clock(comm.clock()).rank(w);
    if let Some(sink) = comm.trace_sink() {
        builder = builder.trace(sink);
    }
    let rt = builder.build();

    comm.barrier();
    let t_start = comm.now();
    let mut slots = SlotArena::new();
    let mut graph = TaskGraph::new();
    for (b, share) in shares.iter().enumerate() {
        match policy {
            SchedulerPolicy::TaskPerFft => push_band_fused(&mut graph, &mut slots, &env, b, share),
            SchedulerPolicy::TaskPerStep => {
                push_band_steps(&mut graph, &mut slots, &env, b, share, false)
            }
            SchedulerPolicy::TaskAsync => {
                push_band_steps(&mut graph, &mut slots, &env, b, share, true)
            }
            SchedulerPolicy::Hybrid => push_band_hybrid(&mut graph, &mut slots, &env, b, share),
            SchedulerPolicy::Serial => unreachable!("serial policy has no task graph"),
        }
    }
    rt.spawn_graph(graph);
    rt.taskwait();
    comm.barrier();
    let t_end = comm.now();
    rt.shutdown();

    let shares = shares
        .into_iter()
        .map(|s| s.try_unwrap().ok().expect("share uniquely owned after taskwait"))
        .collect();
    (shares, t_end - t_start)
}

/// Strategy 2: the whole band pipeline is one independent task — the
/// graph collapses to a single node whose only external dependency is the
/// band share (every other slot is task-private).
fn push_band_fused(
    graph: &mut TaskGraph,
    slots: &mut SlotArena,
    env: &RankEnv,
    b: usize,
    share: &Shared<Vec<Complex64>>,
) {
    let bs = BandSlots::mint(slots);
    let env = env.clone();
    let share = share.clone();
    graph.node(
        format!("fft-band-{b}"),
        Some(b as u64),
        vec![bs.handle(Slot::Share).dep_inout()],
        move || {
            let rec = env.recorder();
            let runner = env.sp.runner(&env.problem.v, &rec);
            let mut guard = env.arena().write();
            runner
                .band_fused(b, &env.sc, &share, &mut guard)
                .unwrap_or_else(|e| panic!("{e}"));
        },
    );
}

/// Strategies 1 (blocking scatters) and async (`split` — scatters become
/// post/wait node pairs): one node per [`BAND_PIPELINE`] stage, with the
/// dependency lists derived from the declared slot accesses. Fresh zeroed
/// per-band buffers carry the data between stages (and already cover the
/// `Prep` stage).
fn push_band_steps(
    graph: &mut TaskGraph,
    slots: &mut SlotArena,
    env: &RankEnv,
    b: usize,
    share: &Shared<Vec<Complex64>>,
    split: bool,
) {
    type Req = Shared<Option<AlltoallRequest<Complex64>>>;
    let cfg = env.problem.config;
    let bs = BandSlots::mint(slots);
    let prio = Some(b as u64);
    let deferred = Some((b + cfg.nbnd) as u64);
    let zbuf: Shared<Vec<Complex64>> =
        Shared::new(vec![Complex64::ZERO; env.sp.plan.zbuf_len()]);
    let planes: Shared<Vec<Complex64>> =
        Shared::new(vec![Complex64::ZERO; env.sp.plan.planes_len()]);
    let req_fwd: Req = Shared::new(None);
    let req_bwd: Req = Shared::new(None);

    for node in &BAND_PIPELINE {
        let kind = node.kind;
        let label = format!("{}[{b}]", kind.name());
        match kind {
            StageKind::Pack => {
                let (env, share, zbuf) = (env.clone(), share.clone(), zbuf.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    runner.pack_local(b, &share.read(), &mut zbuf.write());
                });
            }
            StageKind::FftZInv | StageKind::FftZFwd => {
                let (env, zbuf) = (env.clone(), zbuf.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    let mut guard = env.arena().write();
                    runner.fft_z(kind, b, &mut zbuf.write(), &mut guard.scratch);
                });
            }
            StageKind::ScatterFwd if split => {
                // post: in(zbuf) out(req) — never blocks.
                {
                let (env, zbuf, rq) = (env.clone(), zbuf.clone(), req_fwd.clone());
                graph.node(
                    format!("{}-post[{b}]", kind.name()),
                    prio,
                    vec![bs.handle(Slot::Zbuf).dep_in(), bs.handle(Slot::ReqFwd).dep_out()],
                    move || {
                        let rec = env.recorder();
                        let runner = env.sp.runner(&env.problem.v, &rec);
                        let mut guard = env.arena().write();
                        *rq.write() = Some(runner.scatter_fwd_post(
                            b,
                            &env.sc,
                            (2 * b) as u32,
                            &zbuf.read(),
                            &mut guard.scatter_send,
                        ));
                    },
                );
                }
                // wait: inout(req) inout(planes) — deferred priority lets
                // workers run other bands' compute while the transfer is
                // in flight; posts are plain compute tasks and always
                // preferred, so this can never deadlock.
                let (env, planes, rq) = (env.clone(), planes.clone(), req_fwd.clone());
                graph.node(
                    format!("{}-wait[{b}]", kind.name()),
                    deferred,
                    vec![
                        bs.handle(Slot::ReqFwd).dep_inout(),
                        bs.handle(Slot::Planes).dep_inout(),
                    ],
                    move || {
                        let rec = env.recorder();
                        let runner = env.sp.runner(&env.problem.v, &rec);
                        let mut guard = env.arena().write();
                        let a = &mut *guard;
                        let req = rq.write().take().expect("posted request");
                        runner
                            .scatter_fwd_wait(
                                b,
                                &env.sc,
                                (2 * b) as u32,
                                req,
                                &mut planes.write(),
                                &mut a.scatter_recv,
                                &mut a.pencil_mid,
                            )
                            .unwrap_or_else(|e| panic!("{e}"));
                    },
                );
            }
            StageKind::ScatterFwd => {
                let (env, zbuf, planes) = (env.clone(), zbuf.clone(), planes.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    let mut guard = env.arena().write();
                    let a = &mut *guard;
                    runner
                        .scatter_fwd(
                            b,
                            &env.sc,
                            (2 * b) as u32,
                            &zbuf.read(),
                            &mut planes.write(),
                            &mut a.scatter_send,
                            &mut a.scatter_recv,
                            &mut a.pencil_mid,
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                });
            }
            StageKind::FftXyInv | StageKind::FftXyFwd => {
                let (env, planes) = (env.clone(), planes.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    let mut guard = env.arena().write();
                    let a = &mut *guard;
                    runner.fft_xy(kind, b, &mut planes.write(), &mut a.scratch, &mut a.col);
                });
            }
            StageKind::Vofr => {
                let (env, planes) = (env.clone(), planes.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    runner.vofr(b, &mut planes.write());
                });
            }
            StageKind::ScatterBwd if split => {
                {
                let (env, planes, rq) = (env.clone(), planes.clone(), req_bwd.clone());
                graph.node(
                    format!("{}-post[{b}]", kind.name()),
                    prio,
                    vec![bs.handle(Slot::Planes).dep_in(), bs.handle(Slot::ReqBwd).dep_out()],
                    move || {
                        let rec = env.recorder();
                        let runner = env.sp.runner(&env.problem.v, &rec);
                        let mut guard = env.arena().write();
                        *rq.write() = Some(runner.scatter_bwd_post(
                            b,
                            &env.sc,
                            (2 * b + 1) as u32,
                            &planes.read(),
                            &mut guard.scatter_send,
                        ));
                    },
                );
                }
                let (env, zbuf, rq) = (env.clone(), zbuf.clone(), req_bwd.clone());
                graph.node(
                    format!("{}-wait[{b}]", kind.name()),
                    deferred,
                    vec![
                        bs.handle(Slot::ReqBwd).dep_inout(),
                        bs.handle(Slot::Zbuf).dep_inout(),
                    ],
                    move || {
                        let rec = env.recorder();
                        let runner = env.sp.runner(&env.problem.v, &rec);
                        let mut guard = env.arena().write();
                        let a = &mut *guard;
                        let req = rq.write().take().expect("posted request");
                        runner
                            .scatter_bwd_wait(
                                b,
                                &env.sc,
                                (2 * b + 1) as u32,
                                req,
                                &mut zbuf.write(),
                                &mut a.scatter_recv,
                                &mut a.pencil_mid,
                            )
                            .unwrap_or_else(|e| panic!("{e}"));
                    },
                );
            }
            StageKind::ScatterBwd => {
                let (env, zbuf, planes) = (env.clone(), zbuf.clone(), planes.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    let mut guard = env.arena().write();
                    let a = &mut *guard;
                    runner
                        .scatter_bwd(
                            b,
                            &env.sc,
                            (2 * b + 1) as u32,
                            &planes.read(),
                            &mut zbuf.write(),
                            &mut a.scatter_send,
                            &mut a.scatter_recv,
                            &mut a.pencil_mid,
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                });
            }
            StageKind::Unpack => {
                let (env, share, zbuf) = (env.clone(), share.clone(), zbuf.clone());
                graph.node(label, prio, node.deps(&bs), move || {
                    let rec = env.recorder();
                    let runner = env.sp.runner(&env.problem.v, &rec);
                    runner.unpack_local(b, &zbuf.read(), &mut share.write());
                });
            }
            StageKind::Prep => unreachable!("Prep is not a BAND_PIPELINE node"),
        }
    }
}

/// The hybrid policy: the band's nine stages fused into a chain of three
/// tasks cut exactly at the nonblocking collectives.
///
/// * **head** `in(share) out(zbuf) out(req_fwd)`, priority `b`:
///   pack + inverse z-FFT + forward-scatter *post* — never blocks;
/// * **mid** `inout(req_fwd) inout(planes) out(req_bwd)`, priority
///   `b + nbnd`: forward wait + xy-FFTs/VOFR + backward-scatter *post*;
/// * **tail** `inout(req_bwd) inout(zbuf) out(share)`, priority
///   `b + nbnd`: backward wait + forward z-FFT + unpack.
///
/// Three coarse tasks per band de-synchronise compute across ranks like
/// task-per-FFT, while the split-phase cuts overlap both transfers with
/// other bands' work like task-per-step/async.
fn push_band_hybrid(
    graph: &mut TaskGraph,
    slots: &mut SlotArena,
    env: &RankEnv,
    b: usize,
    share: &Shared<Vec<Complex64>>,
) {
    type Req = Shared<Option<AlltoallRequest<Complex64>>>;
    let cfg = env.problem.config;
    let bs = BandSlots::mint(slots);
    let deferred = Some((b + cfg.nbnd) as u64);
    let zbuf: Shared<Vec<Complex64>> =
        Shared::new(vec![Complex64::ZERO; env.sp.plan.zbuf_len()]);
    let planes: Shared<Vec<Complex64>> =
        Shared::new(vec![Complex64::ZERO; env.sp.plan.planes_len()]);
    let req_fwd: Req = Shared::new(None);
    let req_bwd: Req = Shared::new(None);

    // head: pack + z-FFT + forward post.
    {
        let (env, share, zbuf, rq) = (env.clone(), share.clone(), zbuf.clone(), req_fwd.clone());
        graph.node(
            format!("hyb-head[{b}]"),
            Some(b as u64),
            vec![
                bs.handle(Slot::Share).dep_in(),
                bs.handle(Slot::Zbuf).dep_out(),
                bs.handle(Slot::ReqFwd).dep_out(),
            ],
            move || {
                let rec = env.recorder();
                let runner = env.sp.runner(&env.problem.v, &rec);
                let mut zb = zbuf.write();
                runner.pack_local(b, &share.read(), &mut zb);
                let mut guard = env.arena().write();
                let a = &mut *guard;
                runner.fft_z(StageKind::FftZInv, b, &mut zb, &mut a.scratch);
                *rq.write() = Some(runner.scatter_fwd_post(
                    b,
                    &env.sc,
                    (2 * b) as u32,
                    &zb,
                    &mut a.scatter_send,
                ));
            },
        );
    }

    // mid: forward wait + xy-FFTs/VOFR + backward post.
    {
        let (env, planes) = (env.clone(), planes.clone());
        let (rqf, rqb) = (req_fwd.clone(), req_bwd.clone());
        graph.node(
            format!("hyb-mid[{b}]"),
            deferred,
            vec![
                bs.handle(Slot::ReqFwd).dep_inout(),
                bs.handle(Slot::Planes).dep_inout(),
                bs.handle(Slot::ReqBwd).dep_out(),
            ],
            move || {
                let rec = env.recorder();
                let runner = env.sp.runner(&env.problem.v, &rec);
                let mut pl = planes.write();
                let mut guard = env.arena().write();
                let a = &mut *guard;
                let req = rqf.write().take().expect("posted request");
                runner
                    .scatter_fwd_wait(
                        b,
                        &env.sc,
                        (2 * b) as u32,
                        req,
                        &mut pl,
                        &mut a.scatter_recv,
                        &mut a.pencil_mid,
                    )
                    .unwrap_or_else(|e| panic!("{e}"));
                runner.fft_xy(StageKind::FftXyInv, b, &mut pl, &mut a.scratch, &mut a.col);
                runner.vofr(b, &mut pl);
                runner.fft_xy(StageKind::FftXyFwd, b, &mut pl, &mut a.scratch, &mut a.col);
                *rqb.write() = Some(runner.scatter_bwd_post(
                    b,
                    &env.sc,
                    (2 * b + 1) as u32,
                    &pl,
                    &mut a.scatter_send,
                ));
            },
        );
    }

    // tail: backward wait + z-FFT + unpack.
    {
        let (env, share, zbuf, rq) = (env.clone(), share.clone(), zbuf.clone(), req_bwd.clone());
        graph.node(
            format!("hyb-tail[{b}]"),
            deferred,
            vec![
                bs.handle(Slot::ReqBwd).dep_inout(),
                bs.handle(Slot::Zbuf).dep_inout(),
                bs.handle(Slot::Share).dep_out(),
            ],
            move || {
                let rec = env.recorder();
                let runner = env.sp.runner(&env.problem.v, &rec);
                let mut zb = zbuf.write();
                let mut guard = env.arena().write();
                let a = &mut *guard;
                let req = rq.write().take().expect("posted request");
                runner
                    .scatter_bwd_wait(
                        b,
                        &env.sc,
                        (2 * b + 1) as u32,
                        req,
                        &mut zb,
                        &mut a.scatter_recv,
                        &mut a.pencil_mid,
                    )
                    .unwrap_or_else(|e| panic!("{e}"));
                runner.fft_z(StageKind::FftZFwd, b, &mut zb, &mut a.scratch);
                runner.unpack_local(b, &zb, &mut share.write());
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ids_are_stable_and_roundtrip() {
        for (i, k) in StageKind::ALL.iter().enumerate() {
            assert_eq!(k.id(), i as u32);
            assert_eq!(StageKind::from_id(i as u32), Some(*k));
        }
        assert_eq!(StageKind::from_id(10), None);
        assert_eq!(StageKind::ScatterFwd.id(), 3);
        assert_eq!(StageKind::Unpack.id(), 9);
    }

    #[test]
    fn pipeline_nodes_match_the_engines_dependency_wiring() {
        // The graph must encode the exact in/out/inout lists the engines
        // used to hand-write (taskmodes.rs before the refactor).
        let mut arena = SlotArena::new();
        let bs = BandSlots::mint(&mut arena);
        assert_eq!(arena.minted().len(), 5);
        let by_kind = |k: StageKind| {
            BAND_PIPELINE
                .iter()
                .find(|n| n.kind == k)
                .unwrap_or_else(|| panic!("{k:?} missing"))
        };
        use fftx_taskrt::Access;
        let pack = by_kind(StageKind::Pack).deps(&bs);
        assert_eq!(pack.len(), 2);
        assert_eq!((pack[0].handle, pack[0].access), (bs.handle(Slot::Share), Access::In));
        assert_eq!((pack[1].handle, pack[1].access), (bs.handle(Slot::Zbuf), Access::Out));
        let sc = by_kind(StageKind::ScatterFwd).deps(&bs);
        assert_eq!((sc[0].handle, sc[0].access), (bs.handle(Slot::Zbuf), Access::In));
        assert_eq!((sc[1].handle, sc[1].access), (bs.handle(Slot::Planes), Access::InOut));
        let z = by_kind(StageKind::FftZInv).deps(&bs);
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].access, Access::InOut);
        let un = by_kind(StageKind::Unpack).deps(&bs);
        assert_eq!((un[1].handle, un[1].access), (bs.handle(Slot::Share), Access::Out));
    }

    #[test]
    fn policies_map_one_to_one_onto_modes() {
        for p in SchedulerPolicy::ALL {
            assert_eq!(SchedulerPolicy::for_mode(p.mode()), p);
            assert_eq!(SchedulerPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SchedulerPolicy::parse("original"), Some(SchedulerPolicy::Serial));
        assert_eq!(SchedulerPolicy::parse("ffts"), Some(SchedulerPolicy::TaskPerFft));
        assert_eq!(SchedulerPolicy::parse("nope"), None);
    }

    #[test]
    fn stage_names_are_the_label_stems() {
        assert_eq!(StageKind::Pack.name(), "pack");
        assert_eq!(StageKind::ScatterBwd.name(), "scatter-bw");
        assert_eq!(StageKind::Vofr.class(), StateClass::Vofr);
        assert_eq!(StageKind::Prep.class(), StateClass::PsiPrep);
    }

    #[test]
    fn pencil_decomposition_matches_slab_bitwise_across_policies() {
        use crate::config::{Decomposition, FftxConfig};
        use crate::problem::Problem;
        // (4,1) and (6,1) factorise into real 2×2 / 2×3 process grids;
        // (2,2) exercises the degenerate prime family (p2 = 1).
        for policy in SchedulerPolicy::ALL {
            for (nr, ntg) in [(4, 1), (6, 1), (2, 2)] {
                let slab = FftxConfig::small(nr, ntg, policy.mode());
                let pencil = slab.with_decomp(Decomposition::Pencil);
                let a = run_policy(&Problem::new(slab), policy);
                let b = run_policy(&Problem::new(pencil), policy);
                assert_eq!(
                    a.bands,
                    b.bands,
                    "pencil must be bitwise-identical to slab: {} {}x{}",
                    policy.name(),
                    nr,
                    ntg
                );
            }
        }
    }
}
