//! ABFT verification of the FFT pipeline: algorithm-based fault tolerance
//! that detects silent *compute* corruption — the faults the checksummed
//! transport cannot see because they happen inside a rank's FFT unit, not
//! on the wire — and heals each through the existing recovery machinery.
//!
//! The division of labour in the integrity layer:
//!
//! - **Wire integrity** is the transport's job: every `alltoall` /
//!   `alltoallv` chunk is checksummed at pack time and verified at unpack
//!   (`fftx-vmpi`), so [`PayloadCorrupt`](fftx_fault::PayloadCorrupt)
//!   strikes surface as typed [`VmpiError::Integrity`] errors.
//! - **Compute integrity** is this module's job: a bit flip in an FFT
//!   output buffer ([`fftx_fault::BitFlip`]) or a degraded vector lane of
//!   one rank's FFT unit ([`StuckLane`]) produces *plausible* numbers the
//!   transport happily checksums and delivers. ABFT invariants of the
//!   transform itself catch them.
//!
//! Two invariants are checked per FFT leg, selected by [`VerifyMode`]:
//!
//! - **`cheap`** — Parseval's theorem. The repository's FFTs follow the
//!   Quantum ESPRESSO scaling convention (forward carries `1/N`, backward
//!   is unnormalised), so each leg multiplies total energy by exactly `N`
//!   (inverse) or `1/N` (forward) up to rounding: `E_out ≈ factor · E_in`
//!   within [`PARSEVAL_TOL`]. One pass over the buffer per leg.
//! - **`full`** — recompute and compare. The leg input is snapshotted, the
//!   leg recomputed on an independent (clean) path, and the outputs
//!   compared bit-exactly. Catches *every* corrupting flip, at ~2× FFT
//!   cost; a mismatch is repaired in place from the clean recomputation
//!   (the "verify-and-recompute" in ABFT), so full mode needs no rollback
//!   for transient faults.
//!
//! **Detectability contract.** Injected transient strikes are constrained
//! to the high exponent bit of one `f64` component
//! ([`apply_significant_strike`]): such a flip rescales the component by
//! `2^±512`, which no finite wavefunction value hides from the energy
//! check. Raw mantissa flips below the Parseval tolerance are numerically
//! indistinguishable from kernel rounding — `cheap` mode cannot and does
//! not claim to see them (that is `full` mode's job); the high-exponent
//! strike is the representative *detectable* silent error, and it is what
//! the integrity bench gates 100% detection on.
//!
//! **Symmetry.** Detection must not desynchronise the per-communicator
//! collective sequence counters, so a rank never aborts a batch on its own
//! verdict: local flags accumulate through the batch, a world-wide
//! OR-allreduce agrees on the outcome, and then *every* rank rolls the
//! batch back to its checkpoint in lockstep (the rollback path of
//! `recovery`). Transient profiles bound their strikes per key, so the
//! rollback budget provably clears them; budget exhaustion escalates a
//! typed [`VmpiError::Integrity`].
//!
//! **Persistent faults.** A stuck lane strikes on every replay — rollback
//! cannot clear it. Instead, every rank's FFT unit is *probed* before the
//! run ([`probe_fft_unit`]: a known-energy vector plus a linearity check,
//! pure in `(seed, rank)` so every process computes the same verdict), and
//! a flaky rank is escalated straight to
//! [`run_eviction`](crate::recovery::run_eviction) — it is evicted at
//! batch 0, computes nothing, and the survivors re-plan the layout. One
//! eviction per run: a second flaky rank escalates as a typed error.

use crate::config::Mode;
use crate::original::{finish_run, RunOutput};
use crate::plan::BufferArena;
use crate::problem::Problem;
use crate::recorder::Recorder;
use crate::recovery::run_eviction;
use crate::stages::{ScatterComms, StageKind, StagePlan, StageRunner};
use fftx_fault::{mix64, CorruptionConfig, RankDeath, RecoveryConfig, Strike, StuckLane};
use fftx_fft::{c64, cached_plan, cft_1z, Complex64, Direction};
use fftx_trace::TraceSink;
use fftx_vmpi::{Communicator, VmpiError, World};
use std::sync::Arc;

/// Relative tolerance of the `cheap`-mode Parseval check. FFT rounding
/// error is O(ε·log N) ≈ 1e-14 for the grids here; a high-exponent strike
/// moves the energy by many orders of magnitude. 1e-9 sits comfortably
/// between the two.
pub const PARSEVAL_TOL: f64 = 1e-9;

/// Salt of the strike-target-rank draw (disjoint from every profile salt).
const TARGET_SALT: u64 = 0x7C15_8A2D_93E4_F506;

// ---------------------------------------------------------------------
// Verify mode
// ---------------------------------------------------------------------

/// How much ABFT verification the pipeline runs per FFT leg — the axis the
/// `FFTX_VERIFY` environment knob exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No compute verification (transport checksums still apply).
    #[default]
    Off,
    /// Parseval energy check per FFT leg (one buffer pass).
    Cheap,
    /// Bit-exact recompute-and-compare per FFT leg (~2× FFT cost), with
    /// in-place repair from the clean recomputation.
    Full,
}

impl VerifyMode {
    /// Every mode, in escalation order.
    pub const ALL: [VerifyMode; 3] = [VerifyMode::Off, VerifyMode::Cheap, VerifyMode::Full];

    /// The knob vocabulary name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Cheap => "cheap",
            VerifyMode::Full => "full",
        }
    }

    /// Parses a knob value (the inverse of [`VerifyMode::name`]).
    pub fn parse(s: &str) -> Option<VerifyMode> {
        VerifyMode::ALL.iter().copied().find(|m| m.name() == s)
    }

    /// Reads `FFTX_VERIFY` leniently (unset or unparsable → `Off`) — the
    /// library-level reader; binaries validate strictly via
    /// [`crate::load_env`].
    pub fn from_env() -> VerifyMode {
        std::env::var("FFTX_VERIFY")
            .ok()
            .and_then(|v| VerifyMode::parse(&v))
            .unwrap_or(VerifyMode::Off)
    }
}

/// What the verification layer did during one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyStats {
    /// FFT-unit startup probes executed (one per world rank).
    pub probes: u64,
    /// World ranks whose FFT unit failed the startup probe.
    pub probe_failures: Vec<usize>,
    /// Parseval energy checks executed (summed over ranks).
    pub parseval_checks: u64,
    /// Full-mode leg recomputations executed (summed over ranks).
    pub recomputed_legs: u64,
    /// Full-mode legs whose output mismatched the clean recomputation and
    /// was repaired in place (summed over ranks).
    pub repaired_legs: u64,
    /// Band batches flagged corrupt by the world-wide agreement (counted
    /// once per rank-symmetric detection).
    pub detected_batches: u64,
    /// Band batches rolled back to their checkpoint and replayed.
    pub batch_rollbacks: u64,
    /// Ranks evicted after a failed probe.
    pub evictions: u64,
    /// World ranks that were evicted.
    pub evicted_ranks: Vec<usize>,
    /// Bytes of checkpoint state written, summed over ranks.
    pub checkpoint_bytes: u64,
}

// ---------------------------------------------------------------------
// The fault model: strikes applied to a rank's FFT-unit output
// ---------------------------------------------------------------------

/// Applies `rank`'s stuck lane to a complex buffer, viewing it as the f64
/// component stream the vector unit actually processes (lane `l` strikes
/// components `l, l+width, …`). Returns the number of components zeroed.
fn apply_stuck(st: &StuckLane, rank: u64, buf: &mut [Complex64]) -> usize {
    let Some(lane) = st.lane_of(rank) else {
        return 0;
    };
    let width = st.width as usize;
    let mut struck = 0;
    let mut f = lane as usize;
    while f < 2 * buf.len() {
        let c = &mut buf[f / 2];
        let v = if f.is_multiple_of(2) { &mut c.re } else { &mut c.im };
        if *v != 0.0 {
            *v = 0.0;
            struck += 1;
        }
        f += width;
    }
    struck
}

/// Applies a transient strike as a *high-exponent* flip of one f64
/// component: the component rescales by `2^±512` (or a flat zero becomes
/// 2.0), so the corruption is energy-visible on any finite value — the
/// detectability contract of the module docs. Returns `false` on an empty
/// buffer.
fn apply_significant_strike(s: &Strike, buf: &mut [Complex64]) -> bool {
    if buf.is_empty() {
        return false;
    }
    let f = (s.index_bits % (2 * buf.len() as u64)) as usize;
    let c = &mut buf[f / 2];
    let v = if f.is_multiple_of(2) { &mut c.re } else { &mut c.im };
    *v = f64::from_bits(v.to_bits() ^ (1u64 << 62));
    true
}

/// The world rank a transient strike against `key` lands on — hash-spread
/// so corruption exercises every rank's detection path over a run.
fn strike_target(key: u64, ranks: usize) -> usize {
    (mix64(key ^ TARGET_SALT) % ranks.max(1) as u64) as usize
}

/// The fault key of one FFT leg of one band batch.
fn leg_key(base: usize, leg: u64) -> u64 {
    ((base as u64) << 3) | leg
}

// ---------------------------------------------------------------------
// ABFT invariants
// ---------------------------------------------------------------------

/// Total energy `Σ |c|²` of a buffer.
fn energy(buf: &[Complex64]) -> f64 {
    buf.iter().map(|c| c.re * c.re + c.im * c.im).sum()
}

/// Whether `got ≈ want` within relative tolerance `tol`. NaN never
/// compares close (a NaN-poisoned buffer is a detection, not an escape).
fn energy_close(got: f64, want: f64, tol: f64) -> bool {
    let scale = want.abs().max(got.abs()).max(f64::MIN_POSITIVE);
    (got - want).abs() / scale <= tol
}

/// Whether two buffers are bit-identical (distinguishes `-0.0` from `0.0`
/// and never equates NaNs — stricter than `==`, which is the point).
fn bits_equal(a: &[Complex64], b: &[Complex64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits()
        })
}

// ---------------------------------------------------------------------
// The startup probe
// ---------------------------------------------------------------------

/// Probes `rank`'s FFT unit before the run: a z-FFT of two deterministic
/// known-energy vectors through the unit (kernel plus the rank's modeled
/// persistent faults), checked against Parseval and linearity. Pure in
/// `(corruption, rank, n)`, so every process computes the same verdict for
/// every rank without communicating — the agreement-free analogue of a
/// startup health collective. Returns `false` for a flaky unit.
///
/// A stuck-at-zero lane is linear, so the *energy* check is the one that
/// catches it; the linearity check covers the complementary class
/// (stuck-at-value, additive offsets) for free.
pub fn probe_fft_unit(corruption: &CorruptionConfig, rank: usize, n: usize) -> bool {
    let n = n.max(8);
    let unit = |x: &[Complex64]| -> Vec<Complex64> {
        let mut y = x.to_vec();
        let mut scratch = Vec::new();
        cft_1z(&cached_plan(n), &mut y, 1, n, Direction::Inverse, &mut scratch);
        if let Some(st) = corruption.stuck {
            apply_stuck(&st, rank as u64, &mut y);
        }
        y
    };
    // Two probe vectors with energy in every component (so every lane of
    // the unit carries signal), plus their sum for the linearity check.
    let a: Vec<Complex64> = (0..n)
        .map(|i| c64(1.5 + (i as f64 * 0.618).cos(), (i as f64 * 0.377).sin() - 0.25))
        .collect();
    let b: Vec<Complex64> = (0..n)
        .map(|i| c64((i as f64 * 0.271).sin() - 1.25, 0.75 + (i as f64 * 0.533).cos()))
        .collect();
    let (fa, fb) = (unit(&a), unit(&b));
    // Parseval: the inverse (unnormalised) z-FFT multiplies energy by n.
    if !energy_close(energy(&fa), n as f64 * energy(&a), PARSEVAL_TOL)
        || !energy_close(energy(&fb), n as f64 * energy(&b), PARSEVAL_TOL)
    {
        return false;
    }
    // Linearity: F(a+b) = F(a) + F(b) through the unit. Output magnitudes
    // are O(n); 1e-9 absolute dwarfs rounding for any grid here.
    let ab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
    let fab = unit(&ab);
    fab.iter()
        .zip(fa.iter().zip(&fb))
        .all(|(s, (x, y))| {
            let d = *s - (*x + *y);
            d.re.abs() <= 1e-9 && d.im.abs() <= 1e-9
        })
}

// ---------------------------------------------------------------------
// Verified leg execution
// ---------------------------------------------------------------------

/// The verification context one rank carries through a run.
struct VerifyCtx {
    mode: VerifyMode,
    corruption: CorruptionConfig,
    /// World rank (fault-model identity: strike targeting, stuck lanes).
    rank: usize,
    /// World size.
    ranks: usize,
    tol: f64,
}

/// Per-batch detection state, accumulated locally and agreed collectively.
#[derive(Default)]
struct VerifyFlags {
    detected: bool,
    /// `(expected, got)` energy bits of the first local detection — the
    /// evidence carried into the escalation error.
    evidence: Option<(u64, u64)>,
    checks: u64,
    recomputes: u64,
    repaired: u64,
}

/// Injects the modeled FFT-unit faults into a leg's output buffer:
/// a bounded transient strike when this rank is the key's target, plus the
/// rank's persistent stuck lane.
fn inject(vx: &VerifyCtx, key: u64, attempt: u32, buf: &mut [Complex64]) {
    if let Some(bf) = vx.corruption.bitflip {
        if strike_target(key, vx.ranks) == vx.rank {
            if let Some(s) = bf.strike(key, attempt) {
                apply_significant_strike(&s, buf);
            }
        }
    }
    if let Some(st) = vx.corruption.stuck {
        apply_stuck(&st, vx.rank as u64, buf);
    }
}

/// Runs one FFT leg through the fault model and the selected invariant:
/// compute, inject, then check (`cheap`: `E_out ≈ factor·E_in`; `full`:
/// bit-exact recompute from the snapshot, repairing in place on mismatch).
fn verified_leg(
    vx: &VerifyCtx,
    flags: &mut VerifyFlags,
    key: u64,
    attempt: u32,
    factor: f64,
    buf: &mut [Complex64],
    mut leg: impl FnMut(&mut [Complex64]),
) {
    match vx.mode {
        VerifyMode::Off => {
            leg(buf);
            inject(vx, key, attempt, buf);
        }
        VerifyMode::Cheap => {
            let e_in = energy(buf);
            leg(buf);
            inject(vx, key, attempt, buf);
            flags.checks += 1;
            let (want, got) = (factor * e_in, energy(buf));
            if !energy_close(got, want, vx.tol) {
                flags.detected = true;
                flags.evidence.get_or_insert((want.to_bits(), got.to_bits()));
            }
        }
        VerifyMode::Full => {
            let snapshot = buf.to_vec();
            leg(buf);
            inject(vx, key, attempt, buf);
            flags.recomputes += 1;
            // Recompute on the clean path (the check unit: in the KNL
            // story, the scalar fallback kernel) and compare bit-exactly.
            let mut clean = snapshot;
            leg(&mut clean);
            if !bits_equal(buf, &clean) {
                buf.copy_from_slice(&clean);
                flags.repaired += 1;
            }
        }
    }
}

/// The transform middle with every FFT leg verified. Scatters stay on the
/// plain path: their integrity is the transport checksums' job.
#[allow(clippy::too_many_arguments)]
fn verified_transform(
    r: &StageRunner<'_>,
    base: usize,
    sc: &ScatterComms,
    tag: u32,
    a: &mut BufferArena,
    vx: &VerifyCtx,
    attempt: u32,
    flags: &mut VerifyFlags,
) -> Result<(), VmpiError> {
    let BufferArena {
        zbuf,
        planes,
        scratch,
        col,
        scatter_send,
        scatter_recv,
        pencil_mid,
        ..
    } = a;
    let nz = r.plan.grid.nr3 as f64;
    let nxy = (r.plan.grid.nr1 * r.plan.grid.nr2) as f64;
    verified_leg(vx, flags, leg_key(base, 0), attempt, nz, zbuf, |b| {
        r.fft_z(StageKind::FftZInv, base, b, scratch)
    });
    r.scatter_fwd(base, sc, tag, zbuf, planes, scatter_send, scatter_recv, pencil_mid)?;
    verified_leg(vx, flags, leg_key(base, 1), attempt, nxy, planes, |b| {
        r.fft_xy(StageKind::FftXyInv, base, b, scratch, col)
    });
    r.vofr(base, planes);
    verified_leg(vx, flags, leg_key(base, 2), attempt, 1.0 / nxy, planes, |b| {
        r.fft_xy(StageKind::FftXyFwd, base, b, scratch, col)
    });
    r.scatter_bwd(base, sc, tag, planes, zbuf, scatter_send, scatter_recv, pencil_mid)?;
    verified_leg(vx, flags, leg_key(base, 3), attempt, 1.0 / nz, zbuf, |b| {
        r.fft_z(StageKind::FftZFwd, base, b, scratch)
    });
    Ok(())
}

/// One band batch with verified FFT legs — the replay unit of the
/// verified run, shaped exactly like
/// [`StageRunner::band_batch`](crate::stages::StageRunner::band_batch).
#[allow(clippy::too_many_arguments)]
fn verified_band_batch(
    r: &StageRunner<'_>,
    base: usize,
    pack_comm: &Communicator,
    sc: &ScatterComms,
    shares: &mut [Vec<Complex64>],
    a: &mut BufferArena,
    vx: &VerifyCtx,
    attempt: u32,
    flags: &mut VerifyFlags,
) -> Result<(), VmpiError> {
    r.prep(base, &mut a.zbuf, &mut a.planes);
    r.pack_exchange(base, shares, pack_comm, a)?;
    verified_transform(r, base, sc, 0, a, vx, attempt, flags)?;
    r.unpack_exchange(base, shares, pack_comm, a)?;
    Ok(())
}

// ---------------------------------------------------------------------
// The verified run
// ---------------------------------------------------------------------

type RankShares = Vec<Vec<Complex64>>;

#[derive(Debug, Clone, Copy, Default)]
struct RankTotals {
    checks: u64,
    recomputes: u64,
    repaired: u64,
    detected: u64,
    rollbacks: u64,
    ckpt_bytes: u64,
}

/// Runs the original pipeline under the corruption model with ABFT
/// verification: every rank's FFT unit is probed up front (a flaky rank is
/// escalated straight to eviction with layout re-planning), then every FFT
/// leg of every batch runs through the selected invariant; a detected
/// corruption rolls the batch back to its checkpoint rank-symmetrically
/// (`cheap`) or is repaired in place from the clean recomputation
/// (`full`), and budget exhaustion — or a second flaky rank — escalates a
/// typed [`VmpiError::Integrity`].
///
/// Corruption delivered under [`VerifyMode::Off`] is the *point* of that
/// mode: it is the silent-data-corruption baseline the bench measures
/// detection against.
pub fn run_verified(
    problem: &Arc<Problem>,
    corruption: CorruptionConfig,
    mode: VerifyMode,
    recovery: &RecoveryConfig,
) -> Result<(RunOutput, VerifyStats), VmpiError> {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::Original),
        "run_verified: config mode must be Original"
    );
    let p = cfg.vmpi_ranks();
    let mut stats = VerifyStats::default();

    if mode != VerifyMode::Off {
        stats.probes = p as u64;
        let flaky: Vec<usize> = (0..p)
            .filter(|&r| !probe_fft_unit(&corruption, r, problem.layout.grid.nr3))
            .collect();
        stats.probe_failures.clone_from(&flaky);
        if flaky.len() > 1 {
            // The eviction path heals one rank per run; report the excess
            // as a typed error instead of delivering corrupt data.
            return Err(VmpiError::Integrity {
                peer: flaky[1],
                tag: 0,
                expected: 1,
                got: flaky.len() as u64,
            });
        }
        if let Some(&victim) = flaky.first() {
            // Evict at batch 0: the victim's flaky unit computes nothing;
            // survivors recompute its bands deterministically.
            let (out, es) = run_eviction(problem, RankDeath::at(victim, 0), recovery)?;
            stats.evictions = es.evictions;
            stats.evicted_ranks = es.evicted_ranks;
            stats.checkpoint_bytes = es.checkpoint_bytes;
            return Ok((out, stats));
        }
    }

    let sink = TraceSink::new();
    let world = World::new(p).with_trace(sink.clone());
    let results = world.run(|comm| rank_verified(problem, comm, corruption, mode, recovery));
    let mut plain = Vec::with_capacity(results.len());
    let mut totals = RankTotals::default();
    for r in results {
        let (shares, span, t) = r?;
        totals.checks += t.checks;
        totals.recomputes += t.recomputes;
        totals.repaired += t.repaired;
        // Detection and rollback decisions are rank-symmetric; count once.
        totals.detected = totals.detected.max(t.detected);
        totals.rollbacks = totals.rollbacks.max(t.rollbacks);
        totals.ckpt_bytes += t.ckpt_bytes;
        plain.push((shares, span));
    }
    sink.counter("integrity.parseval_checks", totals.checks);
    sink.counter("integrity.detected_batches", totals.detected);
    sink.counter("integrity.recomputed_legs", totals.recomputes);
    sink.counter("integrity.repaired_legs", totals.repaired);
    sink.counter("recovery.rollbacks", totals.rollbacks);
    let out = finish_run(problem, sink, plain);
    stats.parseval_checks = totals.checks;
    stats.recomputed_legs = totals.recomputes;
    stats.repaired_legs = totals.repaired;
    stats.detected_batches = totals.detected;
    stats.batch_rollbacks = totals.rollbacks;
    stats.checkpoint_bytes = totals.ckpt_bytes;
    Ok((out, stats))
}

fn rank_verified(
    problem: &Arc<Problem>,
    comm: &Communicator,
    corruption: CorruptionConfig,
    mode: VerifyMode,
    recovery: &RecoveryConfig,
) -> Result<(RankShares, f64, RankTotals), VmpiError> {
    let cfg = problem.config;
    let l = &problem.layout;
    let w = comm.rank();
    let g = l.task_group_of(w);
    let i = l.member_of(w);
    let t = l.t;
    let pack_comm = comm.split(g as u64, i);
    let scatter_comm = ScatterComms::new(comm.split(i as u64, g), cfg.decomp);
    let rec = Recorder::new(comm.trace_sink(), comm.clock(), w);
    let sp = StagePlan::for_problem(problem, g);
    let runner = sp.runner(&problem.v, &rec);
    let mut shares = problem.initial_shares(w);
    let mut arena = BufferArena::new();
    let vx = VerifyCtx {
        mode,
        corruption,
        rank: w,
        ranks: comm.size(),
        tol: PARSEVAL_TOL,
    };
    let mut totals = RankTotals::default();

    comm.barrier();
    let t_start = comm.now();
    for k in 0..cfg.iterations() {
        // Checkpoint cut at the step boundary, exactly as in the rollback
        // engine — skipped under `Off`, which must stay zero-overhead.
        let checkpoint: Option<Vec<Vec<Complex64>>> = (mode != VerifyMode::Off)
            .then(|| (0..t).map(|j| shares[k * t + j].clone()).collect());
        if let Some(c) = &checkpoint {
            totals.ckpt_bytes += c
                .iter()
                .map(|s| (s.len() * std::mem::size_of::<Complex64>()) as u64)
                .sum::<u64>();
        }
        let mut attempt = 0u32;
        loop {
            let mut flags = VerifyFlags::default();
            verified_band_batch(
                &runner,
                k * t,
                &pack_comm,
                &scatter_comm,
                &mut shares,
                &mut arena,
                &vx,
                attempt,
                &mut flags,
            )?;
            totals.checks += flags.checks;
            totals.recomputes += flags.recomputes;
            totals.repaired += flags.repaired;
            // Agree on the batch verdict world-wide before acting: a rank
            // must never abort on its local flag alone, or the collective
            // sequence counters desynchronise.
            let corrupt = mode != VerifyMode::Off
                && comm.allreduce(vec![u64::from(flags.detected)], |a, b| a | b)[0] != 0;
            if !corrupt {
                break;
            }
            totals.detected += 1;
            if attempt >= recovery.max_rollbacks {
                let (expected, got) = flags.evidence.unwrap_or((0, 0));
                return Err(VmpiError::Integrity {
                    peer: w,
                    tag: k as u32,
                    expected,
                    got,
                });
            }
            // Roll back rank-symmetrically: the verdict is collectively
            // agreed and the injected strikes are pure in (seed, key,
            // attempt), so every rank replays in lockstep.
            for (j, c) in checkpoint.as_ref().expect("checkpoint exists when verifying").iter().enumerate() {
                shares[k * t + j] = c.clone();
            }
            totals.rollbacks += 1;
            attempt += 1;
        }
    }
    comm.try_barrier()?;
    let t_end = comm.now();
    Ok((shares, t_end - t_start, totals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FftxConfig;
    use crate::original::run_original;
    use fftx_fault::BitFlip;

    fn problem(r: usize, t: usize) -> Arc<Problem> {
        Problem::new(FftxConfig::small(r, t, Mode::Original))
    }

    #[test]
    fn verify_mode_parses_its_own_names() {
        for m in VerifyMode::ALL {
            assert_eq!(VerifyMode::parse(m.name()), Some(m));
        }
        assert_eq!(VerifyMode::parse("paranoid"), None);
        assert_eq!(VerifyMode::default(), VerifyMode::Off);
    }

    #[test]
    fn significant_strike_is_energy_visible_on_any_value() {
        for v in [0.0, 1.0, -3.25, 1e-300, 1e12] {
            let mut buf = vec![c64(v, v); 9];
            let s = Strike { index_bits: 5, bit: 17 };
            let before = energy(&buf);
            assert!(apply_significant_strike(&s, &mut buf));
            let after = energy(&buf);
            assert!(
                !energy_close(after, before, PARSEVAL_TOL),
                "strike on {v} must move the energy: {before} -> {after}"
            );
        }
        assert!(!apply_significant_strike(&Strike { index_bits: 0, bit: 0 }, &mut []));
    }

    #[test]
    fn stuck_lane_zeroes_the_component_stream() {
        let st = StuckLane::new(3, 1.0, 8);
        let lane = st.lane_of(0).expect("p=1 sticks") as usize;
        let mut buf = vec![c64(1.0, 2.0); 16];
        let n = apply_stuck(&st, 0, &mut buf);
        assert_eq!(n, 32 / 8, "every 8th of 32 components zeroed");
        for (i, c) in buf.iter().enumerate() {
            for (f, v) in [(2 * i, c.re), (2 * i + 1, c.im)] {
                if f % 8 == lane {
                    assert_eq!(v, 0.0, "component {f} stuck");
                } else {
                    assert_ne!(v, 0.0, "component {f} untouched");
                }
            }
        }
    }

    #[test]
    fn probe_passes_healthy_units_and_fails_stuck_ones() {
        let sticky = CorruptionConfig::sticky(11, 0.5);
        let st = sticky.stuck.expect("sticky preset");
        for rank in 0..32 {
            assert_eq!(
                probe_fft_unit(&sticky, rank, 18),
                st.lane_of(rank as u64).is_none(),
                "probe verdict must mirror the stuck-lane plan for rank {rank}"
            );
        }
        assert!((0..8).all(|r| probe_fft_unit(&CorruptionConfig::off(), r, 18)));
    }

    #[test]
    fn clean_verified_run_detects_nothing_and_matches_baseline() {
        let problem = problem(2, 2);
        let baseline = run_original(&problem);
        for mode in VerifyMode::ALL {
            let (out, stats) =
                run_verified(&problem, CorruptionConfig::off(), mode, &RecoveryConfig::default())
                    .expect("clean run");
            assert_eq!(out.bands, baseline.bands, "{} changed the answer", mode.name());
            assert_eq!(stats.detected_batches, 0);
            assert_eq!(stats.batch_rollbacks, 0);
            assert_eq!(stats.repaired_legs, 0);
            assert!(stats.probe_failures.is_empty());
            match mode {
                VerifyMode::Off => assert_eq!(stats.parseval_checks, 0),
                VerifyMode::Cheap => assert!(stats.parseval_checks > 0),
                VerifyMode::Full => assert!(stats.recomputed_legs > 0),
            }
        }
    }

    #[test]
    fn off_mode_delivers_corrupted_results() {
        // The silent-data-corruption baseline: with verification off, an
        // injected compute fault flows straight into the answer.
        let problem = problem(2, 2);
        let baseline = run_original(&problem);
        let corruption = CorruptionConfig {
            bitflip: Some(BitFlip::new(9, 1.0, 2)),
            ..CorruptionConfig::off()
        };
        let (out, stats) =
            run_verified(&problem, corruption, VerifyMode::Off, &RecoveryConfig::default())
                .expect("off mode never detects, so never escalates");
        assert_ne!(out.bands, baseline.bands, "corruption must reach the output");
        assert_eq!(stats.detected_batches, 0);
        assert_eq!(stats.checkpoint_bytes, 0, "Off stays zero-overhead");
    }

    #[test]
    fn cheap_mode_detects_rolls_back_and_restores_bitwise_identity() {
        let problem = problem(2, 2);
        let baseline = run_original(&problem);
        let corruption = CorruptionConfig {
            bitflip: Some(BitFlip::new(9, 1.0, 2)),
            ..CorruptionConfig::off()
        };
        let (out, stats) =
            run_verified(&problem, corruption, VerifyMode::Cheap, &RecoveryConfig::default())
                .expect("bounded transients clear within the budget");
        assert!(stats.detected_batches > 0, "p=1.0 must strike and be seen");
        assert!(stats.batch_rollbacks > 0);
        assert!(stats.checkpoint_bytes > 0);
        assert_eq!(out.bands, baseline.bands, "recovery changed the answer");
    }

    #[test]
    fn full_mode_repairs_in_place_without_rollbacks() {
        let problem = problem(2, 2);
        let baseline = run_original(&problem);
        let corruption = CorruptionConfig {
            bitflip: Some(BitFlip::new(9, 1.0, 2)),
            ..CorruptionConfig::off()
        };
        let (out, stats) =
            run_verified(&problem, corruption, VerifyMode::Full, &RecoveryConfig::default())
                .expect("repair needs no rollback");
        assert!(stats.repaired_legs > 0, "p=1.0 must strike and be repaired");
        assert_eq!(stats.batch_rollbacks, 0, "in-place repair, not replay");
        assert_eq!(out.bands, baseline.bands, "repair changed the answer");
    }

    #[test]
    fn exhausted_rollback_budget_escalates_to_integrity_error() {
        let problem = problem(2, 2);
        let corruption = CorruptionConfig {
            bitflip: Some(BitFlip::new(9, 1.0, 2)),
            ..CorruptionConfig::off()
        };
        let no_budget = RecoveryConfig {
            max_rollbacks: 0,
            ..RecoveryConfig::default()
        };
        let Err(err) = run_verified(&problem, corruption, VerifyMode::Cheap, &no_budget) else {
            panic!("exhausted budget must escalate");
        };
        assert!(
            matches!(err, VmpiError::Integrity { .. }),
            "expected Integrity, got {err:?}"
        );
    }

    #[test]
    fn sticky_rank_is_probed_and_evicted() {
        // 7 ranks as 7×1 (the eviction-compatible shape); find a seed whose
        // stuck-lane plan marks exactly one of them flaky.
        let mut cfg = FftxConfig::small(7, 1, Mode::Original);
        cfg.nbnd = 6;
        let problem = Problem::new(cfg);
        let baseline = run_original(&problem);
        let (seed, victim) = (0u64..)
            .find_map(|s| {
                let flaky: Vec<usize> = (0..7)
                    .filter(|&r| StuckLane::new(s, 0.2, 8).lane_of(r as u64).is_some())
                    .collect();
                (flaky.len() == 1).then(|| (s, flaky[0]))
            })
            .expect("some seed sticks exactly one rank");
        let corruption = CorruptionConfig {
            stuck: Some(StuckLane::new(seed, 0.2, 8)),
            ..CorruptionConfig::off()
        };
        let (out, stats) =
            run_verified(&problem, corruption, VerifyMode::Cheap, &RecoveryConfig::default())
                .expect("survivors finish");
        assert_eq!(stats.probe_failures, vec![victim]);
        assert_eq!(stats.evicted_ranks, vec![victim]);
        assert_eq!(stats.evictions, 1);
        assert_eq!(out.bands, baseline.bands, "eviction changed the answer");
    }

    #[test]
    fn two_flaky_ranks_exceed_the_eviction_path() {
        let problem = problem(2, 2);
        let seed = (0u64..)
            .find(|&s| {
                (0..4)
                    .filter(|&r| StuckLane::new(s, 0.5, 8).lane_of(r as u64).is_some())
                    .count()
                    > 1
            })
            .expect("some seed sticks two ranks");
        let corruption = CorruptionConfig {
            stuck: Some(StuckLane::new(seed, 0.5, 8)),
            ..CorruptionConfig::off()
        };
        let Err(err) = run_verified(&problem, corruption, VerifyMode::Cheap, &RecoveryConfig::default())
        else {
            panic!("one eviction per run: two flaky ranks must escalate");
        };
        assert!(matches!(err, VmpiError::Integrity { .. }));
    }

    #[test]
    fn verified_runs_are_deterministic() {
        let problem = problem(2, 2);
        let corruption = CorruptionConfig {
            bitflip: Some(BitFlip::new(31, 0.5, 2)),
            ..CorruptionConfig::off()
        };
        let run = || {
            run_verified(&problem, corruption, VerifyMode::Cheap, &RecoveryConfig::default())
                .expect("bounded transients recover")
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a.bands, b.bands);
        assert_eq!(sa, sb, "stats must replay identically");
    }
}
