//! Reference data-movement helpers for the kernel steps: building the send
//! buffers of the pack/unpack `Alltoallv` and the (padded) scatter
//! `Alltoall`, and depositing received data into the z-stick buffer or the
//! xy-plane slab. All functions are deterministic transformations of local
//! buffers given the shared [`TaskGroupLayout`] — the communication itself
//! lives in the execution engines.
//!
//! These walk the layout arithmetic directly and allocate their outputs;
//! the engines' hot paths instead run the table-driven, allocation-free
//! equivalents of [`crate::plan::ExecPlan`], which are verified against
//! these references in the plan's tests. The old allocating pack/unpack
//! helpers (`pack_sends`, `extract_member_share`) are gone — the plan path
//! copies straight between arena slices.
//!
//! Buffer shapes (for a rank in task group `g`):
//! * **z-stick buffer**: `nst_group(g) * nr3`, stick-major, full z-columns,
//!   sticks in the member-major `U_g` order;
//! * **plane slab**: `npp(g) * nr1 * nr2`, x fastest, local plane `zl`
//!   corresponds to global plane `plane_range(g).0 + zl`;
//! * **scatter chunk**: `max_nst * max_npp` per peer (padding keeps all
//!   chunks equal so the exchange is a true `MPI_Alltoall`, like QE's
//!   `fft_scatter`).

use fftx_fft::Complex64;
use fftx_pw::TaskGroupLayout;

/// Per-peer chunk length (complex elements) of the padded scatter.
pub fn scatter_chunk_len(layout: &TaskGroupLayout) -> usize {
    layout.max_nst_group() * layout.max_npp()
}

/// Deposits one member's share into the z-stick buffer: member `j`'s share
/// lands on the stick block `group_stick_offset(g, j) ..` with each
/// coefficient at its stick's wrapped z index. Untouched entries must have
/// been zeroed by the caller (the PsiPrep step).
pub fn deposit_member_share(
    layout: &TaskGroupLayout,
    g: usize,
    j: usize,
    share: &[Complex64],
    zbuf: &mut [Complex64],
) {
    let nr3 = layout.grid.nr3;
    assert_eq!(
        zbuf.len(),
        layout.nst_group(g) * nr3,
        "deposit_member_share: zbuf size"
    );
    let rank = g * layout.t + j;
    let stick_base = layout.group_stick_offset(g, j);
    let mut off = 0;
    for (si, &s) in layout.dist.per_rank[rank].iter().enumerate() {
        let col = (stick_base + si) * nr3;
        let stick = &layout.set.sticks[s];
        for (n, &iz) in stick.iz.iter().enumerate() {
            zbuf[col + iz] = share[off + n];
        }
        off += stick.len();
    }
    assert_eq!(off, share.len(), "deposit_member_share: share {j} length");
}

/// Deposits the pack receive list (all members) into the z-stick buffer.
pub fn deposit_pack_recv(
    layout: &TaskGroupLayout,
    g: usize,
    recv: &[Vec<Complex64>],
    zbuf: &mut [Complex64],
) {
    assert_eq!(recv.len(), layout.t, "deposit_pack_recv: member count");
    for (j, share) in recv.iter().enumerate() {
        deposit_member_share(layout, g, j, share, zbuf);
    }
}

/// Builds the padded forward-scatter `Alltoall` send buffer: the chunk for
/// peer `g'` holds this group's sticks restricted to `g'`'s plane range,
/// laid out `[stick][local z]` with strides `max_npp`.
pub fn scatter_pack(layout: &TaskGroupLayout, g: usize, zbuf: &[Complex64]) -> Vec<Complex64> {
    let nr3 = layout.grid.nr3;
    let chunk = scatter_chunk_len(layout);
    let max_npp = layout.max_npp();
    let nst = layout.nst_group(g);
    assert_eq!(zbuf.len(), nst * nr3, "scatter_pack: zbuf size");
    let mut send = vec![Complex64::ZERO; layout.r * chunk];
    for gp in 0..layout.r {
        let (z0, z1) = layout.plane_range[gp];
        let base = gp * chunk;
        for s in 0..nst {
            let col = s * nr3;
            let dst = base + s * max_npp;
            send[dst..dst + (z1 - z0)].copy_from_slice(&zbuf[col + z0..col + z1]);
        }
    }
    send
}

/// Deposits the forward-scatter receive buffer into the plane slab: peer
/// `g'`'s chunk carries the sticks of `U_{g'}` over this group's planes.
pub fn scatter_unpack_to_planes(
    layout: &TaskGroupLayout,
    g: usize,
    recv: &[Complex64],
    planes: &mut [Complex64],
) {
    let (nr1, nr2) = (layout.grid.nr1, layout.grid.nr2);
    let plane = nr1 * nr2;
    let npp = layout.npp(g);
    let chunk = scatter_chunk_len(layout);
    let max_npp = layout.max_npp();
    assert_eq!(recv.len(), layout.r * chunk, "scatter_unpack: recv size");
    assert_eq!(planes.len(), npp * plane, "scatter_unpack: planes size");
    for gp in 0..layout.r {
        let base = gp * chunk;
        for (si, &s) in layout.group_sticks[gp].iter().enumerate() {
            let stick = &layout.set.sticks[s];
            let at = stick.iy * nr1 + stick.ix;
            let src = base + si * max_npp;
            for zl in 0..npp {
                planes[zl * plane + at] = recv[src + zl];
            }
        }
    }
}

/// Inverse of [`scatter_unpack_to_planes`]: extracts every peer's stick
/// columns from the plane slab, producing the backward-scatter send buffer.
pub fn planes_to_scatter_sends(
    layout: &TaskGroupLayout,
    g: usize,
    planes: &[Complex64],
) -> Vec<Complex64> {
    let (nr1, nr2) = (layout.grid.nr1, layout.grid.nr2);
    let plane = nr1 * nr2;
    let npp = layout.npp(g);
    let chunk = scatter_chunk_len(layout);
    let max_npp = layout.max_npp();
    assert_eq!(planes.len(), npp * plane, "planes_to_scatter: planes size");
    let mut send = vec![Complex64::ZERO; layout.r * chunk];
    for gp in 0..layout.r {
        let base = gp * chunk;
        for (si, &s) in layout.group_sticks[gp].iter().enumerate() {
            let stick = &layout.set.sticks[s];
            let at = stick.iy * nr1 + stick.ix;
            let dst = base + si * max_npp;
            for zl in 0..npp {
                send[dst + zl] = planes[zl * plane + at];
            }
        }
    }
    send
}

/// Inverse of [`scatter_pack`]: rebuilds the z-stick buffer from the
/// backward-scatter receive buffer (peer `g'` contributes this group's
/// sticks over `g'`'s plane range).
pub fn zbuf_from_scatter_recv(
    layout: &TaskGroupLayout,
    g: usize,
    recv: &[Complex64],
    zbuf: &mut [Complex64],
) {
    let nr3 = layout.grid.nr3;
    let chunk = scatter_chunk_len(layout);
    let max_npp = layout.max_npp();
    let nst = layout.nst_group(g);
    assert_eq!(recv.len(), layout.r * chunk, "zbuf_from_scatter: recv size");
    assert_eq!(zbuf.len(), nst * nr3, "zbuf_from_scatter: zbuf size");
    for gp in 0..layout.r {
        let (z0, z1) = layout.plane_range[gp];
        let base = gp * chunk;
        for s in 0..nst {
            let col = s * nr3;
            let src = base + s * max_npp;
            zbuf[col + z0..col + z1].copy_from_slice(&recv[src..src + (z1 - z0)]);
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-based loops mirror the rank math
mod tests {
    use super::*;
    use fftx_fft::c64;
    use fftx_pw::{Cell, FftGrid, GSphere, StickSet, DUAL};

    fn layout(r: usize, t: usize) -> TaskGroupLayout {
        let cell = Cell::cubic(7.0);
        let grid = FftGrid::from_cutoff(&cell, DUAL * 6.0);
        let sphere = GSphere::generate(&cell, 6.0, &grid);
        let set = StickSet::build(&sphere, &grid);
        TaskGroupLayout::new(grid, set, r, t)
    }

    fn marked_share(layout: &TaskGroupLayout, rank: usize, band: usize) -> Vec<Complex64> {
        // Encode (band, rank, position) so misplacement is detectable.
        (0..layout.ngw_rank(rank))
            .map(|n| c64(band as f64 * 1e6 + rank as f64 * 1e3 + n as f64, 1.0))
            .collect()
    }

    #[test]
    fn pack_deposit_extract_roundtrip() {
        let l = layout(2, 3);
        let g = 1;
        // Simulate what rank g*T+i receives after pack of band `i`:
        // each member j's share.
        let recv: Vec<Vec<Complex64>> = (0..l.t)
            .map(|j| marked_share(&l, g * l.t + j, 7))
            .collect();
        let mut zbuf = vec![Complex64::ZERO; l.nst_group(g) * l.grid.nr3];
        deposit_pack_recv(&l, g, &recv, &mut zbuf);
        // Extraction runs through the plan tables (the engines' only path).
        let plan = crate::plan::ExecPlan::for_layout(&l, g);
        let mut back = Vec::new();
        for (j, want) in recv.iter().enumerate() {
            plan.extract_member(j, &zbuf, &mut back);
            assert_eq!(&back, want, "member {j}");
        }
    }

    #[test]
    fn deposit_only_touches_sphere_entries() {
        let l = layout(2, 2);
        let g = 0;
        let recv: Vec<Vec<Complex64>> = (0..l.t)
            .map(|j| marked_share(&l, g * l.t + j, 1))
            .collect();
        let mut zbuf = vec![Complex64::ZERO; l.nst_group(g) * l.grid.nr3];
        deposit_pack_recv(&l, g, &recv, &mut zbuf);
        let filled = zbuf.iter().filter(|c| c.norm_sqr() > 0.0).count();
        let expect: usize = recv.iter().map(|s| s.len()).sum();
        assert_eq!(filled, expect);
    }

    /// Full transpose consistency: packing every group's z-buffer, routing
    /// chunks like the alltoall would, and depositing into planes must place
    /// every (stick, z) value exactly once at the right grid position.
    #[test]
    fn scatter_roundtrip_through_all_groups() {
        let l = layout(3, 2);
        let nr3 = l.grid.nr3;
        // Build per-group z-buffers with globally identifiable values.
        let zbufs: Vec<Vec<Complex64>> = (0..l.r)
            .map(|g| {
                (0..l.nst_group(g) * nr3)
                    .map(|n| {
                        let s_local = n / nr3;
                        let z = n % nr3;
                        let stick_id = l.group_sticks[g][s_local];
                        c64(stick_id as f64 * 1000.0 + z as f64, 0.5)
                    })
                    .collect()
            })
            .collect();
        let sends: Vec<Vec<Complex64>> = (0..l.r).map(|g| scatter_pack(&l, g, &zbufs[g])).collect();
        let chunk = scatter_chunk_len(&l);
        // Route: recv of g from gp = sends[gp] chunk g.
        let recvs: Vec<Vec<Complex64>> = (0..l.r)
            .map(|g| {
                let mut recv = Vec::with_capacity(l.r * chunk);
                for gp in 0..l.r {
                    recv.extend_from_slice(&sends[gp][g * chunk..(g + 1) * chunk]);
                }
                recv
            })
            .collect();
        // Deposit into planes and check values.
        let plane = l.grid.nr1 * l.grid.nr2;
        for g in 0..l.r {
            let mut planes = vec![Complex64::ZERO; l.npp(g) * plane];
            scatter_unpack_to_planes(&l, g, &recvs[g], &mut planes);
            let (z0, _) = l.plane_range[g];
            for gp in 0..l.r {
                for &s in &l.group_sticks[gp] {
                    let stick = &l.set.sticks[s];
                    for zl in 0..l.npp(g) {
                        let got = planes[zl * plane + stick.iy * l.grid.nr1 + stick.ix];
                        let expect = c64(s as f64 * 1000.0 + (z0 + zl) as f64, 0.5);
                        assert_eq!(got, expect, "group {g} stick {s} zl {zl}");
                    }
                }
            }
            // And the way back.
            let back_sends = planes_to_scatter_sends(&l, g, &planes);
            // back_sends chunk gp must equal what gp sent to g, restricted
            // to real (unpadded) slots.
            for gp in 0..l.r {
                let max_npp = l.max_npp();
                for (si, _s) in l.group_sticks[gp].iter().enumerate() {
                    for zl in 0..l.npp(g) {
                        assert_eq!(
                            back_sends[gp * chunk + si * max_npp + zl],
                            recvs[g][gp * chunk + si * max_npp + zl]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zbuf_scatter_inverse() {
        let l = layout(4, 1);
        let g = 2;
        let nr3 = l.grid.nr3;
        let zbuf: Vec<Complex64> = (0..l.nst_group(g) * nr3)
            .map(|n| c64(n as f64, -(n as f64)))
            .collect();
        let send = scatter_pack(&l, g, &zbuf);
        // Pretend every peer echoed our chunks back: recv == send layout
        // (chunk from gp holds our sticks over gp's planes — same shape).
        let mut rebuilt = vec![Complex64::ZERO; zbuf.len()];
        zbuf_from_scatter_recv(&l, g, &send, &mut rebuilt);
        assert_eq!(rebuilt, zbuf);
    }

    #[test]
    fn chunk_padding_has_expected_size() {
        let l = layout(3, 2);
        assert_eq!(scatter_chunk_len(&l), l.max_nst_group() * l.max_npp());
        let zbuf = vec![Complex64::ZERO; l.nst_group(0) * l.grid.nr3];
        let send = scatter_pack(&l, 0, &zbuf);
        assert_eq!(send.len(), l.r * scatter_chunk_len(&l));
    }
}
