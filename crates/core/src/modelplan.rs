//! Lowering of the miniapp onto the KNL discrete-event simulator.
//!
//! The same kernel the real engines execute is re-expressed as per-rank
//! task lists of classified compute bursts and collectives, with work
//! volumes taken from the actual layout (stick/plane counts, padded chunk
//! sizes) and the FFT op-count model. This is what regenerates the paper's
//! node-scale experiments (Figs. 2/3/6/7, Tables I/II) on hardware we do
//! not have: the mechanisms the paper measures — IPC collapse under
//! contention and growing collective cost — live in `fftx-knlsim`'s models.

use crate::config::{DecompChoice, Decomposition, FftxConfig, Mode};
use crate::original::StepFlops;
use crate::problem::Problem;
use fftx_knlsim::{
    simulate, simulate_faulty, CommModel, ContentionModel, FaultPlan, KnlConfig, RankTasks,
    Segment, SimResult, TaskSpec,
};
use fftx_pw::{Cell, FftGrid, GSphere, ProcessGrid, StickSet, TaskGroupLayout, DUAL};
use fftx_trace::{CommOp, StateClass, Trace};
use std::sync::Arc;

/// Communicator-key blocks (stable ids for the trace / matching).
const PACK_KEY_BASE: u64 = 1_000;
const SCATTER_KEY_BASE: u64 = 2_000;
const WORLD_KEY: u64 = 3_000;
/// Pencil row/column sub-communicators of one scatter family: key =
/// base + family·64 + row-or-column index (every member of one row shares
/// its row index, so the keys agree across the communicator).
const ROW_KEY_BASE: u64 = 4_000;
const COL_KEY_BASE: u64 = 5_000;

/// Builds the per-rank simulator programs for the problem's mode.
pub fn build_programs(problem: &Problem) -> Vec<RankTasks> {
    match problem.config.mode {
        Mode::Original => build_original(problem),
        Mode::TaskPerFft => build_task_per_fft(problem),
        Mode::TaskPerStep => build_task_per_step(problem),
        Mode::TaskAsync => build_task_async(problem),
        Mode::Hybrid => build_hybrid(problem),
    }
}

/// Noise key of step `ordinal` of band `b`: ties the systematic per-band
/// work variation together across ranks (see `ContentionModel::band_noise`).
fn nkey(b: usize, ordinal: u64) -> u64 {
    (b as u64) * 64 + ordinal
}

/// One scatter family as a lowering sees it: the decomposition, the
/// family's slab comm key, this rank's member index within the family, and
/// the exchange geometry. Lowers each scatter exchange to segments — the
/// slab's single full-family alltoall, or the pencil's row alltoall →
/// restage copy → column alltoall over the family's process grid.
#[derive(Clone, Copy)]
struct ScatterShape {
    decomp: Decomposition,
    /// Comm key of the full family (the slab exchange).
    slab_key: u64,
    /// Stable index of the family (disambiguates row/col keys).
    family: u64,
    /// This rank's member index within the family.
    member: usize,
    /// Family size (R).
    size: usize,
    /// Per-rank exchange bytes (identical for the slab exchange and for
    /// each pencil phase: every phase moves the full R·chunk buffer).
    bytes: usize,
}

impl ScatterShape {
    /// Flops of one pencil restage: a single pass over the R·chunk
    /// exchange buffer (a plain reindexing copy), priced per complex
    /// element. Deliberately NOT `StepFlops::scatter_copy`, which covers
    /// the much larger sticks+planes staging volume.
    fn restage_flops(&self) -> f64 {
        fftx_fft::opcount::copy_flops(self.bytes / std::mem::size_of::<fftx_fft::Complex64>())
    }

    /// The pencil grid and this member's row/column comm keys, when the
    /// decomposition is pencil.
    fn pencil(&self) -> Option<(ProcessGrid, u64, u64)> {
        match self.decomp {
            Decomposition::Slab => None,
            Decomposition::Pencil => {
                let pg = ProcessGrid::factor(self.size);
                let row = ROW_KEY_BASE + self.family * 64 + pg.row(self.member) as u64;
                let col = COL_KEY_BASE + self.family * 64 + pg.col(self.member) as u64;
                Some((pg, row, col))
            }
        }
    }

    /// The blocking lowering of one exchange.
    fn blocking(&self, tag: u64, band: usize, restage_ord: u64) -> Vec<Segment> {
        let collective = |key, size, t| Segment::Collective {
            op: CommOp::Alltoall,
            comm_key: key,
            size,
            bytes: self.bytes,
            tag: t,
        };
        match self.pencil() {
            None => vec![collective(self.slab_key, self.size, tag)],
            Some((pg, row, col)) => vec![
                collective(row, pg.p2, tag),
                Segment::compute_keyed(
                    StateClass::Other,
                    self.restage_flops(),
                    nkey(band, restage_ord),
                ),
                collective(col, pg.p1, tag),
            ],
        }
    }

    /// Split-phase post: the slab posts on the full family, the pencil on
    /// its row communicator (phase 1 — the only phase that can overlap).
    fn post(&self, tag: u64) -> Segment {
        let (key, size) = match self.pencil() {
            None => (self.slab_key, self.size),
            Some((pg, row, _)) => (row, pg.p2),
        };
        Segment::CollectivePost {
            op: CommOp::Alltoall,
            comm_key: key,
            size,
            bytes: self.bytes,
            tag,
        }
    }

    /// Split-phase wait: completes the posted exchange and, under pencil,
    /// restages and runs the blocking column phase — exactly the real
    /// engine's `scatter_*_wait` shape.
    fn wait(&self, tag: u64, band: usize, restage_ord: u64) -> Vec<Segment> {
        match self.pencil() {
            None => vec![Segment::CollectiveWait {
                comm_key: self.slab_key,
                tag,
            }],
            Some((pg, row, col)) => vec![
                Segment::CollectiveWait { comm_key: row, tag },
                Segment::compute_keyed(
                    StateClass::Other,
                    self.restage_flops(),
                    nkey(band, restage_ord),
                ),
                Segment::Collective {
                    op: CommOp::Alltoall,
                    comm_key: col,
                    size: pg.p1,
                    bytes: self.bytes,
                    tag,
                },
            ],
        }
    }
}

/// Noise-key ordinals of the pencil restage copies (forward / backward
/// exchange) — new ordinals, so slab lowerings are byte-identical to the
/// pre-decomposition model.
const RESTAGE_FWD: u64 = 19;
const RESTAGE_BWD: u64 = 20;

/// The transform core as segments (z FFT → scatter → xy FFT → VOFR → back),
/// shared by the fused lowerings. `sc` describes the scatter family and its
/// decomposition; `tag` disambiguates concurrent bands; `band` keys the
/// systematic work variation.
fn core_segments(flops: &StepFlops, sc: ScatterShape, tag: u64, band: usize) -> Vec<Segment> {
    let mut segments = vec![
        Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(band, 10)),
        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(band, 11)),
    ];
    segments.extend(sc.blocking(tag, band, RESTAGE_FWD));
    segments.extend([
        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(band, 12)),
        Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(band, 13)),
        Segment::compute_keyed(StateClass::Vofr, flops.vofr, nkey(band, 14)),
        Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(band, 15)),
        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(band, 16)),
    ]);
    segments.extend(sc.blocking(tag, band, RESTAGE_BWD));
    segments.extend([
        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(band, 17)),
        Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(band, 18)),
    ]);
    segments
}

fn build_original(problem: &Problem) -> Vec<RankTasks> {
    let cfg = problem.config;
    let l = &problem.layout;
    let (r, t) = (l.r, l.t);
    (0..r * t)
        .map(|w| {
            let g = l.task_group_of(w);
            let i = l.member_of(w);
            let flops = StepFlops::for_group(problem, g);
            let pack = |tag: u64| Segment::Collective {
                op: CommOp::Alltoallv,
                comm_key: PACK_KEY_BASE + g as u64,
                size: t,
                bytes: l.pack_bytes(w),
                tag,
            };
            let mut segments = Vec::new();
            for k in 0..cfg.iterations() {
                // Rank g*T+i handles band k*T+i of this iteration: its
                // compute carries that band's systematic work factor, so
                // band-to-band variation shows up as intra-group imbalance
                // the collectives must absorb — exactly the static code's
                // handicap the paper identifies.
                let band = k * t + i;
                segments.push(Segment::compute_keyed(
                    StateClass::PsiPrep,
                    flops.prep,
                    nkey(band, 0),
                ));
                segments.push(Segment::compute_keyed(
                    StateClass::Pack,
                    flops.pack / 2.0,
                    nkey(band, 1),
                ));
                segments.push(pack(0));
                segments.push(Segment::compute_keyed(
                    StateClass::Pack,
                    flops.pack / 2.0,
                    nkey(band, 2),
                ));
                segments.extend(core_segments(
                    &flops,
                    ScatterShape {
                        decomp: cfg.decomp,
                        slab_key: SCATTER_KEY_BASE + i as u64,
                        family: i as u64,
                        member: g,
                        size: r,
                        bytes: l.scatter_bytes(),
                    },
                    0,
                    band,
                ));
                segments.push(Segment::compute_keyed(
                    StateClass::Unpack,
                    flops.pack / 2.0,
                    nkey(band, 3),
                ));
                segments.push(pack(1));
                segments.push(Segment::compute_keyed(
                    StateClass::Unpack,
                    flops.pack / 2.0,
                    nkey(band, 4),
                ));
            }
            RankTasks::static_program(segments)
        })
        .collect()
}

/// Task-runtime overhead per task: dependency bookkeeping, scheduling, and
/// argument marshalling — the reason Table II's instructions-scalability
/// column sits below the original's.
fn runtime_overhead(flops: &StepFlops) -> f64 {
    0.01 * (2.0 * flops.fft_xy + 2.0 * flops.fft_z + flops.vofr)
}

fn band_task(problem: &Problem, g: usize, b: usize, flops: &StepFlops) -> TaskSpec {
    let l = &problem.layout;
    let mut segments = vec![
        Segment::compute(StateClass::Runtime, runtime_overhead(flops)),
        Segment::compute_keyed(StateClass::PsiPrep, flops.prep, nkey(b, 0)),
        Segment::compute_keyed(StateClass::Pack, flops.pack, nkey(b, 1)),
    ];
    segments.extend(core_segments(
        flops,
        ScatterShape {
            decomp: problem.config.decomp,
            slab_key: WORLD_KEY,
            family: 0,
            member: g,
            size: l.r,
            bytes: l.scatter_bytes(),
        },
        b as u64,
        b,
    ));
    segments.push(Segment::compute_keyed(StateClass::Unpack, flops.pack, nkey(b, 3)));
    TaskSpec::new(format!("fft-band-{b}"), b as u64, segments)
}

fn build_task_per_fft(problem: &Problem) -> Vec<RankTasks> {
    let cfg = problem.config;
    (0..cfg.nr)
        .map(|g| {
            let flops = StepFlops::for_group(problem, g);
            let tasks = (0..cfg.nbnd).map(|b| band_task(problem, g, b, &flops)).collect();
            RankTasks {
                tasks,
                workers: cfg.ntg,
            }
        })
        .collect()
}

fn build_task_per_step(problem: &Problem) -> Vec<RankTasks> {
    let cfg = problem.config;
    let l = &problem.layout;
    (0..cfg.nr)
        .map(|g| {
            let flops = StepFlops::for_group(problem, g);
            let mut tasks: Vec<TaskSpec> = Vec::with_capacity(cfg.nbnd * 9);
            let sc = ScatterShape {
                decomp: cfg.decomp,
                slab_key: WORLD_KEY,
                family: 0,
                member: g,
                size: l.r,
                bytes: l.scatter_bytes(),
            };
            for b in 0..cfg.nbnd {
                let prio = b as u64;
                let base = tasks.len();
                let scatter_fw = {
                    let mut s = vec![Segment::compute_keyed(
                        StateClass::Other,
                        flops.scatter_copy / 2.0,
                        nkey(b, 11),
                    )];
                    s.extend(sc.blocking(2 * b as u64, b, RESTAGE_FWD));
                    s.push(Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(b, 12)));
                    s
                };
                let scatter_bw = {
                    let mut s = vec![Segment::compute_keyed(
                        StateClass::Other,
                        flops.scatter_copy / 2.0,
                        nkey(b, 16),
                    )];
                    s.extend(sc.blocking(2 * b as u64 + 1, b, RESTAGE_BWD));
                    s.push(Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 2.0, nkey(b, 17)));
                    s
                };
                // The chain mirrors Fig. 4: one task per step, flow deps.
                let chain: Vec<(String, Vec<Segment>)> = vec![
                    (
                        format!("pack[{b}]"),
                        vec![
                            Segment::compute(StateClass::Runtime, runtime_overhead(&flops)),
                            Segment::compute_keyed(StateClass::PsiPrep, flops.prep, nkey(b, 0)),
                            Segment::compute_keyed(StateClass::Pack, flops.pack, nkey(b, 1)),
                        ],
                    ),
                    (
                        format!("fftz-inv[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 10))],
                    ),
                    (format!("scatter-fw[{b}]"), scatter_fw),
                    (
                        format!("fftxy-inv[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 13))],
                    ),
                    (
                        format!("vofr[{b}]"),
                        vec![Segment::compute_keyed(StateClass::Vofr, flops.vofr, nkey(b, 14))],
                    ),
                    (
                        format!("fftxy-fw[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 15))],
                    ),
                    (format!("scatter-bw[{b}]"), scatter_bw),
                    (
                        format!("fftz-fw[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 18))],
                    ),
                    (
                        format!("unpack[{b}]"),
                        vec![Segment::compute_keyed(StateClass::Unpack, flops.pack, nkey(b, 3))],
                    ),
                ];
                for (n, (label, segments)) in chain.into_iter().enumerate() {
                    let mut task = TaskSpec::new(label, prio, segments);
                    if n > 0 {
                        task = task.with_deps(vec![base + n - 1]);
                    }
                    tasks.push(task);
                }
            }
            RankTasks {
                tasks,
                workers: cfg.ntg,
            }
        })
        .collect()
}

fn build_task_async(problem: &Problem) -> Vec<RankTasks> {
    let cfg = problem.config;
    let l = &problem.layout;
    (0..cfg.nr)
        .map(|g| {
            let flops = StepFlops::for_group(problem, g);
            let mut tasks: Vec<TaskSpec> = Vec::with_capacity(cfg.nbnd * 11);
            let sc = ScatterShape {
                decomp: cfg.decomp,
                slab_key: WORLD_KEY,
                family: 0,
                member: g,
                size: l.r,
                bytes: l.scatter_bytes(),
            };
            for b in 0..cfg.nbnd {
                let prio = b as u64;
                let base = tasks.len();
                let wait_fw = {
                    let mut s = sc.wait(2 * b as u64, b, RESTAGE_FWD);
                    s.push(Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 12)));
                    s
                };
                let wait_bw = {
                    let mut s = sc.wait(2 * b as u64 + 1, b, RESTAGE_BWD);
                    s.push(Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 17)));
                    s
                };
                // Strategy 1's chain with the scatters split into a post
                // task (never blocks) and a wait task (blocks only for the
                // unoverlapped remainder) — the paper's future work.
                let chain: Vec<(String, Vec<Segment>)> = vec![
                    (
                        format!("pack[{b}]"),
                        vec![
                            Segment::compute(StateClass::Runtime, runtime_overhead(&flops)),
                            Segment::compute_keyed(StateClass::PsiPrep, flops.prep, nkey(b, 0)),
                            Segment::compute_keyed(StateClass::Pack, flops.pack, nkey(b, 1)),
                        ],
                    ),
                    (
                        format!("fftz-inv[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 10))],
                    ),
                    (
                        format!("scatter-fw-post[{b}]"),
                        vec![
                            Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 11)),
                            sc.post(2 * b as u64),
                        ],
                    ),
                    (format!("scatter-fw-wait[{b}]"), wait_fw),
                    (
                        format!("fftxy-inv[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 13))],
                    ),
                    (
                        format!("vofr[{b}]"),
                        vec![Segment::compute_keyed(StateClass::Vofr, flops.vofr, nkey(b, 14))],
                    ),
                    (
                        format!("fftxy-fw[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 15))],
                    ),
                    (
                        format!("scatter-bw-post[{b}]"),
                        vec![
                            Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 16)),
                            sc.post(2 * b as u64 + 1),
                        ],
                    ),
                    (format!("scatter-bw-wait[{b}]"), wait_bw),
                    (
                        format!("fftz-fw[{b}]"),
                        vec![Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 18))],
                    ),
                    (
                        format!("unpack[{b}]"),
                        vec![Segment::compute_keyed(StateClass::Unpack, flops.pack, nkey(b, 3))],
                    ),
                ];
                for (n, (label, segments)) in chain.into_iter().enumerate() {
                    // Wait tasks defer behind every band's compute
                    // (priority b + nbnd): the transfer progresses on its
                    // own, so workers should prefer useful work.
                    let p = if segments
                        .iter()
                        .any(|s| matches!(s, Segment::CollectiveWait { .. }))
                    {
                        prio + cfg.nbnd as u64
                    } else {
                        prio
                    };
                    let mut task = TaskSpec::new(label, p, segments);
                    if n > 0 {
                        task = task.with_deps(vec![base + n - 1]);
                    }
                    tasks.push(task);
                }
            }
            RankTasks {
                tasks,
                workers: cfg.ntg,
            }
        })
        .collect()
}

fn build_hybrid(problem: &Problem) -> Vec<RankTasks> {
    let cfg = problem.config;
    let l = &problem.layout;
    (0..cfg.nr)
        .map(|g| {
            let flops = StepFlops::for_group(problem, g);
            let mut tasks: Vec<TaskSpec> = Vec::with_capacity(cfg.nbnd * 3);
            let sc = ScatterShape {
                decomp: cfg.decomp,
                slab_key: WORLD_KEY,
                family: 0,
                member: g,
                size: l.r,
                bytes: l.scatter_bytes(),
            };
            for b in 0..cfg.nbnd {
                let prio = b as u64;
                let base = tasks.len();
                // The band's nine stages fused into a chain of three tasks
                // cut at the nonblocking collectives — per-band coarse
                // tasks (strategy 2's de-sync) with both transfers posted
                // split-phase (strategy 1's overlap). Segment work and
                // noise keys match the other task lowerings exactly, so
                // flop totals stay mode-invariant.
                let mid = {
                    let mut s = sc.wait(2 * b as u64, b, RESTAGE_FWD);
                    s.extend([
                        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 12)),
                        Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 13)),
                        Segment::compute_keyed(StateClass::Vofr, flops.vofr, nkey(b, 14)),
                        Segment::compute_keyed(StateClass::FftXy, flops.fft_xy, nkey(b, 15)),
                        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 16)),
                        sc.post(2 * b as u64 + 1),
                    ]);
                    s
                };
                let tail = {
                    let mut s = sc.wait(2 * b as u64 + 1, b, RESTAGE_BWD);
                    s.extend([
                        Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 17)),
                        Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 18)),
                        Segment::compute_keyed(StateClass::Unpack, flops.pack, nkey(b, 3)),
                    ]);
                    s
                };
                let chain: Vec<(String, Vec<Segment>)> = vec![
                    (
                        format!("hyb-head[{b}]"),
                        vec![
                            Segment::compute(StateClass::Runtime, runtime_overhead(&flops)),
                            Segment::compute_keyed(StateClass::PsiPrep, flops.prep, nkey(b, 0)),
                            Segment::compute_keyed(StateClass::Pack, flops.pack, nkey(b, 1)),
                            Segment::compute_keyed(StateClass::FftZ, flops.fft_z, nkey(b, 10)),
                            Segment::compute_keyed(StateClass::Other, flops.scatter_copy / 4.0, nkey(b, 11)),
                            sc.post(2 * b as u64),
                        ],
                    ),
                    (format!("hyb-mid[{b}]"), mid),
                    (format!("hyb-tail[{b}]"), tail),
                ];
                for (n, (label, segments)) in chain.into_iter().enumerate() {
                    // Waiting tasks defer behind every band's head
                    // (priority b + nbnd), like the async lowering.
                    let p = if segments
                        .iter()
                        .any(|s| matches!(s, Segment::CollectiveWait { .. }))
                    {
                        prio + cfg.nbnd as u64
                    } else {
                        prio
                    };
                    let mut task = TaskSpec::new(label, p, segments);
                    if n > 0 {
                        task = task.with_deps(vec![base + n - 1]);
                    }
                    tasks.push(task);
                }
            }
            RankTasks {
                tasks,
                workers: cfg.ntg,
            }
        })
        .collect()
}

/// A modeled execution: runtime, trace, and the ideal-network replay.
pub struct ModeledRun {
    /// The configuration.
    pub config: FftxConfig,
    /// Virtual FFT-phase runtime (s).
    pub runtime: f64,
    /// Runtime of the zero-transfer replay (for the sync/transfer split).
    pub ideal_runtime: f64,
    /// The simulated trace.
    pub trace: Trace,
}

/// Simulates `config` on the modeled KNL node (paper-calibrated models),
/// including the zero-transfer replay.
pub fn run_modeled(config: FftxConfig) -> ModeledRun {
    run_modeled_with(config, &KnlConfig::paper(), &ContentionModel::paper(), &CommModel::paper())
}

/// Simulates `config` with explicit architecture/model parameters (used by
/// the ablation benches).
pub fn run_modeled_with(
    config: FftxConfig,
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
) -> ModeledRun {
    let problem = Problem::new(config);
    let programs = build_programs(&problem);
    let real = simulate(&programs, knl, contention, comm);
    let ideal = simulate(&programs, knl, contention, &comm.idealized());
    ModeledRun {
        config,
        runtime: real.runtime,
        ideal_runtime: ideal.runtime,
        trace: real.trace,
    }
}

/// Simulates only the real network (no ideal replay), returning the raw
/// simulator result.
pub fn simulate_config(
    config: FftxConfig,
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
) -> SimResult {
    let problem = Problem::new(config);
    let programs = build_programs(&problem);
    simulate(&programs, knl, contention, comm)
}

/// [`simulate_config`] under a straggler [`FaultPlan`] — the entry point of
/// the resilience experiment (`--bin resilience`): the same lowering, with
/// selected compute segments stretched by the plan. Because the spikes key
/// on the band/step noise keys shared by every mode's lowering, the injected
/// severity is matched across modes by construction.
pub fn simulate_config_faulty(
    config: FftxConfig,
    knl: &KnlConfig,
    contention: &ContentionModel,
    comm: &CommModel,
    plan: &FaultPlan,
) -> SimResult {
    let problem = Problem::new(config);
    let programs = build_programs(&problem);
    simulate_faulty(&programs, knl, contention, comm, plan)
}

/// Convenience used by tests: total flops of all programs of a problem.
pub fn total_program_flops(problem: &Arc<Problem>) -> f64 {
    build_programs(problem).iter().map(|r| r.total_flops()).sum()
}

// ---------------------------------------------------------------------
// Decomposition auto-resolution
// ---------------------------------------------------------------------

/// Modeled transfer seconds of one scatter exchange of an `r`-member
/// family moving `bytes` per rank under `decomp`, on the paper-calibrated
/// network model: the slab pays one full-family alltoall, the pencil two
/// alltoalls over the `p1 × p2` process grid (each still moving the full
/// buffer, but with `p1 + p2 − 2` messages instead of `r − 1`).
pub fn modeled_scatter_seconds(decomp: Decomposition, r: usize, bytes: usize) -> f64 {
    let m = CommModel::paper();
    match decomp {
        Decomposition::Slab => m.duration(CommOp::Alltoall, r, bytes),
        Decomposition::Pencil => {
            let pg = ProcessGrid::factor(r);
            m.duration(CommOp::Alltoall, pg.p2, bytes) + m.duration(CommOp::Alltoall, pg.p1, bytes)
        }
    }
}

/// The decomposition the calibrated network model prefers for an
/// `r`-member scatter family exchanging `bytes` per rank. Ties go to the
/// slab (the simpler lowering); a prime `r` degenerates the pencil into
/// the slab plus an extra local restage, so the slab always wins there.
pub fn choose_decomp(r: usize, bytes: usize) -> Decomposition {
    let slab = modeled_scatter_seconds(Decomposition::Slab, r, bytes);
    let pencil = modeled_scatter_seconds(Decomposition::Pencil, r, bytes);
    if ProcessGrid::factor(r).is_degenerate() || pencil >= slab {
        Decomposition::Slab
    } else {
        Decomposition::Pencil
    }
}

/// Resolves a [`DecompChoice`] to a concrete decomposition for `config`:
/// fixed choices pass through; `auto` builds the layout geometry (sticks
/// and planes do not depend on the decomposition) and asks
/// [`choose_decomp`] — the resolution rule of `--decomp auto` and
/// `FFTX_DECOMP=auto` outside the serving layer, where the placement tuner
/// owns the choice instead.
pub fn resolve_decomp(choice: DecompChoice, config: &FftxConfig) -> Decomposition {
    match choice.fixed() {
        Some(d) => d,
        None => {
            let cell = Cell::cubic(config.alat);
            let grid = FftGrid::from_cutoff(&cell, DUAL * config.ecutwfc);
            let sphere = GSphere::generate(&cell, config.ecutwfc, &grid);
            let set = StickSet::build(&sphere, &grid);
            let l = TaskGroupLayout::new(grid, set, config.nr, config.layout_ntg());
            choose_decomp(l.r, l.scatter_bytes())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(nr: usize, ntg: usize, mode: Mode) -> FftxConfig {
        FftxConfig::small(nr, ntg, mode)
    }

    #[test]
    fn program_shapes_per_mode() {
        let p = Problem::new(small(2, 2, Mode::Original));
        let progs = build_programs(&p);
        assert_eq!(progs.len(), 4);
        for pr in &progs {
            assert_eq!(pr.workers, 1);
            assert_eq!(pr.tasks.len(), 1);
            // 4 collectives per iteration (2 pack + 2 scatter).
            assert_eq!(pr.collective_count(), 4 * p.config.iterations());
        }

        let p = Problem::new(small(2, 2, Mode::TaskPerFft));
        let progs = build_programs(&p);
        assert_eq!(progs.len(), 2);
        for pr in &progs {
            assert_eq!(pr.workers, 2);
            assert_eq!(pr.tasks.len(), p.config.nbnd);
            assert_eq!(pr.collective_count(), 2 * p.config.nbnd);
        }

        let p = Problem::new(small(2, 2, Mode::TaskPerStep));
        let progs = build_programs(&p);
        for pr in &progs {
            assert_eq!(pr.tasks.len(), 9 * p.config.nbnd);
            // Each chain: 8 deps.
            let dep_count: usize = pr.tasks.iter().map(|t| t.deps.len()).sum();
            assert_eq!(dep_count, 8 * p.config.nbnd);
        }

        let p = Problem::new(small(2, 2, Mode::Hybrid));
        let progs = build_programs(&p);
        assert_eq!(progs.len(), 2);
        for pr in &progs {
            assert_eq!(pr.workers, 2);
            // Three fused tasks per band, chained head -> mid -> tail.
            assert_eq!(pr.tasks.len(), 3 * p.config.nbnd);
            let dep_count: usize = pr.tasks.iter().map(|t| t.deps.len()).sum();
            assert_eq!(dep_count, 2 * p.config.nbnd);
        }
    }

    #[test]
    fn work_is_mode_invariant_per_lane_total() {
        // All three modes perform the same FFT work in total (instructions
        // scalability ~ 1 across modes in the paper).
        let o = Problem::new(small(2, 2, Mode::Original));
        let f = Problem::new(small(2, 2, Mode::TaskPerFft));
        let s = Problem::new(small(2, 2, Mode::TaskPerStep));
        let a = Problem::new(small(2, 2, Mode::TaskAsync));
        let h = Problem::new(small(2, 2, Mode::Hybrid));
        let fo = total_program_flops(&o);
        let ff = total_program_flops(&f);
        let fs = total_program_flops(&s);
        let fa = total_program_flops(&a);
        let fh = total_program_flops(&h);
        // FFT-batch work identical; copy/prep bookkeeping differs by layout
        // (task modes have R groups instead of R*T ranks) — allow 25%.
        assert!((ff / fo - 1.0).abs() < 0.25, "fft {ff} vs orig {fo}");
        assert!((fs / ff - 1.0).abs() < 1e-9, "steps {fs} vs fft {ff}");
        // Split-phase modes book the scatter copies as /4 quarters around
        // post/wait (half the blocking modes' copy accounting) — hybrid must
        // match async exactly, and sit within a few % of the blocking modes.
        assert!((fh / fa - 1.0).abs() < 1e-9, "hybrid {fh} vs async {fa}");
        assert!((fh / ff - 1.0).abs() < 0.05, "hybrid {fh} vs fft {ff}");
    }

    #[test]
    fn modeled_runs_complete_for_all_modes() {
        for mode in [
            Mode::Original,
            Mode::TaskPerFft,
            Mode::TaskPerStep,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            let run = run_modeled(small(2, 2, mode));
            assert!(run.runtime > 0.0, "{mode:?}");
            assert!(run.ideal_runtime <= run.runtime * (1.0 + 1e-9), "{mode:?}");
            assert!(!run.trace.compute.is_empty());
            assert!(!run.trace.comm.is_empty());
        }
    }

    #[test]
    fn pencil_lowering_doubles_the_scatter_collectives() {
        use crate::config::Decomposition;
        // 4×1: the scatter family is the full world, pencil grid 2×2.
        let slab = Problem::new(small(4, 1, Mode::Original));
        let pencil = Problem::new(small(4, 1, Mode::Original).with_decomp(Decomposition::Pencil));
        for (ps, pp) in build_programs(&slab).iter().zip(build_programs(&pencil)) {
            // Per iteration: 2 pack stay, 2 scatter become 4 (row + col).
            assert_eq!(ps.collective_count(), 4 * slab.config.iterations());
            assert_eq!(pp.collective_count(), 6 * pencil.config.iterations());
        }
        // Split-phase lowerings post/wait every exchange (no blocking
        // collectives under slab); the pencil adds one blocking column
        // collective per exchange, two exchanges per band.
        let slab = Problem::new(small(4, 1, Mode::Hybrid));
        let pencil = Problem::new(small(4, 1, Mode::Hybrid).with_decomp(Decomposition::Pencil));
        for (ps, pp) in build_programs(&slab).iter().zip(build_programs(&pencil)) {
            assert_eq!(ps.collective_count(), 0);
            assert_eq!(pp.collective_count(), 2 * pencil.config.nbnd);
        }
    }

    #[test]
    fn pencil_flop_accounting_stays_mode_invariant() {
        use crate::config::Decomposition;
        let p = |mode| {
            Problem::new(small(4, 1, mode).with_decomp(Decomposition::Pencil))
        };
        let ff = total_program_flops(&p(Mode::TaskPerFft));
        let fs = total_program_flops(&p(Mode::TaskPerStep));
        let fa = total_program_flops(&p(Mode::TaskAsync));
        let fh = total_program_flops(&p(Mode::Hybrid));
        assert!((fs / ff - 1.0).abs() < 1e-9, "steps {fs} vs fft {ff}");
        assert!((fh / fa - 1.0).abs() < 1e-9, "hybrid {fh} vs async {fa}");
    }

    #[test]
    fn pencil_modeled_runs_complete_for_all_modes() {
        use crate::config::Decomposition;
        for mode in [
            Mode::Original,
            Mode::TaskPerFft,
            Mode::TaskPerStep,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            let run = run_modeled(small(4, 1, mode).with_decomp(Decomposition::Pencil));
            assert!(run.runtime > 0.0, "{mode:?}");
            assert!(run.ideal_runtime <= run.runtime * (1.0 + 1e-9), "{mode:?}");
        }
    }

    #[test]
    fn auto_decomp_prefers_pencil_at_high_rank_counts() {
        use crate::config::Decomposition;
        let bytes = 1 << 16;
        // Message count dominates at scale: 64 ranks pay 63 messages as a
        // slab but 7 + 7 as an 8×8 pencil.
        assert_eq!(choose_decomp(64, bytes), Decomposition::Pencil);
        // Small families: the second latency term outweighs the saving.
        assert_eq!(choose_decomp(2, bytes), Decomposition::Slab);
        // Prime families degenerate (1 × r grid) — never worth it.
        assert_eq!(choose_decomp(13, bytes), Decomposition::Slab);
        // A tie or degenerate factorisation resolves to slab.
        assert_eq!(choose_decomp(1, bytes), Decomposition::Slab);
    }

    #[test]
    fn resolve_decomp_passes_fixed_choices_through() {
        use crate::config::{DecompChoice, Decomposition};
        let cfg = small(2, 2, Mode::Original);
        assert_eq!(resolve_decomp(DecompChoice::Slab, &cfg), Decomposition::Slab);
        assert_eq!(resolve_decomp(DecompChoice::Pencil, &cfg), Decomposition::Pencil);
        // Auto on a tiny 2-rank family: slab (and it must agree with the
        // direct model comparison).
        let auto = resolve_decomp(DecompChoice::Auto, &cfg);
        assert_eq!(auto, Decomposition::Slab);
    }

    #[test]
    fn uncontended_node_is_faster() {
        let cfg = small(2, 2, Mode::Original);
        let contended = run_modeled(cfg);
        let free = run_modeled_with(
            cfg,
            &KnlConfig::paper(),
            &ContentionModel::uncontended(),
            &CommModel::paper(),
        );
        assert!(free.runtime <= contended.runtime + 1e-12);
    }
}
