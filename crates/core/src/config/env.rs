//! Unified, strictly-typed parsing of the `FFTX_*` environment knobs.
//!
//! Every knob the workspace reads — `FFTX_SCHEDULER`, `FFTX_CHAOS_SEED` /
//! `FFTX_CHAOS_PROFILE`, the `FFTX_RECOVERY_*` budgets,
//! `FFTX_ARENA_POISON`, and the fleet-capacity set (`FFTX_FLEET_MIN` /
//! `FFTX_FLEET_MAX`, `FFTX_SCALE_UP_AT` / `FFTX_SCALE_DOWN_AT`,
//! `FFTX_STEAL`, `FFTX_PLAN_ITERS` / `FFTX_PLAN_SEED`) — is parsed here
//! through one entry point with typed errors. The lower-level crates keep their historical lenient readers
//! (`ChaosConfig::from_env`, `RecoveryConfig::from_env`,
//! `SchedulerPolicy::from_env`, `plan::arena_poison`) because library code
//! deep in a run has no good way to report a typo; the *binaries* call
//! [`load`] up front and refuse to start on an invalid value instead of
//! silently falling back — the failure mode this module exists to kill.

use crate::config::{valid_decomps, DecompChoice};
use crate::stages::SchedulerPolicy;
use crate::verify::VerifyMode;
use fftx_fault::{ChaosConfig, RecoveryConfig};
use std::fmt;

/// A knob carried an unparsable or out-of-vocabulary value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The environment variable.
    pub key: &'static str,
    /// The rejected value.
    pub value: String,
    /// Human-readable description of what would have been accepted.
    pub expected: String,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}='{}' is invalid: expected {}",
            self.key, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Comma-separated list of the valid `FFTX_SCHEDULER` / `--mode` policy
/// names — the vocabulary CLI error messages print.
pub fn valid_policies() -> String {
    SchedulerPolicy::ALL
        .iter()
        .map(|p| p.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// The fleet-capacity knob set, all optional: unset knobs leave the
/// consumer's own default in place (CLI flags override these in the
/// serving binary). Cross-field consistency (`min <= max`,
/// `down_at < up_at`) is validated where the values meet the autoscaler
/// config; this parser enforces each knob's own domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FleetKnobs {
    /// `FFTX_FLEET_MIN`: autoscaler floor on active shards (>= 1).
    pub min: Option<usize>,
    /// `FFTX_FLEET_MAX`: autoscaler ceiling on active shards (>= 1).
    pub max: Option<usize>,
    /// `FFTX_SCALE_UP_AT`: scale-up pressure threshold in (0, 1].
    pub up_at: Option<f64>,
    /// `FFTX_SCALE_DOWN_AT`: scale-down pressure threshold in (0, 1].
    pub down_at: Option<f64>,
    /// `FFTX_STEAL`: cross-shard work stealing, `on` or `off`.
    pub steal: Option<bool>,
    /// `FFTX_PLAN_ITERS`: Monte-Carlo iterations of the capacity planner
    /// (>= 1).
    pub plan_iters: Option<usize>,
    /// `FFTX_PLAN_SEED`: base seed of the planner's traffic iterations.
    pub plan_seed: Option<u64>,
}

/// The fully-parsed knob set.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvKnobs {
    /// `FFTX_SCHEDULER`: default scheduler policy, when set.
    pub scheduler: Option<SchedulerPolicy>,
    /// `FFTX_CHAOS_SEED` + `FFTX_CHAOS_PROFILE`: transport chaos, when a
    /// seed is set and the profile is not `off`.
    pub chaos: Option<ChaosConfig>,
    /// `FFTX_RECOVERY_*`: recovery budgets (defaults where unset).
    pub recovery: RecoveryConfig,
    /// `FFTX_ARENA_POISON`: NaN-poison reused scatter staging buffers.
    pub arena_poison: bool,
    /// `FFTX_VERIFY`: ABFT verification mode of the pipeline's FFT legs.
    pub verify: VerifyMode,
    /// `FFTX_DECOMP`: scatter decomposition request (slab/pencil/auto),
    /// when set. Callers keep their own default when unset — `slab` for
    /// the direct driver, `auto` for the serving layer's tuner.
    pub decomp: Option<DecompChoice>,
    /// The fleet-capacity knob set (autoscaler bounds and thresholds,
    /// work stealing, planner iterations).
    pub fleet: FleetKnobs,
}

/// Parses every knob from the process environment. See [`load_from`].
///
/// # Errors
/// Returns the first [`EnvError`] encountered; the message names the
/// variable, the rejected value, and the accepted vocabulary.
pub fn load() -> Result<EnvKnobs, EnvError> {
    load_from(|k| std::env::var(k).ok())
}

/// [`load`] with an injectable variable source, so tests validate the
/// parser without mutating the process environment.
///
/// # Errors
/// Returns the first [`EnvError`] encountered.
pub fn load_from(get: impl Fn(&str) -> Option<String>) -> Result<EnvKnobs, EnvError> {
    let scheduler = match get("FFTX_SCHEDULER") {
        None => None,
        Some(v) => Some(SchedulerPolicy::parse(&v).ok_or_else(|| EnvError {
            key: "FFTX_SCHEDULER",
            value: v,
            expected: format!("one of: {}", valid_policies()),
        })?),
    };

    let seed = match get("FFTX_CHAOS_SEED") {
        None => None,
        Some(v) => Some(v.parse::<u64>().map_err(|_| EnvError {
            key: "FFTX_CHAOS_SEED",
            value: v,
            expected: "an unsigned 64-bit integer seed".into(),
        })?),
    };
    let profile = get("FFTX_CHAOS_PROFILE");
    let chaos = match (seed, profile.as_deref()) {
        (_, Some(p)) if !matches!(p, "off" | "light" | "aggressive") => {
            return Err(EnvError {
                key: "FFTX_CHAOS_PROFILE",
                value: p.into(),
                expected: "one of: off, light, aggressive".into(),
            });
        }
        (None, _) | (_, Some("off")) => None,
        (Some(s), Some("light")) => Some(ChaosConfig::light(s)),
        (Some(s), _) => Some(ChaosConfig::aggressive(s)),
    };

    let d = RecoveryConfig::default();
    let recovery = RecoveryConfig {
        max_retries: knob(&get, "FFTX_RECOVERY_MAX_RETRIES", d.max_retries)?,
        base_backoff: std::time::Duration::from_micros(knob(
            &get,
            "FFTX_RECOVERY_BACKOFF_US",
            d.base_backoff.as_micros() as u64,
        )?),
        max_backoff: std::time::Duration::from_micros(knob(
            &get,
            "FFTX_RECOVERY_MAX_BACKOFF_US",
            d.max_backoff.as_micros() as u64,
        )?),
        max_rollbacks: knob(&get, "FFTX_RECOVERY_MAX_ROLLBACKS", d.max_rollbacks)?,
        prefer_t: knob(&get, "FFTX_RECOVERY_PREFER_T", d.prefer_t)?,
    };

    let arena_poison = match get("FFTX_ARENA_POISON").as_deref() {
        None | Some("0") => false,
        Some("1") => true,
        Some(v) => {
            return Err(EnvError {
                key: "FFTX_ARENA_POISON",
                value: v.into(),
                expected: "0 or 1".into(),
            });
        }
    };

    let verify = match get("FFTX_VERIFY") {
        None => VerifyMode::Off,
        Some(v) => VerifyMode::parse(&v).ok_or_else(|| EnvError {
            key: "FFTX_VERIFY",
            value: v,
            expected: "one of: off, cheap, full".into(),
        })?,
    };

    let decomp = match get("FFTX_DECOMP") {
        None => None,
        Some(v) => Some(DecompChoice::parse(&v).ok_or_else(|| EnvError {
            key: "FFTX_DECOMP",
            value: v,
            expected: format!("one of: {}", valid_decomps()),
        })?),
    };

    let fleet = FleetKnobs {
        min: opt_knob(&get, "FFTX_FLEET_MIN", "a shard count >= 1", |n: &usize| *n >= 1)?,
        max: opt_knob(&get, "FFTX_FLEET_MAX", "a shard count >= 1", |n: &usize| *n >= 1)?,
        up_at: opt_knob(&get, "FFTX_SCALE_UP_AT", "a pressure fraction in (0, 1]", frac)?,
        down_at: opt_knob(&get, "FFTX_SCALE_DOWN_AT", "a pressure fraction in (0, 1]", frac)?,
        steal: match get("FFTX_STEAL").as_deref() {
            None => None,
            Some("on") => Some(true),
            Some("off") => Some(false),
            Some(v) => {
                return Err(EnvError {
                    key: "FFTX_STEAL",
                    value: v.into(),
                    expected: "one of: on, off".into(),
                });
            }
        },
        plan_iters: opt_knob(
            &get,
            "FFTX_PLAN_ITERS",
            "an iteration count >= 1",
            |n: &usize| *n >= 1,
        )?,
        plan_seed: opt_knob(&get, "FFTX_PLAN_SEED", "an unsigned 64-bit integer seed", |_| {
            true
        })?,
    };

    Ok(EnvKnobs {
        scheduler,
        chaos,
        recovery,
        arena_poison,
        verify,
        decomp,
        fleet,
    })
}

/// `true` when `x` is a usable pressure fraction: finite and in `(0, 1]`.
fn frac(x: &f64) -> bool {
    x.is_finite() && *x > 0.0 && *x <= 1.0
}

/// Parses one numeric knob strictly: unset → default, set-but-unparsable →
/// typed error (where the lenient low-level readers silently fall back).
fn knob<T: std::str::FromStr + Copy>(
    get: &impl Fn(&str) -> Option<String>,
    key: &'static str,
    default: T,
) -> Result<T, EnvError> {
    match get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| EnvError {
            key,
            value: v,
            expected: "an unsigned integer".into(),
        }),
    }
}

/// Parses one optional knob with a per-key domain: unset → `None`,
/// set-but-unparsable or outside `admit` → typed error naming `expected`.
fn opt_knob<T: std::str::FromStr>(
    get: &impl Fn(&str) -> Option<String>,
    key: &'static str,
    expected: &str,
    admit: impl Fn(&T) -> bool,
) -> Result<Option<T>, EnvError> {
    match get(key) {
        None => Ok(None),
        Some(v) => match v.parse::<T>() {
            Ok(parsed) if admit(&parsed) => Ok(Some(parsed)),
            _ => Err(EnvError {
                key,
                value: v,
                expected: expected.into(),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| pairs.iter().find(|(key, _)| *key == k).map(|(_, v)| v.to_string())
    }

    #[test]
    fn empty_environment_yields_defaults() {
        let knobs = load_from(|_| None).expect("defaults");
        assert_eq!(knobs.scheduler, None);
        assert_eq!(knobs.chaos, None);
        assert_eq!(knobs.recovery, RecoveryConfig::default());
        assert!(!knobs.arena_poison);
        assert_eq!(knobs.verify, VerifyMode::Off);
        assert_eq!(knobs.decomp, None);
        assert_eq!(knobs.fleet, FleetKnobs::default());
    }

    #[test]
    fn fleet_knobs_parse_when_set() {
        let knobs = load_from(env(&[
            ("FFTX_FLEET_MIN", "2"),
            ("FFTX_FLEET_MAX", "6"),
            ("FFTX_SCALE_UP_AT", "0.7"),
            ("FFTX_SCALE_DOWN_AT", "0.2"),
            ("FFTX_STEAL", "on"),
            ("FFTX_PLAN_ITERS", "8"),
            ("FFTX_PLAN_SEED", "2017"),
        ]))
        .expect("valid");
        assert_eq!(
            knobs.fleet,
            FleetKnobs {
                min: Some(2),
                max: Some(6),
                up_at: Some(0.7),
                down_at: Some(0.2),
                steal: Some(true),
                plan_iters: Some(8),
                plan_seed: Some(2017),
            }
        );
        let off = load_from(env(&[("FFTX_STEAL", "off")])).expect("off");
        assert_eq!(off.fleet.steal, Some(false));
    }

    #[test]
    fn fleet_knob_domains_are_enforced() {
        for (key, value) in [
            ("FFTX_FLEET_MIN", "0"),
            ("FFTX_FLEET_MAX", "lots"),
            ("FFTX_SCALE_UP_AT", "1.5"),
            ("FFTX_SCALE_UP_AT", "nan"),
            ("FFTX_SCALE_DOWN_AT", "0"),
            ("FFTX_SCALE_DOWN_AT", "-0.1"),
            ("FFTX_PLAN_ITERS", "0"),
            ("FFTX_PLAN_SEED", "lucky"),
        ] {
            let err = load_from(env(&[(key, value)])).expect_err(key);
            assert_eq!(err.key, key, "{value}");
            assert!(!err.expected.is_empty());
        }
        let err = load_from(env(&[("FFTX_STEAL", "maybe")])).expect_err("steal vocab");
        assert_eq!(err.key, "FFTX_STEAL");
        let msg = err.to_string();
        assert!(msg.contains("on") && msg.contains("off"), "{msg}");
    }

    #[test]
    fn decomp_vocabulary_is_enforced() {
        for (v, want) in [
            ("slab", DecompChoice::Slab),
            ("pencil", DecompChoice::Pencil),
            ("auto", DecompChoice::Auto),
        ] {
            let knobs = load_from(env(&[("FFTX_DECOMP", v)])).expect("valid");
            assert_eq!(knobs.decomp, Some(want));
        }
        let err = load_from(env(&[("FFTX_DECOMP", "ring")])).expect_err("strict");
        assert_eq!(err.key, "FFTX_DECOMP");
        let msg = err.to_string();
        for name in ["slab", "pencil", "auto"] {
            assert!(msg.contains(name), "message must list '{name}': {msg}");
        }
    }

    #[test]
    fn verify_mode_vocabulary_is_enforced() {
        for (v, want) in [
            ("off", VerifyMode::Off),
            ("cheap", VerifyMode::Cheap),
            ("full", VerifyMode::Full),
        ] {
            let knobs = load_from(env(&[("FFTX_VERIFY", v)])).expect("valid");
            assert_eq!(knobs.verify, want);
        }
        let err = load_from(env(&[("FFTX_VERIFY", "paranoid")])).expect_err("strict");
        assert_eq!(err.key, "FFTX_VERIFY");
        assert!(err.to_string().contains("cheap"), "{err}");
    }

    #[test]
    fn scheduler_parses_and_rejects() {
        let knobs = load_from(env(&[("FFTX_SCHEDULER", "hybrid")])).expect("valid");
        assert_eq!(knobs.scheduler, Some(SchedulerPolicy::Hybrid));

        let err = load_from(env(&[("FFTX_SCHEDULER", "turbo")])).expect_err("invalid");
        assert_eq!(err.key, "FFTX_SCHEDULER");
        let msg = err.to_string();
        for name in ["serial", "step", "fft", "async", "hybrid"] {
            assert!(msg.contains(name), "message must list '{name}': {msg}");
        }
    }

    #[test]
    fn chaos_profile_vocabulary_is_enforced() {
        let agg = load_from(env(&[("FFTX_CHAOS_SEED", "7")])).expect("seed only");
        assert_eq!(agg.chaos, Some(ChaosConfig::aggressive(7)));

        let light = load_from(env(&[
            ("FFTX_CHAOS_SEED", "7"),
            ("FFTX_CHAOS_PROFILE", "light"),
        ]))
        .expect("light");
        assert_eq!(light.chaos, Some(ChaosConfig::light(7)));

        let off = load_from(env(&[
            ("FFTX_CHAOS_SEED", "7"),
            ("FFTX_CHAOS_PROFILE", "off"),
        ]))
        .expect("off");
        assert_eq!(off.chaos, None);

        // A bad profile is an error even without a seed — the lenient
        // low-level reader would have silently picked `aggressive`.
        let err = load_from(env(&[("FFTX_CHAOS_PROFILE", "chaotic")])).expect_err("bad profile");
        assert_eq!(err.key, "FFTX_CHAOS_PROFILE");
        let err = load_from(env(&[("FFTX_CHAOS_SEED", "not-a-seed")])).expect_err("bad seed");
        assert_eq!(err.key, "FFTX_CHAOS_SEED");
    }

    #[test]
    fn recovery_knobs_are_strict() {
        let knobs = load_from(env(&[
            ("FFTX_RECOVERY_MAX_RETRIES", "5"),
            ("FFTX_RECOVERY_BACKOFF_US", "10"),
            ("FFTX_RECOVERY_PREFER_T", "4"),
        ]))
        .expect("valid");
        assert_eq!(knobs.recovery.max_retries, 5);
        assert_eq!(knobs.recovery.base_backoff, Duration::from_micros(10));
        assert_eq!(knobs.recovery.prefer_t, 4);

        let err =
            load_from(env(&[("FFTX_RECOVERY_MAX_ROLLBACKS", "many")])).expect_err("strict");
        assert_eq!(err.key, "FFTX_RECOVERY_MAX_ROLLBACKS");
    }

    #[test]
    fn arena_poison_is_binary() {
        assert!(load_from(env(&[("FFTX_ARENA_POISON", "1")])).expect("on").arena_poison);
        assert!(!load_from(env(&[("FFTX_ARENA_POISON", "0")])).expect("off").arena_poison);
        let err = load_from(env(&[("FFTX_ARENA_POISON", "yes")])).expect_err("strict");
        assert_eq!(err.key, "FFTX_ARENA_POISON");
    }

    #[test]
    fn valid_policy_list_matches_the_policy_set() {
        let list = valid_policies();
        assert_eq!(list, "serial, step, fft, async, hybrid");
    }
}
