//! Benchmark configuration: the knobs of the FFTXlib miniapp plus the
//! execution mode (original static code vs the two task-based strategies).

pub mod env;

/// Execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The original FFTXlib: static parallelisation over R×T MPI ranks with
    /// T FFT task groups (Fig. 1 of the paper).
    Original,
    /// Optimisation strategy 1 (Fig. 4): every step of the FFT pipeline is
    /// a task with flow dependencies; R ranks × T worker threads, ntg = 1.
    TaskPerStep,
    /// Optimisation strategy 2 (Fig. 5): every FFT (loop iteration) is one
    /// independent task; R ranks × T worker threads, ntg = 1.
    TaskPerFft,
    /// The paper's future work (Section VI): strategy 1's step tasks with
    /// *split-phase* collectives — the scatter posts a nonblocking
    /// alltoall in one task and a separate task completes it, so the
    /// runtime automatically overlaps the transfer with other bands'
    /// compute (cf. Marjanović et al., hybrid MPI/SMPSs).
    TaskAsync,
    /// The combination the paper's conclusion calls for: per-band fused
    /// tasks (strategy 2's de-synchronisation) whose internal pipeline is
    /// cut at split-phase collectives (strategy 1's overlap) — three
    /// chained tasks per band.
    Hybrid,
}

impl Mode {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Original => "original",
            Mode::TaskPerStep => "ompss-steps",
            Mode::TaskPerFft => "ompss-ffts",
            Mode::TaskAsync => "ompss-async",
            Mode::Hybrid => "ompss-hybrid",
        }
    }
}

/// Full configuration of one miniapp execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftxConfig {
    /// Plane-wave kinetic-energy cutoff (Ry). Paper benchmark: 80.
    pub ecutwfc: f64,
    /// Cubic lattice parameter (bohr). Paper benchmark: 20.
    pub alat: f64,
    /// Number of Kohn–Sham bands. Paper benchmark: 128.
    pub nbnd: usize,
    /// First parallel dimension R ("MPI ranks" axis of the paper's R × T).
    pub nr: usize,
    /// Second dimension T: FFT task groups (original) or worker threads per
    /// rank (task modes). Paper benchmark: 8.
    pub ntg: usize,
    /// Execution strategy.
    pub mode: Mode,
    /// Seed for the synthetic bands and potential.
    pub seed: u64,
}

impl FftxConfig {
    /// The paper's benchmark parameters (Figs. 2 and 6): cutoff 80 Ry,
    /// lattice parameter 20 bohr, 128 bands, 8 task groups.
    pub fn paper(nr: usize, mode: Mode) -> Self {
        FftxConfig {
            ecutwfc: 80.0,
            alat: 20.0,
            nbnd: 128,
            nr,
            ntg: 8,
            mode,
            seed: 2017,
        }
    }

    /// A laptop-scale configuration for tests and the real execution engine
    /// (grid ~24^3, a handful of bands).
    pub fn small(nr: usize, ntg: usize, mode: Mode) -> Self {
        FftxConfig {
            ecutwfc: 6.0,
            alat: 8.0,
            nbnd: 2 * ntg.max(1),
            nr,
            ntg,
            mode,
            seed: 42,
        }
    }

    /// MPI ranks the execution uses: R×T for the original static code,
    /// R for the task modes (threads replace the task groups).
    pub fn vmpi_ranks(&self) -> usize {
        match self.mode {
            Mode::Original => self.nr * self.ntg,
            Mode::TaskPerStep | Mode::TaskPerFft | Mode::TaskAsync | Mode::Hybrid => self.nr,
        }
    }

    /// Execution lanes (hardware threads) the configuration occupies.
    pub fn lanes(&self) -> usize {
        self.nr * self.ntg
    }

    /// Task-group count of the data layout: T for the original mode, 1 for
    /// the task modes (the paper's OmpSs runs use ntg = 1).
    pub fn layout_ntg(&self) -> usize {
        match self.mode {
            Mode::Original => self.ntg,
            Mode::TaskPerStep | Mode::TaskPerFft | Mode::TaskAsync | Mode::Hybrid => 1,
        }
    }

    /// Outer-loop iterations: bands are processed `layout_ntg` at a time.
    pub fn iterations(&self) -> usize {
        self.nbnd / self.layout_ntg()
    }

    /// Checks structural requirements.
    ///
    /// # Panics
    /// Panics when the band count is not divisible by the task-group count
    /// or any dimension is zero.
    pub fn validate(&self) {
        assert!(self.nr > 0 && self.ntg > 0, "FftxConfig: nr/ntg must be positive");
        assert!(self.nbnd > 0, "FftxConfig: need at least one band");
        assert_eq!(
            self.nbnd % self.layout_ntg(),
            0,
            "FftxConfig: nbnd ({}) must be divisible by the task-group count ({})",
            self.nbnd,
            self.layout_ntg()
        );
        assert!(self.ecutwfc > 0.0 && self.alat > 0.0, "FftxConfig: bad cutoff/cell");
    }

    /// Configuration label in the paper's "R x T" notation.
    pub fn label(&self) -> String {
        format!("{} x {}", self.nr, self.ntg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_benchmark() {
        let c = FftxConfig::paper(8, Mode::Original);
        assert_eq!(c.ecutwfc, 80.0);
        assert_eq!(c.alat, 20.0);
        assert_eq!(c.nbnd, 128);
        assert_eq!(c.ntg, 8);
        assert_eq!(c.vmpi_ranks(), 64);
        assert_eq!(c.lanes(), 64);
        assert_eq!(c.layout_ntg(), 8);
        assert_eq!(c.iterations(), 16);
        assert_eq!(c.label(), "8 x 8");
        c.validate();
    }

    #[test]
    fn task_modes_trade_ranks_for_threads() {
        let c = FftxConfig::paper(8, Mode::TaskPerFft);
        assert_eq!(c.vmpi_ranks(), 8);
        assert_eq!(c.lanes(), 64);
        assert_eq!(c.layout_ntg(), 1);
        assert_eq!(c.iterations(), 128);
        c.validate();
    }

    #[test]
    fn small_preset_is_valid_for_all_modes() {
        for mode in [
            Mode::Original,
            Mode::TaskPerStep,
            Mode::TaskPerFft,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            FftxConfig::small(2, 2, mode).validate();
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_bands_rejected() {
        let mut c = FftxConfig::small(1, 3, Mode::Original);
        c.nbnd = 4;
        c.validate();
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Original.name(), "original");
        assert_eq!(Mode::TaskPerStep.name(), "ompss-steps");
        assert_eq!(Mode::TaskPerFft.name(), "ompss-ffts");
        assert_eq!(Mode::TaskAsync.name(), "ompss-async");
        assert_eq!(Mode::Hybrid.name(), "ompss-hybrid");
    }
}
