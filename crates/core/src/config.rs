//! Benchmark configuration: the knobs of the FFTXlib miniapp plus the
//! execution mode (original static code vs the two task-based strategies).

pub mod env;

/// Execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The original FFTXlib: static parallelisation over R×T MPI ranks with
    /// T FFT task groups (Fig. 1 of the paper).
    Original,
    /// Optimisation strategy 1 (Fig. 4): every step of the FFT pipeline is
    /// a task with flow dependencies; R ranks × T worker threads, ntg = 1.
    TaskPerStep,
    /// Optimisation strategy 2 (Fig. 5): every FFT (loop iteration) is one
    /// independent task; R ranks × T worker threads, ntg = 1.
    TaskPerFft,
    /// The paper's future work (Section VI): strategy 1's step tasks with
    /// *split-phase* collectives — the scatter posts a nonblocking
    /// alltoall in one task and a separate task completes it, so the
    /// runtime automatically overlaps the transfer with other bands'
    /// compute (cf. Marjanović et al., hybrid MPI/SMPSs).
    TaskAsync,
    /// The combination the paper's conclusion calls for: per-band fused
    /// tasks (strategy 2's de-synchronisation) whose internal pipeline is
    /// cut at split-phase collectives (strategy 1's overlap) — three
    /// chained tasks per band.
    Hybrid,
}

impl Mode {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Original => "original",
            Mode::TaskPerStep => "ompss-steps",
            Mode::TaskPerFft => "ompss-ffts",
            Mode::TaskAsync => "ompss-async",
            Mode::Hybrid => "ompss-hybrid",
        }
    }
}

/// Data decomposition of the scatter exchange (sticks↔planes transpose).
///
/// `Slab` is the paper's QE layout: one padded alltoall over all R ranks of
/// a scatter family. `Pencil` factors the family into a p1 × p2 process
/// grid ([`fftx_pw::ProcessGrid`]) and runs two smaller transposes (row,
/// then column) — roughly twice the volume but far fewer messages, the
/// AccFFT trade-off that wins at high rank counts. Both lowerings produce
/// bitwise-identical results; only the exchange schedule differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Decomposition {
    /// Sticks↔planes via one full-family alltoall (the paper's layout).
    Slab,
    /// 2-D process grid with two transpose exchanges (row + column).
    Pencil,
}

impl Decomposition {
    /// Every decomposition, in presentation order.
    pub const ALL: [Decomposition; 2] = [Decomposition::Slab, Decomposition::Pencil];

    /// Short name used in reports and knobs.
    pub fn name(self) -> &'static str {
        match self {
            Decomposition::Slab => "slab",
            Decomposition::Pencil => "pencil",
        }
    }

    /// Parses a knob value (`slab` / `pencil`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "slab" => Some(Decomposition::Slab),
            "pencil" => Some(Decomposition::Pencil),
            _ => None,
        }
    }

    /// Stable index (used in tuner candidate keys).
    pub fn index(self) -> usize {
        match self {
            Decomposition::Slab => 0,
            Decomposition::Pencil => 1,
        }
    }
}

/// A decomposition *request*: one of the fixed decompositions, or `Auto`
/// (let the placement tuner / cost model choose per workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompChoice {
    /// Force the slab lowering.
    Slab,
    /// Force the pencil lowering.
    Pencil,
    /// Pick per workload (tuner axis / comm-model comparison).
    Auto,
}

impl DecompChoice {
    /// Parses a knob value (`slab` / `pencil` / `auto`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "slab" => Some(DecompChoice::Slab),
            "pencil" => Some(DecompChoice::Pencil),
            "auto" => Some(DecompChoice::Auto),
            _ => None,
        }
    }

    /// Short name used in reports and knobs.
    pub fn name(self) -> &'static str {
        match self {
            DecompChoice::Slab => "slab",
            DecompChoice::Pencil => "pencil",
            DecompChoice::Auto => "auto",
        }
    }

    /// The fixed decomposition this choice pins, if any.
    pub fn fixed(self) -> Option<Decomposition> {
        match self {
            DecompChoice::Slab => Some(Decomposition::Slab),
            DecompChoice::Pencil => Some(Decomposition::Pencil),
            DecompChoice::Auto => None,
        }
    }
}

/// The valid `FFTX_DECOMP` / `--decomp` values, for error messages.
pub fn valid_decomps() -> &'static str {
    "slab, pencil, auto"
}

/// Full configuration of one miniapp execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftxConfig {
    /// Plane-wave kinetic-energy cutoff (Ry). Paper benchmark: 80.
    pub ecutwfc: f64,
    /// Cubic lattice parameter (bohr). Paper benchmark: 20.
    pub alat: f64,
    /// Number of Kohn–Sham bands. Paper benchmark: 128.
    pub nbnd: usize,
    /// First parallel dimension R ("MPI ranks" axis of the paper's R × T).
    pub nr: usize,
    /// Second dimension T: FFT task groups (original) or worker threads per
    /// rank (task modes). Paper benchmark: 8.
    pub ntg: usize,
    /// Execution strategy.
    pub mode: Mode,
    /// Scatter-exchange decomposition (slab or pencil).
    pub decomp: Decomposition,
    /// Seed for the synthetic bands and potential.
    pub seed: u64,
}

impl FftxConfig {
    /// The paper's benchmark parameters (Figs. 2 and 6): cutoff 80 Ry,
    /// lattice parameter 20 bohr, 128 bands, 8 task groups.
    pub fn paper(nr: usize, mode: Mode) -> Self {
        FftxConfig {
            ecutwfc: 80.0,
            alat: 20.0,
            nbnd: 128,
            nr,
            ntg: 8,
            mode,
            decomp: Decomposition::Slab,
            seed: 2017,
        }
    }

    /// A laptop-scale configuration for tests and the real execution engine
    /// (grid ~24^3, a handful of bands).
    pub fn small(nr: usize, ntg: usize, mode: Mode) -> Self {
        FftxConfig {
            ecutwfc: 6.0,
            alat: 8.0,
            nbnd: 2 * ntg.max(1),
            nr,
            ntg,
            mode,
            decomp: Decomposition::Slab,
            seed: 42,
        }
    }

    /// The same configuration with a different decomposition.
    pub fn with_decomp(mut self, decomp: Decomposition) -> Self {
        self.decomp = decomp;
        self
    }

    /// MPI ranks the execution uses: R×T for the original static code,
    /// R for the task modes (threads replace the task groups).
    pub fn vmpi_ranks(&self) -> usize {
        match self.mode {
            Mode::Original => self.nr * self.ntg,
            Mode::TaskPerStep | Mode::TaskPerFft | Mode::TaskAsync | Mode::Hybrid => self.nr,
        }
    }

    /// Execution lanes (hardware threads) the configuration occupies.
    pub fn lanes(&self) -> usize {
        self.nr * self.ntg
    }

    /// Task-group count of the data layout: T for the original mode, 1 for
    /// the task modes (the paper's OmpSs runs use ntg = 1).
    pub fn layout_ntg(&self) -> usize {
        match self.mode {
            Mode::Original => self.ntg,
            Mode::TaskPerStep | Mode::TaskPerFft | Mode::TaskAsync | Mode::Hybrid => 1,
        }
    }

    /// Outer-loop iterations: bands are processed `layout_ntg` at a time.
    pub fn iterations(&self) -> usize {
        self.nbnd / self.layout_ntg()
    }

    /// Checks structural requirements.
    ///
    /// # Panics
    /// Panics when the band count is not divisible by the task-group count
    /// or any dimension is zero.
    pub fn validate(&self) {
        assert!(self.nr > 0 && self.ntg > 0, "FftxConfig: nr/ntg must be positive");
        assert!(self.nbnd > 0, "FftxConfig: need at least one band");
        assert_eq!(
            self.nbnd % self.layout_ntg(),
            0,
            "FftxConfig: nbnd ({}) must be divisible by the task-group count ({})",
            self.nbnd,
            self.layout_ntg()
        );
        assert!(self.ecutwfc > 0.0 && self.alat > 0.0, "FftxConfig: bad cutoff/cell");
    }

    /// Configuration label in the paper's "R x T" notation.
    pub fn label(&self) -> String {
        format!("{} x {}", self.nr, self.ntg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_benchmark() {
        let c = FftxConfig::paper(8, Mode::Original);
        assert_eq!(c.ecutwfc, 80.0);
        assert_eq!(c.alat, 20.0);
        assert_eq!(c.nbnd, 128);
        assert_eq!(c.ntg, 8);
        assert_eq!(c.vmpi_ranks(), 64);
        assert_eq!(c.lanes(), 64);
        assert_eq!(c.layout_ntg(), 8);
        assert_eq!(c.iterations(), 16);
        assert_eq!(c.label(), "8 x 8");
        c.validate();
    }

    #[test]
    fn task_modes_trade_ranks_for_threads() {
        let c = FftxConfig::paper(8, Mode::TaskPerFft);
        assert_eq!(c.vmpi_ranks(), 8);
        assert_eq!(c.lanes(), 64);
        assert_eq!(c.layout_ntg(), 1);
        assert_eq!(c.iterations(), 128);
        c.validate();
    }

    #[test]
    fn small_preset_is_valid_for_all_modes() {
        for mode in [
            Mode::Original,
            Mode::TaskPerStep,
            Mode::TaskPerFft,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            FftxConfig::small(2, 2, mode).validate();
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_bands_rejected() {
        let mut c = FftxConfig::small(1, 3, Mode::Original);
        c.nbnd = 4;
        c.validate();
    }

    #[test]
    fn decomp_parse_roundtrip() {
        for d in Decomposition::ALL {
            assert_eq!(Decomposition::parse(d.name()), Some(d));
        }
        assert_eq!(Decomposition::parse("ring"), None);
        for c in [DecompChoice::Slab, DecompChoice::Pencil, DecompChoice::Auto] {
            assert_eq!(DecompChoice::parse(c.name()), Some(c));
        }
        assert_eq!(DecompChoice::Slab.fixed(), Some(Decomposition::Slab));
        assert_eq!(DecompChoice::Pencil.fixed(), Some(Decomposition::Pencil));
        assert_eq!(DecompChoice::Auto.fixed(), None);
        assert_eq!(valid_decomps(), "slab, pencil, auto");
    }

    #[test]
    fn with_decomp_switches_only_the_decomposition() {
        let base = FftxConfig::small(2, 2, Mode::Original);
        assert_eq!(base.decomp, Decomposition::Slab);
        let p = base.with_decomp(Decomposition::Pencil);
        assert_eq!(p.decomp, Decomposition::Pencil);
        assert_eq!(FftxConfig { decomp: Decomposition::Slab, ..p }, base);
    }

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Original.name(), "original");
        assert_eq!(Mode::TaskPerStep.name(), "ompss-steps");
        assert_eq!(Mode::TaskPerFft.name(), "ompss-ffts");
        assert_eq!(Mode::TaskAsync.name(), "ompss-async");
        assert_eq!(Mode::Hybrid.name(), "ompss-hybrid");
    }
}
