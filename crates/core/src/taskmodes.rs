//! The OmpSs optimisation strategies of Section IV (plus the future-work
//! variants), executed for real: R virtual MPI ranks, each with a T-worker
//! task runtime replacing the FFT task groups (the layout runs with
//! ntg = 1, exactly like the paper's OmpSs configuration).
//!
//! * **Strategy 1, task-per-step** (Fig. 4): every pipeline step of every
//!   band is a task with `in`/`out`/`inout` dependencies on the band's
//!   buffers; steps of one band chain, different bands are independent, so
//!   a band's Alltoall overlaps other bands' FFTs — communication/
//!   computation overlap.
//! * **Strategy 2, task-per-FFT** (Fig. 5): the whole pipeline of one band
//!   is a single independent task — dynamic scheduling de-synchronises the
//!   compute phases across ranks, softening resource contention.
//! * **Async**: strategy 1 with split-phase collectives (post/wait tasks).
//! * **Hybrid**: both strategies combined — see
//!   [`crate::stages::SchedulerPolicy::Hybrid`].
//!
//! Since the stage-graph refactor (DESIGN.md §13) all of these are
//! scheduler policies over the one stage graph in [`crate::stages`]; this
//! module keeps the historical entry points as thin wrappers.

use crate::original::RunOutput;
use crate::problem::Problem;
use crate::stages::{run_policy_chaotic, SchedulerPolicy};
use fftx_vmpi::{ChaosConfig, FaultReport};
use std::sync::Arc;

/// Runs strategy 2 (one task per FFT/band) on R ranks × T workers.
pub fn run_task_per_fft(problem: &Arc<Problem>) -> RunOutput {
    run_task_per_fft_chaotic(problem, None).0
}

/// [`run_task_per_fft`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_per_fft_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    run_policy_chaotic(problem, SchedulerPolicy::TaskPerFft, chaos)
}

/// Runs strategy 1 (one task per pipeline step, flow dependencies) on
/// R ranks × T workers.
pub fn run_task_per_step(problem: &Arc<Problem>) -> RunOutput {
    run_task_per_step_chaotic(problem, None).0
}

/// [`run_task_per_step`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_per_step_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    run_policy_chaotic(problem, SchedulerPolicy::TaskPerStep, chaos)
}

/// Runs the split-phase mode (post/wait collective tasks inside the step
/// graph) on R ranks × T workers: the scatter is split into a *post* task
/// that issues a nonblocking alltoall and a *wait* task that completes it,
/// so other bands' compute overlaps the transfer automatically.
pub fn run_task_async(problem: &Arc<Problem>) -> RunOutput {
    run_task_async_chaotic(problem, None).0
}

/// [`run_task_async`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_async_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    run_policy_chaotic(problem, SchedulerPolicy::TaskAsync, chaos)
}

/// Runs the hybrid policy (three fused tasks per band, split at the
/// nonblocking collectives) on R ranks × T workers.
pub fn run_hybrid(problem: &Arc<Problem>) -> RunOutput {
    run_hybrid_chaotic(problem, None).0
}

/// [`run_hybrid`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_hybrid_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    run_policy_chaotic(problem, SchedulerPolicy::Hybrid, chaos)
}

/// Dispatches to the engine matching the configuration's mode.
pub fn run(problem: &Arc<Problem>) -> RunOutput {
    run_chaotic(problem, None).0
}

/// [`run`] with explicit chaos injection: the transport faults perturb
/// timing only, so the returned bands must equal the clean run's bit for
/// bit; the [`FaultReport`] (when chaos was active) records the injected
/// schedule.
pub fn run_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    run_policy_chaotic(
        problem,
        SchedulerPolicy::for_mode(problem.config.mode),
        chaos,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn dispatch_covers_every_mode() {
        for mode in [
            Mode::Original,
            Mode::TaskPerStep,
            Mode::TaskPerFft,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            assert_eq!(SchedulerPolicy::for_mode(mode).mode(), mode);
        }
    }
}
