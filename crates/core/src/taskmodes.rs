//! The two OmpSs optimisation strategies of Section IV, executed for real:
//! R virtual MPI ranks, each with a T-worker task runtime replacing the FFT
//! task groups (the layout runs with ntg = 1, exactly like the paper's
//! OmpSs configuration).
//!
//! * **Strategy 1, task-per-step** (Fig. 4): every pipeline step of every
//!   band is a task with `in`/`out`/`inout` dependencies on the band's
//!   buffers; steps of one band chain, different bands are independent, so
//!   a band's Alltoall overlaps other bands' FFTs — communication/
//!   computation overlap.
//! * **Strategy 2, task-per-FFT** (Fig. 5): the whole pipeline of one band
//!   is a single independent task — dynamic scheduling de-synchronises the
//!   compute phases across ranks, softening resource contention.
//!
//! Both give every task of band `b` scheduler priority `b`. Together with
//! the runtime's priority queue this makes every rank drain bands in the
//! same order, which is the deadlock-freedom invariant for the blocking
//! collectives inside tasks (tags keep concurrent collectives apart).
//!
//! Scratch and staging buffers come from **per-worker arenas**
//! ([`BufferArena`], one per runtime worker, indexed by
//! [`fftx_trace::current_thread`]): a worker runs one task at a time, so a
//! task body owns its worker's arena for its duration and the buffers are
//! reused across bands without reallocation. The per-band `Shared` z/plane
//! buffers of strategy 1 stay — they are the dependency carriers the task
//! graph is built from.

use crate::config::Mode;
use crate::original::{finish_run, transform_core, RunOutput, StepFlops};
use crate::plan::{BufferArena, ExecPlan};
use crate::problem::Problem;
use crate::recorder::Recorder;
use fftx_fft::{cft_1z, cft_2xy_buf, Complex64, Direction};
use fftx_pw::apply_potential_slab;
use fftx_taskrt::{Runtime, Shared};
use fftx_trace::{StateClass, TraceSink};
use fftx_vmpi::{AlltoallRequest, ChaosConfig, Communicator, FaultReport, World};
use std::sync::Arc;

/// One empty arena per runtime worker; task bodies index with
/// [`fftx_trace::current_thread`] (a worker runs one task at a time, so
/// the `Shared` access check never trips).
fn worker_arenas(workers: usize) -> Arc<Vec<Shared<BufferArena>>> {
    Arc::new((0..workers).map(|_| Shared::new(BufferArena::new())).collect())
}

/// Runs strategy 2 (one task per FFT/band) on R ranks × T workers.
pub fn run_task_per_fft(problem: &Arc<Problem>) -> RunOutput {
    run_task_per_fft_chaotic(problem, None).0
}

/// [`run_task_per_fft`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_per_fft_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::TaskPerFft),
        "run_task_per_fft: config mode mismatch"
    );
    let sink = TraceSink::new();
    let mut world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| rank_task_per_fft(problem, comm));
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

fn rank_task_per_fft(problem: &Arc<Problem>, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let w = comm.rank();
    let g = w; // layout has t = 1: every rank is its own task group
    let plan = Arc::clone(problem.exec_plan(g));
    let flops = Arc::new(StepFlops::for_group(problem, g));
    let arenas = worker_arenas(cfg.ntg);
    let shares: Vec<Shared<Vec<Complex64>>> = problem
        .initial_shares(w)
        .into_iter()
        .map(Shared::new)
        .collect();

    let mut builder = Runtime::builder(cfg.ntg).clock(comm.clock()).rank(w);
    if let Some(sink) = comm.trace_sink() {
        builder = builder.trace(sink);
    }
    let rt = builder.build();

    comm.barrier();
    let t_start = comm.now();
    for (b, share) in shares.iter().enumerate() {
        let problem = Arc::clone(problem);
        let comm = comm.clone();
        let plan = Arc::clone(&plan);
        let flops = Arc::clone(&flops);
        let arenas = Arc::clone(&arenas);
        let share = share.clone();
        rt.spawn_prio(
            &format!("fft-band-{b}"),
            Some(b as u64),
            &[share.dep_inout()],
            move || {
                let rec = Recorder::new(comm.trace_sink(), comm.clock(), comm.rank());
                let mut guard = arenas[fftx_trace::current_thread()].write();
                let a = &mut *guard;
                // PsiPrep: the prep re-zeroes the reused worker buffers —
                // the same state a fresh allocation had, and the burst
                // still exists in the original code, so record the touch.
                rec.compute(StateClass::PsiPrep, flops.prep, || {
                    plan.prep(&mut a.zbuf, &mut a.planes);
                });
                // Pack: t = 1, the "redistribution" is a local deposit.
                rec.compute(StateClass::Pack, flops.pack, || {
                    plan.deposit_member(0, &share.read(), &mut a.zbuf);
                });
                transform_core(&plan, &problem.v, &comm, b as u32, &mut *a, &flops, &rec);
                // Unpack: back to the band share.
                rec.compute(StateClass::Unpack, flops.pack, || {
                    plan.extract_member(0, &a.zbuf, &mut share.write());
                });
            },
        );
    }
    rt.taskwait();
    comm.barrier();
    let t_end = comm.now();
    rt.shutdown();

    let shares = shares
        .into_iter()
        .map(|s| s.try_unwrap().ok().expect("share uniquely owned after taskwait"))
        .collect();
    (shares, t_end - t_start)
}

/// Runs strategy 1 (one task per pipeline step, flow dependencies) on
/// R ranks × T workers.
pub fn run_task_per_step(problem: &Arc<Problem>) -> RunOutput {
    run_task_per_step_chaotic(problem, None).0
}

/// [`run_task_per_step`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_per_step_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::TaskPerStep),
        "run_task_per_step: config mode mismatch"
    );
    let sink = TraceSink::new();
    let mut world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| rank_task_per_step(problem, comm));
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

/// Context cloned into every step task of one band.
struct StepCtx {
    problem: Arc<Problem>,
    comm: Communicator,
    plan: Arc<ExecPlan>,
    flops: Arc<StepFlops>,
    arenas: Arc<Vec<Shared<BufferArena>>>,
    zbuf: Shared<Vec<Complex64>>,
    planes: Shared<Vec<Complex64>>,
}

impl StepCtx {
    fn recorder(&self) -> Recorder {
        Recorder::new(self.comm.trace_sink(), self.comm.clock(), self.comm.rank())
    }

    /// The running worker's arena (one task per worker at a time).
    fn arena(&self) -> &Shared<BufferArena> {
        &self.arenas[fftx_trace::current_thread()]
    }
}

impl Clone for StepCtx {
    fn clone(&self) -> Self {
        StepCtx {
            problem: Arc::clone(&self.problem),
            comm: self.comm.clone(),
            plan: Arc::clone(&self.plan),
            flops: Arc::clone(&self.flops),
            arenas: Arc::clone(&self.arenas),
            zbuf: self.zbuf.clone(),
            planes: self.planes.clone(),
        }
    }
}

fn rank_task_per_step(problem: &Arc<Problem>, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    let cfg = problem.config;
    let w = comm.rank();
    let g = w;
    let plan = Arc::clone(problem.exec_plan(g));
    let flops = Arc::new(StepFlops::for_group(problem, g));
    let arenas = worker_arenas(cfg.ntg);
    let shares: Vec<Shared<Vec<Complex64>>> = problem
        .initial_shares(w)
        .into_iter()
        .map(Shared::new)
        .collect();

    let mut builder = Runtime::builder(cfg.ntg).clock(comm.clock()).rank(w);
    if let Some(sink) = comm.trace_sink() {
        builder = builder.trace(sink);
    }
    let rt = builder.build();

    comm.barrier();
    let t_start = comm.now();
    for (b, share) in shares.iter().enumerate() {
        let prio = Some(b as u64);
        let ctx = StepCtx {
            problem: Arc::clone(problem),
            comm: comm.clone(),
            plan: Arc::clone(&plan),
            flops: Arc::clone(&flops),
            arenas: Arc::clone(&arenas),
            zbuf: Shared::new(vec![Complex64::ZERO; plan.zbuf_len()]),
            planes: Shared::new(vec![Complex64::ZERO; plan.planes_len()]),
        };
        let share = share.clone();

        // 1. pack: in(share) out(zbuf)   [fresh zbuf is already zeroed,
        //    which covers the PsiPrep step of Fig. 4's task list]
        let c = ctx.clone();
        let sh = share.clone();
        rt.spawn_prio(
            &format!("pack[{b}]"),
            prio,
            &[sh.dep_in(), ctx.zbuf.dep_out()],
            move || {
                let rec = c.recorder();
                rec.compute(StateClass::Pack, c.flops.pack, || {
                    c.plan.deposit_member(0, &sh.read(), &mut c.zbuf.write());
                });
            },
        );

        // 2. forward FFT along z: inout(zbuf)
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("fftz-inv[{b}]"),
            prio,
            &[ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::FftZ, c.flops.fft_z, || {
                    cft_1z(
                        &c.plan.z,
                        &mut c.zbuf.write(),
                        c.plan.nst,
                        c.plan.grid.nr3,
                        Direction::Inverse,
                        &mut a.scratch,
                    );
                });
            },
        );

        // 3. forward scatter: in(zbuf) inout(planes) — the communication
        //    task that overlaps other bands' compute tasks.
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("scatter-fw[{b}]"),
            prio,
            &[ctx.zbuf.dep_in(), ctx.planes.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::Other, c.flops.scatter_copy / 2.0, || {
                    c.plan.scatter_pack(&c.zbuf.read(), &mut a.scatter_send);
                });
                c.comm
                    .alltoall_into(&a.scatter_send, &mut a.scatter_recv, (2 * b) as u32);
                rec.compute(StateClass::Other, c.flops.scatter_copy / 2.0, || {
                    c.plan
                        .scatter_unpack_to_planes(&a.scatter_recv, &mut c.planes.write());
                });
            },
        );

        // 4-6. xy FFT, VOFR, xy FFT back: inout(planes)
        for (label, dir_fwd, is_vofr) in [
            ("fftxy-inv", false, false),
            ("vofr", false, true),
            ("fftxy-fw", true, false),
        ] {
            let c = ctx.clone();
            rt.spawn_prio(
                &format!("{label}[{b}]"),
                prio,
                &[ctx.planes.dep_inout()],
                move || {
                    let rec = c.recorder();
                    if is_vofr {
                        rec.compute(StateClass::Vofr, c.flops.vofr, || {
                            apply_potential_slab(
                                &mut c.planes.write(),
                                &c.problem.v,
                                &c.plan.grid,
                                c.plan.z0,
                                c.plan.npp,
                            );
                        });
                    } else {
                        let dir = if dir_fwd { Direction::Forward } else { Direction::Inverse };
                        let mut guard = c.arena().write();
                        let a = &mut *guard;
                        rec.compute(StateClass::FftXy, c.flops.fft_xy, || {
                            cft_2xy_buf(
                                &c.plan.x,
                                &c.plan.y,
                                &mut c.planes.write(),
                                c.plan.npp,
                                c.plan.grid.nr1,
                                c.plan.grid.nr2,
                                dir,
                                &mut a.scratch,
                                &mut a.col,
                            );
                        });
                    }
                },
            );
        }

        // 7. backward scatter: in(planes) inout(zbuf)
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("scatter-bw[{b}]"),
            prio,
            &[ctx.planes.dep_in(), ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::Other, c.flops.scatter_copy / 2.0, || {
                    c.plan.planes_to_scatter(&c.planes.read(), &mut a.scatter_send);
                });
                c.comm
                    .alltoall_into(&a.scatter_send, &mut a.scatter_recv, (2 * b + 1) as u32);
                rec.compute(StateClass::Other, c.flops.scatter_copy / 2.0, || {
                    c.plan.zbuf_from_scatter(&a.scatter_recv, &mut c.zbuf.write());
                });
            },
        );

        // 8. backward FFT along z: inout(zbuf)
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("fftz-fw[{b}]"),
            prio,
            &[ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::FftZ, c.flops.fft_z, || {
                    cft_1z(
                        &c.plan.z,
                        &mut c.zbuf.write(),
                        c.plan.nst,
                        c.plan.grid.nr3,
                        Direction::Forward,
                        &mut a.scratch,
                    );
                });
            },
        );

        // 9. unpack: in(zbuf) out(share)
        let c = ctx.clone();
        let sh = share.clone();
        rt.spawn_prio(
            &format!("unpack[{b}]"),
            prio,
            &[ctx.zbuf.dep_in(), sh.dep_out()],
            move || {
                let rec = c.recorder();
                rec.compute(StateClass::Unpack, c.flops.pack, || {
                    c.plan.extract_member(0, &c.zbuf.read(), &mut sh.write());
                });
            },
        );
    }
    rt.taskwait();
    comm.barrier();
    let t_end = comm.now();
    rt.shutdown();

    let shares = shares
        .into_iter()
        .map(|s| s.try_unwrap().ok().expect("share uniquely owned after taskwait"))
        .collect();
    (shares, t_end - t_start)
}

/// Runs the future-work mode (split-phase collectives inside step tasks)
/// on R ranks × T workers: the scatter is split into a *post* task that
/// issues a nonblocking alltoall and a *wait* task that completes it, so
/// other bands' compute overlaps the transfer automatically.
pub fn run_task_async(problem: &Arc<Problem>) -> RunOutput {
    run_task_async_chaotic(problem, None).0
}

/// [`run_task_async`] with explicit chaos injection (see
/// [`crate::original::run_original_chaotic`]).
pub fn run_task_async_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    let cfg = problem.config;
    assert!(
        matches!(cfg.mode, Mode::TaskAsync),
        "run_task_async: config mode mismatch"
    );
    let sink = TraceSink::new();
    let mut world = World::new(cfg.vmpi_ranks()).with_trace(sink.clone());
    if let Some(c) = chaos {
        world = world.with_chaos(c);
    }
    let results = world.run(|comm| rank_task_async(problem, comm));
    let report = world.fault_report();
    (finish_run(problem, sink, results), report)
}

fn rank_task_async(problem: &Arc<Problem>, comm: &Communicator) -> (Vec<Vec<Complex64>>, f64) {
    type Req = Shared<Option<AlltoallRequest<Complex64>>>;
    let cfg = problem.config;
    let w = comm.rank();
    let g = w;
    let plan = Arc::clone(problem.exec_plan(g));
    let flops = Arc::new(StepFlops::for_group(problem, g));
    let arenas = worker_arenas(cfg.ntg);
    let shares: Vec<Shared<Vec<Complex64>>> = problem
        .initial_shares(w)
        .into_iter()
        .map(Shared::new)
        .collect();

    let mut builder = Runtime::builder(cfg.ntg).clock(comm.clock()).rank(w);
    if let Some(sink) = comm.trace_sink() {
        builder = builder.trace(sink);
    }
    let rt = builder.build();

    comm.barrier();
    let t_start = comm.now();
    for (b, share) in shares.iter().enumerate() {
        let prio = Some(b as u64);
        let ctx = StepCtx {
            problem: Arc::clone(problem),
            comm: comm.clone(),
            plan: Arc::clone(&plan),
            flops: Arc::clone(&flops),
            arenas: Arc::clone(&arenas),
            zbuf: Shared::new(vec![Complex64::ZERO; plan.zbuf_len()]),
            planes: Shared::new(vec![Complex64::ZERO; plan.planes_len()]),
        };
        let req_fw: Req = Shared::new(None);
        let req_bw: Req = Shared::new(None);
        let share = share.clone();

        // pack: in(share) out(zbuf)
        let c = ctx.clone();
        let sh = share.clone();
        rt.spawn_prio(
            &format!("pack[{b}]"),
            prio,
            &[sh.dep_in(), ctx.zbuf.dep_out()],
            move || {
                let rec = c.recorder();
                rec.compute(StateClass::Pack, c.flops.pack, || {
                    c.plan.deposit_member(0, &sh.read(), &mut c.zbuf.write());
                });
            },
        );

        // z FFT: inout(zbuf)
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("fftz-inv[{b}]"),
            prio,
            &[ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::FftZ, c.flops.fft_z, || {
                    cft_1z(
                        &c.plan.z,
                        &mut c.zbuf.write(),
                        c.plan.nst,
                        c.plan.grid.nr3,
                        Direction::Inverse,
                        &mut a.scratch,
                    );
                });
            },
        );

        // scatter-fw POST: in(zbuf) out(req_fw) — never blocks. The
        // transport stages its own copy of the send, so the arena buffer
        // is free for reuse the moment the post returns.
        let c = ctx.clone();
        let rq = req_fw.clone();
        rt.spawn_prio(
            &format!("scatter-fw-post[{b}]"),
            prio,
            &[ctx.zbuf.dep_in(), req_fw.dep_out()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::Other, c.flops.scatter_copy / 4.0, || {
                    c.plan.scatter_pack(&c.zbuf.read(), &mut a.scatter_send);
                });
                *rq.write() = Some(c.comm.ialltoall(&a.scatter_send, (2 * b) as u32));
            },
        );

        // scatter-fw WAIT: inout(req_fw) inout(planes) — blocks only for
        // the unoverlapped remainder of the transfer. Deferred priority
        // (b + nbnd) lets the workers run other bands' compute while the
        // transfer is in flight; it can never deadlock because posts are
        // plain compute tasks and always preferred.
        let c = ctx.clone();
        let rq = req_fw.clone();
        rt.spawn_prio(
            &format!("scatter-fw-wait[{b}]"),
            Some((b + cfg.nbnd) as u64),
            &[req_fw.dep_inout(), ctx.planes.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rq.write()
                    .take()
                    .expect("posted request")
                    .wait_into(&mut a.scatter_recv);
                rec.compute(StateClass::Other, c.flops.scatter_copy / 4.0, || {
                    c.plan
                        .scatter_unpack_to_planes(&a.scatter_recv, &mut c.planes.write());
                });
            },
        );

        // xy FFT, VOFR, xy FFT back: inout(planes)
        for (label, dir_fwd, is_vofr) in [
            ("fftxy-inv", false, false),
            ("vofr", false, true),
            ("fftxy-fw", true, false),
        ] {
            let c = ctx.clone();
            rt.spawn_prio(
                &format!("{label}[{b}]"),
                prio,
                &[ctx.planes.dep_inout()],
                move || {
                    let rec = c.recorder();
                    if is_vofr {
                        rec.compute(StateClass::Vofr, c.flops.vofr, || {
                            apply_potential_slab(
                                &mut c.planes.write(),
                                &c.problem.v,
                                &c.plan.grid,
                                c.plan.z0,
                                c.plan.npp,
                            );
                        });
                    } else {
                        let dir = if dir_fwd { Direction::Forward } else { Direction::Inverse };
                        let mut guard = c.arena().write();
                        let a = &mut *guard;
                        rec.compute(StateClass::FftXy, c.flops.fft_xy, || {
                            cft_2xy_buf(
                                &c.plan.x,
                                &c.plan.y,
                                &mut c.planes.write(),
                                c.plan.npp,
                                c.plan.grid.nr1,
                                c.plan.grid.nr2,
                                dir,
                                &mut a.scratch,
                                &mut a.col,
                            );
                        });
                    }
                },
            );
        }

        // scatter-bw POST: in(planes) out(req_bw)
        let c = ctx.clone();
        let rq = req_bw.clone();
        rt.spawn_prio(
            &format!("scatter-bw-post[{b}]"),
            prio,
            &[ctx.planes.dep_in(), req_bw.dep_out()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::Other, c.flops.scatter_copy / 4.0, || {
                    c.plan.planes_to_scatter(&c.planes.read(), &mut a.scatter_send);
                });
                *rq.write() = Some(c.comm.ialltoall(&a.scatter_send, (2 * b + 1) as u32));
            },
        );

        // scatter-bw WAIT: inout(req_bw) inout(zbuf) — deferred like the
        // forward wait.
        let c = ctx.clone();
        let rq = req_bw.clone();
        rt.spawn_prio(
            &format!("scatter-bw-wait[{b}]"),
            Some((b + cfg.nbnd) as u64),
            &[req_bw.dep_inout(), ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rq.write()
                    .take()
                    .expect("posted request")
                    .wait_into(&mut a.scatter_recv);
                rec.compute(StateClass::Other, c.flops.scatter_copy / 4.0, || {
                    c.plan.zbuf_from_scatter(&a.scatter_recv, &mut c.zbuf.write());
                });
            },
        );

        // backward z FFT: inout(zbuf)
        let c = ctx.clone();
        rt.spawn_prio(
            &format!("fftz-fw[{b}]"),
            prio,
            &[ctx.zbuf.dep_inout()],
            move || {
                let rec = c.recorder();
                let mut guard = c.arena().write();
                let a = &mut *guard;
                rec.compute(StateClass::FftZ, c.flops.fft_z, || {
                    cft_1z(
                        &c.plan.z,
                        &mut c.zbuf.write(),
                        c.plan.nst,
                        c.plan.grid.nr3,
                        Direction::Forward,
                        &mut a.scratch,
                    );
                });
            },
        );

        // unpack: in(zbuf) out(share)
        let c = ctx.clone();
        let sh = share.clone();
        rt.spawn_prio(
            &format!("unpack[{b}]"),
            prio,
            &[ctx.zbuf.dep_in(), sh.dep_out()],
            move || {
                let rec = c.recorder();
                rec.compute(StateClass::Unpack, c.flops.pack, || {
                    c.plan.extract_member(0, &c.zbuf.read(), &mut sh.write());
                });
            },
        );
    }
    rt.taskwait();
    comm.barrier();
    let t_end = comm.now();
    rt.shutdown();

    let shares = shares
        .into_iter()
        .map(|s| s.try_unwrap().ok().expect("share uniquely owned after taskwait"))
        .collect();
    (shares, t_end - t_start)
}

/// Dispatches to the engine matching the configuration's mode.
pub fn run(problem: &Arc<Problem>) -> RunOutput {
    run_chaotic(problem, None).0
}

/// [`run`] with explicit chaos injection: the transport faults perturb
/// timing only, so the returned bands must equal the clean run's bit for
/// bit; the [`FaultReport`] (when chaos was active) records the injected
/// schedule.
pub fn run_chaotic(
    problem: &Arc<Problem>,
    chaos: Option<ChaosConfig>,
) -> (RunOutput, Option<FaultReport>) {
    match problem.config.mode {
        Mode::Original => crate::original::run_original_chaotic(problem, chaos),
        Mode::TaskPerStep => run_task_per_step_chaotic(problem, chaos),
        Mode::TaskPerFft => run_task_per_fft_chaotic(problem, chaos),
        Mode::TaskAsync => run_task_async_chaotic(problem, chaos),
    }
}
