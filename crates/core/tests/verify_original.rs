//! End-to-end verification of the original (static task-group) kernel:
//! the distributed pipeline must reproduce the serial dense-grid reference
//! for every R×T shape.

use fftx_core::{original, FftxConfig, Mode, Problem};
use fftx_fft::max_dist;
use fftx_pw::apply_vloc;
use fftx_trace::CommOp;

fn check_shape(nr: usize, ntg: usize) {
    let cfg = FftxConfig::small(nr, ntg, Mode::Original);
    let problem = Problem::new(cfg);
    let out = original::run_original(&problem);

    let bands_in: Vec<Vec<_>> = (0..cfg.nbnd).map(|b| problem.band(b)).collect();
    let expect = apply_vloc(&problem.layout.set, &problem.grid(), &problem.v, &bands_in);
    assert_eq!(out.bands.len(), expect.len());
    for (b, (got, want)) in out.bands.iter().zip(&expect).enumerate() {
        let err = max_dist(got, want);
        assert!(err < 1e-9, "shape {nr}x{ntg} band {b}: err {err}");
    }
    assert!(out.fft_phase_s >= 0.0);
}

#[test]
fn single_rank_no_groups() {
    check_shape(1, 1);
}

#[test]
fn pure_scatter_parallelism() {
    check_shape(4, 1);
}

#[test]
fn pure_task_group_parallelism() {
    check_shape(1, 4);
}

#[test]
fn mixed_two_by_two() {
    check_shape(2, 2);
}

#[test]
fn mixed_three_by_two() {
    check_shape(3, 2);
}

#[test]
fn mixed_two_by_three() {
    check_shape(2, 3);
}

#[test]
fn communicator_families_in_trace() {
    // 2 x 2: pack should run on 2 sub-communicators of 2 neighbouring
    // ranks, scatter on 2 sub-communicators of 2 strided ranks, exactly as
    // the paper's Fig. 3 communicator timeline shows.
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let out = original::run_original(&problem);

    let alltoallv: Vec<_> = out
        .trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoallv)
        .collect();
    let alltoall: Vec<_> = out
        .trace
        .comm
        .iter()
        .filter(|r| r.op == CommOp::Alltoall)
        .collect();
    // pack + unpack per iteration per rank.
    assert_eq!(alltoallv.len(), 4 * 2 * cfg.iterations());
    // two scatters per iteration per rank.
    assert_eq!(alltoall.len(), 4 * 2 * cfg.iterations());
    for r in &alltoallv {
        assert_eq!(r.comm_size, 2);
    }
    for r in &alltoall {
        assert_eq!(r.comm_size, 2);
    }
    // The pack family and the scatter family use disjoint communicator ids.
    use std::collections::HashSet;
    let pack_ids: HashSet<u64> = alltoallv.iter().map(|r| r.comm_id).collect();
    let scat_ids: HashSet<u64> = alltoall.iter().map(|r| r.comm_id).collect();
    assert!(pack_ids.is_disjoint(&scat_ids));
    assert_eq!(pack_ids.len(), 2);
    assert_eq!(scat_ids.len(), 2);
}

#[test]
fn trace_has_all_phase_classes() {
    use fftx_trace::StateClass;
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let out = original::run_original(&problem);
    for class in [
        StateClass::PsiPrep,
        StateClass::Pack,
        StateClass::FftZ,
        StateClass::FftXy,
        StateClass::Vofr,
        StateClass::Unpack,
    ] {
        assert!(
            out.trace.compute.iter().any(|r| r.class == class),
            "missing {class:?} bursts"
        );
    }
}

#[test]
fn idempotent_across_runs() {
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let a = original::run_original(&problem);
    let b = original::run_original(&problem);
    for (x, y) in a.bands.iter().zip(&b.bands) {
        assert_eq!(x, y, "runs must be bit-identical");
    }
}
