//! Proof that scatter-chunk padding is dead: with `FFTX_ARENA_POISON=1`
//! every reused scatter staging buffer is NaN-filled before each pack, so
//! if any unpack step ever read a padding slot (including padding slots
//! *transmitted* inside a peer's padded chunk) the NaNs would propagate
//! into the bands. The run must still match the golden bitwise hashes
//! captured from the pre-refactor engines.
//!
//! This lives in its own integration-test binary because the knob is read
//! once per process ([`fftx_core::plan::arena_poison`] caches it): the env
//! var must be set before the first arena touch, which a dedicated process
//! guarantees.

use fftx_core::{run_chaotic, run_eviction, run_rollback, FftxConfig, Mode, Problem};
use fftx_fault::{BatchAborts, RankDeath, RecoveryConfig};
use fftx_fft::Complex64;
use fftx_vmpi::{ChaosConfig, StallConfig};
use std::collections::HashMap;
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bitwise.txt");

/// Same FNV-1a as the golden suite (tests cannot share code without a
/// support crate; the constant + loop are the whole contract).
fn hash_bands(bands: &[Vec<Complex64>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(bands.len() as u64);
    for band in bands {
        eat(band.len() as u64);
        for c in band {
            eat(c.re.to_bits());
            eat(c.im.to_bits());
        }
    }
    h
}

fn golden() -> HashMap<String, u64> {
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name, hash) = line.split_once(' ').expect("golden line format");
        out.insert(
            name.to_string(),
            u64::from_str_radix(hash.trim(), 16).expect("golden hash format"),
        );
    }
    out
}

#[test]
fn poisoned_padding_never_reaches_the_bands() {
    // Before any engine runs in this process; cached on first read.
    std::env::set_var("FFTX_ARENA_POISON", "1");
    assert!(fftx_core::plan::arena_poison(), "knob must be active");
    let want = golden();
    let check = |name: &str, bands: &[Vec<Complex64>]| {
        let h = hash_bands(bands);
        let w = want
            .get(name)
            .unwrap_or_else(|| panic!("scenario {name} missing from the golden file"));
        assert_eq!(&h, w, "{name}: poisoned padding leaked into the bands");
    };

    let modes = [
        Mode::Original,
        Mode::TaskPerFft,
        Mode::TaskPerStep,
        Mode::TaskAsync,
    ];
    // Clean runs: every mode on a square and a rectangular factorisation,
    // plus the pure-scatter extreme.
    for mode in modes {
        for (nr, ntg) in [(2, 2), (2, 3)] {
            let problem = Problem::new(FftxConfig::small(nr, ntg, mode));
            let (run, _) = run_chaotic(&problem, None);
            check(&format!("clean/{}/{}x{}", mode.name(), nr, ntg), &run.bands);
        }
    }
    let problem = Problem::new(FftxConfig::small(4, 1, Mode::Original));
    let (run, _) = run_chaotic(&problem, None);
    check("clean/original/4x1", &run.bands);

    // Chaos: retried/stalled transport must not resurrect padding reads.
    for mode in modes {
        let problem = Problem::new(FftxConfig::small(2, 2, mode));
        let chaos =
            ChaosConfig::aggressive(7).with_stall(StallConfig::rank(0, Duration::from_millis(1), 3));
        let (run, report) = run_chaotic(&problem, Some(chaos));
        assert!(report.is_some(), "chaos must be active");
        check(&format!("chaos/{}/seed7", mode.name()), &run.bands);
    }

    // Recovery: replays reuse the poisoned buffers; eviction re-fits the
    // arena to the re-planned geometry (a fresh poison fill).
    let problem = Problem::new(FftxConfig::small(2, 2, Mode::Original));
    let (run, _) = run_rollback(
        &problem,
        Some(BatchAborts::new(9, 1.0, 2)),
        &RecoveryConfig::default(),
    )
    .expect("rollback budget absorbs the injected aborts");
    check("recovery/rollback/seed9", &run.bands);

    let mut cfg = FftxConfig::small(7, 1, Mode::Original);
    cfg.nbnd = 6;
    let problem = Problem::new(cfg);
    let (run, stats) = run_eviction(&problem, RankDeath::at(3, 2), &RecoveryConfig::default())
        .expect("survivors finish the run");
    assert_eq!(stats.layout_after, (3, 2));
    check("recovery/eviction/victim3@2", &run.bands);
}
