//! End-to-end verification of the two OmpSs strategies: both must produce
//! exactly the same bands as the serial reference and the original kernel,
//! for several R × T shapes — scheduling may reorder execution, never
//! change results.

use fftx_core::{run, FftxConfig, Mode, Problem};
use fftx_fft::max_dist;
use fftx_pw::apply_vloc;

fn check(mode: Mode, nr: usize, ntg: usize) {
    let cfg = FftxConfig::small(nr, ntg, mode);
    let problem = Problem::new(cfg);
    let out = run(&problem);

    let bands_in: Vec<Vec<_>> = (0..cfg.nbnd).map(|b| problem.band(b)).collect();
    let expect = apply_vloc(&problem.layout.set, &problem.grid(), &problem.v, &bands_in);
    for (b, (got, want)) in out.bands.iter().zip(&expect).enumerate() {
        let err = max_dist(got, want);
        assert!(err < 1e-9, "{:?} {nr}x{ntg} band {b}: err {err}", mode);
    }
}

#[test]
fn task_per_fft_single_rank() {
    check(Mode::TaskPerFft, 1, 4);
}

#[test]
fn task_per_fft_multi_rank() {
    check(Mode::TaskPerFft, 4, 2);
}

#[test]
fn task_per_fft_many_workers() {
    check(Mode::TaskPerFft, 2, 4);
}

#[test]
fn task_per_step_single_rank() {
    check(Mode::TaskPerStep, 1, 4);
}

#[test]
fn task_per_step_multi_rank() {
    check(Mode::TaskPerStep, 4, 2);
}

#[test]
fn task_per_step_many_workers() {
    check(Mode::TaskPerStep, 2, 4);
}

#[test]
fn all_three_modes_agree_exactly() {
    // Same problem, three engines: results must agree to strict float
    // tolerance (identical arithmetic, different schedules).
    let base = FftxConfig::small(2, 2, Mode::Original);
    let p_orig = Problem::new(base);
    let orig = run(&p_orig);

    for mode in [Mode::TaskPerFft, Mode::TaskPerStep] {
        let mut cfg = base;
        cfg.mode = mode;
        let p = Problem::new(cfg);
        let out = run(&p);
        for (b, (x, y)) in orig.bands.iter().zip(&out.bands).enumerate() {
            let err = max_dist(x, y);
            assert!(err < 1e-12, "{mode:?} band {b} differs from original: {err}");
        }
    }
}

#[test]
fn concurrent_bands_in_flight() {
    // With several workers, the task-per-fft engine must actually overlap
    // bands: some alltoall with tag b > 0 must start before the last one
    // with tag 0 ends. We can't observe tags directly, but the trace must
    // show compute bursts from different worker threads.
    let cfg = FftxConfig::small(2, 3, Mode::TaskPerFft);
    let problem = Problem::new(cfg);
    let out = run(&problem);
    let threads: std::collections::BTreeSet<usize> = out
        .trace
        .compute
        .iter()
        .filter(|r| r.lane.rank == 0)
        .map(|r| r.lane.thread)
        .collect();
    assert!(
        threads.len() > 1,
        "expected multiple worker threads in the trace, got {threads:?}"
    );
}

#[test]
fn task_async_single_rank() {
    check(Mode::TaskAsync, 1, 4);
}

#[test]
fn task_async_multi_rank() {
    check(Mode::TaskAsync, 4, 2);
}

#[test]
fn task_async_many_workers() {
    check(Mode::TaskAsync, 2, 4);
}

#[test]
fn task_async_agrees_with_original() {
    let base = FftxConfig::small(2, 2, Mode::Original);
    let orig = run(&Problem::new(base));
    let mut cfg = base;
    cfg.mode = Mode::TaskAsync;
    let out = run(&Problem::new(cfg));
    for (b, (x, y)) in orig.bands.iter().zip(&out.bands).enumerate() {
        let err = max_dist(x, y);
        assert!(err < 1e-12, "async band {b} differs from original: {err}");
    }
}

#[test]
fn task_async_splits_the_scatter_tasks() {
    let cfg = FftxConfig::small(2, 2, Mode::TaskAsync);
    let problem = Problem::new(cfg);
    let out = run(&problem);
    for b in 0..cfg.nbnd {
        for step in ["scatter-fw-post", "scatter-fw-wait", "scatter-bw-post", "scatter-bw-wait"] {
            assert!(
                out.trace
                    .tasks
                    .iter()
                    .any(|t| t.label == format!("{step}[{b}]")),
                "missing {step}[{b}]"
            );
        }
    }
}
