//! Decomposition-equivalence properties: the pencil lowering (2-D process
//! grid, two transpose exchanges) must be bitwise-indistinguishable from
//! the slab lowering (one sticks↔planes exchange) on every engine — clean,
//! under seeded transport chaos, on non-power-friendly (Bluestein) grids,
//! and through a rank eviction that re-plans the pencil layout mid-run.
//!
//! The decomposition is a data-movement choice only: same FFTs on the same
//! values in the same order, so any bit difference is a defect.

use fftx_core::{
    run_chaotic, run_eviction, run_original, Cell, Decomposition, FftGrid, FftxConfig, Mode,
    Problem, DUAL,
};
use fftx_fault::{RankDeath, RecoveryConfig};
use fftx_vmpi::{ChaosConfig, StallConfig};
use proptest::prelude::*;
use std::time::Duration;

/// The chaos-determinism profile: aggressive seeded transport faults plus
/// a straggler stall on rank 0.
fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::aggressive(seed).with_stall(StallConfig::rank(0, Duration::from_millis(1), 3))
}

/// Sampled (R, T) layouts: real 2×2 and 2×3 pencil grids, a 3×3 grid, and
/// a degenerate prime family (R = 2 → p2 = 1, the fallback row of size 1).
const LAYOUTS: [(usize, usize); 4] = [(4, 1), (6, 1), (9, 1), (2, 3)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For any chaos seed and sampled layout, every scheduler policy
    /// produces bit-identical bands under slab and pencil, with chaos off
    /// and on.
    #[test]
    fn pencil_matches_slab_bitwise_across_policies_and_chaos(
        seed in 1u64..1_000_000,
        layout_idx in 0usize..LAYOUTS.len(),
    ) {
        let (nr, ntg) = LAYOUTS[layout_idx];
        for mode in [
            Mode::Original,
            Mode::TaskPerFft,
            Mode::TaskPerStep,
            Mode::TaskAsync,
            Mode::Hybrid,
        ] {
            let slab_cfg = FftxConfig::small(nr, ntg, mode);
            let pencil_cfg = slab_cfg.with_decomp(Decomposition::Pencil);
            for chaos_seed in [None, Some(seed)] {
                let (s, _) = run_chaotic(&Problem::new(slab_cfg), chaos_seed.map(chaos));
                let (p, _) = run_chaotic(&Problem::new(pencil_cfg), chaos_seed.map(chaos));
                prop_assert!(
                    s.bands == p.bands,
                    "{:?} {}x{} chaos={:?}: pencil diverged from slab",
                    mode, nr, ntg, chaos_seed
                );
            }
        }
    }

    /// For any victim rank and re-plannable death boundary on the pencil
    /// path, the eviction (9×1, a 3×3 grid, re-planned to 4×2, a 2×2 grid)
    /// reproduces the fault-free slab bands bit for bit.
    #[test]
    fn pencil_eviction_replan_matches_slab(
        victim in 0usize..9,
        batch_idx in 0usize..3,
    ) {
        // 9 ranks over 6 bands; 8 survivors re-plan to 4×2, so the death
        // boundary must leave an even number of bands: batch 0, 2, 4.
        let mut cfg = FftxConfig::small(9, 1, Mode::Original);
        cfg.nbnd = 6;
        let baseline = run_original(&Problem::new(cfg));
        let pencil = Problem::new(cfg.with_decomp(Decomposition::Pencil));
        let death = RankDeath::at(victim, batch_idx * 2);
        let (out, stats) = run_eviction(&pencil, death, &RecoveryConfig::default())
            .expect("survivors must finish the run");
        prop_assert_eq!(stats.layout_after, (4, 2));
        prop_assert!(
            out.bands == baseline.bands,
            "pencil eviction of rank {victim} at batch {} changed the answer",
            batch_idx * 2
        );
    }

    /// Non-power-friendly geometry: forcing the z dimension to 41 (prime,
    /// Bluestein path) keeps the decompositions bitwise-identical under
    /// chaos as well.
    #[test]
    fn prime_grid_pencil_matches_slab(seed in 1u64..1_000_000) {
        let build = |decomp| {
            let cfg = FftxConfig::small(4, 1, Mode::Original).with_decomp(decomp);
            let cell = Cell::cubic(cfg.alat);
            let base = FftGrid::from_cutoff(&cell, DUAL * cfg.ecutwfc);
            Problem::with_grid(cfg, FftGrid::raw(base.nr1, base.nr2, 41))
        };
        let (s, _) = run_chaotic(&build(Decomposition::Slab), Some(chaos(seed)));
        let (p, _) = run_chaotic(&build(Decomposition::Pencil), Some(chaos(seed)));
        prop_assert!(
            s.bands == p.bands,
            "prime grid: pencil diverged from slab under seed {seed}"
        );
    }
}
