//! Property tests of the distributed data-movement helpers: for arbitrary
//! layout shapes, simulating the full pack → z-buffer → scatter → planes →
//! back chain (with the alltoall routing done by hand) must move every
//! coefficient to exactly the right place and back — no loss, no
//! duplication, for any R×T factorisation.

#![allow(clippy::needless_range_loop)] // index-based loops mirror the rank math

use fftx_core::plan::ExecPlan;
use fftx_core::steps;
use fftx_fft::{c64, Complex64};
use fftx_pw::{Cell, FftGrid, GSphere, StickSet, TaskGroupLayout, DUAL};
use proptest::prelude::*;

fn layout(ecut_tenths: usize, r: usize, t: usize) -> TaskGroupLayout {
    let ecut = ecut_tenths as f64 / 10.0;
    let cell = Cell::cubic(7.0);
    let grid = FftGrid::from_cutoff(&cell, DUAL * ecut);
    let sphere = GSphere::generate(&cell, ecut, &grid);
    let set = StickSet::build(&sphere, &grid);
    TaskGroupLayout::new(grid, set, r, t)
}

/// A value that uniquely tags (band, global coefficient index).
fn tag(band: usize, idx: usize) -> Complex64 {
    c64(band as f64 * 1e7 + idx as f64, (idx % 97) as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One full iteration of the pack/deposit machinery round-trips every
    /// member's share exactly.
    #[test]
    fn pack_deposit_extract_roundtrip(ecut in 30usize..80, r in 1usize..4, t in 1usize..4) {
        let l = layout(ecut, r, t);
        for g in 0..l.r {
            let shares: Vec<Vec<Complex64>> = (0..l.t)
                .map(|j| {
                    let rank = g * l.t + j;
                    (0..l.ngw_rank(rank)).map(|n| tag(j, n)).collect()
                })
                .collect();
            let mut zbuf = vec![Complex64::ZERO; l.nst_group(g) * l.grid.nr3];
            steps::deposit_pack_recv(&l, g, &shares, &mut zbuf);
            // Extraction runs through the plan tables (the engines' path).
            let plan = ExecPlan::for_layout(&l, g);
            let mut flat = Vec::new();
            let mut counts = Vec::new();
            plan.extract_stream(&zbuf, &mut flat, &mut counts);
            let mut off = 0;
            for (j, want) in shares.iter().enumerate() {
                prop_assert_eq!(counts[j], want.len(), "group {} member {}", g, j);
                prop_assert_eq!(&flat[off..off + want.len()], want.as_slice(),
                    "group {} member {}", g, j);
                off += want.len();
            }
        }
    }

    /// Forward scatter conservation: pack all groups' z-buffers, route the
    /// chunks like the alltoall, deposit into planes — every (stick, z)
    /// entry of every group must appear at its (ix, iy, z) grid position.
    #[test]
    fn scatter_moves_every_entry_once(ecut in 30usize..70, r in 1usize..5, t in 1usize..3) {
        let l = layout(ecut, r, t);
        let nr3 = l.grid.nr3;
        let chunk = steps::scatter_chunk_len(&l);
        let zbufs: Vec<Vec<Complex64>> = (0..l.r)
            .map(|g| {
                (0..l.nst_group(g) * nr3)
                    .map(|n| {
                        let stick_id = l.group_sticks[g][n / nr3];
                        tag(stick_id, n % nr3)
                    })
                    .collect()
            })
            .collect();
        let sends: Vec<Vec<Complex64>> =
            (0..l.r).map(|g| steps::scatter_pack(&l, g, &zbufs[g])).collect();
        // Route and deposit.
        let plane = l.grid.nr1 * l.grid.nr2;
        let mut seen = 0usize;
        for g in 0..l.r {
            let mut recv = Vec::with_capacity(l.r * chunk);
            for gp in 0..l.r {
                recv.extend_from_slice(&sends[gp][g * chunk..(g + 1) * chunk]);
            }
            let mut planes = vec![Complex64::ZERO; l.npp(g) * plane];
            steps::scatter_unpack_to_planes(&l, g, &recv, &mut planes);
            let (z0, _) = l.plane_range[g];
            for gp in 0..l.r {
                for &s in &l.group_sticks[gp] {
                    let stick = &l.set.sticks[s];
                    for zl in 0..l.npp(g) {
                        let got = planes[zl * plane + stick.iy * l.grid.nr1 + stick.ix];
                        prop_assert_eq!(got, tag(s, z0 + zl));
                        seen += 1;
                    }
                }
            }
            // And back: the reverse extraction must reproduce the chunks.
            let back = steps::planes_to_scatter_sends(&l, g, &planes);
            for gp in 0..l.r {
                let max_npp = l.max_npp();
                for (si, _s) in l.group_sticks[gp].iter().enumerate() {
                    for zl in 0..l.npp(g) {
                        prop_assert_eq!(
                            back[gp * chunk + si * max_npp + zl],
                            recv[gp * chunk + si * max_npp + zl]
                        );
                    }
                }
            }
        }
        // Every (stick, z) pair was observed exactly once across groups.
        prop_assert_eq!(seen, l.set.nst() * nr3);
    }

    /// The padded chunk never loses data: zbuf -> scatter_pack -> echo ->
    /// zbuf_from_scatter_recv is the identity for any shape.
    #[test]
    fn zbuf_echo_identity(ecut in 30usize..70, r in 1usize..5) {
        let l = layout(ecut, r, 1);
        let nr3 = l.grid.nr3;
        for g in 0..l.r {
            let zbuf: Vec<Complex64> =
                (0..l.nst_group(g) * nr3).map(|n| tag(g, n)).collect();
            let send = steps::scatter_pack(&l, g, &zbuf);
            let mut back = vec![Complex64::ZERO; zbuf.len()];
            steps::zbuf_from_scatter_recv(&l, g, &send, &mut back);
            prop_assert_eq!(back, zbuf);
        }
    }
}
