//! Scheduler-equivalence property: the five scheduler policies over the
//! unified stage graph (serial, task-per-step, task-per-FFT, async
//! split-phase, and the hybrid overlap+desync policy) are *schedules*, not
//! algorithms — for any (R, T) factorisation, grid size, workload seed,
//! and chaos seed, every policy must produce bit-identical bands.
//!
//! This is the live complement of the pinned golden suite
//! (`golden_bitwise.rs`): the golden file freezes a handful of scenarios
//! against pre-refactor hashes, while this property samples fresh
//! configurations every run and cross-checks the policies against each
//! other.

use fftx_core::{run_policy_chaotic, FftxConfig, Problem, SchedulerPolicy};
use fftx_fft::Complex64;
use fftx_vmpi::{ChaosConfig, StallConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Seeded transport chaos plus a straggler stall, as in the golden suite.
fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::aggressive(seed).with_stall(StallConfig::rank(0, Duration::from_millis(1), 3))
}

/// Runs one policy on `cfg` (re-tagged with the policy's mode) and returns
/// its bands.
fn bands_for(
    cfg: FftxConfig,
    policy: SchedulerPolicy,
    chaos_seed: Option<u64>,
) -> Vec<Vec<Complex64>> {
    let mut cfg = cfg;
    cfg.mode = policy.mode();
    let problem = Arc::new(Problem::new(cfg));
    run_policy_chaotic(&problem, policy, chaos_seed.map(chaos)).0.bands
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// All policies agree bitwise on a random (R, T), grid scale, workload
    /// seed, and (optional) chaos seed.
    #[test]
    fn all_policies_are_bitwise_identical(
        layout_idx in 0usize..4,
        grid_idx in 0usize..2,
        seed in 1u64..1_000_000,
        chaos_seed in 0u64..1_000_000,
    ) {
        let (nr, ntg) = [(2, 2), (3, 2), (2, 3), (2, 1)][layout_idx];
        // Two laptop-scale grids: the small-test cutoff and a denser one.
        let ecutwfc = [6.0, 9.0][grid_idx];
        let mut cfg = FftxConfig::small(nr, ntg, SchedulerPolicy::Serial.mode());
        cfg.ecutwfc = ecutwfc;
        cfg.seed = seed;
        // chaos_seed == 0 doubles as "no chaos".
        let chaos_seed = (chaos_seed > 0).then_some(chaos_seed);

        let reference = bands_for(cfg, SchedulerPolicy::Serial, chaos_seed);
        for policy in [
            SchedulerPolicy::TaskPerStep,
            SchedulerPolicy::TaskPerFft,
            SchedulerPolicy::TaskAsync,
            SchedulerPolicy::Hybrid,
        ] {
            let got = bands_for(cfg, policy, chaos_seed);
            prop_assert!(
                got == reference,
                "policy {} diverged from serial on R{}xT{} ecut {} seed {} chaos {:?}",
                policy.name(), nr, ntg, ecutwfc, seed, chaos_seed
            );
        }
    }
}
