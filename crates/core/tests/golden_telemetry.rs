//! Golden telemetry-path test: every exporter must produce byte-identical
//! output whether it reads the live `Trace` or a trace that took the full
//! columnar round trip (`EventLog::from_trace` → `encode` → `decode` →
//! `to_trace`). This is the contract that lets the bench bins, the paraver
//! exporter and the POP metrics all become thin queries over one log
//! without perturbing a single committed artifact.

use fftx_core::{run_modeled, FftxConfig, Mode};
use fftx_trace::columnar::EventLog;
use fftx_trace::{
    export_paraver, intra_factors, phase_profile, timeline_csv, IpcHistogram, StateClass, Trace,
};

fn round_trip(trace: &Trace) -> Trace {
    let log = EventLog::from_trace(trace);
    let bytes = log.encode();
    let decoded = EventLog::decode(&bytes).expect("decode");
    assert_eq!(decoded, log, "wire round trip must be lossless");
    decoded.to_trace().expect("to_trace")
}

#[test]
fn exporters_are_identical_through_the_columnar_path() {
    // The paper's 8×8 configuration, both code versions.
    for mode in [Mode::Original, Mode::TaskPerFft] {
        let run = run_modeled(FftxConfig::paper(8, mode));
        let direct = &run.trace;
        let via_log = round_trip(direct);

        // Paraver bundle (fig. 3 / fig. 7 raw material): all three files.
        let a = export_paraver(direct);
        let b = export_paraver(&via_log);
        assert_eq!(a.prv, b.prv, "{mode:?}: .prv differs through the log");
        assert_eq!(a.pcf, b.pcf, "{mode:?}: .pcf differs through the log");
        assert_eq!(a.row, b.row, "{mode:?}: .row differs through the log");

        // POP efficiency factors (table 1/2 raw material).
        let fa = intra_factors(direct, Some(run.runtime), Some(run.ideal_runtime));
        let fb = intra_factors(&via_log, Some(run.runtime), Some(run.ideal_runtime));
        assert_eq!(fa, fb, "{mode:?}: POP factors differ through the log");

        // Phase profile and timeline CSV (fig. 3).
        assert_eq!(
            phase_profile(direct),
            phase_profile(&via_log),
            "{mode:?}: phase profile differs"
        );
        assert_eq!(
            timeline_csv(direct),
            timeline_csv(&via_log),
            "{mode:?}: timeline CSV differs"
        );

        // IPC histogram (fig. 7).
        let ha = IpcHistogram::from_trace(direct, Some(StateClass::FftXy), 40, 0.0, 1.2);
        let hb = IpcHistogram::from_trace(&via_log, Some(StateClass::FftXy), 40, 0.0, 1.2);
        assert_eq!(ha.to_csv(), hb.to_csv(), "{mode:?}: IPC histogram differs");
    }
}

#[test]
fn query_summary_matches_trace_totals() {
    let run = run_modeled(FftxConfig::paper(8, Mode::TaskPerStep));
    let log = EventLog::from_trace(&run.trace);
    let decoded = EventLog::decode(&log.encode()).expect("decode");
    let summary = fftx_trace::query::summary_csv(&decoded).expect("summary");
    // The summary must report exactly the stream sizes of the live trace.
    assert!(summary.contains(&format!("stream,compute,{},", run.trace.compute.len())));
    assert!(summary.contains(&format!("stream,comm,{},", run.trace.comm.len())));
    assert!(summary.contains(&format!("stream,task,{},", run.trace.tasks.len())));
}
