//! Chaos-determinism property: running the miniapp under seeded transport
//! chaos (message delay/duplication/reordering plus a collective-entry
//! straggler stall) must be invisible in the results — every real-engine
//! mode produces bit-identical bands with chaos on or off — and the fault
//! schedule itself must be a pure function of the seed.

use fftx_core::{run_chaotic, FftxConfig, Mode, Problem};
use fftx_vmpi::{ChaosConfig, FaultReport, StallConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Aggressive transport chaos plus a straggler stall on rank 0 (the real
/// kernels are collective-only, so the stall is what exercises the
/// fault-injection path end to end).
fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::aggressive(seed).with_stall(StallConfig::rank(
        0,
        Duration::from_millis(1),
        3,
    ))
}

fn run_mode(mode: Mode, seed: Option<u64>) -> (Vec<Vec<fftx_fft::Complex64>>, Option<FaultReport>) {
    let cfg = FftxConfig::small(2, 2, mode);
    let problem = Problem::new(cfg);
    let (out, report) = run_chaotic(&problem, seed.map(chaos));
    (out.bands, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chaos_is_invisible_in_results_and_deterministic_by_seed(seed in 1u64..1_000_000) {
        for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
            // The baseline run passes no explicit config; under the CI chaos
            // job (`FFTX_CHAOS_SEED` set) it is itself chaotic, which only
            // strengthens the invariance claim below.
            let (clean_bands, _env_report) = run_mode(mode, None);

            let (chaotic_bands, report) = run_mode(mode, Some(seed));
            let report = report.expect("chaos active");
            prop_assert!(
                clean_bands == chaotic_bands,
                "{:?}: chaos changed the pipeline output under seed {}", mode, seed
            );
            prop_assert!(
                !report.events.is_empty(),
                "{:?}: the straggler stall must fire at least once", mode
            );

            // Same seed, same schedule — bit-for-bit.
            let (_, report2) = run_mode(mode, Some(seed));
            prop_assert_eq!(&report, &report2.expect("chaos active"));
        }
    }
}
