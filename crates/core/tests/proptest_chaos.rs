//! Chaos-determinism property: running the miniapp under seeded transport
//! chaos (message delay/duplication/reordering plus a collective-entry
//! straggler stall) must be invisible in the results — every real-engine
//! mode produces bit-identical bands with chaos on or off — and the fault
//! schedule itself must be a pure function of the seed.
//!
//! The recovery properties extend the same claim to *fatal* faults: for
//! every recovery-triggering fault profile (transient task crashes, batch
//! collective aborts, a rank death at each possible batch boundary), the
//! recovered run must be bitwise identical to the fault-free run — recovery
//! costs time, never answers.

use fftx_core::{
    run_chaotic, run_eviction, run_original, run_retry, run_rollback, FftxConfig, Mode, Problem,
};
use fftx_core::taskmodes::run_task_per_fft;
use fftx_fault::{BatchAborts, RankDeath, RecoveryConfig, TaskCrashes};
use fftx_vmpi::{ChaosConfig, FaultReport, StallConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Aggressive transport chaos plus a straggler stall on rank 0 (the real
/// kernels are collective-only, so the stall is what exercises the
/// fault-injection path end to end).
fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::aggressive(seed).with_stall(StallConfig::rank(
        0,
        Duration::from_millis(1),
        3,
    ))
}

fn run_mode(mode: Mode, seed: Option<u64>) -> (Vec<Vec<fftx_fft::Complex64>>, Option<FaultReport>) {
    let cfg = FftxConfig::small(2, 2, mode);
    let problem = Problem::new(cfg);
    let (out, report) = run_chaotic(&problem, seed.map(chaos));
    (out.bands, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn chaos_is_invisible_in_results_and_deterministic_by_seed(seed in 1u64..1_000_000) {
        for mode in [Mode::Original, Mode::TaskPerFft, Mode::TaskPerStep] {
            // The baseline run passes no explicit config; under the CI chaos
            // job (`FFTX_CHAOS_SEED` set) it is itself chaotic, which only
            // strengthens the invariance claim below.
            let (clean_bands, _env_report) = run_mode(mode, None);

            let (chaotic_bands, report) = run_mode(mode, Some(seed));
            let report = report.expect("chaos active");
            prop_assert!(
                clean_bands == chaotic_bands,
                "{:?}: chaos changed the pipeline output under seed {}", mode, seed
            );
            prop_assert!(
                !report.events.is_empty(),
                "{:?}: the straggler stall must fire at least once", mode
            );

            // Same seed, same schedule — bit-for-bit.
            let (_, report2) = run_mode(mode, Some(seed));
            prop_assert_eq!(&report, &report2.expect("chaos active"));
        }
    }

    /// Mechanism 1: for any crash seed, a run where every band task
    /// crashes once or twice recovers by re-execution and reproduces the
    /// fault-free bands bit for bit.
    #[test]
    fn task_reexecution_recovers_bitwise_identical_bands(seed in 1u64..1_000_000) {
        let cfg = FftxConfig::small(2, 2, Mode::TaskPerFft);
        let problem = Problem::new(cfg);
        let baseline = run_task_per_fft(&problem);
        let crashes = TaskCrashes::new(seed, 1.0, 2);
        let (out, stats) = run_retry(&problem, Some(crashes), &RecoveryConfig::default())
            .expect("retry budget must absorb at most 2 crashes per task");
        prop_assert!(stats.task_retries > 0, "profile must trigger retries");
        prop_assert!(
            out.bands == baseline.bands,
            "task re-execution changed the answer under seed {seed}"
        );
    }

    /// Mechanism 2: for any abort seed, a run where every band batch's
    /// collective times out once or twice recovers by checkpoint rollback
    /// and reproduces the fault-free bands bit for bit.
    #[test]
    fn batch_rollback_recovers_bitwise_identical_bands(seed in 1u64..1_000_000) {
        let cfg = FftxConfig::small(2, 2, Mode::Original);
        let problem = Problem::new(cfg);
        let baseline = run_original(&problem);
        let aborts = BatchAborts::new(seed, 1.0, 2);
        let (out, stats) = run_rollback(&problem, Some(aborts), &RecoveryConfig::default())
            .expect("rollback budget must absorb at most 2 aborts per batch");
        prop_assert!(stats.batch_rollbacks > 0, "profile must trigger rollbacks");
        prop_assert!(
            out.bands == baseline.bands,
            "batch rollback changed the answer under seed {seed}"
        );
    }

    /// Mechanism 3: for any victim rank and any re-plannable death
    /// boundary, evicting the rank and finishing on the re-planned R×T
    /// layout reproduces the fault-free bands bit for bit.
    #[test]
    fn rank_eviction_recovers_bitwise_identical_bands(
        victim in 0usize..7,
        batch_idx in 0usize..3,
    ) {
        // 7 ranks as 7×1 over 6 bands; 6 survivors re-plan to 3×2, so the
        // death boundary must leave an even number of bands: batch 0, 2, 4.
        let mut cfg = FftxConfig::small(7, 1, Mode::Original);
        cfg.nbnd = 6;
        let problem = Problem::new(cfg);
        let baseline = run_original(&problem);
        let death = RankDeath::at(victim, batch_idx * 2);
        let (out, stats) = run_eviction(&problem, death, &RecoveryConfig::default())
            .expect("survivors must finish the run");
        prop_assert_eq!(stats.layout_after, (3, 2));
        prop_assert!(
            out.bands == baseline.bands,
            "evicting rank {victim} at batch {} changed the answer", batch_idx * 2
        );
    }
}
