//! Counting-allocator proof of the zero-allocation steady state: drives
//! the planned engine's per-iteration work — deposit, z-FFT, padded
//! scatter (loopback-routed), xy-FFT, VOFR, and the way back — through
//! [`ExecPlan`] + [`BufferArena`] for every task group in-process, and
//! asserts that after one warmup iteration (which grows every arena
//! buffer) further iterations perform **zero** heap allocations.
//!
//! The transport's internal staging copy (the NIC stand-in inside
//! `fftx-vmpi`, DESIGN.md §12) is deliberately outside this probe: the
//! alltoall routing is done here by flat `copy_from_slice` between
//! preallocated buffers, exactly the engine-side work the zero-alloc
//! guarantee covers.
//!
//! The measured counts land in `results/alloc.csv`.

use fftx_core::{BufferArena, FftxConfig, Mode, Problem};
use fftx_fft::{cft_1z, cft_2xy_buf, Complex64, Direction};
use fftx_pw::apply_potential_slab;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation path (alloc, alloc_zeroed, realloc); frees are
/// not counted — a steady state that allocates and frees per iteration
/// must still read as non-zero.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One full pipeline iteration over every task group, with the two
/// alltoall families routed by hand through preallocated `recvs` buffers.
fn iteration(
    problem: &Problem,
    shares: &[Vec<Vec<Complex64>>],
    arenas: &mut [BufferArena],
    recvs: &mut [Vec<Complex64>],
    outs: &mut [Vec<Vec<Complex64>>],
) {
    let r = problem.layout.r;
    let t = problem.layout.t;
    // Deposit + inverse z-FFT + forward-scatter pack.
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.prep(&mut a.zbuf, &mut a.planes);
        for (j, share) in shares[g].iter().enumerate().take(t) {
            plan.deposit_member(j, share, &mut a.zbuf);
        }
        cft_1z(
            &plan.z,
            &mut a.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Inverse,
            &mut a.scratch,
        );
        plan.scatter_pack(&a.zbuf, &mut a.scatter_send);
    }
    route(arenas, recvs);
    // Unpack + xy-FFTs + VOFR + backward-scatter pack.
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.scatter_unpack_to_planes(&recvs[g], &mut a.planes);
        cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut a.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Inverse,
            &mut a.scratch,
            &mut a.col,
        );
        apply_potential_slab(&mut a.planes, &problem.v, &plan.grid, plan.z0, plan.npp);
        cft_2xy_buf(
            &plan.x,
            &plan.y,
            &mut a.planes,
            plan.npp,
            plan.grid.nr1,
            plan.grid.nr2,
            Direction::Forward,
            &mut a.scratch,
            &mut a.col,
        );
        plan.planes_to_scatter(&a.planes, &mut a.scatter_send);
    }
    route(arenas, recvs);
    // Unscatter + forward z-FFT + extraction.
    for g in 0..r {
        let plan = problem.exec_plan(g);
        let a = &mut arenas[g];
        plan.zbuf_from_scatter(&recvs[g], &mut a.zbuf);
        cft_1z(
            &plan.z,
            &mut a.zbuf,
            plan.nst,
            plan.grid.nr3,
            Direction::Forward,
            &mut a.scratch,
        );
        for (j, out) in outs[g].iter_mut().enumerate().take(t) {
            plan.extract_member(j, &a.zbuf, out);
        }
    }
}

/// Loopback alltoall over the padded chunks: `recvs[g]` chunk `gp` is
/// `arenas[gp].scatter_send` chunk `g` (the chunk length is layout-global,
/// so every group's buffers agree).
fn route(arenas: &[BufferArena], recvs: &mut [Vec<Complex64>]) {
    let r = arenas.len();
    let chunk = arenas[0].scatter_send.len() / r;
    for (g, recv) in recvs.iter_mut().enumerate() {
        for (gp, src) in arenas.iter().enumerate() {
            recv[gp * chunk..(gp + 1) * chunk]
                .copy_from_slice(&src.scatter_send[g * chunk..(g + 1) * chunk]);
        }
    }
}

#[test]
fn steady_state_engine_iteration_allocates_nothing() {
    let cfg = FftxConfig::small(2, 2, Mode::Original);
    let problem = Problem::new(cfg);
    let r = problem.layout.r;
    let t = problem.layout.t;
    // Band-0 share of every member rank, per group: the deposit inputs.
    let shares: Vec<Vec<Vec<Complex64>>> = (0..r)
        .map(|g| (0..t).map(|j| problem.initial_shares(g * t + j).remove(0)).collect())
        .collect();
    let mut arenas: Vec<BufferArena> = (0..r).map(|_| BufferArena::new()).collect();
    let mut recvs: Vec<Vec<Complex64>> = (0..r)
        .map(|g| vec![Complex64::ZERO; problem.exec_plan(g).scatter_len()])
        .collect();
    let mut outs: Vec<Vec<Vec<Complex64>>> = (0..r).map(|_| vec![Vec::new(); t]).collect();

    // Warmup: grows every arena buffer and the extraction outputs.
    let before_warmup = allocs();
    iteration(&problem, &shares, &mut arenas, &mut recvs, &mut outs);
    let warmup_allocs = allocs() - before_warmup;
    assert!(warmup_allocs > 0, "warmup must grow the arena buffers");
    let warmup_out = outs.clone();

    // Steady state: zero heap traffic per iteration, stable results.
    const ITERS: u64 = 8;
    let before = allocs();
    for _ in 0..ITERS {
        iteration(&problem, &shares, &mut arenas, &mut recvs, &mut outs);
    }
    let steady_allocs = allocs() - before;
    assert_eq!(
        steady_allocs, 0,
        "steady-state iterations must not touch the heap ({steady_allocs} allocations over {ITERS} iterations)"
    );
    for (g, (got, want)) in outs.iter().zip(&warmup_out).enumerate() {
        assert_eq!(got, want, "group {g}: arena reuse changed the results");
    }

    // Record the measurement (after the measured region — the CSV write
    // itself allocates freely).
    let mut csv = String::from("workload,groups,members,warmup_allocs,steady_iterations,steady_allocs_per_iteration\n");
    let _ = writeln!(csv, "small-2x2,{r},{t},{warmup_allocs},{ITERS},{}", steady_allocs / ITERS);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/alloc.csv");
    std::fs::write(path, csv).expect("write results/alloc.csv");
}
