//! Golden bitwise-equality suite: pins the exact `RunOutput.bands` bits of
//! every execution engine — all modes, several (R,T) factorisations, seeded
//! transport chaos, and the recovery paths (batch rollback and rank
//! eviction with layout re-planning) — against hashes captured from the
//! pre-refactor engines.
//!
//! The planned execution engine (ExecPlan + BufferArena + zero-copy
//! collectives) must be a pure data-movement refactor: same FFTs on the
//! same values in the same order. Any reordering of floating-point work
//! changes bits and fails here.
//!
//! Re-blessing (only legitimate when the *mathematical pipeline* changes,
//! never for a data-movement refactor):
//! `FFTX_GOLDEN_BLESS=1 cargo test -p fftx-core --test golden_bitwise`

use fftx_core::{
    run_chaotic, run_eviction, run_rollback, Cell, Decomposition, FftGrid, FftxConfig, Mode,
    Problem, DUAL,
};
use fftx_fault::{BatchAborts, RankDeath, RecoveryConfig};
use fftx_fft::Complex64;
use fftx_vmpi::{ChaosConfig, StallConfig};
use std::fmt::Write as _;
use std::time::Duration;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/bitwise.txt");

/// FNV-1a over the exact bit patterns of every coefficient (lengths mixed
/// in, so shape changes cannot alias with value changes).
fn hash_bands(bands: &[Vec<Complex64>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(bands.len() as u64);
    for band in bands {
        eat(band.len() as u64);
        for c in band {
            eat(c.re.to_bits());
            eat(c.im.to_bits());
        }
    }
    h
}

/// The chaos profile of the chaos-determinism proptest: aggressive seeded
/// transport faults plus a straggler stall on rank 0.
fn chaos(seed: u64) -> ChaosConfig {
    ChaosConfig::aggressive(seed).with_stall(StallConfig::rank(0, Duration::from_millis(1), 3))
}

fn eviction_config() -> FftxConfig {
    // 7 ranks as 7×1 over 6 bands; evicting one re-plans to 3×2.
    let mut c = FftxConfig::small(7, 1, Mode::Original);
    c.nbnd = 6;
    c
}

/// The pencil eviction geometry: 9 ranks as 9×1 (a real 3×3 process grid)
/// over 6 bands; evicting one re-plans to 4×2 (a real 2×2 grid), so both
/// phases of the eviction path run genuine two-step pencil exchanges.
fn pencil_eviction_config(decomp: Decomposition) -> FftxConfig {
    let mut c = FftxConfig::small(9, 1, Mode::Original);
    c.nbnd = 6;
    c.with_decomp(decomp)
}

/// A problem on a non-power-friendly grid: the z dimension is forced to 41
/// (prime, above the direct-radix limit), so every z-FFT takes the
/// Bluestein path while x/y keep the cutoff-derived sizes.
fn prime41_problem(nr: usize, ntg: usize, mode: Mode, decomp: Decomposition) -> std::sync::Arc<Problem> {
    let cfg = FftxConfig::small(nr, ntg, mode).with_decomp(decomp);
    let cell = Cell::cubic(cfg.alat);
    let base = FftGrid::from_cutoff(&cell, DUAL * cfg.ecutwfc);
    Problem::with_grid(cfg, FftGrid::raw(base.nr1, base.nr2, 41))
}

/// Runs every golden scenario and returns `(name, bands-hash)` pairs.
fn scenarios() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let modes = [
        Mode::Original,
        Mode::TaskPerFft,
        Mode::TaskPerStep,
        Mode::TaskAsync,
        Mode::Hybrid,
    ];

    // Clean runs across (R,T) factorisations.
    for mode in modes {
        for (nr, ntg) in [(2, 2), (3, 2), (2, 3)] {
            let problem = Problem::new(FftxConfig::small(nr, ntg, mode));
            let (run, _) = run_chaotic(&problem, None);
            out.push((
                format!("clean/{}/{}x{}", mode.name(), nr, ntg),
                hash_bands(&run.bands),
            ));
        }
    }
    // The pure-scatter extreme (T = 1) for the original engine.
    let problem = Problem::new(FftxConfig::small(4, 1, Mode::Original));
    let (run, _) = run_chaotic(&problem, None);
    out.push(("clean/original/4x1".into(), hash_bands(&run.bands)));

    // Chaotic runs: seeded transport faults must be invisible in the bits.
    for mode in modes {
        for seed in [7_u64, 20170814] {
            let problem = Problem::new(FftxConfig::small(2, 2, mode));
            let (run, report) = run_chaotic(&problem, Some(chaos(seed)));
            assert!(report.is_some(), "chaos must be active");
            out.push((
                format!("chaos/{}/seed{}", mode.name(), seed),
                hash_bands(&run.bands),
            ));
        }
    }

    // Recovery: a batch rollback (every batch aborts once or twice) ...
    let problem = Problem::new(FftxConfig::small(2, 2, Mode::Original));
    let (run, stats) = run_rollback(
        &problem,
        Some(BatchAborts::new(9, 1.0, 2)),
        &RecoveryConfig::default(),
    )
    .expect("rollback budget absorbs the injected aborts");
    assert!(stats.batch_rollbacks > 0, "profile must trigger rollbacks");
    out.push(("recovery/rollback/seed9".into(), hash_bands(&run.bands)));

    // ... and a rank eviction with layout re-planning (7×1 → 3×2).
    let problem = Problem::new(eviction_config());
    let (run, stats) = run_eviction(
        &problem,
        RankDeath::at(3, 2),
        &RecoveryConfig::default(),
    )
    .expect("survivors finish the run");
    assert_eq!(stats.layout_after, (3, 2));
    out.push(("recovery/eviction/victim3@2".into(), hash_bands(&run.bands)));

    // Pencil lowering, clean: every mode over factorisable rank counts
    // ((4,1) = 2×2 grid, (6,1) = 2×3 grid). Pinned AND asserted equal to
    // the slab run of the identical configuration — the tentpole identity.
    for mode in modes {
        for (nr, ntg) in [(4, 1), (6, 1)] {
            let slab_cfg = FftxConfig::small(nr, ntg, mode);
            let pencil_cfg = slab_cfg.with_decomp(Decomposition::Pencil);
            let (slab, _) = run_chaotic(&Problem::new(slab_cfg), None);
            let (pencil, _) = run_chaotic(&Problem::new(pencil_cfg), None);
            let (hs, hp) = (hash_bands(&slab.bands), hash_bands(&pencil.bands));
            assert_eq!(
                hs, hp,
                "pencil clean bits must match slab: {} {}x{}",
                mode.name(), nr, ntg
            );
            out.push((format!("pencil/clean/{}/{}x{}", mode.name(), nr, ntg), hp));
        }
    }

    // Pencil under seeded transport chaos: the two extra exchange hops of
    // the pencil path must absorb the same faults to the same bits.
    for mode in modes {
        let slab_cfg = FftxConfig::small(4, 1, mode);
        let pencil_cfg = slab_cfg.with_decomp(Decomposition::Pencil);
        let (slab, _) = run_chaotic(&Problem::new(slab_cfg), Some(chaos(20170814)));
        let (pencil, report) = run_chaotic(&Problem::new(pencil_cfg), Some(chaos(20170814)));
        assert!(report.is_some(), "chaos must be active");
        let (hs, hp) = (hash_bands(&slab.bands), hash_bands(&pencil.bands));
        assert_eq!(hs, hp, "pencil chaos bits must match slab: {}", mode.name());
        out.push((format!("pencil/chaos/{}/seed20170814", mode.name()), hp));
    }

    // Pencil through batch rollback ...
    let slab_p = Problem::new(FftxConfig::small(4, 1, Mode::Original));
    let pencil_p =
        Problem::new(FftxConfig::small(4, 1, Mode::Original).with_decomp(Decomposition::Pencil));
    let aborts = || Some(BatchAborts::new(9, 1.0, 2));
    let (slab, _) = run_rollback(&slab_p, aborts(), &RecoveryConfig::default())
        .expect("rollback budget absorbs the injected aborts");
    let (pencil, stats) = run_rollback(&pencil_p, aborts(), &RecoveryConfig::default())
        .expect("rollback budget absorbs the injected aborts");
    assert!(stats.batch_rollbacks > 0, "profile must trigger rollbacks");
    let (hs, hp) = (hash_bands(&slab.bands), hash_bands(&pencil.bands));
    assert_eq!(hs, hp, "pencil rollback bits must match slab");
    out.push(("pencil/recovery/rollback/seed9".into(), hp));

    // ... and rank eviction with re-planning (9×1 → 4×2): both the 3×3
    // pre-death grid and the re-planned 2×2 grid are genuine pencil grids.
    let slab_p = Problem::new(pencil_eviction_config(Decomposition::Slab));
    let pencil_p = Problem::new(pencil_eviction_config(Decomposition::Pencil));
    let (slab, _) = run_eviction(&slab_p, RankDeath::at(3, 2), &RecoveryConfig::default())
        .expect("survivors finish the run");
    let (pencil, stats) = run_eviction(&pencil_p, RankDeath::at(3, 2), &RecoveryConfig::default())
        .expect("survivors finish the run");
    assert_eq!(stats.layout_after, (4, 2), "8 survivors re-plan to 4×2");
    let (hs, hp) = (hash_bands(&slab.bands), hash_bands(&pencil.bands));
    assert_eq!(hs, hp, "pencil eviction bits must match slab");
    out.push(("pencil/recovery/eviction/victim3@2".into(), hp));

    // Non-power-friendly geometry: z = 41 (prime, Bluestein path) under
    // both decompositions, every mode.
    for mode in modes {
        let (slab, _) = run_chaotic(&prime41_problem(4, 1, mode, Decomposition::Slab), None);
        let (pencil, _) = run_chaotic(&prime41_problem(4, 1, mode, Decomposition::Pencil), None);
        let (hs, hp) = (hash_bands(&slab.bands), hash_bands(&pencil.bands));
        assert_eq!(hs, hp, "prime-grid pencil bits must match slab: {}", mode.name());
        out.push((format!("prime41/clean/{}/4x1", mode.name()), hp));
    }

    out
}

fn render(entries: &[(String, u64)]) -> String {
    let mut s = String::from(
        "# Golden bands hashes (FNV-1a over f64 bit patterns), one scenario per line.\n\
         # Captured from the pre-refactor engines; see tests/golden_bitwise.rs.\n",
    );
    for (name, h) in entries {
        let _ = writeln!(s, "{name} {h:016x}");
    }
    s
}

#[test]
fn engines_match_golden_bitwise_hashes() {
    let entries = scenarios();
    if std::env::var_os("FFTX_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("create golden dir");
        std::fs::write(GOLDEN_PATH, render(&entries)).expect("write golden file");
        eprintln!("blessed {} scenarios into {GOLDEN_PATH}", entries.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run once with FFTX_GOLDEN_BLESS=1");
    let mut expected = std::collections::HashMap::new();
    for line in golden.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (name, hash) = line.split_once(' ').expect("golden line format");
        expected.insert(
            name.to_string(),
            u64::from_str_radix(hash.trim(), 16).expect("golden hash format"),
        );
    }
    assert_eq!(
        expected.len(),
        entries.len(),
        "scenario list drifted from the golden file — re-bless deliberately"
    );
    for (name, h) in &entries {
        let want = expected
            .get(name)
            .unwrap_or_else(|| panic!("scenario {name} missing from the golden file"));
        assert_eq!(
            h, want,
            "{name}: bands differ bitwise from the pre-refactor engines"
        );
    }
}
