//! Round-trip properties of the columnar event log:
//!
//! * `decode(encode_chunked(log, c)) == log` for any event mix and any
//!   chunk size, including chunk sizes that straddle row counts (1, 2, 3,
//!   the default 512),
//! * the encoding is canonical: re-encoding a decoded log reproduces the
//!   bytes exactly,
//! * the string dictionary survives arbitrary growth (every task label /
//!   counter key distinct) and the derived counter index is rebuilt to the
//!   same totals,
//! * a log round-tripped through `Trace` (the row-structured view) yields
//!   the same downstream event streams.

use fftx_trace::columnar::EventLog;
use fftx_trace::{CommOp, CommRecord, ComputeRecord, Lane, StageRecord, StateClass, TaskRecord};
use proptest::prelude::*;

/// One abstract event, drawn from every stream the log knows.
#[derive(Clone, Debug)]
enum Ev {
    Compute(u8, u8, u8, f64, f64),
    Comm(u8, u8, u8, u64, u16, u32, f64),
    Task(u8, u8, u64, u32, f64),
    Stage(u8, u8, u8, u8, f64),
    Counter(u32, u64),
    Gauge(u8, f64, u64),
    State(f64, u8, u8),
}

fn apply(log: &mut EventLog, ev: &Ev) {
    match *ev {
        Ev::Compute(rank, thread, class, t, dur) => log.push_compute(&ComputeRecord {
            lane: Lane::new(rank as usize, thread as usize),
            class: StateClass::from_code(class as u32 % 8).unwrap(),
            t_start: t,
            t_end: t + dur.abs(),
            instructions: dur * 1.0e9,
            cycles: dur * 1.4e9,
        }),
        Ev::Comm(rank, thread, op, comm_id, comm_size, bytes, t) => log.push_comm(&CommRecord {
            lane: Lane::new(rank as usize, thread as usize),
            op: CommOp::from_code(op as u32 % 7).unwrap(),
            comm_id,
            comm_size: comm_size as usize,
            bytes: bytes as usize,
            t_start: t,
            t_end: t + 1.5e-4,
        }),
        Ev::Task(rank, thread, id, label, t) => log.push_task(&TaskRecord {
            lane: Lane::new(rank as usize, thread as usize),
            task_id: id,
            label: format!("task-{label}"),
            t_created: t,
            t_start: t + 1e-6,
            t_end: t + 2e-6,
        }),
        Ev::Stage(rank, thread, stage, band, t) => log.push_stage(&StageRecord {
            lane: Lane::new(rank as usize, thread as usize),
            stage: stage as u32,
            band: band as u32,
            t_start: t,
            t_end: t + 3e-5,
        }),
        Ev::Counter(key, n) => log.push_counter(&format!("counter.key{key}"), n),
        Ev::Gauge(series, t, v) => log.push_gauge(&format!("g{series}"), t, v),
        Ev::State(t, lane, s) => log.push_state(t, lane as u32, &format!("s{s}")),
    }
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    (
        0u8..7,
        0u8..8,
        0u8..8,
        0u32..10_000,
        0u64..u64::MAX / 2,
        0.0f64..100.0,
        0.0f64..0.5,
    )
        .prop_map(|(kind, a, b, big, huge, t, dur)| match kind {
            0 => Ev::Compute(a, b, (big % 8) as u8, t, dur),
            1 => Ev::Comm(a, b, (big % 7) as u8, huge, (big % 512) as u16, big, t),
            2 => Ev::Task(a, b, huge, big, t),
            3 => Ev::Stage(a, b, (big % 64) as u8, (big % 128) as u8, t),
            4 => Ev::Counter(big, huge % 1_000_000),
            5 => Ev::Gauge(a, t, huge % 4096),
            _ => Ev::State(t, a, b),
        })
}

fn build(events: &[Ev]) -> EventLog {
    let mut log = EventLog::new();
    for ev in events {
        apply(&mut log, ev);
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips_any_event_mix(
        events in proptest::collection::vec(ev_strategy(), 0..200),
        chunk_sel in 0usize..4,
    ) {
        let log = build(&events);
        let chunk = [1usize, 2, 3, 512][chunk_sel];
        let bytes = log.encode_chunked(chunk);
        let decoded = EventLog::decode(&bytes).expect("decode");
        prop_assert_eq!(&decoded, &log);
        // Canonical: re-encoding with the same chunking is byte-identical.
        prop_assert_eq!(decoded.encode_chunked(chunk), bytes);
    }

    #[test]
    fn chunk_size_does_not_change_the_decoded_log(
        events in proptest::collection::vec(ev_strategy(), 1..150),
    ) {
        let log = build(&events);
        let via_default = EventLog::decode(&log.encode()).expect("default");
        for chunk in [1usize, 2, 3, 7, 511, 512, 513] {
            let via_chunk = EventLog::decode(&log.encode_chunked(chunk)).expect("chunked");
            prop_assert_eq!(&via_chunk, &via_default);
        }
    }

    #[test]
    fn counter_index_is_rebuilt_from_the_wire(
        keys in proptest::collection::vec((0u32..40, 1u64..1000), 1..120),
    ) {
        let mut log = EventLog::new();
        let mut expect = std::collections::BTreeMap::new();
        for &(k, n) in &keys {
            let key = format!("counter.key{k}");
            *expect.entry(key.clone()).or_insert(0u64) += n;
            log.push_counter(&key, n);
        }
        let decoded = EventLog::decode(&log.encode_chunked(3)).expect("decode");
        for (key, total) in &expect {
            prop_assert_eq!(decoded.counter_total(key), *total);
        }
        prop_assert_eq!(decoded.counter_prefix_total("counter."),
            expect.values().sum::<u64>());
    }

    #[test]
    fn dictionary_growth_survives_round_trip(
        n in 1usize..400,
    ) {
        // Every label distinct: the dictionary grows one entry per push.
        let mut log = EventLog::new();
        for i in 0..n {
            log.push_state(i as f64, 0, &format!("unique-state-{i}"));
        }
        let decoded = EventLog::decode(&log.encode_chunked(2)).expect("decode");
        prop_assert_eq!(decoded.dict_len(), log.dict_len());
        prop_assert_eq!(&decoded, &log);
    }

    #[test]
    fn trace_view_round_trips_event_streams(
        events in proptest::collection::vec(ev_strategy(), 0..120),
    ) {
        // Keep only streams Trace models (compute/comm/task/stage).
        let events: Vec<Ev> = events
            .into_iter()
            .filter(|e| matches!(e, Ev::Compute(..) | Ev::Comm(..) | Ev::Task(..) | Ev::Stage(..)))
            .collect();
        let log = build(&events);
        let trace = log.to_trace().expect("to_trace");
        let back = EventLog::from_trace(&trace);
        let t2 = back.to_trace().expect("to_trace again");
        prop_assert_eq!(trace.compute.len(), t2.compute.len());
        prop_assert_eq!(&trace.compute, &t2.compute);
        prop_assert_eq!(&trace.comm, &t2.comm);
        prop_assert_eq!(&trace.tasks, &t2.tasks);
        prop_assert_eq!(&trace.stages, &t2.stages);
    }
}
