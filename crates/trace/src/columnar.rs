//! The columnar event log — the single storage layer of the telemetry
//! stack.
//!
//! Every record the reproduction emits — compute bursts, MPI calls, task
//! lifecycles, stage-graph spans, serving counters, queue-depth gauges and
//! fleet state transitions — lands in one [`EventLog`]: an append-only set
//! of typed column streams with one shared string dictionary. The legacy
//! row types ([`crate::trace::Trace`], [`crate::metrics::CounterSet`],
//! [`crate::metrics::DepthSeries`], [`crate::metrics::StateTimeline`]) are
//! *materialized views* over this log, so the recording path has exactly
//! one store and the analysis/exporter path has exactly one source.
//!
//! The on-disk form is a self-describing binary: a header carrying the
//! dictionary and the per-stream column schemas (name + type tag), then the
//! rows in append-only chunks. Inside a chunk every column is
//! delta-encoded against its previous value (zigzag varint over the
//! wrapping u64 difference; `f64` goes through its IEEE bit pattern), which
//! is bit-exact for arbitrary values and compact for the monotone
//! virtual-time tick columns the simulator produces. `decode(encode(log))`
//! is bit-identical to the original log by construction (see the
//! round-trip proptest in `tests/proptest_columnar.rs`).

use crate::error::TraceError;
use crate::event::{CommOp, CommRecord, ComputeRecord, Lane, StateClass, TaskRecord};
use crate::metrics::{CounterSet, DepthSeries, StateTimeline};
use crate::stage::StageRecord;
use crate::trace::Trace;
use std::collections::{BTreeMap, HashMap};

/// Magic bytes of the binary format.
const MAGIC: &[u8; 4] = b"FXCL";
/// Format version.
const VERSION: u8 = 1;
/// Default rows per encoded chunk.
pub const DEFAULT_CHUNK_ROWS: usize = 512;

/// Column payload: one type tag per column, values in row order.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 32-bit unsigned values (lane indices, class/op codes, stage ids).
    U32(Vec<u32>),
    /// 64-bit unsigned values (ids, byte counts, counter increments).
    U64(Vec<u64>),
    /// IEEE-754 doubles (timestamps, counters measured in seconds).
    F64(Vec<f64>),
    /// Dictionary-encoded strings (ids into the log-wide dictionary).
    Str(Vec<u32>),
}

impl ColumnData {
    fn type_tag(&self) -> u8 {
        match self {
            ColumnData::U32(_) => 0,
            ColumnData::U64(_) => 1,
            ColumnData::F64(_) => 2,
            ColumnData::Str(_) => 3,
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::U32(v) => v.len(),
            ColumnData::U64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }
}

/// One named, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (part of the self-describing header).
    pub name: String,
    /// The values.
    pub data: ColumnData,
}

/// One event stream: a fixed set of columns appended to in lockstep.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Stream name (part of the self-describing header).
    pub name: String,
    /// The columns, all of equal length.
    pub columns: Vec<Column>,
}

impl Stream {
    fn new(name: &str, cols: &[(&str, u8)]) -> Self {
        Stream {
            name: name.to_string(),
            columns: cols
                .iter()
                .map(|&(n, tag)| Column {
                    name: n.to_string(),
                    data: match tag {
                        0 => ColumnData::U32(Vec::new()),
                        1 => ColumnData::U64(Vec::new()),
                        2 => ColumnData::F64(Vec::new()),
                        _ => ColumnData::Str(Vec::new()),
                    },
                })
                .collect(),
        }
    }

    /// Number of rows in the stream.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    fn column(&self, name: &str) -> Result<&ColumnData, TraceError> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .map(|c| &c.data)
            .ok_or_else(|| {
                TraceError::Schema(format!("stream '{}' has no column '{name}'", self.name))
            })
    }

    /// Typed column accessors (schema errors instead of panics).
    pub fn col_u32(&self, name: &str) -> Result<&[u32], TraceError> {
        match self.column(name)? {
            ColumnData::U32(v) => Ok(v),
            other => Err(type_err(&self.name, name, "u32", other)),
        }
    }

    /// See [`Stream::col_u32`].
    pub fn col_u64(&self, name: &str) -> Result<&[u64], TraceError> {
        match self.column(name)? {
            ColumnData::U64(v) => Ok(v),
            other => Err(type_err(&self.name, name, "u64", other)),
        }
    }

    /// See [`Stream::col_u32`].
    pub fn col_f64(&self, name: &str) -> Result<&[f64], TraceError> {
        match self.column(name)? {
            ColumnData::F64(v) => Ok(v),
            other => Err(type_err(&self.name, name, "f64", other)),
        }
    }

    /// See [`Stream::col_u32`] (values are dictionary ids).
    pub fn col_str(&self, name: &str) -> Result<&[u32], TraceError> {
        match self.column(name)? {
            ColumnData::Str(v) => Ok(v),
            other => Err(type_err(&self.name, name, "str", other)),
        }
    }
}

fn type_err(stream: &str, col: &str, want: &str, got: &ColumnData) -> TraceError {
    TraceError::Schema(format!(
        "stream '{stream}' column '{col}': expected {want}, found tag {}",
        got.type_tag()
    ))
}

/// Stream names (indices into [`EventLog::streams`] in this order).
pub const STREAM_COMPUTE: usize = 0;
/// See [`STREAM_COMPUTE`].
pub const STREAM_COMM: usize = 1;
/// See [`STREAM_COMPUTE`].
pub const STREAM_TASK: usize = 2;
/// See [`STREAM_COMPUTE`].
pub const STREAM_STAGE: usize = 3;
/// See [`STREAM_COMPUTE`].
pub const STREAM_COUNTER: usize = 4;
/// See [`STREAM_COMPUTE`].
pub const STREAM_GAUGE: usize = 5;
/// See [`STREAM_COMPUTE`].
pub const STREAM_STATE: usize = 6;

/// The single columnar store every telemetry producer records into.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    dict: Vec<String>,
    dict_index: HashMap<String, u32>,
    streams: Vec<Stream>,
    /// Derived index over the counter stream (running totals); rebuilt on
    /// decode, never encoded.
    counter_totals: BTreeMap<u32, u64>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// An empty log with the standard stream schemas.
    pub fn new() -> Self {
        EventLog {
            dict: Vec::new(),
            dict_index: HashMap::new(),
            streams: vec![
                Stream::new(
                    "compute",
                    &[
                        ("rank", 0),
                        ("thread", 0),
                        ("class", 0),
                        ("t_start", 2),
                        ("t_end", 2),
                        ("instructions", 2),
                        ("cycles", 2),
                    ],
                ),
                Stream::new(
                    "comm",
                    &[
                        ("rank", 0),
                        ("thread", 0),
                        ("op", 0),
                        ("comm_id", 1),
                        ("comm_size", 1),
                        ("bytes", 1),
                        ("t_start", 2),
                        ("t_end", 2),
                    ],
                ),
                Stream::new(
                    "task",
                    &[
                        ("rank", 0),
                        ("thread", 0),
                        ("task_id", 1),
                        ("label", 3),
                        ("t_created", 2),
                        ("t_start", 2),
                        ("t_end", 2),
                    ],
                ),
                Stream::new(
                    "stage",
                    &[
                        ("rank", 0),
                        ("thread", 0),
                        ("stage", 0),
                        ("band", 0),
                        ("t_start", 2),
                        ("t_end", 2),
                    ],
                ),
                Stream::new("counter", &[("key", 3), ("n", 1)]),
                Stream::new("gauge", &[("series", 3), ("t", 2), ("value", 1)]),
                Stream::new("state", &[("t", 2), ("lane", 0), ("state", 3)]),
            ],
            counter_totals: BTreeMap::new(),
        }
    }

    /// Interns a string into the log dictionary, returning its id.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.dict_index.get(s) {
            return id;
        }
        let id = self.dict.len() as u32;
        self.dict.push(s.to_string());
        self.dict_index.insert(s.to_string(), id);
        id
    }

    /// The interned string for a dictionary id.
    pub fn lookup(&self, id: u32) -> Result<&str, TraceError> {
        self.dict
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| TraceError::Decode(format!("dictionary id {id} out of range")))
    }

    /// Number of interned dictionary entries.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// The streams (fixed order, see [`STREAM_COMPUTE`] …).
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// Total rows across all streams.
    pub fn rows(&self) -> usize {
        self.streams.iter().map(Stream::rows).sum()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    fn push(&mut self, stream: usize, values: &[CellValue<'_>]) {
        // Intern first: interning needs &mut self, column push does too.
        let interned: Vec<u64> = values
            .iter()
            .map(|v| match v {
                CellValue::Str(s) => self.intern(s) as u64,
                CellValue::U32(x) => *x as u64,
                CellValue::U64(x) => *x,
                CellValue::F64(x) => x.to_bits(),
            })
            .collect();
        let st = &mut self.streams[stream];
        debug_assert_eq!(st.columns.len(), values.len());
        for (col, (v, raw)) in st.columns.iter_mut().zip(interned.iter().zip(values)) {
            match (&mut col.data, raw) {
                (ColumnData::U32(d), CellValue::U32(x)) => d.push(*x),
                (ColumnData::U64(d), CellValue::U64(x)) => d.push(*x),
                (ColumnData::F64(d), CellValue::F64(x)) => d.push(*x),
                (ColumnData::Str(d), CellValue::Str(_)) => d.push(*v as u32),
                _ => unreachable!("push: value type mismatches stream schema"),
            }
        }
    }

    /// Appends a compute burst.
    pub fn push_compute(&mut self, r: &ComputeRecord) {
        self.push(
            STREAM_COMPUTE,
            &[
                CellValue::U32(r.lane.rank as u32),
                CellValue::U32(r.lane.thread as u32),
                CellValue::U32(r.class.code()),
                CellValue::F64(r.t_start),
                CellValue::F64(r.t_end),
                CellValue::F64(r.instructions),
                CellValue::F64(r.cycles),
            ],
        );
    }

    /// Appends a communication operation.
    pub fn push_comm(&mut self, r: &CommRecord) {
        self.push(
            STREAM_COMM,
            &[
                CellValue::U32(r.lane.rank as u32),
                CellValue::U32(r.lane.thread as u32),
                CellValue::U32(r.op.code()),
                CellValue::U64(r.comm_id),
                CellValue::U64(r.comm_size as u64),
                CellValue::U64(r.bytes as u64),
                CellValue::F64(r.t_start),
                CellValue::F64(r.t_end),
            ],
        );
    }

    /// Appends a task lifecycle record.
    pub fn push_task(&mut self, r: &TaskRecord) {
        self.push(
            STREAM_TASK,
            &[
                CellValue::U32(r.lane.rank as u32),
                CellValue::U32(r.lane.thread as u32),
                CellValue::U64(r.task_id),
                CellValue::Str(&r.label),
                CellValue::F64(r.t_created),
                CellValue::F64(r.t_start),
                CellValue::F64(r.t_end),
            ],
        );
    }

    /// Appends a stage-graph node span.
    pub fn push_stage(&mut self, r: &StageRecord) {
        self.push(
            STREAM_STAGE,
            &[
                CellValue::U32(r.lane.rank as u32),
                CellValue::U32(r.lane.thread as u32),
                CellValue::U32(r.stage),
                CellValue::U32(r.band),
                CellValue::F64(r.t_start),
                CellValue::F64(r.t_end),
            ],
        );
    }

    /// Appends a counter increment and updates the running-total index.
    pub fn push_counter(&mut self, key: &str, n: u64) {
        let id = self.intern(key);
        self.push(STREAM_COUNTER, &[CellValue::Str(key), CellValue::U64(n)]);
        *self.counter_totals.entry(id).or_insert(0) += n;
    }

    /// Appends a gauge observation (queue depth and friends).
    pub fn push_gauge(&mut self, series: &str, t: f64, value: u64) {
        self.push(
            STREAM_GAUGE,
            &[CellValue::Str(series), CellValue::F64(t), CellValue::U64(value)],
        );
    }

    /// Appends a state transition of an integer lane.
    pub fn push_state(&mut self, t: f64, lane: u32, state: &str) {
        self.push(
            STREAM_STATE,
            &[CellValue::F64(t), CellValue::U32(lane), CellValue::Str(state)],
        );
    }

    /// Running total of a counter (O(log k) via the append-time index).
    pub fn counter_total(&self, key: &str) -> u64 {
        self.dict_index
            .get(key)
            .and_then(|id| self.counter_totals.get(id))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all counters whose key starts with `prefix`.
    pub fn counter_prefix_total(&self, prefix: &str) -> u64 {
        self.counter_totals
            .iter()
            .filter(|(&id, _)| self.dict[id as usize].starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    // ------------------------------------------------------------------
    // Materialized views.
    // ------------------------------------------------------------------

    /// Materializes the execution-trace view (compute/comm/task/stage rows
    /// in append order — [`Trace::sort`] is the caller's choice, matching
    /// the old four-vector store).
    pub fn to_trace(&self) -> Result<Trace, TraceError> {
        let mut t = Trace::default();
        let s = &self.streams[STREAM_COMPUTE];
        let (rank, thread) = (s.col_u32("rank")?, s.col_u32("thread")?);
        let class = s.col_u32("class")?;
        let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
        let (ins, cyc) = (s.col_f64("instructions")?, s.col_f64("cycles")?);
        for i in 0..s.rows() {
            t.compute.push(ComputeRecord {
                lane: Lane::new(rank[i] as usize, thread[i] as usize),
                class: StateClass::from_code(class[i]).ok_or_else(|| {
                    TraceError::Decode(format!("unknown state-class code {}", class[i]))
                })?,
                t_start: t0[i],
                t_end: t1[i],
                instructions: ins[i],
                cycles: cyc[i],
            });
        }
        let s = &self.streams[STREAM_COMM];
        let (rank, thread) = (s.col_u32("rank")?, s.col_u32("thread")?);
        let op = s.col_u32("op")?;
        let (cid, csz, bytes) = (s.col_u64("comm_id")?, s.col_u64("comm_size")?, s.col_u64("bytes")?);
        let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
        for i in 0..s.rows() {
            t.comm.push(CommRecord {
                lane: Lane::new(rank[i] as usize, thread[i] as usize),
                op: CommOp::from_code(op[i]).ok_or_else(|| {
                    TraceError::Decode(format!("unknown comm-op code {}", op[i]))
                })?,
                comm_id: cid[i],
                comm_size: csz[i] as usize,
                bytes: bytes[i] as usize,
                t_start: t0[i],
                t_end: t1[i],
            });
        }
        let s = &self.streams[STREAM_TASK];
        let (rank, thread) = (s.col_u32("rank")?, s.col_u32("thread")?);
        let (tid, label) = (s.col_u64("task_id")?, s.col_str("label")?);
        let (tc, t0, t1) = (s.col_f64("t_created")?, s.col_f64("t_start")?, s.col_f64("t_end")?);
        for i in 0..s.rows() {
            t.tasks.push(TaskRecord {
                lane: Lane::new(rank[i] as usize, thread[i] as usize),
                task_id: tid[i],
                label: self.lookup(label[i])?.to_string(),
                t_created: tc[i],
                t_start: t0[i],
                t_end: t1[i],
            });
        }
        let s = &self.streams[STREAM_STAGE];
        let (rank, thread) = (s.col_u32("rank")?, s.col_u32("thread")?);
        let (stage, band) = (s.col_u32("stage")?, s.col_u32("band")?);
        let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
        for i in 0..s.rows() {
            t.stages.push(StageRecord {
                lane: Lane::new(rank[i] as usize, thread[i] as usize),
                stage: stage[i],
                band: band[i],
                t_start: t0[i],
                t_end: t1[i],
            });
        }
        Ok(t)
    }

    /// Materializes the counter view.
    pub fn counters(&self) -> Result<CounterSet, TraceError> {
        let mut out = CounterSet::new();
        for (&id, &v) in &self.counter_totals {
            out.add(self.lookup(id)?, v);
        }
        Ok(out)
    }

    /// Materializes one gauge series as a [`DepthSeries`].
    pub fn gauge(&self, series: &str) -> Result<DepthSeries, TraceError> {
        let s = &self.streams[STREAM_GAUGE];
        let (names, ts, vals) = (s.col_str("series")?, s.col_f64("t")?, s.col_u64("value")?);
        let mut out = DepthSeries::new();
        for i in 0..s.rows() {
            if self.lookup(names[i])? == series {
                out.record(ts[i], vals[i] as usize);
            }
        }
        Ok(out)
    }

    /// Materializes the state-transition view. Rows are stable-sorted by
    /// timestamp first: a virtual-time loop can *discover* transitions
    /// slightly out of time order within one tick (e.g. two shards'
    /// batches completing at different virtual times, processed in shard
    /// order), and the timeline view orders by when they happened, with
    /// append order breaking ties deterministically.
    pub fn state_timeline(&self) -> Result<StateTimeline, TraceError> {
        let s = &self.streams[STREAM_STATE];
        let (ts, lanes, states) = (s.col_f64("t")?, s.col_u32("lane")?, s.col_str("state")?);
        let mut order: Vec<usize> = (0..s.rows()).collect();
        order.sort_by(|&a, &b| ts[a].total_cmp(&ts[b]));
        let mut out = StateTimeline::new();
        for i in order {
            out.record(ts[i], lanes[i], self.lookup(states[i])?);
        }
        Ok(out)
    }

    /// Builds a log from an existing row-form trace (the bridge for code
    /// that assembles [`Trace`] values directly, e.g. the KNL simulator).
    pub fn from_trace(t: &Trace) -> Self {
        let mut log = EventLog::new();
        for r in &t.compute {
            log.push_compute(r);
        }
        for r in &t.comm {
            log.push_comm(r);
        }
        for r in &t.tasks {
            log.push_task(r);
        }
        for r in &t.stages {
            log.push_stage(r);
        }
        log
    }

    // ------------------------------------------------------------------
    // Binary encoding.
    // ------------------------------------------------------------------

    /// Encodes the log with the default chunk size.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_chunked(DEFAULT_CHUNK_ROWS)
    }

    /// Encodes with an explicit chunk size (tests exercise small chunks to
    /// hit chunk boundaries on short streams).
    pub fn encode_chunked(&self, chunk_rows: usize) -> Vec<u8> {
        let chunk_rows = chunk_rows.max(1);
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        put_varint(&mut out, self.dict.len() as u64);
        for s in &self.dict {
            put_bytes(&mut out, s.as_bytes());
        }
        put_varint(&mut out, self.streams.len() as u64);
        for stream in &self.streams {
            put_bytes(&mut out, stream.name.as_bytes());
            put_varint(&mut out, stream.columns.len() as u64);
            for col in &stream.columns {
                put_bytes(&mut out, col.name.as_bytes());
                out.push(col.data.type_tag());
            }
            let rows = stream.rows();
            put_varint(&mut out, rows as u64);
            put_varint(&mut out, chunk_rows as u64);
            let mut start = 0;
            while start < rows {
                let end = (start + chunk_rows).min(rows);
                for col in &stream.columns {
                    encode_column_slice(&mut out, &col.data, start, end);
                }
                start = end;
            }
        }
        out
    }

    /// Decodes a binary log, validating magic, version, schema and
    /// dictionary references.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        let mut pos = 0usize;
        let magic = take(bytes, &mut pos, 4)?;
        if magic != MAGIC {
            return Err(TraceError::Decode("bad magic (not an FXCL log)".into()));
        }
        let version = take(bytes, &mut pos, 1)?[0];
        if version != VERSION {
            return Err(TraceError::Decode(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let dict_len = get_varint(bytes, &mut pos)? as usize;
        let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
        for _ in 0..dict_len {
            dict.push(get_string(bytes, &mut pos)?);
        }
        let n_streams = get_varint(bytes, &mut pos)? as usize;
        let mut streams = Vec::with_capacity(n_streams.min(64));
        for _ in 0..n_streams {
            let name = get_string(bytes, &mut pos)?;
            let n_cols = get_varint(bytes, &mut pos)? as usize;
            let mut schema = Vec::with_capacity(n_cols.min(64));
            for _ in 0..n_cols {
                let cname = get_string(bytes, &mut pos)?;
                let tag = take(bytes, &mut pos, 1)?[0];
                if tag > 3 {
                    return Err(TraceError::Decode(format!(
                        "unknown column type tag {tag} in stream '{name}'"
                    )));
                }
                schema.push((cname, tag));
            }
            let rows = get_varint(bytes, &mut pos)? as usize;
            let chunk_rows = get_varint(bytes, &mut pos)?.max(1) as usize;
            let mut columns: Vec<Column> = schema
                .into_iter()
                .map(|(cname, tag)| Column {
                    name: cname,
                    data: match tag {
                        0 => ColumnData::U32(Vec::new()),
                        1 => ColumnData::U64(Vec::new()),
                        2 => ColumnData::F64(Vec::new()),
                        _ => ColumnData::Str(Vec::new()),
                    },
                })
                .collect();
            let mut start = 0;
            while start < rows {
                let end = (start + chunk_rows).min(rows);
                for col in columns.iter_mut() {
                    decode_column_slice(bytes, &mut pos, &mut col.data, end - start)?;
                }
                start = end;
            }
            // Validate dictionary references.
            for col in &columns {
                if let ColumnData::Str(ids) = &col.data {
                    if let Some(&bad) = ids.iter().find(|&&id| id as usize >= dict.len()) {
                        return Err(TraceError::Decode(format!(
                            "stream '{name}' column '{}' references dictionary id {bad} \
                             beyond dictionary of {}",
                            col.name,
                            dict.len()
                        )));
                    }
                }
            }
            streams.push(Stream { name, columns });
        }
        if pos != bytes.len() {
            return Err(TraceError::Decode(format!(
                "{} trailing bytes after log body",
                bytes.len() - pos
            )));
        }
        let dict_index = dict
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        let mut log = EventLog {
            dict,
            dict_index,
            streams,
            counter_totals: BTreeMap::new(),
        };
        // Rebuild the derived counter index.
        if let Some(s) = log.streams.get(STREAM_COUNTER) {
            if s.name == "counter" {
                let keys = s.col_str("key")?.to_vec();
                let ns = s.col_u64("n")?.to_vec();
                for (k, n) in keys.into_iter().zip(ns) {
                    *log.counter_totals.entry(k).or_insert(0) += n;
                }
            }
        }
        Ok(log)
    }

    /// Writes the encoded log to a file.
    pub fn write_file(&self, path: &std::path::Path) -> Result<(), TraceError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes a log file.
    pub fn read_file(path: &std::path::Path) -> Result<Self, TraceError> {
        Self::decode(&std::fs::read(path)?)
    }
}

/// A typed cell for the internal append path.
enum CellValue<'a> {
    U32(u32),
    U64(u64),
    F64(f64),
    Str(&'a str),
}

/// The one write interface every telemetry producer records through: the
/// execution recorder, the stage-graph driver, the serving supervisor's
/// journal metrics and the recovery/integrity counters all target this
/// trait, so there is exactly one storage layer behind them.
pub trait Sink {
    /// Records a compute burst.
    fn compute(&self, r: ComputeRecord);
    /// Records a communication operation.
    fn comm(&self, r: CommRecord);
    /// Records a task lifecycle event.
    fn task(&self, r: TaskRecord);
    /// Records a stage-graph node span.
    fn stage(&self, r: StageRecord);
    /// Adds `n` to counter `key`.
    fn counter(&self, key: &str, n: u64);
    /// Records a gauge observation.
    fn gauge(&self, series: &str, t: f64, value: u64);
    /// Records a state transition of integer lane `lane`.
    fn state(&self, t: f64, lane: u32, state: &str);
}

// ----------------------------------------------------------------------
// Varint / zigzag / column codecs.
// ----------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| TraceError::Decode("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(TraceError::Decode("varint overflows u64".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], TraceError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| TraceError::Decode("truncated record".into()))?;
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

fn get_string(bytes: &[u8], pos: &mut usize) -> Result<String, TraceError> {
    let len = get_varint(bytes, pos)? as usize;
    let raw = take(bytes, pos, len)?;
    String::from_utf8(raw.to_vec())
        .map_err(|e| TraceError::Decode(format!("invalid utf-8 string: {e}")))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Delta-encodes `col[start..end]` as zigzag varints over the wrapping u64
/// difference to the previous value (the chunk's first value deltas against
/// 0). Bit-exact for every value; compact for monotone tick columns.
fn encode_column_slice(out: &mut Vec<u8>, col: &ColumnData, start: usize, end: usize) {
    let mut prev = 0u64;
    let mut emit = |raw: u64, out: &mut Vec<u8>| {
        put_varint(out, zigzag(raw.wrapping_sub(prev) as i64));
        prev = raw;
    };
    match col {
        ColumnData::U32(v) => v[start..end].iter().for_each(|&x| emit(x as u64, out)),
        ColumnData::U64(v) => v[start..end].iter().for_each(|&x| emit(x, out)),
        ColumnData::F64(v) => v[start..end].iter().for_each(|&x| emit(x.to_bits(), out)),
        ColumnData::Str(v) => v[start..end].iter().for_each(|&x| emit(x as u64, out)),
    }
}

fn decode_column_slice(
    bytes: &[u8],
    pos: &mut usize,
    col: &mut ColumnData,
    n: usize,
) -> Result<(), TraceError> {
    let mut prev = 0u64;
    for _ in 0..n {
        let raw = prev.wrapping_add(unzigzag(get_varint(bytes, pos)?) as u64);
        prev = raw;
        match col {
            ColumnData::U32(v) => {
                let x = u32::try_from(raw).map_err(|_| {
                    TraceError::Decode(format!("value {raw} overflows u32 column"))
                })?;
                v.push(x);
            }
            ColumnData::U64(v) => v.push(raw),
            ColumnData::F64(v) => v.push(f64::from_bits(raw)),
            ColumnData::Str(v) => {
                let x = u32::try_from(raw).map_err(|_| {
                    TraceError::Decode(format!("dictionary id {raw} overflows u32"))
                })?;
                v.push(x);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(rank: usize, t0: f64, t1: f64) -> ComputeRecord {
        ComputeRecord {
            lane: Lane::new(rank, 0),
            class: StateClass::FftXy,
            t_start: t0,
            t_end: t1,
            instructions: 10.0,
            cycles: 20.0,
        }
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        log.push_compute(&burst(0, 0.0, 1.0));
        log.push_compute(&burst(1, 0.5, 2.0));
        log.push_comm(&CommRecord {
            lane: Lane::new(0, 0),
            op: CommOp::Alltoall,
            comm_id: 7,
            comm_size: 2,
            bytes: 4096,
            t_start: 1.0,
            t_end: 1.5,
        });
        log.push_task(&TaskRecord {
            lane: Lane::new(1, 2),
            task_id: 99,
            label: "pack[3]".into(),
            t_created: 0.0,
            t_start: 0.1,
            t_end: 0.2,
        });
        log.push_stage(&StageRecord {
            lane: Lane::new(0, 1),
            stage: 4,
            band: 2,
            t_start: 0.25,
            t_end: 0.75,
        });
        log.push_counter("jobs.accepted", 3);
        log.push_counter("jobs.accepted", 2);
        log.push_counter("jobs.shed", 1);
        log.push_gauge("queue", 0.0, 0);
        log.push_gauge("queue", 1.0, 5);
        log.push_state(0.0, 0, "closed");
        log.push_state(1.0, 0, "open");
        log
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let log = sample_log();
        for chunk in [1, 2, 3, 512] {
            let decoded = EventLog::decode(&log.encode_chunked(chunk)).expect("decode");
            assert_eq!(decoded, log, "chunk_rows {chunk}");
        }
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = EventLog::new();
        let decoded = EventLog::decode(&log.encode()).expect("decode");
        assert_eq!(decoded, log);
        assert!(log.is_empty());
    }

    #[test]
    fn trace_view_matches_inputs() {
        let log = sample_log();
        let t = log.to_trace().expect("trace");
        assert_eq!(t.compute.len(), 2);
        assert_eq!(t.comm.len(), 1);
        assert_eq!(t.tasks.len(), 1);
        assert_eq!(t.stages.len(), 1);
        assert_eq!(t.tasks[0].label, "pack[3]");
        assert_eq!(t.comm[0].bytes, 4096);
        assert_eq!(t.stages[0].stage, 4);
        // from_trace rebuilds the execution streams exactly.
        let rebuilt = EventLog::from_trace(&t);
        assert_eq!(rebuilt.to_trace().expect("trace").compute, t.compute);
    }

    #[test]
    fn counter_index_and_views() {
        let log = sample_log();
        assert_eq!(log.counter_total("jobs.accepted"), 5);
        assert_eq!(log.counter_total("jobs.shed"), 1);
        assert_eq!(log.counter_total("missing"), 0);
        assert_eq!(log.counter_prefix_total("jobs."), 6);
        let c = log.counters().expect("counters");
        assert_eq!(c.get("jobs.accepted"), 5);
        let depth = log.gauge("queue").expect("gauge");
        assert_eq!(depth.len(), 2);
        assert_eq!(depth.max(), 5);
        let tl = log.state_timeline().expect("timeline");
        assert_eq!(tl.last_state(0), Some("open"));
        // The index survives a decode round-trip.
        let decoded = EventLog::decode(&log.encode()).expect("decode");
        assert_eq!(decoded.counter_total("jobs.accepted"), 5);
    }

    #[test]
    fn dictionary_deduplicates() {
        let mut log = EventLog::new();
        for _ in 0..100 {
            log.push_counter("same.key", 1);
        }
        assert_eq!(log.dict_len(), 1);
        assert_eq!(log.counter_total("same.key"), 100);
    }

    #[test]
    fn special_floats_roundtrip() {
        let mut log = EventLog::new();
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 1e300] {
            log.push_gauge("g", v, 0);
        }
        log.push_gauge("g", f64::NAN, 0);
        let decoded = EventLog::decode(&log.encode_chunked(2)).expect("decode");
        let a = log.streams()[STREAM_GAUGE].col_f64("t").expect("col");
        let b = decoded.streams()[STREAM_GAUGE].col_f64("t").expect("col");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EventLog::decode(b"").is_err());
        assert!(EventLog::decode(b"NOPE").is_err());
        assert!(EventLog::decode(b"FXCL\x07").is_err());
        let mut ok = sample_log().encode();
        ok.push(0); // trailing byte
        assert!(EventLog::decode(&ok).is_err());
        let ok = sample_log().encode();
        assert!(EventLog::decode(&ok[..ok.len() - 1]).is_err());
    }

    #[test]
    fn schema_lookups_are_typed_errors() {
        let log = EventLog::new();
        let s = &log.streams()[STREAM_COMPUTE];
        assert!(s.col_u32("rank").is_ok());
        assert!(matches!(s.col_u32("nope"), Err(TraceError::Schema(_))));
        assert!(matches!(s.col_u64("rank"), Err(TraceError::Schema(_))));
        assert!(matches!(log.lookup(0), Err(TraceError::Decode(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fxcl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("log.bin");
        let log = sample_log();
        log.write_file(&path).expect("write");
        let back = EventLog::read_file(&path).expect("read");
        assert_eq!(back, log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn varint_edge_values() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX] {
            out.clear();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).expect("varint"), v);
            assert_eq!(pos, out.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
