//! IPC × duration histograms — the right-hand side of the paper's Fig. 7.
//! Each compute burst is categorised by lane (vertical axis) and IPC
//! (horizontal axis); bursts in the same cell accumulate their duration.

use crate::event::StateClass;
use crate::trace::Trace;
use std::fmt::Write as _;

/// A 2-D histogram: `cells[lane_index][ipc_bin] = accumulated seconds`.
#[derive(Debug, Clone)]
pub struct IpcHistogram {
    /// Lane labels in row order.
    pub lane_labels: Vec<String>,
    /// Inclusive lower bound of the IPC axis.
    pub ipc_min: f64,
    /// Exclusive upper bound of the IPC axis.
    pub ipc_max: f64,
    /// Number of IPC bins.
    pub bins: usize,
    /// Accumulated duration per cell.
    pub cells: Vec<Vec<f64>>,
}

impl IpcHistogram {
    /// Builds the histogram from all compute bursts (optionally restricted
    /// to one state class, e.g. the main FftXy phase).
    pub fn from_trace(
        trace: &Trace,
        class: Option<StateClass>,
        bins: usize,
        ipc_min: f64,
        ipc_max: f64,
    ) -> Self {
        assert!(bins > 0, "IpcHistogram: bins must be > 0");
        assert!(ipc_max > ipc_min, "IpcHistogram: empty IPC range");
        let lanes = trace.lanes();
        let mut cells = vec![vec![0.0; bins]; lanes.len()];
        let scale = bins as f64 / (ipc_max - ipc_min);
        for r in &trace.compute {
            if let Some(c) = class {
                if r.class != c {
                    continue;
                }
            }
            // `lanes` covers every record's lane by construction; skip the
            // burst rather than panic if that invariant is ever broken.
            let Some(li) = lanes.iter().position(|&l| l == r.lane) else {
                continue;
            };
            let ipc = r.ipc().clamp(ipc_min, ipc_max - 1e-12);
            let bi = ((ipc - ipc_min) * scale) as usize;
            cells[li][bi.min(bins - 1)] += r.duration();
        }
        IpcHistogram {
            lane_labels: lanes
                .iter()
                .map(|l| format!("r{}t{}", l.rank, l.thread))
                .collect(),
            ipc_min,
            ipc_max,
            bins,
            cells,
        }
    }

    /// Duration-weighted mean IPC across all cells.
    pub fn weighted_mean_ipc(&self) -> f64 {
        let bin_w = (self.ipc_max - self.ipc_min) / self.bins as f64;
        let mut t = 0.0;
        let mut acc = 0.0;
        for row in &self.cells {
            for (b, &d) in row.iter().enumerate() {
                let centre = self.ipc_min + (b as f64 + 0.5) * bin_w;
                acc += centre * d;
                t += d;
            }
        }
        if t > 0.0 {
            acc / t
        } else {
            0.0
        }
    }

    /// Measures horizontal scatter: the duration-weighted standard deviation
    /// of IPC. De-synchronised executions (the paper's OmpSs version) show a
    /// visibly larger spread than the lock-step original.
    pub fn ipc_spread(&self) -> f64 {
        let mean = self.weighted_mean_ipc();
        let bin_w = (self.ipc_max - self.ipc_min) / self.bins as f64;
        let mut t = 0.0;
        let mut acc = 0.0;
        for row in &self.cells {
            for (b, &d) in row.iter().enumerate() {
                let centre = self.ipc_min + (b as f64 + 0.5) * bin_w;
                acc += (centre - mean).powi(2) * d;
                t += d;
            }
        }
        if t > 0.0 {
            (acc / t).sqrt()
        } else {
            0.0
        }
    }

    /// ASCII rendering: rows = lanes, columns = IPC bins, character density
    /// ∝ accumulated duration.
    pub fn render(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self
            .cells
            .iter()
            .flatten()
            .copied()
            .fold(0.0_f64, f64::max);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "IPC histogram: [{:.2}, {:.2}) in {} bins; max cell {:.3e}s",
            self.ipc_min, self.ipc_max, self.bins, max
        );
        for (label, row) in self.lane_labels.iter().zip(&self.cells) {
            let mut line = String::with_capacity(self.bins);
            for &d in row {
                let idx = if max > 0.0 {
                    ((d / max) * (SHADES.len() - 1) as f64).round() as usize
                } else {
                    0
                };
                line.push(SHADES[idx.min(SHADES.len() - 1)] as char);
            }
            let _ = writeln!(out, "{label:>7}|{line}|");
        }
        // Axis line with min / max annotation.
        let _ = writeln!(
            out,
            "{:>7} {:<width$.2}{:>.2}",
            "ipc:",
            self.ipc_min,
            self.ipc_max,
            width = self.bins.saturating_sub(4).max(1)
        );
        out
    }

    /// CSV export: `lane,ipc_bin_low,ipc_bin_high,seconds`.
    pub fn to_csv(&self) -> String {
        let bin_w = (self.ipc_max - self.ipc_min) / self.bins as f64;
        let mut out = String::from("lane,ipc_low,ipc_high,seconds\n");
        for (label, row) in self.lane_labels.iter().zip(&self.cells) {
            for (b, &d) in row.iter().enumerate() {
                if d > 0.0 {
                    let lo = self.ipc_min + b as f64 * bin_w;
                    let _ = writeln!(out, "{label},{:.4},{:.4},{:.9}", lo, lo + bin_w, d);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComputeRecord, Lane};

    fn burst(rank: usize, ipc: f64, dur: f64, class: StateClass) -> ComputeRecord {
        ComputeRecord {
            lane: Lane::new(rank, 0),
            class,
            t_start: 0.0,
            t_end: dur,
            instructions: ipc * dur * 1e9,
            cycles: dur * 1e9,
        }
    }

    #[test]
    fn bins_by_ipc() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.25, 1.0, StateClass::FftXy));
        t.compute.push(burst(0, 0.75, 2.0, StateClass::FftXy));
        let h = IpcHistogram::from_trace(&t, None, 2, 0.0, 1.0);
        assert_eq!(h.cells.len(), 1);
        assert!((h.cells[0][0] - 1.0).abs() < 1e-9);
        assert!((h.cells[0][1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn class_filter() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.25, 1.0, StateClass::FftZ));
        t.compute.push(burst(0, 0.75, 2.0, StateClass::FftXy));
        let h = IpcHistogram::from_trace(&t, Some(StateClass::FftXy), 4, 0.0, 1.0);
        let total: f64 = h.cells[0].iter().sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_mean_and_spread() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.5, 1.0, StateClass::FftXy));
        let h = IpcHistogram::from_trace(&t, None, 100, 0.0, 1.0);
        assert!((h.weighted_mean_ipc() - 0.505).abs() < 0.01);
        assert!(h.ipc_spread() < 0.01);

        let mut t2 = Trace::default();
        t2.compute.push(burst(0, 0.2, 1.0, StateClass::FftXy));
        t2.compute.push(burst(0, 0.8, 1.0, StateClass::FftXy));
        let h2 = IpcHistogram::from_trace(&t2, None, 100, 0.0, 1.0);
        assert!(h2.ipc_spread() > 0.25);
    }

    #[test]
    fn out_of_range_ipc_clamps() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 5.0, 1.0, StateClass::FftXy));
        let h = IpcHistogram::from_trace(&t, None, 10, 0.0, 1.0);
        assert!((h.cells[0][9] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_and_csv() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.3, 1.0, StateClass::FftXy));
        t.compute.push(burst(1, 0.9, 0.5, StateClass::FftXy));
        let h = IpcHistogram::from_trace(&t, None, 10, 0.0, 1.0);
        let r = h.render();
        assert!(r.contains("r0t0"));
        assert!(r.contains("r1t0"));
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 3); // header + 2 non-empty cells
    }

    #[test]
    #[should_panic(expected = "bins must be > 0")]
    fn zero_bins_rejected() {
        IpcHistogram::from_trace(&Trace::default(), None, 0, 0.0, 1.0);
    }
}
