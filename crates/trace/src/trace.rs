//! Trace container and the thread-safe collector the execution engines
//! record into (the Extrae role).
//!
//! Since the columnar refactor the collector stores one [`EventLog`] —
//! [`Trace`] is a *materialized view* extracted at [`TraceSink::finish`] /
//! [`TraceSink::snapshot`] time, so execution records, serving counters,
//! gauges and state transitions all share a single storage layer.

use crate::columnar::{EventLog, Sink};
use crate::event::{CommRecord, ComputeRecord, Lane, StateClass, TaskRecord};
use crate::metrics::{CounterSet, DepthSeries, StateTimeline};
use crate::stage::StageRecord;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A complete trace of one execution.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Compute bursts.
    pub compute: Vec<ComputeRecord>,
    /// Communication operations.
    pub comm: Vec<CommRecord>,
    /// Task lifecycle records.
    pub tasks: Vec<TaskRecord>,
    /// Stage-graph node spans (one stream for every scheduler policy).
    pub stages: Vec<StageRecord>,
}

impl Trace {
    /// All lanes that appear anywhere in the trace, sorted.
    pub fn lanes(&self) -> Vec<Lane> {
        let mut set = BTreeSet::new();
        for r in &self.compute {
            set.insert(r.lane);
        }
        for r in &self.comm {
            set.insert(r.lane);
        }
        for r in &self.tasks {
            set.insert(r.lane);
        }
        for r in &self.stages {
            set.insert(r.lane);
        }
        set.into_iter().collect()
    }

    /// Earliest timestamp in the trace (0.0 for an empty trace).
    pub fn t_min(&self) -> f64 {
        let m = self.iter_spans().map(|(s, _)| s).fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Latest timestamp in the trace (0.0 for an empty trace).
    pub fn t_max(&self) -> f64 {
        let m = self.iter_spans().map(|(_, e)| e).fold(f64::NEG_INFINITY, f64::max);
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Total runtime: `t_max - t_min`.
    pub fn runtime(&self) -> f64 {
        let t0 = self.t_min();
        let t1 = self.t_max();
        (t1 - t0).max(0.0)
    }

    fn iter_spans(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.compute
            .iter()
            .map(|r| (r.t_start, r.t_end))
            .chain(self.comm.iter().map(|r| (r.t_start, r.t_end)))
            .chain(self.tasks.iter().map(|r| (r.t_start, r.t_end)))
            .chain(self.stages.iter().map(|r| (r.t_start, r.t_end)))
    }

    /// Total compute seconds of one lane.
    pub fn compute_time(&self, lane: Lane) -> f64 {
        self.compute
            .iter()
            .filter(|r| r.lane == lane)
            .map(|r| r.duration())
            .sum()
    }

    /// Total communication seconds of one lane.
    pub fn comm_time(&self, lane: Lane) -> f64 {
        self.comm
            .iter()
            .filter(|r| r.lane == lane)
            .map(|r| r.duration())
            .sum()
    }

    /// Sum of instructions over all compute bursts (optionally of one class).
    pub fn total_instructions(&self, class: Option<StateClass>) -> f64 {
        self.compute
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .map(|r| r.instructions)
            .sum()
    }

    /// Sum of cycles over all compute bursts (optionally of one class).
    pub fn total_cycles(&self, class: Option<StateClass>) -> f64 {
        self.compute
            .iter()
            .filter(|r| class.is_none_or(|c| r.class == c))
            .map(|r| r.cycles)
            .sum()
    }

    /// Aggregate IPC = total instructions / total cycles (optionally of one
    /// class). Returns 0 when no cycles were recorded.
    pub fn aggregate_ipc(&self, class: Option<StateClass>) -> f64 {
        let cyc = self.total_cycles(class);
        if cyc > 0.0 {
            self.total_instructions(class) / cyc
        } else {
            0.0
        }
    }

    /// Duration-weighted mean IPC of bursts of `class` (the quantity the
    /// paper's Fig. 7 histograms visualise).
    pub fn mean_ipc(&self, class: StateClass) -> f64 {
        let mut t = 0.0;
        let mut acc = 0.0;
        for r in self.compute.iter().filter(|r| r.class == class) {
            t += r.duration();
            acc += r.ipc() * r.duration();
        }
        if t > 0.0 {
            acc / t
        } else {
            0.0
        }
    }

    /// Merges another trace into this one (used to combine per-rank traces).
    pub fn merge(&mut self, other: Trace) {
        self.compute.extend(other.compute);
        self.comm.extend(other.comm);
        self.tasks.extend(other.tasks);
        self.stages.extend(other.stages);
    }

    /// Sorts all record streams by start time (stable order for rendering).
    pub fn sort(&mut self) {
        self.compute
            .sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        self.comm.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        self.tasks.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
        self.stages.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
    }
}

/// Thread-safe trace collector shared by every rank/worker thread, backed
/// by one columnar [`EventLog`].
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<EventLog>>,
}

/// Materializes the execution-trace view of an in-memory log. The log was
/// built through the typed push API (valid class/op codes, interned labels
/// by construction), so the conversion cannot fail; an empty trace is
/// returned defensively if that invariant is ever broken.
fn materialize(log: &EventLog) -> Trace {
    debug_assert!(log.to_trace().is_ok(), "in-memory log must materialize");
    log.to_trace().unwrap_or_default()
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a compute burst.
    ///
    /// Poison-tolerant: a panicking (and possibly later retried) task must
    /// not cascade-kill tracing, so a poisoned sink recovers its inner
    /// state instead of propagating the panic.
    pub fn compute(&self, rec: ComputeRecord) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_compute(&rec);
    }

    /// Records a communication operation (poison-tolerant, see
    /// [`TraceSink::compute`]).
    pub fn comm(&self, rec: CommRecord) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_comm(&rec);
    }

    /// Records a task lifecycle event (poison-tolerant, see
    /// [`TraceSink::compute`]).
    pub fn task(&self, rec: TaskRecord) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_task(&rec);
    }

    /// Records a stage-graph node span (poison-tolerant, see
    /// [`TraceSink::compute`]).
    pub fn stage(&self, rec: StageRecord) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_stage(&rec);
    }

    /// Adds `n` to counter `key` (poison-tolerant, see
    /// [`TraceSink::compute`]).
    pub fn counter(&self, key: &str, n: u64) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_counter(key, n);
    }

    /// Records a gauge observation (poison-tolerant).
    pub fn gauge(&self, series: &str, t: f64, value: u64) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_gauge(series, t, value);
    }

    /// Records a state transition of integer lane `lane` (poison-tolerant).
    pub fn state(&self, t: f64, lane: u32, state: &str) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_state(t, lane, state);
    }

    /// Running total of counter `key`, served from the log's append-time
    /// index (O(log k), no materialization).
    pub fn counter_total(&self, key: &str) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counter_total(key)
    }

    /// Extracts the accumulated trace, sorted by time.
    pub fn finish(self) -> Trace {
        let log = match Arc::try_unwrap(self.inner) {
            Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(arc) => arc
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        };
        let mut t = materialize(&log);
        t.sort();
        t
    }

    /// Clones the current contents without consuming the sink.
    pub fn snapshot(&self) -> Trace {
        let mut t = materialize(
            &self
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        t.sort();
        t
    }

    /// Clones the underlying columnar log (for binary export and offline
    /// queries).
    pub fn snapshot_log(&self) -> EventLog {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Consumes the sink and hands out the columnar log itself.
    pub fn finish_log(self) -> EventLog {
        match Arc::try_unwrap(self.inner) {
            Ok(m) => m.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(arc) => arc
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    /// Materializes the counter view (sorted labels).
    pub fn counters(&self) -> CounterSet {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters()
            .unwrap_or_default()
    }

    /// Materializes one gauge series.
    pub fn gauge_series(&self, series: &str) -> DepthSeries {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .gauge(series)
            .unwrap_or_default()
    }

    /// Materializes the state-transition view.
    pub fn state_timeline(&self) -> StateTimeline {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .state_timeline()
            .unwrap_or_default()
    }
}

impl Sink for TraceSink {
    fn compute(&self, r: ComputeRecord) {
        TraceSink::compute(self, r);
    }

    fn comm(&self, r: CommRecord) {
        TraceSink::comm(self, r);
    }

    fn task(&self, r: TaskRecord) {
        TraceSink::task(self, r);
    }

    fn stage(&self, r: StageRecord) {
        TraceSink::stage(self, r);
    }

    fn counter(&self, key: &str, n: u64) {
        TraceSink::counter(self, key, n);
    }

    fn gauge(&self, series: &str, t: f64, value: u64) {
        TraceSink::gauge(self, series, t, value);
    }

    fn state(&self, t: f64, lane: u32, state: &str) {
        TraceSink::state(self, t, lane, state);
    }
}

/// Wall clock mapping `Instant`s to seconds since construction; the real
/// execution engine stamps records with it, the simulator uses virtual time.
#[derive(Clone)]
pub struct WallClock {
    origin: Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock {
    /// Starts the clock now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Seconds since the clock was created.
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommOp, Lane};

    fn burst(rank: usize, t0: f64, t1: f64, class: StateClass, ins: f64, cyc: f64) -> ComputeRecord {
        ComputeRecord {
            lane: Lane::new(rank, 0),
            class,
            t_start: t0,
            t_end: t1,
            instructions: ins,
            cycles: cyc,
        }
    }

    #[test]
    fn empty_trace_is_benign() {
        let t = Trace::default();
        assert_eq!(t.runtime(), 0.0);
        assert!(t.lanes().is_empty());
        assert_eq!(t.aggregate_ipc(None), 0.0);
        assert_eq!(t.mean_ipc(StateClass::FftXy), 0.0);
    }

    #[test]
    fn aggregates() {
        let mut t = Trace::default();
        t.compute.push(burst(0, 0.0, 1.0, StateClass::FftXy, 8.0, 10.0));
        t.compute.push(burst(1, 0.5, 2.5, StateClass::FftZ, 5.0, 10.0));
        t.comm.push(CommRecord {
            lane: Lane::new(0, 0),
            op: CommOp::Alltoall,
            comm_id: 1,
            comm_size: 2,
            bytes: 64,
            t_start: 1.0,
            t_end: 3.0,
        });
        assert_eq!(t.lanes(), vec![Lane::new(0, 0), Lane::new(1, 0)]);
        assert!((t.runtime() - 3.0).abs() < 1e-12);
        assert!((t.compute_time(Lane::new(0, 0)) - 1.0).abs() < 1e-12);
        assert!((t.comm_time(Lane::new(0, 0)) - 2.0).abs() < 1e-12);
        assert!((t.total_instructions(None) - 13.0).abs() < 1e-12);
        assert!((t.aggregate_ipc(None) - 13.0 / 20.0).abs() < 1e-12);
        assert!((t.aggregate_ipc(Some(StateClass::FftXy)) - 0.8).abs() < 1e-12);
        assert!((t.mean_ipc(StateClass::FftZ) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_and_sort() {
        let mut a = Trace::default();
        a.compute.push(burst(0, 1.0, 2.0, StateClass::Pack, 1.0, 1.0));
        let mut b = Trace::default();
        b.compute.push(burst(1, 0.0, 0.5, StateClass::Pack, 1.0, 1.0));
        a.merge(b);
        a.sort();
        assert_eq!(a.compute.len(), 2);
        assert!(a.compute[0].t_start <= a.compute[1].t_start);
    }

    #[test]
    fn sink_collects_from_threads() {
        let sink = TraceSink::new();
        std::thread::scope(|s| {
            for rank in 0..4 {
                let sink = sink.clone();
                s.spawn(move || {
                    sink.compute(burst(rank, 0.0, 1.0, StateClass::FftXy, 1.0, 1.0));
                });
            }
        });
        let t = sink.finish();
        assert_eq!(t.compute.len(), 4);
        assert_eq!(t.lanes().len(), 4);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let sink = TraceSink::new();
        sink.compute(burst(0, 0.0, 1.0, StateClass::Vofr, 1.0, 2.0));
        let snap = sink.snapshot();
        assert_eq!(snap.compute.len(), 1);
        sink.compute(burst(0, 1.0, 2.0, StateClass::Vofr, 1.0, 2.0));
        assert_eq!(sink.finish().compute.len(), 2);
    }

    #[test]
    fn sink_survives_poisoning() {
        // A panic while the sink lock is held poisons the mutex; the sink
        // must keep recording and still hand out the full trace.
        let sink = TraceSink::new();
        sink.compute(burst(0, 0.0, 1.0, StateClass::FftZ, 1.0, 1.0));
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the sink");
        })
        .join();
        sink.compute(burst(0, 1.0, 2.0, StateClass::FftZ, 1.0, 1.0));
        assert_eq!(sink.snapshot().compute.len(), 2);
        assert_eq!(sink.finish().compute.len(), 2);
    }

    #[test]
    fn wall_clock_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
