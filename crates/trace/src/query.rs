//! Offline aggregation over the columnar [`EventLog`] — the analysis half
//! of the telemetry pipeline.
//!
//! Exporters (paraver/pop/fig renderers) and bench bins used to each carry
//! a bespoke accumulator over the row-form [`crate::trace::Trace`]. The
//! queries here operate on the log directly: group-bys over
//! dictionary-encoded columns, per-stage and per-class rollups, quantiles,
//! rate windows and diff-vs-baseline — so a bin is a run, a handful of
//! query calls, and an artifact write.

use crate::columnar::{EventLog, STREAM_COMPUTE, STREAM_COUNTER, STREAM_STAGE, STREAM_STATE};
use crate::error::TraceError;
use crate::event::StateClass;
use crate::metrics::Quantiles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-stage rollup of the stage stream: `(stage id, span count, total
/// seconds)` ascending by stage id — the log-native form of
/// [`crate::stage::stage_profile`].
pub fn stage_rollup(log: &EventLog) -> Result<Vec<(u32, usize, f64)>, TraceError> {
    let s = &log.streams()[STREAM_STAGE];
    let stage = s.col_u32("stage")?;
    let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
    let mut acc: BTreeMap<u32, (usize, f64)> = BTreeMap::new();
    for i in 0..s.rows() {
        let e = acc.entry(stage[i]).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += (t1[i] - t0[i]).max(0.0);
    }
    Ok(acc.into_iter().map(|(k, (n, t))| (k, n, t)).collect())
}

/// All span durations of one stage id, in append order.
pub fn stage_durations(log: &EventLog, stage_id: u32) -> Result<Vec<f64>, TraceError> {
    let s = &log.streams()[STREAM_STAGE];
    let stage = s.col_u32("stage")?;
    let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
    Ok((0..s.rows())
        .filter(|&i| stage[i] == stage_id)
        .map(|i| (t1[i] - t0[i]).max(0.0))
        .collect())
}

/// One row of the per-class compute rollup.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassTotals {
    /// Burst count.
    pub count: usize,
    /// Total burst seconds.
    pub seconds: f64,
    /// Total instructions retired.
    pub instructions: f64,
    /// Total core cycles.
    pub cycles: f64,
}

impl ClassTotals {
    /// Aggregate IPC of the class (0 when no cycles were recorded).
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }
}

/// Per-state-class rollup of the compute stream.
pub fn class_rollup(log: &EventLog) -> Result<BTreeMap<StateClass, ClassTotals>, TraceError> {
    let s = &log.streams()[STREAM_COMPUTE];
    let class = s.col_u32("class")?;
    let (t0, t1) = (s.col_f64("t_start")?, s.col_f64("t_end")?);
    let (ins, cyc) = (s.col_f64("instructions")?, s.col_f64("cycles")?);
    let mut acc: BTreeMap<StateClass, ClassTotals> = BTreeMap::new();
    for i in 0..s.rows() {
        let c = StateClass::from_code(class[i])
            .ok_or_else(|| TraceError::Decode(format!("unknown state-class code {}", class[i])))?;
        let e = acc.entry(c).or_default();
        e.count += 1;
        e.seconds += (t1[i] - t0[i]).max(0.0);
        e.instructions += ins[i];
        e.cycles += cyc[i];
    }
    Ok(acc)
}

/// Exact quantiles over an explicit sample slice (delegates to
/// [`Quantiles`]; returns `NaN`s on an empty slice).
pub fn quantiles(samples: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut est = Quantiles::new();
    for &v in samples {
        est.push(v);
    }
    qs.iter().map(|&q| est.quantile(q)).collect()
}

/// Event counts per fixed time window: bins `[t0 + k·window, t0 + (k+1)·window)`
/// over the given timestamps (which need not be sorted). Returns the bin
/// counts; empty input yields an empty vec.
pub fn rate_windows(ts: &[f64], window: f64) -> Vec<usize> {
    if ts.is_empty() || window <= 0.0 {
        return Vec::new();
    }
    let t0 = ts.iter().copied().fold(f64::INFINITY, f64::min);
    let t1 = ts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let bins = (((t1 - t0) / window).floor() as usize) + 1;
    let mut out = vec![0usize; bins];
    for &t in ts {
        let b = (((t - t0) / window) as usize).min(bins - 1);
        out[b] += 1;
    }
    out
}

/// Weighted rate windows: sums `ws[i]` into fixed time bins
/// `[t0 + k·window, t0 + (k+1)·window)` over the paired timestamps — the
/// per-timestep *work* profile where [`rate_windows`] gives the *count*
/// profile. The slices are paired positionally; the shorter one bounds the
/// aggregation. Empty input or a non-positive window yields an empty vec.
pub fn window_sums(ts: &[f64], ws: &[f64], window: f64) -> Vec<f64> {
    let n = ts.len().min(ws.len());
    if n == 0 || window <= 0.0 {
        return Vec::new();
    }
    let ts = &ts[..n];
    let t0 = ts.iter().copied().fold(f64::INFINITY, f64::min);
    let t1 = ts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let bins = (((t1 - t0) / window).floor() as usize) + 1;
    let mut out = vec![0.0f64; bins];
    for i in 0..n {
        let b = (((ts[i] - t0) / window) as usize).min(bins - 1);
        out[b] += ws[i];
    }
    out
}

/// Row counts grouped by a dictionary-encoded column of one stream
/// (group-by on stage/policy/shard/tenant-style label columns). Keys are
/// the decoded strings, sorted.
pub fn group_count(
    log: &EventLog,
    stream: usize,
    column: &str,
) -> Result<BTreeMap<String, usize>, TraceError> {
    let s = log
        .streams()
        .get(stream)
        .ok_or_else(|| TraceError::Schema(format!("no stream index {stream}")))?;
    let ids = s.col_str(column)?;
    let mut acc: BTreeMap<String, usize> = BTreeMap::new();
    for &id in ids {
        *acc.entry(log.lookup(id)?.to_string()).or_insert(0) += 1;
    }
    Ok(acc)
}

/// Counter totals grouped under a label prefix split: every counter key is
/// grouped by its segment up to (and excluding) the first `.` after
/// `strip`, e.g. `counter_groups(log, "shed.")` rolls `shed.deadline`,
/// `shed.capacity` into `deadline`/`capacity` totals.
pub fn counter_groups(log: &EventLog, strip: &str) -> Result<BTreeMap<String, u64>, TraceError> {
    let mut out = BTreeMap::new();
    for (key, v) in log.counters()?.iter() {
        if let Some(rest) = key.strip_prefix(strip) {
            let head = rest.split('.').next().unwrap_or(rest);
            *out.entry(head.to_string()).or_insert(0) += v;
        }
    }
    Ok(out)
}

/// One row of a diff against a baseline rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric label.
    pub key: String,
    /// Baseline value (`NaN` when the key is new).
    pub baseline: f64,
    /// Current value (`NaN` when the key disappeared).
    pub current: f64,
    /// `current / baseline − 1` (`NaN` when either side is missing or the
    /// baseline is 0).
    pub rel_delta: f64,
}

/// Diffs two labelled metric maps (current vs baseline), emitting one row
/// per key in sorted order — the regression-gate primitive the trajectory
/// checker builds on.
pub fn diff_rollup(baseline: &BTreeMap<String, f64>, current: &BTreeMap<String, f64>) -> Vec<DiffRow> {
    let mut keys: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|k| {
            let b = baseline.get(k).copied().unwrap_or(f64::NAN);
            let c = current.get(k).copied().unwrap_or(f64::NAN);
            let rel = if b.is_finite() && c.is_finite() && b != 0.0 {
                c / b - 1.0
            } else {
                f64::NAN
            };
            DiffRow {
                key: k.clone(),
                baseline: b,
                current: c,
                rel_delta: rel,
            }
        })
        .collect()
}

/// Deterministic CSV summary of a log — the converter output committed in
/// place of the binary: per-stream row counts, the per-class compute
/// rollup, the per-stage rollup and every counter total.
pub fn summary_csv(log: &EventLog) -> Result<String, TraceError> {
    let mut out = String::from("section,key,count,total\n");
    for s in log.streams() {
        let _ = writeln!(out, "stream,{},{},", s.name, s.rows());
    }
    for (class, t) in class_rollup(log)? {
        let _ = writeln!(out, "class,{},{},{:.9e}", class.name(), t.count, t.seconds);
    }
    for (stage, n, secs) in stage_rollup(log)? {
        let _ = writeln!(out, "stage,{stage},{n},{secs:.9e}");
    }
    for (key, v) in log.counters()?.iter() {
        let _ = writeln!(out, "counter,{key},{v},");
    }
    let states = group_count(log, STREAM_STATE, "state")?;
    for (state, n) in states {
        let _ = writeln!(out, "state,{state},{n},");
    }
    Ok(out)
}

/// Timestamps of every increment of one counter are not recorded (counters
/// are unstamped); this helper instead returns the append-order increment
/// values of `key`, for rate analysis over event index.
pub fn counter_increments(log: &EventLog, key: &str) -> Result<Vec<u64>, TraceError> {
    let s = &log.streams()[STREAM_COUNTER];
    let (keys, ns) = (s.col_str("key")?, s.col_u64("n")?);
    let mut out = Vec::new();
    for i in 0..s.rows() {
        if log.lookup(keys[i])? == key {
            out.push(ns[i]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComputeRecord, Lane};
    use crate::stage::StageRecord;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new();
        for (stage, t0, t1) in [(1u32, 0.0, 1.0), (1, 1.0, 3.0), (4, 0.0, 2.0)] {
            log.push_stage(&StageRecord {
                lane: Lane::new(0, 0),
                stage,
                band: 0,
                t_start: t0,
                t_end: t1,
            });
        }
        for (class, t0, t1, ins, cyc) in [
            (StateClass::FftXy, 0.0, 1.0, 8.0, 10.0),
            (StateClass::FftXy, 1.0, 2.0, 6.0, 10.0),
            (StateClass::Pack, 0.0, 0.5, 1.0, 4.0),
        ] {
            log.push_compute(&ComputeRecord {
                lane: Lane::new(0, 0),
                class,
                t_start: t0,
                t_end: t1,
                instructions: ins,
                cycles: cyc,
            });
        }
        log.push_counter("shed.deadline", 2);
        log.push_counter("shed.capacity", 1);
        log.push_counter("shed.deadline", 3);
        log.push_state(0.0, 0, "normal");
        log.push_state(1.0, 1, "degraded");
        log.push_state(2.0, 1, "normal");
        log
    }

    #[test]
    fn stage_rollup_matches_profile() {
        let log = sample_log();
        let r = stage_rollup(&log).expect("rollup");
        assert_eq!(r, vec![(1, 2, 3.0), (4, 1, 2.0)]);
        assert_eq!(stage_durations(&log, 1).expect("durs"), vec![1.0, 2.0]);
        assert!(stage_durations(&log, 9).expect("durs").is_empty());
    }

    #[test]
    fn class_rollup_accumulates() {
        let log = sample_log();
        let r = class_rollup(&log).expect("rollup");
        let t = r[&StateClass::FftXy];
        assert_eq!(t.count, 2);
        assert!((t.seconds - 2.0).abs() < 1e-12);
        assert!((t.instructions - 14.0).abs() < 1e-12);
        assert!((t.cycles - 20.0).abs() < 1e-12);
        assert!((t.ipc() - 0.7).abs() < 1e-12);
        assert_eq!(r[&StateClass::Pack].count, 1);
    }

    #[test]
    fn quantiles_and_rates() {
        let q = quantiles(&[4.0, 1.0, 3.0, 2.0], &[0.0, 0.5, 1.0]);
        assert!((q[0] - 1.0).abs() < 1e-12);
        assert!((q[1] - 2.5).abs() < 1e-12);
        assert!((q[2] - 4.0).abs() < 1e-12);
        assert!(quantiles(&[], &[0.5])[0].is_nan());
        assert_eq!(rate_windows(&[0.0, 0.1, 1.1, 2.7], 1.0), vec![2, 1, 1]);
        assert!(rate_windows(&[], 1.0).is_empty());
        assert!(rate_windows(&[1.0], 0.0).is_empty());
    }

    #[test]
    fn window_sums_weight_the_bins() {
        let s = window_sums(&[0.0, 0.1, 1.1, 2.7], &[1.0, 2.0, 4.0, 8.0], 1.0);
        assert_eq!(s, vec![3.0, 4.0, 8.0]);
        // The shorter slice bounds the pairing.
        assert_eq!(window_sums(&[0.0, 0.5], &[5.0], 1.0), vec![5.0]);
        assert!(window_sums(&[], &[], 1.0).is_empty());
        assert!(window_sums(&[1.0], &[1.0], 0.0).is_empty());
    }

    #[test]
    fn group_counts_and_counter_groups() {
        let log = sample_log();
        let g = group_count(&log, STREAM_STATE, "state").expect("group");
        assert_eq!(g["normal"], 2);
        assert_eq!(g["degraded"], 1);
        let cg = counter_groups(&log, "shed.").expect("groups");
        assert_eq!(cg["deadline"], 5);
        assert_eq!(cg["capacity"], 1);
        assert_eq!(
            counter_increments(&log, "shed.deadline").expect("inc"),
            vec![2, 3]
        );
        assert!(group_count(&log, 99, "state").is_err());
        assert!(group_count(&log, STREAM_COUNTER, "nope").is_err());
    }

    #[test]
    fn diff_rows_cover_both_sides() {
        let base: BTreeMap<String, f64> =
            [("a".to_string(), 2.0), ("gone".to_string(), 1.0)].into();
        let cur: BTreeMap<String, f64> = [("a".to_string(), 3.0), ("new".to_string(), 1.0)].into();
        let d = diff_rollup(&base, &cur);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].key, "a");
        assert!((d[0].rel_delta - 0.5).abs() < 1e-12);
        assert!(d[1].current.is_nan()); // "gone"
        assert!(d[2].baseline.is_nan()); // "new"
    }

    #[test]
    fn summary_is_deterministic_and_complete() {
        let log = sample_log();
        let a = summary_csv(&log).expect("summary");
        let b = summary_csv(&EventLog::decode(&log.encode()).expect("decode")).expect("summary");
        assert_eq!(a, b);
        assert!(a.starts_with("section,key,count,total\n"));
        assert!(a.contains("stream,stage,3,"));
        assert!(a.contains("class,fft-xy,2,"));
        assert!(a.contains("counter,shed.deadline,5,"));
        assert!(a.contains("state,normal,2,"));
    }
}
