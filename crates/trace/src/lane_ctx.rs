//! Thread-local lane context: lets the task runtime tell the communication
//! layer which worker thread is executing, so records carry the right
//! [`crate::event::Lane`] without threading an id through every call.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREAD: Cell<usize> = const { Cell::new(0) };
}

/// Sets the worker-thread index of the current OS thread (task-runtime
/// workers call this once at startup; plain MPI ranks leave it at 0).
pub fn set_current_thread(t: usize) {
    CURRENT_THREAD.with(|c| c.set(t));
}

/// Worker-thread index of the current OS thread.
pub fn current_thread() -> usize {
    CURRENT_THREAD.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_zero() {
        assert_eq!(current_thread(), 0);
    }

    #[test]
    fn set_is_thread_local() {
        set_current_thread(3);
        assert_eq!(current_thread(), 3);
        std::thread::spawn(|| {
            assert_eq!(current_thread(), 0);
            set_current_thread(7);
            assert_eq!(current_thread(), 7);
        })
        .join()
        .unwrap();
        assert_eq!(current_thread(), 3);
        set_current_thread(0);
    }
}
