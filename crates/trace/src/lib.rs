//! # fftx-trace
//!
//! Performance-trace substrate for the FFTXlib-on-KNL reproduction — the
//! role Extrae (recording), Paraver (timelines/histograms) and the POP
//! efficiency model play in the paper:
//!
//! * [`event`] — record types: compute bursts with instruction/cycle
//!   counters, MPI calls with communicator/byte info, task lifecycles;
//! * [`columnar`] — the single columnar [`EventLog`] store behind every
//!   producer (one [`Sink`] trait, self-describing binary encoding);
//! * [`query`] — offline aggregation over the log (rollups, group-bys,
//!   quantiles, rate windows, diff-vs-baseline);
//! * [`trace`] — the trace container and the thread-safe [`TraceSink`]
//!   every execution engine records into;
//! * [`pop`] — the multiplicative efficiency model of Tables I and II;
//! * [`timeline`] — ASCII/CSV timelines (Fig. 3, Fig. 7 left);
//! * [`histogram`] — IPC × duration histograms (Fig. 7 right);
//! * [`metrics`] — service-level metrics for the job-serving subsystem
//!   (exact latency quantiles, queue-depth series, labelled counters);
//! * [`table`] — paper-style table and bar-chart rendering;
//! * [`paraver`] — export to the actual Paraver `.prv`/`.pcf`/`.row` format
//!   so traces open in the BSC tool the paper used.

#![warn(missing_docs)]
#![allow(clippy::module_inception)]

pub mod columnar;
pub mod error;
pub mod event;
pub mod lane_ctx;
pub mod histogram;
pub mod query;
pub mod metrics;
pub mod paraver;
pub mod pop;
pub mod stage;
pub mod table;
pub mod timeline;
pub mod trace;

pub use columnar::{EventLog, Sink};
pub use error::TraceError;
pub use lane_ctx::{current_thread, set_current_thread};
pub use event::{CommOp, CommRecord, ComputeRecord, Lane, StateClass, TaskRecord};
pub use histogram::IpcHistogram;
pub use metrics::{CounterSet, DepthSeries, Quantiles, StateTimeline};
pub use stage::{stage_profile, StageHistogram, StageRecord};
pub use paraver::{export_paraver, phase_profile, ParaverBundle};
pub use pop::{efficiency_factors, intra_factors, scalability_factors, EfficiencyFactors};
pub use table::{pct, render_bar_chart, render_efficiency_table, render_runtime_table};
pub use timeline::{communicator_summary, render_timeline, timeline_csv, TimelineOptions};
pub use trace::{Trace, TraceSink, WallClock};
