//! Stage-keyed spans and per-stage duration histograms.
//!
//! Every execution engine used to announce its pipeline steps through
//! mode-specific task-label conventions (`"pack[3]"`, `"fft-band-3"`,
//! `"scatter-fw-post[3]"` …) that analysis code had to parse. A
//! [`StageRecord`] instead references the executed stage-graph node by its
//! stable numeric id (`fftx-core`'s `StageKind`), so one record stream
//! covers every scheduler policy and the histograms key on the graph, not
//! on strings.

use crate::event::Lane;
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One executed stage-graph node: a span over the stage's compute burst(s)
/// and any communication the stage contains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Lane (rank, worker thread) that executed the stage.
    pub lane: Lane,
    /// Stable stage-graph node id.
    pub stage: u32,
    /// Band the stage operated on (first band of the batch for the serial
    /// engine, which processes T bands per stage).
    pub band: u32,
    /// Span start (seconds).
    pub t_start: f64,
    /// Span end (seconds).
    pub t_end: f64,
}

impl StageRecord {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Per-stage duration histogram: for every stage-graph node id seen in the
/// trace, the span-duration distribution (fixed linear bins over the
/// trace-wide duration range) plus summary statistics.
#[derive(Debug, Clone)]
pub struct StageHistogram {
    /// Stage ids present, ascending (row order of `cells`).
    pub stages: Vec<u32>,
    /// Number of duration bins.
    pub bins: usize,
    /// Inclusive lower bound of the duration axis (seconds).
    pub dur_min: f64,
    /// Exclusive upper bound of the duration axis (seconds).
    pub dur_max: f64,
    /// `cells[row][bin]` = number of spans of that stage in that bin.
    pub cells: Vec<Vec<usize>>,
    /// Span count per stage.
    pub count: Vec<usize>,
    /// Total seconds per stage.
    pub total_s: Vec<f64>,
    /// Shortest span per stage.
    pub min_s: Vec<f64>,
    /// Longest span per stage.
    pub max_s: Vec<f64>,
}

impl StageHistogram {
    /// Builds the histogram from a trace's stage-record stream. The
    /// duration axis spans the observed range; an empty stream yields an
    /// empty histogram.
    pub fn from_trace(trace: &Trace, bins: usize) -> Self {
        assert!(bins > 0, "StageHistogram: bins must be > 0");
        let mut dur_min = f64::INFINITY;
        let mut dur_max = f64::NEG_INFINITY;
        let mut per_stage: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for r in &trace.stages {
            let d = r.duration().max(0.0);
            dur_min = dur_min.min(d);
            dur_max = dur_max.max(d);
            per_stage.entry(r.stage).or_default().push(d);
        }
        if per_stage.is_empty() {
            return StageHistogram {
                stages: Vec::new(),
                bins,
                dur_min: 0.0,
                dur_max: 0.0,
                cells: Vec::new(),
                count: Vec::new(),
                total_s: Vec::new(),
                min_s: Vec::new(),
                max_s: Vec::new(),
            };
        }
        // Widen a degenerate range so every span lands in a valid bin.
        if dur_max <= dur_min {
            dur_max = dur_min + 1e-12;
        }
        let scale = bins as f64 / (dur_max - dur_min);
        let mut stages = Vec::new();
        let mut cells = Vec::new();
        let mut count = Vec::new();
        let mut total_s = Vec::new();
        let mut min_s = Vec::new();
        let mut max_s = Vec::new();
        for (stage, durs) in per_stage {
            let mut row = vec![0usize; bins];
            for &d in &durs {
                let bi = ((d - dur_min) * scale) as usize;
                row[bi.min(bins - 1)] += 1;
            }
            stages.push(stage);
            cells.push(row);
            count.push(durs.len());
            total_s.push(durs.iter().sum());
            min_s.push(durs.iter().copied().fold(f64::INFINITY, f64::min));
            max_s.push(durs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        StageHistogram {
            stages,
            bins,
            dur_min,
            dur_max,
            cells,
            count,
            total_s,
            min_s,
            max_s,
        }
    }

    /// Renders the histogram as CSV. `name_of` maps a stage id to its
    /// display name (the id→name table lives with the stage graph in
    /// `fftx-core`, which this crate must not depend on).
    pub fn csv(&self, name_of: impl Fn(u32) -> String) -> String {
        let mut out = String::from("stage_id,stage,count,total_s,mean_s,min_s,max_s");
        for b in 0..self.bins {
            let lo = self.dur_min + (self.dur_max - self.dur_min) * b as f64 / self.bins as f64;
            let _ = write!(out, ",bin_{lo:.3e}");
        }
        out.push('\n');
        for (row, &stage) in self.stages.iter().enumerate() {
            let mean = self.total_s[row] / self.count[row].max(1) as f64;
            let _ = write!(
                out,
                "{},{},{},{:.6e},{:.6e},{:.6e},{:.6e}",
                stage,
                name_of(stage),
                self.count[row],
                self.total_s[row],
                mean,
                self.min_s[row],
                self.max_s[row],
            );
            for &c in &self.cells[row] {
                let _ = write!(out, ",{c}");
            }
            out.push('\n');
        }
        out
    }
}

/// Per-stage time rollup of one trace: `(stage id, span count, total
/// seconds)` ascending by stage id — the POP-style profile over the stage
/// graph instead of over state classes. Implemented as a columnar query
/// ([`crate::query::stage_rollup`]) over the log form of the trace.
pub fn stage_profile(trace: &Trace) -> Vec<(u32, usize, f64)> {
    crate::query::stage_rollup(&crate::columnar::EventLog::from_trace(trace))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: u32, band: u32, t0: f64, t1: f64) -> StageRecord {
        StageRecord {
            lane: Lane::new(0, 0),
            stage,
            band,
            t_start: t0,
            t_end: t1,
        }
    }

    #[test]
    fn empty_trace_yields_empty_histogram() {
        let h = StageHistogram::from_trace(&Trace::default(), 8);
        assert!(h.stages.is_empty());
        assert!(stage_profile(&Trace::default()).is_empty());
    }

    #[test]
    fn histogram_bins_and_stats() {
        let mut t = Trace::default();
        t.stages.push(span(1, 0, 0.0, 1.0));
        t.stages.push(span(1, 1, 0.0, 3.0));
        t.stages.push(span(4, 0, 0.0, 2.0));
        let h = StageHistogram::from_trace(&t, 4);
        assert_eq!(h.stages, vec![1, 4]);
        assert_eq!(h.count, vec![2, 1]);
        assert!((h.total_s[0] - 4.0).abs() < 1e-12);
        assert!((h.min_s[0] - 1.0).abs() < 1e-12);
        assert!((h.max_s[0] - 3.0).abs() < 1e-12);
        assert_eq!(h.cells[0].iter().sum::<usize>(), 2);
        assert_eq!(h.cells[1].iter().sum::<usize>(), 1);
        // Longest span lands in the last bin.
        assert_eq!(h.cells[0][3], 1);
        let csv = h.csv(|id| format!("s{id}"));
        assert!(csv.contains("s1") && csv.contains("s4"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn profile_accumulates_per_stage() {
        let mut t = Trace::default();
        t.stages.push(span(2, 0, 0.0, 1.0));
        t.stages.push(span(2, 1, 1.0, 1.5));
        t.stages.push(span(0, 0, 0.0, 0.25));
        let p = stage_profile(&t);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, 0);
        assert_eq!(p[1], (2, 2, 1.5));
    }

    #[test]
    fn identical_durations_do_not_degenerate() {
        let mut t = Trace::default();
        t.stages.push(span(3, 0, 0.0, 1.0));
        t.stages.push(span(3, 1, 2.0, 3.0));
        let h = StageHistogram::from_trace(&t, 2);
        assert_eq!(h.count, vec![2]);
        assert_eq!(h.cells[0].iter().sum::<usize>(), 2);
    }
}
