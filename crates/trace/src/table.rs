//! Paper-style table rendering for the efficiency factors (Tables I & II).

use crate::pop::EfficiencyFactors;
use std::fmt::Write as _;

/// Formats a fraction as the paper prints it: `95.75 %`.
pub fn pct(v: f64) -> String {
    format!("{:.2} %", v * 100.0)
}

/// One table row: label plus value extractor.
type Row = (&'static str, Box<dyn Fn(&EfficiencyFactors) -> String>);

/// Renders a Table-I/II-shaped table: one column per configuration, one row
/// per factor, with the arrow indentation of the paper.
pub fn render_efficiency_table(title: &str, columns: &[(String, EfficiencyFactors)]) -> String {
    let rows: Vec<Row> = vec![
        ("Parallel efficiency", Box::new(|f: &EfficiencyFactors| pct(f.intra.parallel_efficiency))),
        ("-> Load Balance", Box::new(|f: &EfficiencyFactors| pct(f.intra.load_balance))),
        ("-> Communication Efficiency", Box::new(|f: &EfficiencyFactors| pct(f.intra.comm_efficiency))),
        ("   -> Synchronization", Box::new(|f: &EfficiencyFactors| f.intra.sync.map(pct).unwrap_or_else(|| "-".into()))),
        ("   -> Transfer", Box::new(|f: &EfficiencyFactors| f.intra.transfer.map(pct).unwrap_or_else(|| "-".into()))),
        ("Computation Scalability", Box::new(|f: &EfficiencyFactors| pct(f.scal.computation))),
        ("-> IPC Scalability", Box::new(|f: &EfficiencyFactors| pct(f.scal.ipc))),
        ("-> Instructions Scalability", Box::new(|f: &EfficiencyFactors| pct(f.scal.instructions))),
        ("Global Efficiency", Box::new(|f: &EfficiencyFactors| pct(f.global))),
    ];

    let label_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let col_w = columns
        .iter()
        .map(|(h, _)| h.len())
        .max()
        .unwrap_or(0)
        .max(9);

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:label_w$}", "");
    for (h, _) in columns {
        let _ = write!(out, "  {h:>col_w$}");
    }
    out.push('\n');
    let _ = writeln!(out, "{}", "-".repeat(label_w + columns.len() * (col_w + 2)));
    for (name, getter) in &rows {
        let _ = write!(out, "{name:label_w$}");
        for (_, f) in columns {
            let _ = write!(out, "  {:>col_w$}", getter(f));
        }
        out.push('\n');
    }
    out
}

/// Renders a simple two-column (label, value) runtime table, used for the
/// Fig. 2 / Fig. 6 runtime series.
pub fn render_runtime_table(title: &str, rows: &[(String, Vec<(String, f64)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (config, series) in rows {
        let _ = write!(out, "{config:>10}");
        for (name, v) in series {
            let _ = write!(out, "  {name}={v:.4}s");
        }
        out.push('\n');
    }
    out
}

/// Renders an ASCII bar chart of runtimes: one bar per configuration; when
/// several series are given, bars are grouped (Fig. 6's original-vs-OmpSs).
pub fn render_bar_chart(
    title: &str,
    configs: &[String],
    series: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0_f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if max <= 0.0 {
        out.push_str("(no data)\n");
        return out;
    }
    let label_w = configs.iter().map(|c| c.len()).max().unwrap_or(4);
    let series_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
    for (ci, cfg) in configs.iter().enumerate() {
        for (si, (sname, vals)) in series.iter().enumerate() {
            let v = vals.get(ci).copied().unwrap_or(0.0);
            let bar_len = ((v / max) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:>label_w$} {:>series_w$} |{}{} {:.4}s",
                if si == 0 { cfg.as_str() } else { "" },
                sname,
                "#".repeat(bar_len),
                " ".repeat(width.saturating_sub(bar_len)),
                v
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pop::{IntraFactors, ScalFactors};

    fn factors(p: f64) -> EfficiencyFactors {
        EfficiencyFactors {
            intra: IntraFactors {
                load_balance: p,
                comm_efficiency: p,
                parallel_efficiency: p * p,
                transfer: Some(p),
                sync: Some(p),
            },
            scal: ScalFactors {
                computation: p,
                ipc: p,
                instructions: 1.0,
            },
            global: p * p * p,
        }
    }

    #[test]
    fn pct_formats_like_paper() {
        assert_eq!(pct(0.9575), "95.75 %");
        assert_eq!(pct(1.0), "100.00 %");
    }

    #[test]
    fn efficiency_table_has_all_rows() {
        let cols = vec![("1 x 8".to_string(), factors(0.95)), ("2 x 8".to_string(), factors(0.9))];
        let s = render_efficiency_table("TABLE I", &cols);
        for needle in [
            "Parallel efficiency",
            "Load Balance",
            "Communication Efficiency",
            "Synchronization",
            "Transfer",
            "Computation Scalability",
            "IPC Scalability",
            "Instructions Scalability",
            "Global Efficiency",
            "1 x 8",
            "2 x 8",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn missing_sync_prints_dash() {
        let mut f = factors(0.5);
        f.intra.sync = None;
        f.intra.transfer = None;
        let s = render_efficiency_table("T", &[("c".into(), f)]);
        assert!(s.contains('-'));
    }

    #[test]
    fn bar_chart_scales_bars() {
        let s = render_bar_chart(
            "fig",
            &["1x8".into(), "2x8".into()],
            &[("orig".into(), vec![2.0, 1.0])],
            20,
        );
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let hashes0 = lines[0].matches('#').count();
        let hashes1 = lines[1].matches('#').count();
        assert_eq!(hashes0, 20);
        assert_eq!(hashes1, 10);
    }

    #[test]
    fn bar_chart_empty_data() {
        let s = render_bar_chart("fig", &[], &[], 10);
        assert!(s.contains("no data"));
    }

    #[test]
    fn runtime_table_lists_entries() {
        let s = render_runtime_table(
            "Fig 2",
            &[("8 x 8".into(), vec![("orig".into(), 1.25)])],
        );
        assert!(s.contains("8 x 8"));
        assert!(s.contains("orig=1.2500s"));
    }
}
