//! Trace record types — the vocabulary shared by the virtual MPI layer, the
//! task runtime, the KNL simulator and the analysis passes. Modeled on what
//! Extrae records: compute bursts with hardware counters, MPI calls with
//! communicator/byte information, and task lifecycle events.

/// Classification of a compute burst. The classes correspond to the phases
/// the paper identifies in the Fig. 3 timeline, each with a characteristic
/// compute intensity (IPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateClass {
    /// Preparation of the psi buffers (very low IPC, ~0.06 in the paper).
    PsiPrep,
    /// Packing of the group sticks before the Z FFT.
    Pack,
    /// 1-D FFTs along Z (medium IPC, ~0.52).
    FftZ,
    /// 2-D FFTs in the XY planes (the "main" high-IPC phase, ~0.77).
    FftXy,
    /// Point-wise application of the real-space potential (part of the main
    /// phase in the paper's timeline).
    Vofr,
    /// Unpacking of the group sticks after the backward Z FFT.
    Unpack,
    /// Task-runtime overhead (scheduling, dependency bookkeeping).
    Runtime,
    /// Anything else.
    Other,
}

impl StateClass {
    /// All classes, in timeline-rendering order.
    pub const ALL: [StateClass; 8] = [
        StateClass::PsiPrep,
        StateClass::Pack,
        StateClass::FftZ,
        StateClass::FftXy,
        StateClass::Vofr,
        StateClass::Unpack,
        StateClass::Runtime,
        StateClass::Other,
    ];

    /// Single-character tag used by the ASCII timeline renderer.
    pub fn tag(self) -> char {
        match self {
            StateClass::PsiPrep => 'p',
            StateClass::Pack => 'k',
            StateClass::FftZ => 'Z',
            StateClass::FftXy => 'X',
            StateClass::Vofr => 'V',
            StateClass::Unpack => 'u',
            StateClass::Runtime => 'r',
            StateClass::Other => '.',
        }
    }

    /// Stable numeric code used by the columnar event log.
    pub fn code(self) -> u32 {
        match self {
            StateClass::PsiPrep => 0,
            StateClass::Pack => 1,
            StateClass::FftZ => 2,
            StateClass::FftXy => 3,
            StateClass::Vofr => 4,
            StateClass::Unpack => 5,
            StateClass::Runtime => 6,
            StateClass::Other => 7,
        }
    }

    /// Inverse of [`StateClass::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        StateClass::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StateClass::PsiPrep => "psi-prep",
            StateClass::Pack => "pack",
            StateClass::FftZ => "fft-z",
            StateClass::FftXy => "fft-xy",
            StateClass::Vofr => "vofr",
            StateClass::Unpack => "unpack",
            StateClass::Runtime => "runtime",
            StateClass::Other => "other",
        }
    }
}

/// MPI-style operation kinds recorded by the communication layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommOp {
    /// `MPI_Alltoall` (the scatter between 1-D and 2-D FFTs).
    Alltoall,
    /// `MPI_Alltoallv` (the pack/unpack of band groups).
    Alltoallv,
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Allgather` / `MPI_Gather`.
    Gather,
    /// Point-to-point send/recv pair.
    SendRecv,
}

impl CommOp {
    /// Single-character tag for timelines.
    pub fn tag(self) -> char {
        match self {
            CommOp::Alltoall => 'A',
            CommOp::Alltoallv => 'a',
            CommOp::Barrier => 'b',
            CommOp::Allreduce => 'R',
            CommOp::Bcast => 'B',
            CommOp::Gather => 'g',
            CommOp::SendRecv => 's',
        }
    }

    /// All operations, in a stable order.
    pub const ALL: [CommOp; 7] = [
        CommOp::Alltoall,
        CommOp::Alltoallv,
        CommOp::Barrier,
        CommOp::Allreduce,
        CommOp::Bcast,
        CommOp::Gather,
        CommOp::SendRecv,
    ];

    /// Stable numeric code used by the columnar event log.
    pub fn code(self) -> u32 {
        match self {
            CommOp::Alltoall => 0,
            CommOp::Alltoallv => 1,
            CommOp::Barrier => 2,
            CommOp::Allreduce => 3,
            CommOp::Bcast => 4,
            CommOp::Gather => 5,
            CommOp::SendRecv => 6,
        }
    }

    /// Inverse of [`CommOp::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        CommOp::ALL.into_iter().find(|c| c.code() == code)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CommOp::Alltoall => "Alltoall",
            CommOp::Alltoallv => "Alltoallv",
            CommOp::Barrier => "Barrier",
            CommOp::Allreduce => "Allreduce",
            CommOp::Bcast => "Bcast",
            CommOp::Gather => "Gather",
            CommOp::SendRecv => "SendRecv",
        }
    }
}

/// Identifies one execution lane: a hardware thread of one rank. MPI-only
/// executions have `thread == 0` everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lane {
    /// MPI rank.
    pub rank: usize,
    /// Worker-thread index inside the rank.
    pub thread: usize,
}

impl Lane {
    /// Convenience constructor.
    pub fn new(rank: usize, thread: usize) -> Self {
        Lane { rank, thread }
    }
}

/// A compute burst with hardware-counter information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRecord {
    /// Where it ran.
    pub lane: Lane,
    /// Phase classification.
    pub class: StateClass,
    /// Start time in seconds (virtual or wall).
    pub t_start: f64,
    /// End time in seconds.
    pub t_end: f64,
    /// Instructions retired during the burst.
    pub instructions: f64,
    /// Core cycles consumed during the burst.
    pub cycles: f64,
}

impl ComputeRecord {
    /// Burst duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }

    /// Instructions per cycle of the burst (0 when no cycles were counted).
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }
}

/// A communication operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommRecord {
    /// Where it was issued.
    pub lane: Lane,
    /// Operation kind.
    pub op: CommOp,
    /// Communicator identifier (stable across ranks of the communicator).
    pub comm_id: u64,
    /// Number of ranks in the communicator.
    pub comm_size: usize,
    /// Bytes this rank contributed (sent) to the operation.
    pub bytes: usize,
    /// Start time in seconds.
    pub t_start: f64,
    /// End time in seconds.
    pub t_end: f64,
}

impl CommRecord {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Task lifecycle record (creation → execution window).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// Lane the task executed on.
    pub lane: Lane,
    /// Runtime-assigned task id.
    pub task_id: u64,
    /// Task label (step name or FFT index).
    pub label: String,
    /// Creation (submission) time.
    pub t_created: f64,
    /// Execution start time.
    pub t_start: f64,
    /// Execution end time.
    pub t_end: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<char> = StateClass::ALL.iter().map(|c| c.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), StateClass::ALL.len());
    }

    #[test]
    fn compute_record_derives() {
        let r = ComputeRecord {
            lane: Lane::new(1, 2),
            class: StateClass::FftXy,
            t_start: 1.0,
            t_end: 3.0,
            instructions: 4e9,
            cycles: 5e9,
        };
        assert_eq!(r.duration(), 2.0);
        assert!((r.ipc() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn ipc_of_zero_cycles_is_zero() {
        let r = ComputeRecord {
            lane: Lane::new(0, 0),
            class: StateClass::Other,
            t_start: 0.0,
            t_end: 0.0,
            instructions: 0.0,
            cycles: 0.0,
        };
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn comm_record_duration() {
        let c = CommRecord {
            lane: Lane::new(0, 0),
            op: CommOp::Alltoall,
            comm_id: 7,
            comm_size: 8,
            bytes: 1024,
            t_start: 0.5,
            t_end: 0.75,
        };
        assert!((c.duration() - 0.25).abs() < 1e-15);
        assert_eq!(c.op.name(), "Alltoall");
        assert_eq!(c.op.tag(), 'A');
    }

    #[test]
    fn names_nonempty() {
        for c in StateClass::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
