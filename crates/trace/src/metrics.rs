//! Serving-side metrics: exact latency quantiles, time-weighted
//! queue-depth series, and labelled monotonic counters.
//!
//! The job-serving subsystem (`fftx-serve`) exports its per-tenant and
//! per-stage accounting through these types so the same trace crate that
//! carries the Extrae/Paraver-style execution records also carries the
//! service-level ones: latency percentiles per deadline class, queue depth
//! over virtual time, shed/completion counters per tenant. Everything is
//! exact and deterministic — quantiles are computed from the full sample
//! set (serving traces are small enough), not from a sketch.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An exact quantile estimator over an explicit sample set.
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) with linear interpolation between
    /// order statistics; `NaN` on an empty set.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            // total_cmp keeps a stray NaN sample from panicking the
            // analysis pipeline (NaNs sort last instead).
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Median.
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean; `NaN` on an empty set.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample; `NaN` on an empty set.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(f64::NAN, f64::max)
    }
}

/// A time-weighted step series — queue depth (or any gauge) over virtual
/// time. Between two recordings the gauge holds its previous value, so the
/// mean is the time integral divided by the observation span.
#[derive(Debug, Clone, Default)]
pub struct DepthSeries {
    points: Vec<(f64, usize)>,
}

impl DepthSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the gauge value `depth` at time `t` (seconds, must be
    /// non-decreasing across calls).
    pub fn record(&mut self, t: f64, depth: usize) {
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(t >= last_t, "DepthSeries: time must be non-decreasing");
        }
        self.points.push((t, depth));
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value (0 for an empty series).
    pub fn max(&self) -> usize {
        self.points.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Time-weighted mean over the observation span; `NaN` when fewer than
    /// two points were recorded (no span to integrate over).
    pub fn time_weighted_mean(&self) -> f64 {
        let (Some(&(first_t, _)), Some(&(last_t, _))) =
            (self.points.first(), self.points.last())
        else {
            return f64::NAN;
        };
        let mut integral = 0.0;
        for w in self.points.windows(2) {
            integral += w[0].1 as f64 * (w[1].0 - w[0].0);
        }
        let span = last_t - first_t;
        if span <= 0.0 {
            f64::NAN
        } else {
            integral / span
        }
    }
}

/// Labelled monotonic counters with deterministic (sorted) iteration, for
/// per-tenant accepted/shed/completed accounting and similar tallies.
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    counts: BTreeMap<String, u64>,
}

impl CounterSet {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `key` (creating it at 0).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counts.entry(key.to_string()).or_insert(0) += n;
    }

    /// Increments the counter `key` by one.
    pub fn inc(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of `key` (0 when never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum over all counters whose label starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// All `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// CSV rendering (`counter,value` rows in label order).
    pub fn csv(&self) -> String {
        let mut out = String::from("counter,value\n");
        for (k, v) in self.iter() {
            let _ = writeln!(out, "{k},{v}");
        }
        out
    }
}

/// A labelled state-transition timeline over virtual time, keyed by an
/// integer lane (a fleet shard, a rank, a worker): each record is
/// `(t, lane, state)`. The fleet supervisor uses it for the per-shard
/// circuit-breaker and degradation-ladder history — the serving-side
/// analogue of the Paraver state records the execution tracer emits.
#[derive(Debug, Clone, Default)]
pub struct StateTimeline {
    events: Vec<(f64, u32, String)>,
}

impl StateTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records lane `lane` entering `state` at time `t` (seconds, must be
    /// non-decreasing across calls).
    pub fn record(&mut self, t: f64, lane: u32, state: &str) {
        if let Some(&(last_t, _, _)) = self.events.last() {
            assert!(t >= last_t, "StateTimeline: time must be non-decreasing");
        }
        self.events.push((t, lane, state.to_string()));
    }

    /// Number of recorded transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All transitions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u32, &str)> + '_ {
        self.events.iter().map(|(t, l, s)| (*t, *l, s.as_str()))
    }

    /// Transitions of one lane, oldest first.
    pub fn lane(&self, lane: u32) -> impl Iterator<Item = (f64, &str)> + '_ {
        self.events
            .iter()
            .filter(move |&&(_, l, _)| l == lane)
            .map(|(t, _, s)| (*t, s.as_str()))
    }

    /// How many transitions entered `state` (across all lanes).
    pub fn count(&self, state: &str) -> usize {
        self.events.iter().filter(|(_, _, s)| s == state).count()
    }

    /// The state of `lane` at the end of the timeline, if it ever
    /// transitioned.
    pub fn last_state(&self, lane: u32) -> Option<&str> {
        self.events
            .iter()
            .rev()
            .find(|&&(_, l, _)| l == lane)
            .map(|(_, _, s)| s.as_str())
    }

    /// CSV rendering (`t_s,lane,state` rows in time order).
    pub fn csv(&self) -> String {
        let mut out = String::from("t_s,lane,state\n");
        for (t, lane, state) in &self.events {
            let _ = writeln!(out, "{t:.6},{lane},{state}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_timeline_records_and_queries() {
        let mut tl = StateTimeline::new();
        assert!(tl.is_empty());
        tl.record(0.0, 0, "closed");
        tl.record(0.5, 1, "open");
        tl.record(0.7, 1, "half_open");
        tl.record(0.9, 1, "closed");
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.count("closed"), 2);
        assert_eq!(tl.last_state(1), Some("closed"));
        assert_eq!(tl.last_state(7), None);
        assert_eq!(tl.lane(1).count(), 3);
        let csv = tl.csv();
        assert!(csv.starts_with("t_s,lane,state"));
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn state_timeline_rejects_time_travel() {
        let mut tl = StateTimeline::new();
        tl.record(1.0, 0, "a");
        tl.record(0.5, 0, "b");
    }

    #[test]
    fn quantiles_interpolate_exactly() {
        let mut q = Quantiles::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            q.push(v);
        }
        assert_eq!(q.len(), 4);
        assert!((q.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((q.quantile(1.0) - 4.0).abs() < 1e-12);
        assert!((q.p50() - 2.5).abs() < 1e-12);
        assert!((q.quantile(1.0 / 3.0) - 2.0).abs() < 1e-12);
        assert!((q.mean() - 2.5).abs() < 1e-12);
        assert!((q.max() - 4.0).abs() < 1e-12);
        // Push after query re-sorts.
        q.push(0.0);
        assert!((q.quantile(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_empty_is_nan() {
        let mut q = Quantiles::new();
        assert!(q.is_empty());
        assert!(q.p50().is_nan());
        assert!(q.mean().is_nan());
    }

    #[test]
    fn depth_series_time_weighted_mean() {
        let mut s = DepthSeries::new();
        s.record(0.0, 0);
        s.record(1.0, 4); // depth 0 held for 1s
        s.record(3.0, 2); // depth 4 held for 2s
        s.record(4.0, 2); // depth 2 held for 1s
        assert_eq!(s.max(), 4);
        // (0*1 + 4*2 + 2*1) / 4 = 2.5
        assert!((s.time_weighted_mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn depth_series_degenerate_is_nan() {
        let mut s = DepthSeries::new();
        assert!(s.time_weighted_mean().is_nan());
        s.record(1.0, 3);
        assert!(s.time_weighted_mean().is_nan());
        assert_eq!(s.max(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn depth_series_rejects_time_travel() {
        let mut s = DepthSeries::new();
        s.record(2.0, 1);
        s.record(1.0, 1);
    }

    #[test]
    fn counters_accumulate_and_render() {
        let mut c = CounterSet::new();
        c.inc("tenant0.accepted");
        c.add("tenant0.accepted", 2);
        c.inc("tenant1.shed");
        assert_eq!(c.get("tenant0.accepted"), 3);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.sum_prefix("tenant"), 4);
        assert_eq!(c.sum_prefix("tenant1"), 1);
        let csv = c.csv();
        assert!(csv.starts_with("counter,value\n"));
        assert!(csv.contains("tenant0.accepted,3"));
        // Deterministic label order.
        let labels: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(labels, vec!["tenant0.accepted", "tenant1.shed"]);
    }
}
