//! ASCII/CSV timeline rendering — the Paraver role. Each lane becomes one
//! row of characters; each character is the dominant activity inside its
//! time bin: a compute-state tag, an MPI-operation tag, or `' '` for idle.

use crate::event::{Lane, StateClass};
use crate::trace::Trace;
use std::fmt::Write as _;

/// Options for [`render_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Number of character columns.
    pub width: usize,
    /// Optional explicit time window `(t0, t1)`; defaults to the trace span.
    pub window: Option<(f64, f64)>,
    /// Render communication records on top of compute records.
    pub show_comm: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 100,
            window: None,
            show_comm: true,
        }
    }
}

/// Renders the trace as an ASCII timeline, one row per lane, ordered by
/// (rank, thread). Includes a legend of the state tags that appear.
pub fn render_timeline(trace: &Trace, opts: &TimelineOptions) -> String {
    let lanes = trace.lanes();
    if lanes.is_empty() || opts.width == 0 {
        return String::from("(empty trace)\n");
    }
    let (t0, t1) = opts.window.unwrap_or((trace.t_min(), trace.t_max()));
    let span = (t1 - t0).max(f64::MIN_POSITIVE);
    let bin = span / opts.width as f64;

    let mut out = String::new();
    let _ = writeln!(out, "timeline: {:.6}s .. {:.6}s  ({} bins of {:.3e}s)", t0, t1, opts.width, bin);
    let mut used_states: Vec<StateClass> = Vec::new();
    let mut used_comm: Vec<crate::event::CommOp> = Vec::new();

    for &lane in &lanes {
        // For every bin pick the record covering the most of it.
        let mut row = vec![' '; opts.width];
        let mut coverage = vec![0.0_f64; opts.width];
        for r in trace.compute.iter().filter(|r| r.lane == lane) {
            paint(&mut row, &mut coverage, t0, bin, r.t_start, r.t_end, r.class.tag());
            if !used_states.contains(&r.class) {
                used_states.push(r.class);
            }
        }
        if opts.show_comm {
            for r in trace.comm.iter().filter(|r| r.lane == lane) {
                paint(&mut row, &mut coverage, t0, bin, r.t_start, r.t_end, r.op.tag());
                if !used_comm.contains(&r.op) {
                    used_comm.push(r.op);
                }
            }
        }
        let _ = writeln!(
            out,
            "r{:<3}t{:<2}|{}|",
            lane.rank,
            lane.thread,
            row.into_iter().collect::<String>()
        );
    }

    let _ = write!(out, "legend:");
    used_states.sort_unstable();
    for s in used_states {
        let _ = write!(out, " {}={}", s.tag(), s.name());
    }
    for o in used_comm {
        let _ = write!(out, " {}={}", o.tag(), o.name());
    }
    out.push('\n');
    out
}

/// Paints `tag` into every bin the `[s, e)` interval covers more than any
/// previous painter.
fn paint(row: &mut [char], coverage: &mut [f64], t0: f64, bin: f64, s: f64, e: f64, tag: char) {
    if e <= s {
        return;
    }
    let width = row.len();
    let first = (((s - t0) / bin).floor().max(0.0)) as usize;
    let last = ((((e - t0) / bin).ceil()) as usize).min(width);
    for idx in first..last {
        let b0 = t0 + idx as f64 * bin;
        let b1 = b0 + bin;
        let overlap = (e.min(b1) - s.max(b0)).max(0.0);
        if overlap > coverage[idx] {
            coverage[idx] = overlap;
            row[idx] = tag;
        }
    }
}

/// Exports every record as CSV (`kind,rank,thread,label,t_start,t_end,
/// instructions,cycles,ipc,bytes`). Suitable for external plotting.
pub fn timeline_csv(trace: &Trace) -> String {
    let mut out = String::from("kind,rank,thread,label,t_start,t_end,instructions,cycles,ipc,bytes\n");
    for r in &trace.compute {
        let _ = writeln!(
            out,
            "compute,{},{},{},{:.9},{:.9},{:.0},{:.0},{:.4},",
            r.lane.rank,
            r.lane.thread,
            r.class.name(),
            r.t_start,
            r.t_end,
            r.instructions,
            r.cycles,
            r.ipc()
        );
    }
    for r in &trace.comm {
        let _ = writeln!(
            out,
            "comm,{},{},{},{:.9},{:.9},,,,{}",
            r.lane.rank,
            r.lane.thread,
            r.op.name(),
            r.t_start,
            r.t_end,
            r.bytes
        );
    }
    for r in &trace.tasks {
        let _ = writeln!(
            out,
            "task,{},{},{},{:.9},{:.9},,,,",
            r.lane.rank, r.lane.thread, r.label, r.t_start, r.t_end
        );
    }
    out
}

/// Per-lane communicator usage summary: which communicator ids a lane talked
/// on and how often — the textual analogue of Fig. 3's communicator timeline.
pub fn communicator_summary(trace: &Trace) -> String {
    use std::collections::BTreeMap;
    let mut per_lane: BTreeMap<Lane, BTreeMap<u64, (usize, usize)>> = BTreeMap::new();
    for r in &trace.comm {
        let e = per_lane
            .entry(r.lane)
            .or_default()
            .entry(r.comm_id)
            .or_insert((0, 0));
        e.0 += 1;
        e.1 = r.comm_size;
    }
    let mut out = String::from("lane -> communicator(id: calls x size)\n");
    for (lane, comms) in per_lane {
        let _ = write!(out, "r{:<3}t{:<2}:", lane.rank, lane.thread);
        for (id, (calls, size)) in comms {
            let _ = write!(out, " c{id}({calls}x{size})");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CommOp, CommRecord, ComputeRecord};

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.compute.push(ComputeRecord {
            lane: Lane::new(0, 0),
            class: StateClass::FftZ,
            t_start: 0.0,
            t_end: 0.5,
            instructions: 1.0,
            cycles: 2.0,
        });
        t.comm.push(CommRecord {
            lane: Lane::new(0, 0),
            op: CommOp::Alltoall,
            comm_id: 3,
            comm_size: 4,
            bytes: 256,
            t_start: 0.5,
            t_end: 1.0,
        });
        t.compute.push(ComputeRecord {
            lane: Lane::new(1, 0),
            class: StateClass::FftXy,
            t_start: 0.0,
            t_end: 1.0,
            instructions: 8.0,
            cycles: 10.0,
        });
        t
    }

    #[test]
    fn renders_rows_per_lane() {
        let s = render_timeline(&sample_trace(), &TimelineOptions { width: 10, ..Default::default() });
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with('r')).collect();
        assert_eq!(rows.len(), 2);
        // Lane 0: first half FftZ, second half Alltoall.
        assert!(rows[0].contains('Z'));
        assert!(rows[0].contains('A'));
        // Lane 1: full-width FftXy.
        assert!(rows[1].contains('X'));
        assert!(!rows[1].contains(' '.to_string().repeat(5).as_str()));
        assert!(s.contains("legend:"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let s = render_timeline(&Trace::default(), &TimelineOptions::default());
        assert!(s.contains("empty"));
    }

    #[test]
    fn comm_can_be_hidden() {
        let s = render_timeline(
            &sample_trace(),
            &TimelineOptions { width: 10, show_comm: false, ..Default::default() },
        );
        let row0 = s.lines().find(|l| l.starts_with("r0")).unwrap();
        assert!(!row0.contains('A'));
    }

    #[test]
    fn csv_contains_all_records() {
        let csv = timeline_csv(&sample_trace());
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(csv.lines().next().unwrap().starts_with("kind,"));
        assert!(csv.contains("fft-z"));
        assert!(csv.contains("Alltoall"));
        assert!(csv.contains(",256"));
    }

    #[test]
    fn communicator_summary_lists_comm_ids() {
        let s = communicator_summary(&sample_trace());
        assert!(s.contains("c3(1x4)"));
    }

    #[test]
    fn window_restricts_view() {
        let s = render_timeline(
            &sample_trace(),
            &TimelineOptions { width: 10, window: Some((0.0, 0.5)), show_comm: true },
        );
        let row0 = s.lines().find(|l| l.starts_with("r0")).unwrap();
        // Everything in the window is the Z FFT; the alltoall lies outside,
        // except possibly a boundary bin.
        assert!(row0.matches('Z').count() >= 9, "{row0}");
    }
}
