//! Typed errors for the trace crate — decoding a columnar log, schema
//! lookups and I/O are fallible and must not panic the analysis pipeline.

use std::fmt;

/// Error type for columnar-log encoding/decoding and query lookups.
#[derive(Debug)]
pub enum TraceError {
    /// The byte stream is not a valid columnar log (bad magic, truncated
    /// varint, out-of-range dictionary id, …).
    Decode(String),
    /// A query referenced a stream or column the log does not carry, or the
    /// column has the wrong type.
    Schema(String),
    /// Reading or writing a log file failed.
    Io(std::io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Decode(m) => write!(f, "columnar decode error: {m}"),
            TraceError::Schema(m) => write!(f, "columnar schema error: {m}"),
            TraceError::Io(e) => write!(f, "columnar io error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(TraceError::Decode("x".into()).to_string().contains("decode"));
        assert!(TraceError::Schema("y".into()).to_string().contains("schema"));
        let io = TraceError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
    }
}
